"""Fault-injection tests for the distributed sweep service.

The contract under test: **scheduling is invisible in the numbers**.  Worker
kills (before and after a task's side effects land), transient errors,
dropped heartbeats and hard client kills may change how often tasks run and
how long a sweep takes — never the DataPoints, which must stay bit-identical
to the serial runner's.  The scheduler's retry/death/timeout counters must
also account exactly for the faults the plan injected.
"""

import math

import pytest
from conftest import (
    CrashingBackend,
    FaultPlan,
    FaultyWorkerBackend,
    assert_points_equal,
)

from repro.experiments import (
    ExperimentConfig,
    RetryPolicy,
    SweepError,
    clear_caches,
    compare_policies,
    compare_policies_streaming,
    set_disk_memo,
)
from repro.experiments.queue import InlineBackend, TASK_DIED, TaskOutcome
from repro.experiments.service import load_manifest, resume_sweep, run_sweep, SweepSpec

pytestmark = pytest.mark.usefixtures("memo_isolation")

APPS = ("PR",)
DATASETS = ("lj", "pl")
SCHEMES = ("RRIP", "GRASP")

#: Tight retry timings so fault-heavy runs finish fast on the real clock.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)


def _spec(**overrides) -> SweepSpec:
    fields = dict(apps=APPS, datasets=DATASETS, schemes=SCHEMES)
    fields.update(overrides)
    return SweepSpec(**fields)


def _serial_points(config, streaming=False):
    compare = compare_policies_streaming if streaming else compare_policies
    points = compare(APPS, DATASETS, SCHEMES, config=config)
    clear_caches()
    set_disk_memo(None)
    return points


class TestFaultyWorkers:
    def test_kills_transients_and_drops_leave_results_bit_identical(self, tmp_path):
        config = ExperimentConfig.smoke()
        serial = _serial_points(config)
        # Kill rate 0.4 over 8 tasks: comfortably past the >=20% acceptance bar.
        plan = FaultPlan(seed=7, kill_rate=0.4, transient_rate=0.2, drop_rate=0.15)
        backend = FaultyWorkerBackend(plan)
        result = run_sweep(
            _spec(),
            config=config,
            cache_dir=tmp_path,
            workers=3,
            worker_backend=backend,
            retry=FAST_RETRY,
            run_id="faulty",
        )
        assert_points_equal(serial, result.points)
        total_tasks = len(result.report.failed) + result.report.executed + result.report.cached
        assert plan.kills >= math.ceil(0.2 * total_tasks), "fault plan too gentle"
        # Every injected fault shows up in exactly one scheduler counter.
        assert result.report.worker_deaths == plan.kills
        assert result.report.task_errors == plan.transients
        assert result.report.heartbeat_timeouts == plan.drops
        assert result.report.retries == plan.total
        assert not result.report.failed
        assert len(result.report.events) == plan.total

    def test_manifest_records_faults_and_statuses(self, tmp_path):
        config = ExperimentConfig.smoke()
        serial = _serial_points(config)
        plan = FaultPlan(seed=11, kill_rate=0.3, transient_rate=0.3, drop_rate=0.1)
        result = run_sweep(
            _spec(),
            config=config,
            cache_dir=tmp_path,
            workers=4,
            worker_backend=FaultyWorkerBackend(plan),
            retry=FAST_RETRY,
            run_id="recorded",
        )
        assert_points_equal(serial, result.points)
        manifest = load_manifest(tmp_path, "recorded")
        assert manifest["status"] == "completed"
        assert manifest["counters"]["retries"] == plan.total
        assert manifest["counters"]["worker_deaths"] == plan.kills
        assert manifest["counters"]["heartbeat_timeouts"] == plan.drops
        assert len(manifest["events"]) == plan.total
        statuses = {task["status"] for task in manifest["tasks"]}
        assert statuses == {"done"}
        faulted = [task for task in manifest["tasks"] if task["attempts"] > 1]
        assert len(faulted) == plan.total

    def test_streaming_sweep_survives_faults(self, tmp_path):
        config = ExperimentConfig.smoke().with_overrides(chunk_accesses=1 << 12)
        serial = _serial_points(config, streaming=True)
        plan = FaultPlan(seed=3, kill_rate=0.35, transient_rate=0.2, drop_rate=0.1)
        result = run_sweep(
            _spec(streaming=True),
            config=config,
            cache_dir=tmp_path,
            workers=3,
            worker_backend=FaultyWorkerBackend(plan),
            retry=FAST_RETRY,
        )
        assert_points_equal(serial, result.points)
        assert result.report.retries == plan.total
        assert plan.total > 0, "seed injected no faults; pick another"


class _AlwaysDieBackend(InlineBackend):
    """Kills the worker on every execution of one labelled task."""

    def __init__(self, label: str) -> None:
        super().__init__()
        self.label = label

    def submit(self, worker, task, attempt):
        if task.label == self.label:
            handle = self._next_handle
            self._next_handle += 1
            self._outcomes[handle] = TaskOutcome(
                handle, task.task_id, TASK_DIED, error="persistent injected kill"
            )
            return handle
        return super().submit(worker, task, attempt)


class TestPermanentFailure:
    def test_exhausted_retries_fail_task_and_dependents_only(self, tmp_path):
        config = ExperimentConfig.smoke()
        backend = _AlwaysDieBackend("filter PR/lj")
        with pytest.raises(SweepError) as excinfo:
            run_sweep(
                _spec(),
                config=config,
                cache_dir=tmp_path,
                workers=2,
                worker_backend=backend,
                retry=FAST_RETRY,
                run_id="doomed",
            )
        manifest = load_manifest(tmp_path, "doomed")
        assert manifest["status"] == "failed"
        by_label = {task["label"]: task for task in manifest["tasks"]}
        assert by_label["filter PR/lj"]["status"] == "failed"
        assert by_label["filter PR/lj"]["attempts"] == FAST_RETRY.max_attempts
        # Dependent replays fail transitively; the sibling pair completes.
        assert by_label["RRIP PR/lj"]["status"] == "failed"
        assert "dependency failed" in by_label["RRIP PR/lj"]["error"]
        assert by_label["RRIP PR/pl"]["status"] == "done"
        assert by_label["GRASP PR/pl"]["status"] == "done"
        assert set(excinfo.value.failed) == {
            by_label[label]["id"] for label in ("filter PR/lj", "RRIP PR/lj", "GRASP PR/lj")
        }


class TestResume:
    def test_resume_after_hard_kill_skips_persisted_tasks(self, tmp_path):
        config = ExperimentConfig.smoke()
        serial = _serial_points(config)
        crash = CrashingBackend(crash_after=3)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                _spec(),
                config=config,
                cache_dir=tmp_path,
                workers=2,
                worker_backend=crash,
                retry=FAST_RETRY,
                run_id="crashy",
            )
        executed_before = set(crash.executed)
        assert len(executed_before) == 3
        assert load_manifest(tmp_path, "crashy")["status"] == "interrupted"

        # A fresh client resumes the run: persisted tasks are cache hits,
        # only the incomplete remainder executes.
        clear_caches()
        set_disk_memo(None)
        resumed_backend = InlineBackend()
        result = resume_sweep("crashy", cache_dir=tmp_path, worker_backend=resumed_backend)
        assert set(resumed_backend.executed).isdisjoint(executed_before)
        assert result.report.cached == len(executed_before)
        assert result.report.executed + result.report.cached == 8
        assert_points_equal(serial, result.points)
        manifest = load_manifest(tmp_path, "crashy")
        assert manifest["status"] == "completed"
        assert manifest["resumes"] == 1

    def test_completed_run_resumes_to_all_cached(self, tmp_path):
        config = ExperimentConfig.smoke()
        serial = _serial_points(config)
        run_sweep(
            _spec(),
            config=config,
            cache_dir=tmp_path,
            workers=2,
            worker_backend=InlineBackend(),
            run_id="finished",
        )
        clear_caches()
        set_disk_memo(None)
        backend = InlineBackend()
        result = resume_sweep("finished", cache_dir=tmp_path, worker_backend=backend)
        assert backend.executed == []
        assert result.report.executed == 0
        assert result.report.cached == 8
        assert_points_equal(serial, result.points)


class TestCrossClientDedup:
    def test_second_client_reuses_first_clients_store(self, tmp_path):
        config = ExperimentConfig.smoke()
        serial = _serial_points(config)
        first = run_sweep(
            _spec(), config=config, cache_dir=tmp_path, workers=2,
            worker_backend=InlineBackend(),
        )
        assert first.report.executed == 8
        # Client two: fresh process state, overlapping sweep plus one extra scheme.
        clear_caches()
        set_disk_memo(None)
        second = run_sweep(
            _spec(schemes=("RRIP", "GRASP", "LRU")),
            config=config,
            cache_dir=tmp_path,
            workers=2,
            worker_backend=InlineBackend(),
        )
        # Only the two new LRU replay tasks run; everything else dedups.
        assert second.report.executed == 2
        assert second.report.cached == 8
        assert_points_equal(serial, [p for p in second.points if p.scheme != "LRU"])
