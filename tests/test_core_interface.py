"""Tests for GRASP's software-hardware interface and classification logic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hints import HINT_DEFAULT, HINT_HIGH, HINT_LOW, HINT_MODERATE, ReuseHint
from repro.core import AddressBoundRegister, AddressBoundRegisterFile, GraspClassifier


class TestReuseHint:
    def test_hint_fits_in_two_bits(self):
        """The paper's interface carries a 2-bit reuse hint with each request."""
        for hint in ReuseHint:
            assert 0 <= int(hint) <= 3

    def test_distinct_values(self):
        assert len({int(h) for h in ReuseHint}) == 4


class TestAddressBoundRegister:
    def test_basic_bounds(self):
        abr = AddressBoundRegister(start=0x1000, end=0x2000)
        assert abr.size_bytes == 0x1000
        assert abr.contains(0x1000)
        assert abr.contains(0x1FFF)
        assert not abr.contains(0x2000)
        assert not abr.contains(0xFFF)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AddressBoundRegister(start=0x2000, end=0x1000)
        with pytest.raises(ValueError):
            AddressBoundRegister(start=-1, end=0x1000)
        with pytest.raises(ValueError):
            AddressBoundRegister(start=0x1000, end=0x1000)


class TestAddressBoundRegisterFile:
    def test_starts_unconfigured(self):
        abrs = AddressBoundRegisterFile()
        assert not abrs.is_configured
        assert len(abrs) == 0

    def test_configure(self):
        abrs = AddressBoundRegisterFile()
        abrs.configure(0x1000, 0x5000, label="ranks")
        assert abrs.is_configured
        assert len(abrs) == 1
        assert abrs.registers()[0].label == "ranks"

    def test_capacity_limit(self):
        abrs = AddressBoundRegisterFile(capacity=2)
        abrs.configure(0x0, 0x100)
        abrs.configure(0x200, 0x300)
        with pytest.raises(RuntimeError):
            abrs.configure(0x400, 0x500)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AddressBoundRegisterFile(capacity=0)

    def test_overlap_rejected(self):
        abrs = AddressBoundRegisterFile()
        abrs.configure(0x1000, 0x2000)
        with pytest.raises(ValueError):
            abrs.configure(0x1800, 0x2800)

    def test_configure_many_and_clear(self):
        abrs = AddressBoundRegisterFile()
        abrs.configure_many([(0x0, 0x100), (0x200, 0x300)])
        assert len(abrs) == 2
        abrs.clear()
        assert not abrs.is_configured

    def test_iteration(self):
        abrs = AddressBoundRegisterFile()
        abrs.configure(0x0, 0x100)
        assert [register.start for register in abrs] == [0]


class TestGraspClassifier:
    LLC_SIZE = 4096

    def make_classifier(self, bounds):
        abrs = AddressBoundRegisterFile()
        abrs.configure_many(bounds)
        return GraspClassifier(abrs, llc_size_bytes=self.LLC_SIZE)

    def test_unconfigured_is_default(self):
        classifier = GraspClassifier(AddressBoundRegisterFile(), llc_size_bytes=self.LLC_SIZE)
        assert not classifier.is_active
        assert classifier.classify(0x1234) == HINT_DEFAULT

    def test_invalid_llc_size(self):
        with pytest.raises(ValueError):
            GraspClassifier(AddressBoundRegisterFile(), llc_size_bytes=0)

    def test_three_regions_single_array(self):
        """Fig. 3(c): first LLC-sized chunk is High, next is Moderate, rest is Low."""
        start = 0x10000
        end = start + 4 * self.LLC_SIZE
        classifier = self.make_classifier([(start, end)])
        assert classifier.classify(start) == HINT_HIGH
        assert classifier.classify(start + self.LLC_SIZE - 1) == HINT_HIGH
        assert classifier.classify(start + self.LLC_SIZE) == HINT_MODERATE
        assert classifier.classify(start + 2 * self.LLC_SIZE - 1) == HINT_MODERATE
        assert classifier.classify(start + 2 * self.LLC_SIZE) == HINT_LOW
        assert classifier.classify(end - 1) == HINT_LOW

    def test_accesses_outside_property_array_are_low_reuse(self):
        start = 0x10000
        classifier = self.make_classifier([(start, start + 8 * self.LLC_SIZE)])
        assert classifier.classify(0x0) == HINT_LOW
        assert classifier.classify(start - 1) == HINT_LOW
        assert classifier.classify(start + 100 * self.LLC_SIZE) == HINT_LOW

    def test_small_array_has_no_moderate_region(self):
        """An array smaller than the LLC is entirely High-Reuse."""
        start = 0x0
        classifier = self.make_classifier([(start, start + self.LLC_SIZE // 2)])
        assert classifier.classify(start) == HINT_HIGH
        assert classifier.classify(start + self.LLC_SIZE // 2 - 1) == HINT_HIGH
        assert classifier.classify(start + self.LLC_SIZE // 2) == HINT_LOW
        assert classifier.high_reuse_bytes() == self.LLC_SIZE // 2

    def test_llc_capacity_split_across_arrays(self):
        """With two Property Arrays each gets an LLC/2-sized High Reuse Region."""
        a_start, b_start = 0x0, 0x100000
        classifier = self.make_classifier(
            [(a_start, a_start + 4 * self.LLC_SIZE), (b_start, b_start + 4 * self.LLC_SIZE)]
        )
        share = self.LLC_SIZE // 2
        assert classifier.classify(a_start + share - 1) == HINT_HIGH
        assert classifier.classify(a_start + share) == HINT_MODERATE
        assert classifier.classify(b_start + share - 1) == HINT_HIGH
        assert classifier.classify(b_start + share) == HINT_MODERATE
        assert classifier.high_reuse_bytes() == self.LLC_SIZE

    def test_classify_array_matches_scalar(self):
        start = 0x8000
        classifier = self.make_classifier([(start, start + 4 * self.LLC_SIZE)])
        addresses = np.array(
            [0x0, start, start + self.LLC_SIZE, start + 3 * self.LLC_SIZE, start + 10 * self.LLC_SIZE]
        )
        vectorised = classifier.classify_array(addresses)
        scalar = np.array([classifier.classify(int(a)) for a in addresses])
        assert np.array_equal(vectorised, scalar)

    def test_classify_array_default_when_unconfigured(self):
        classifier = GraspClassifier(AddressBoundRegisterFile(), llc_size_bytes=self.LLC_SIZE)
        hints = classifier.classify_array(np.arange(10) * 64)
        assert np.all(hints == HINT_DEFAULT)

    @given(
        array_size_multiplier=st.integers(min_value=1, max_value=16),
        offset=st.integers(min_value=0, max_value=1 << 30),
        probe=st.integers(min_value=0, max_value=1 << 31),
    )
    @settings(max_examples=60, deadline=None)
    def test_classification_is_total_and_consistent(self, array_size_multiplier, offset, probe):
        """Every address gets exactly one hint, and addresses inside the first
        LLC-sized region are always High-Reuse."""
        start = offset
        end = offset + array_size_multiplier * self.LLC_SIZE
        classifier = self.make_classifier([(start, end)])
        hint = classifier.classify(probe)
        assert hint in (HINT_HIGH, HINT_MODERATE, HINT_LOW)
        if start <= probe < min(end, start + self.LLC_SIZE):
            assert hint == HINT_HIGH
