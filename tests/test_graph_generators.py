"""Tests for synthetic graph generators and the dataset registry."""

import numpy as np
import pytest

from repro.graph import list_datasets, skew_report
from repro.graph.datasets import (
    ADVERSARIAL_DATASETS,
    ALL_DATASETS,
    HIGH_SKEW_DATASETS,
    _get_dataset,
    dataset_spec,
)
from repro.graph.generators import (
    _chung_lu_graph,
    _low_skew_graph,
    _planted_community_graph,
    _rmat_graph,
    _uniform_random_graph,
)


class TestChungLu:
    def test_basic_shape(self):
        graph = _chung_lu_graph(500, 8.0, seed=1)
        assert graph.num_vertices == 500
        assert graph.num_edges > 0

    def test_deterministic_for_same_seed(self):
        a = _chung_lu_graph(300, 6.0, seed=7)
        b = _chung_lu_graph(300, 6.0, seed=7)
        assert a.out_index.tolist() == b.out_index.tolist()
        assert a.out_targets.tolist() == b.out_targets.tolist()

    def test_different_seeds_differ(self):
        a = _chung_lu_graph(300, 6.0, seed=1)
        b = _chung_lu_graph(300, 6.0, seed=2)
        assert a.out_targets.tolist() != b.out_targets.tolist()

    def test_no_self_loops(self):
        graph = _chung_lu_graph(300, 6.0, seed=3)
        sources, targets = graph.edge_arrays()
        assert not np.any(sources == targets)

    def test_skew_increases_as_exponent_decreases(self):
        steep = _chung_lu_graph(2000, 10.0, exponent=1.9, seed=5, deduplicate=False)
        flat = _chung_lu_graph(2000, 10.0, exponent=3.0, seed=5, deduplicate=False)
        assert (
            skew_report(steep).out_edge_coverage_pct
            > skew_report(flat).out_edge_coverage_pct
        )

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ValueError):
            _chung_lu_graph(100, 5.0, exponent=1.0)

    def test_invalid_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            _chung_lu_graph(0, 5.0)


class TestRmat:
    def test_vertex_count_is_power_of_two(self):
        graph = _rmat_graph(10, edge_factor=8.0, seed=1)
        assert graph.num_vertices == 1024

    def test_rmat_is_skewed(self):
        graph = _rmat_graph(12, edge_factor=16.0, seed=1)
        report = skew_report(graph)
        assert report.out_edge_coverage_pct > 70.0

    def test_uniform_rmat_parameters_reduce_skew(self):
        skewed = _rmat_graph(11, edge_factor=16.0, seed=2)
        uniform = _rmat_graph(11, edge_factor=16.0, a=0.25, b=0.25, c=0.25, seed=2)
        assert (
            skew_report(skewed).out_edge_coverage_pct
            > skew_report(uniform).out_edge_coverage_pct
        )

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            _rmat_graph(8, a=0.6, b=0.3, c=0.2)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            _rmat_graph(0)


class TestUniformAndLowSkew:
    def test_uniform_graph_has_no_skew(self):
        graph = _uniform_random_graph(4000, 12.0, seed=1)
        report = skew_report(graph)
        # Roughly half the vertices sit above the mean degree in a binomial
        # degree distribution, and they cover nowhere near the paper's 80%+.
        assert report.out_hot_vertex_pct > 35.0
        assert report.out_edge_coverage_pct < 72.0

    def test_low_skew_between_uniform_and_natural(self):
        low = skew_report(_low_skew_graph(4000, 16.0, seed=1))
        natural = skew_report(
            _chung_lu_graph(4000, 16.0, exponent=1.9, seed=1, deduplicate=False)
        )
        uniform = skew_report(_uniform_random_graph(4000, 16.0, seed=1))
        assert natural.out_edge_coverage_pct > low.out_edge_coverage_pct
        assert low.out_hot_vertex_pct < uniform.out_hot_vertex_pct

    def test_planted_community_graph_shape(self):
        graph = _planted_community_graph(8, 100, seed=1)
        assert graph.num_vertices == 800
        assert graph.num_edges > 0


class TestDatasetRegistry:
    def test_all_datasets_listed_in_paper_order(self):
        assert tuple(list_datasets()) == ALL_DATASETS

    def test_skew_filter(self):
        assert tuple(list_datasets("high")) == HIGH_SKEW_DATASETS
        assert tuple(list_datasets("low")) == ("fr",)
        assert tuple(list_datasets("none")) == ("uni",)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            dataset_spec("nope")
        with pytest.raises(KeyError):
            _get_dataset("nope")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            _get_dataset("lj", scale=0)

    def test_scale_changes_vertex_count(self):
        small = _get_dataset("lj", scale=0.25)
        full = _get_dataset("lj", scale=1.0)
        assert small.num_vertices < full.num_vertices

    def test_datasets_are_deterministic(self):
        a = _get_dataset("pl", scale=0.2, seed=9)
        b = _get_dataset("pl", scale=0.2, seed=9)
        assert a.out_targets.tolist() == b.out_targets.tolist()

    def test_weighted_dataset(self):
        graph = _get_dataset("lj", scale=0.2, weighted=True)
        assert graph.is_weighted

    @pytest.mark.parametrize("name", HIGH_SKEW_DATASETS)
    def test_high_skew_datasets_match_table1_regime(self, name):
        """Table I: hot vertices are a small minority but cover most edges."""
        report = skew_report(_get_dataset(name, scale=0.5))
        assert report.out_hot_vertex_pct < 30.0
        assert report.out_edge_coverage_pct > 72.0
        assert report.in_edge_coverage_pct > 72.0

    @pytest.mark.parametrize("name", ADVERSARIAL_DATASETS)
    def test_adversarial_datasets_lack_skew(self, name):
        report = skew_report(_get_dataset(name, scale=0.5))
        assert report.out_edge_coverage_pct < 72.0

    def test_relative_sizes_follow_table5(self):
        sizes = {name: dataset_spec(name).base_vertices for name in HIGH_SKEW_DATASETS}
        assert sizes["lj"] < sizes["pl"] < sizes["tw"] <= sizes["kr"] < sizes["sd"]
