"""Equivalence tests for the vectorized simulation fast path.

Property-style: randomized block streams over randomized cache geometries
must produce byte-identical outcomes — per-access hit masks and full
hit/miss/eviction statistics — on the scalar and vector backends, for both
the L1/L2 filter and the LLC LRU replay.
"""

import numpy as np
import pytest

from repro.cache import CacheConfig, SetAssociativeCache
from repro.cache.config import HierarchyConfig
from repro.cache.policies import LRUPolicy
from repro.cache.stats import CacheStats
from repro.experiments import ExperimentConfig, build_workload, clear_caches
from repro.experiments.runner import (
    _scalar_llc_replay,
    filter_trace,
    llc_trace_for,
    roi_trace,
    simulate_llc_policy,
)
from repro.fastsim import (
    BACKENDS,
    SCALAR,
    VECTOR,
    VERIFY,
    FastSimMismatchError,
    kernels,
    default_backend,
    lru_replay,
    numpy_lru_replay,
    prior_leq_counts,
    resolve_backend,
    run_filter,
    scalar_filter,
    set_default_backend,
    supports_vector_replay,
    vector_filter,
    vector_lru_replay,
)
from repro.fastsim.filter import assert_stats_equal
from repro.trace import Trace

GEOMETRIES = [(1, 1), (1, 4), (4, 1), (4, 4), (8, 2), (2, 8), (16, 16)]


def _reference_lru(blocks, num_sets, ways):
    """Independent scalar reference built directly on SetAssociativeCache."""
    config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways, name="ref")
    cache = SetAssociativeCache(config, LRUPolicy())
    hits = np.array([cache.access_block(int(b)) for b in blocks], dtype=bool)
    return hits, cache.stats


def _random_blocks(rng, style, n, footprint):
    if style == "reuse-heavy":
        return rng.integers(0, max(1, footprint // 2), size=n)
    if style == "thrashing":
        return rng.integers(0, 4 * footprint + 1, size=n)
    if style == "skewed":
        return (rng.zipf(1.5, size=n) % (8 * footprint)).astype(np.int64)
    if style == "streaming":
        return np.arange(n, dtype=np.int64) % (2 * footprint + 1)
    raise AssertionError(style)


class TestPriorLeqCounts:
    def test_matches_quadratic_reference(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            n = int(rng.integers(0, 120))
            values = rng.integers(-1, 40, size=n)
            expected = np.array(
                [int(np.sum(values[:i] <= values[i])) for i in range(n)], dtype=np.int64
            )
            assert np.array_equal(prior_leq_counts(values), expected)

    def test_trivial_lengths(self):
        assert prior_leq_counts(np.array([], dtype=np.int64)).tolist() == []
        assert prior_leq_counts(np.array([5])).tolist() == [0]


class TestLRUReplayEquivalence:
    # ``lru_replay`` dispatches to the compiled kernel when one is available;
    # ``numpy_lru_replay`` is the portable stack-distance engine.  Both must
    # reproduce the scalar simulator exactly.
    ENGINES = (lru_replay, numpy_lru_replay)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("num_sets,ways", GEOMETRIES)
    @pytest.mark.parametrize("style", ["reuse-heavy", "thrashing", "skewed", "streaming"])
    def test_random_streams(self, engine, num_sets, ways, style):
        rng = np.random.default_rng(hash((num_sets, ways, style)) % (2**32))
        for n in (0, 1, 2, ways, 257):
            blocks = _random_blocks(rng, style, n, num_sets * ways)
            expected_hits, expected_stats = _reference_lru(blocks, num_sets, ways)
            replay = engine(blocks, num_sets, ways)
            assert np.array_equal(replay.hits, expected_hits)
            assert replay.hit_count == expected_stats.hits
            assert replay.miss_count == expected_stats.misses
            assert replay.evictions == expected_stats.evictions

    @pytest.mark.parametrize("engine", ENGINES)
    def test_handcrafted_eviction_pattern(self, engine):
        # One 2-way set: A B C B A -> C evicts A, final A evicts C.
        replay = engine(np.array([0, 1, 2, 1, 0]) * 1, num_sets=1, ways=2)
        assert replay.hits.tolist() == [False, False, False, True, False]
        assert replay.miss_count == 4
        assert replay.evictions == 2

    def test_native_and_numpy_engines_agree(self):
        if not kernels.available():
            pytest.skip("no C compiler available for the native kernel")
        rng = np.random.default_rng(99)
        for _ in range(10):
            blocks = rng.integers(0, 512, size=int(rng.integers(1, 2000)))
            native = lru_replay(blocks, num_sets=8, ways=4)
            portable = numpy_lru_replay(blocks, num_sets=8, ways=4)
            assert np.array_equal(native.hits, portable.hits)
            assert np.array_equal(native.misses_per_set, portable.misses_per_set)


class TestFilterEquivalence:
    def _random_trace(self, rng, n):
        addresses = rng.integers(0, 64 * 1024, size=n).astype(np.int64)
        pcs = rng.integers(0, 4, size=n).astype(np.int16)
        regions = rng.integers(0, 4, size=n).astype(np.int8)
        return Trace(addresses=addresses, pcs=pcs, regions=regions)

    @pytest.mark.parametrize("seed", range(5))
    def test_synthetic_traces(self, seed):
        rng = np.random.default_rng(seed)
        trace = self._random_trace(rng, int(rng.integers(0, 3000)))
        hierarchy = HierarchyConfig()
        scalar = scalar_filter(trace, hierarchy)
        vector = vector_filter(trace, hierarchy)
        assert np.array_equal(scalar.keep, vector.keep)
        for left, right in ((scalar.l1_stats, vector.l1_stats), (scalar.l2_stats, vector.l2_stats)):
            assert_stats_equal(left, right, "test")

    def test_verify_backend_passes_on_agreement(self):
        rng = np.random.default_rng(11)
        trace = self._random_trace(rng, 500)
        result = run_filter(trace, HierarchyConfig(), backend=VERIFY)
        assert result.keep.dtype == bool

    def test_real_workload_llc_trace_identical(self):
        clear_caches()
        config = ExperimentConfig.smoke()
        workload = build_workload("PR", "lj", config=config)
        trace = roi_trace(workload)
        scalar = filter_trace(trace, config.hierarchy, workload.layout, backend=SCALAR)
        vector = filter_trace(trace, config.hierarchy, workload.layout, backend=VECTOR)
        assert np.array_equal(scalar.byte_addresses, vector.byte_addresses)
        assert np.array_equal(scalar.block_addresses, vector.block_addresses)
        assert np.array_equal(scalar.pcs, vector.pcs)
        assert np.array_equal(scalar.regions, vector.regions)
        assert np.array_equal(scalar.hints, vector.hints)
        assert scalar.upstream_l1_hits == vector.upstream_l1_hits
        assert scalar.upstream_l2_hits == vector.upstream_l2_hits
        assert scalar.total_references == vector.total_references


class TestLLCReplayEquivalence:
    def test_real_workload_lru_stats_identical(self):
        clear_caches()
        config = ExperimentConfig.smoke()
        workload = build_workload("PR", "lj", config=config)
        llc_trace = llc_trace_for(workload, config)
        llc = config.hierarchy.llc
        scalar = simulate_llc_policy(llc_trace, LRUPolicy(), llc, backend=SCALAR)
        vector = simulate_llc_policy(llc_trace, LRUPolicy(), llc, backend=VECTOR)
        verify = simulate_llc_policy(llc_trace, LRUPolicy(), llc, backend=VERIFY)
        for other in (vector, verify):
            assert_stats_equal(scalar, other, "test")
        # The region breakdown (Fig. 2) must survive vectorization too.
        assert scalar.region_accesses == vector.region_accesses
        assert scalar.region_misses == vector.region_misses

    def test_vector_replay_dispatch_predicate(self):
        from repro.experiments.schemes import scheme_policy

        assert supports_vector_replay(LRUPolicy())
        # Every scheme of the paper's comparison matrix has a vectorized
        # engine (LRU, the RRIP family, SHiP-MEM, Hawkeye, Leeway, PIN-X)...
        for scheme in ("RRIP", "GRASP", "Hawkeye", "Leeway", "SHiP-MEM", "PIN-50"):
            assert supports_vector_replay(scheme_policy(scheme))
        # ...while the GRASP ablation subclasses override hooks the array
        # specs cannot express and stay on the scalar simulator.
        for scheme in ("RRIP+Hints", "GRASP (Insertion-Only)"):
            assert not supports_vector_replay(scheme_policy(scheme))

    def test_lru_subclass_falls_back_to_scalar(self):
        class NotQuiteLRU(LRUPolicy):
            pass

        assert not supports_vector_replay(NotQuiteLRU())

    def test_vector_replay_region_breakdown(self):
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 64, size=800)
        regions = rng.integers(0, 4, size=800).astype(np.int8)
        llc = CacheConfig(size_bytes=16 * 64 * 4, ways=4, name="LLC")
        stats = vector_lru_replay(blocks, llc, regions=regions)
        reference = CacheStats(name="LLC")
        cache = SetAssociativeCache(llc, LRUPolicy())
        for block, region in zip(blocks.tolist(), regions.tolist()):
            cache.access_block(block, 0, 0, region)
        assert_stats_equal(cache.stats, stats, "test")
        assert cache.stats.region_accesses == stats.region_accesses
        assert cache.stats.region_misses == stats.region_misses
        assert reference.accesses == 0  # the fresh object stayed untouched

    def test_mismatch_guard_raises(self):
        good = CacheStats.from_counts("LLC", hits=5, misses=3, evictions=1)
        bad = CacheStats.from_counts("LLC", hits=4, misses=4, evictions=1)
        with pytest.raises(FastSimMismatchError):
            assert_stats_equal(good, bad, "test")


class TestDispatch:
    @pytest.fixture(autouse=True)
    def _restore_default(self):
        yield
        set_default_backend(None)

    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        set_default_backend(None)
        assert default_backend() == VECTOR

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "scalar")
        set_default_backend(None)
        assert default_backend() == SCALAR
        assert resolve_backend(None) == SCALAR
        assert resolve_backend(VECTOR) == VECTOR

    def test_set_default_backend(self):
        set_default_backend(VERIFY)
        assert default_backend() == VERIFY

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("quantum")
        with pytest.raises(ValueError):
            set_default_backend("quantum")
        with pytest.raises(ValueError):
            ExperimentConfig(backend="quantum")
        assert ExperimentConfig(backend=SCALAR).backend == SCALAR
        assert sorted(BACKENDS) == ["scalar", "vector", "verify"]

    def test_scalar_llc_replay_matches_public_path(self):
        clear_caches()
        config = ExperimentConfig.smoke().with_overrides(backend=SCALAR)
        workload = build_workload("PR", "lj", config=config)
        llc_trace = llc_trace_for(workload, config)
        direct = _scalar_llc_replay(llc_trace, LRUPolicy(), config.hierarchy.llc, True)
        public = simulate_llc_policy(llc_trace, LRUPolicy(), config.hierarchy.llc, backend=SCALAR)
        assert_stats_equal(direct, public, "test")
