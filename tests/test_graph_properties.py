"""Tests for degree/skew analysis (Table I machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import degree_statistics, edge_coverage, hot_vertex_mask, skew_report
from repro.graph.builder import _from_edge_list
from repro.graph.properties import (
    DegreeStatistics,
    gini_coefficient,
    hot_vertex_fraction,
)


class TestHotVertexClassification:
    def test_threshold_defaults_to_mean(self):
        degrees = np.array([1, 1, 1, 1, 16])
        mask = hot_vertex_mask(degrees)
        assert mask.tolist() == [False, False, False, False, True]

    def test_explicit_threshold(self):
        degrees = np.array([1, 2, 3, 4])
        assert hot_vertex_mask(degrees, threshold=3).tolist() == [False, False, True, True]

    def test_all_equal_degrees_all_hot(self):
        """With no skew, every vertex is at the mean and thus 'hot'."""
        degrees = np.array([5, 5, 5, 5])
        assert hot_vertex_fraction(degrees) == 1.0

    def test_edge_coverage_extremes(self):
        assert edge_coverage(np.array([])) == 0.0
        assert edge_coverage(np.array([0, 0, 0])) == 0.0
        assert edge_coverage(np.array([10, 0, 0])) == 1.0

    def test_empty_degrees(self):
        assert hot_vertex_fraction(np.array([])) == 0.0


class TestSkewReport:
    def test_star_graph_report(self):
        """A star graph: the hub covers all in-edges."""
        edges = [(i, 0) for i in range(1, 11)]
        graph = _from_edge_list(edges, num_vertices=11, name="star")
        report = skew_report(graph)
        assert report.num_vertices == 11
        assert report.num_edges == 10
        # Only the hub has in-degree >= average.
        assert report.in_hot_vertex_pct == pytest.approx(100.0 / 11, abs=0.1)
        assert report.in_edge_coverage_pct == 100.0
        # Every leaf has out-degree 1 >= average (10/11), so all leaves are hot.
        assert report.out_edge_coverage_pct == 100.0

    def test_as_dict_keys(self):
        graph = _from_edge_list([(0, 1), (1, 0)], num_vertices=2)
        d = skew_report(graph).as_dict()
        assert {"dataset", "vertices", "edges", "avg_degree"} <= set(d)

    def test_degree_statistics(self):
        edges = [(i, 0) for i in range(1, 11)]
        graph = _from_edge_list(edges, num_vertices=11)
        stats = degree_statistics(graph)
        assert stats["in"].maximum == 10
        assert stats["out"].maximum == 1
        assert stats["in"].mean == pytest.approx(10 / 11)

    def test_degree_statistics_empty(self):
        stats = DegreeStatistics.from_degrees(np.array([]))
        assert stats.maximum == 0 and stats.mean == 0.0


class TestGini:
    def test_uniform_distribution_is_zero(self):
        assert gini_coefficient(np.full(100, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_single_owner_approaches_one(self):
        degrees = np.zeros(1000)
        degrees[0] = 1000
        assert gini_coefficient(degrees) > 0.99

    def test_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(10)) == 0.0


class TestProperties:
    @given(
        degrees=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200)
    )
    @settings(max_examples=60, deadline=None)
    def test_coverage_and_fraction_bounds(self, degrees):
        degrees = np.array(degrees)
        assert 0.0 <= hot_vertex_fraction(degrees) <= 1.0
        assert 0.0 <= edge_coverage(degrees) <= 1.0
        assert 0.0 <= gini_coefficient(degrees) <= 1.0

    @given(
        degrees=st.lists(st.integers(min_value=1, max_value=1000), min_size=2, max_size=200)
    )
    @settings(max_examples=60, deadline=None)
    def test_hot_coverage_at_least_hot_fraction(self, degrees):
        """Hot vertices have above-average degree, so their edge share must be
        at least their population share."""
        degrees = np.array(degrees)
        assert edge_coverage(degrees) >= hot_vertex_fraction(degrees) - 1e-12
