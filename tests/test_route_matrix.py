"""Route-matrix equivalence: every ExecutionPlan route vs the reference.

Plans never change results — each test first pins the route the planner
chooses for a scenario, then asserts the executed statistics are
bit-identical to the scalar reference simulator for that same scenario.
Together the scenarios cover every route name an :class:`ExecutionPlan`
can carry (modulo kernel availability, which only shifts the tier within
the same route).
"""

import pytest

from repro.cache.partition import WayPartition
from repro.experiments import ExperimentConfig, clear_caches, compare_policies
from repro.experiments.memo import DiskMemo
from repro.experiments.runner import (
    CorunSpec,
    build_workload,
    compare_policies_streaming,
    plan_corun_task,
    plan_scheme_task,
    set_disk_memo,
    simulate_corun,
    simulate_scheme,
    simulate_scheme_streaming,
)
from repro.fastsim import kernels
from repro.fastsim.plan import (
    ROUTE_CORUN_DELEGATE,
    ROUTE_CORUN_SCALAR,
    ROUTE_CORUN_VECTOR,
    ROUTE_FUSED,
    ROUTE_OPT_TWO_PASS,
    ROUTE_OPT_VECTOR,
    ROUTE_SCALAR,
    ROUTE_VECTOR,
)

VECTOR_CFG = ExperimentConfig.smoke()
SCALAR_CFG = VECTOR_CFG.with_overrides(backend="scalar")
STREAM_VECTOR_CFG = VECTOR_CFG.with_overrides(chunk_accesses=1 << 12)
STREAM_SCALAR_CFG = STREAM_VECTOR_CFG.with_overrides(backend="scalar")

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    set_disk_memo(None)
    yield
    set_disk_memo(None)
    clear_caches()


def _assert_stats_equal(vector, scalar):
    assert vector.hits == scalar.hits
    assert vector.misses == scalar.misses
    assert vector.evictions == scalar.evictions


def _roi_stats(scheme, config, shared_trace=False):
    workload = build_workload("PR", "lj", config=config)
    return simulate_scheme(workload, scheme, config, shared_trace=shared_trace)


def _stream_stats(scheme, config, shared_stream=False):
    workload = build_workload("PR", "lj", config=config)
    return simulate_scheme_streaming(
        workload, scheme, config, shared_stream=shared_stream
    )


class TestRoiRoutes:
    def test_fused_route_matches_reference(self):
        plan = plan_scheme_task("PR", "lj", VECTOR_CFG.reorder, "GRASP", VECTOR_CFG)
        expected = ROUTE_FUSED if kernels.has_capability("fused:rrip") else ROUTE_VECTOR
        assert plan.route == expected
        vector = _roi_stats("GRASP", VECTOR_CFG)
        clear_caches()
        _assert_stats_equal(vector, _roi_stats("GRASP", SCALAR_CFG))

    def test_staged_vector_route_matches_reference(self):
        """shared_trace forces the staged materialize-once vector route."""
        vector = _roi_stats("RRIP", VECTOR_CFG, shared_trace=True)
        clear_caches()
        _assert_stats_equal(vector, _roi_stats("RRIP", SCALAR_CFG, shared_trace=True))

    def test_scalar_route_for_ablation_subclass(self):
        plan = plan_scheme_task(
            "PR", "lj", VECTOR_CFG.reorder, "RRIP+Hints", VECTOR_CFG
        )
        assert plan.route == ROUTE_SCALAR
        vector_cfg_run = _roi_stats("RRIP+Hints", VECTOR_CFG)
        clear_caches()
        _assert_stats_equal(vector_cfg_run, _roi_stats("RRIP+Hints", SCALAR_CFG))

    def test_opt_vector_route_matches_reference(self):
        plan = plan_scheme_task("PR", "lj", VECTOR_CFG.reorder, "OPT", VECTOR_CFG)
        assert plan.route == ROUTE_OPT_VECTOR
        vector = _roi_stats("OPT", VECTOR_CFG)
        clear_caches()
        _assert_stats_equal(vector, _roi_stats("OPT", SCALAR_CFG))


class TestStreamingRoutes:
    def test_fused_streaming_matches_reference(self):
        plan = plan_scheme_task(
            "PR", "lj", STREAM_VECTOR_CFG.reorder, "GRASP", STREAM_VECTOR_CFG,
            streaming=True,
        )
        expected = ROUTE_FUSED if kernels.has_capability("fused:rrip") else ROUTE_VECTOR
        assert plan.route == expected
        vector = _stream_stats("GRASP", STREAM_VECTOR_CFG)
        clear_caches()
        _assert_stats_equal(vector, _stream_stats("GRASP", STREAM_SCALAR_CFG))

    def test_staged_streaming_replays_persisted_chunk_store(self, tmp_path):
        set_disk_memo(DiskMemo(tmp_path))
        vector = _stream_stats("RRIP", STREAM_VECTOR_CFG, shared_stream=True)
        plan = plan_scheme_task(
            "PR", "lj", STREAM_VECTOR_CFG.reorder, "RRIP", STREAM_VECTOR_CFG,
            streaming=True,
        )
        assert plan.route == ROUTE_VECTOR  # chunk store now on disk
        clear_caches()
        set_disk_memo(None)
        _assert_stats_equal(vector, _stream_stats("RRIP", STREAM_SCALAR_CFG))

    def test_opt_two_pass_matches_reference(self):
        plan = plan_scheme_task(
            "PR", "lj", STREAM_VECTOR_CFG.reorder, "OPT", STREAM_VECTOR_CFG,
            streaming=True,
        )
        assert plan.route == ROUTE_OPT_TWO_PASS
        vector = _stream_stats("OPT", STREAM_VECTOR_CFG)
        clear_caches()
        _assert_stats_equal(vector, _stream_stats("OPT", STREAM_SCALAR_CFG))


class TestMultiSchemeRoutes:
    SCHEMES = ("GRASP", "LRU")

    def test_compare_policies_matches_scalar_reference(self):
        """Covers the fused-multi route when the filter kernel is compiled,
        the staged materialize-once path otherwise — identical either way."""
        vector = compare_policies(("PR",), ("lj",), self.SCHEMES, config=VECTOR_CFG)
        clear_caches()
        scalar = compare_policies(("PR",), ("lj",), self.SCHEMES, config=SCALAR_CFG)
        assert len(vector) == len(scalar)
        for v, s in zip(vector, scalar):
            assert (v.app_name, v.dataset_name, v.scheme) == (s.app_name, s.dataset_name, s.scheme)
            _assert_stats_equal(v.stats, s.stats)

    def test_compare_policies_streaming_matches_scalar_reference(self):
        vector = compare_policies_streaming(
            ("PR",), ("lj",), self.SCHEMES, config=STREAM_VECTOR_CFG
        )
        clear_caches()
        scalar = compare_policies_streaming(
            ("PR",), ("lj",), self.SCHEMES, config=STREAM_SCALAR_CFG
        )
        for v, s in zip(vector, scalar):
            _assert_stats_equal(v.stats, s.stats)


class TestCorunRoutes:
    PAIR_SPEC = CorunSpec(pairs=(("PR", "lj"), ("PR", "pl")))

    def _corun_stats(self, spec, scheme, config):
        return simulate_corun(spec, scheme, config=config)

    def test_corun_vector_matches_reference(self):
        plan = plan_corun_task(self.PAIR_SPEC, "RRIP", VECTOR_CFG)
        assert plan.route == ROUTE_CORUN_VECTOR
        vector = self._corun_stats(self.PAIR_SPEC, "RRIP", STREAM_VECTOR_CFG)
        clear_caches()
        _assert_stats_equal(
            vector, self._corun_stats(self.PAIR_SPEC, "RRIP", STREAM_SCALAR_CFG)
        )

    def test_corun_partitioned_vector_matches_reference(self):
        spec = CorunSpec(
            pairs=self.PAIR_SPEC.pairs, partition=WayPartition.parse("8:8")
        )
        plan = plan_corun_task(spec, "GRASP", VECTOR_CFG)
        assert plan.route == ROUTE_CORUN_VECTOR
        vector = self._corun_stats(spec, "GRASP", STREAM_VECTOR_CFG)
        clear_caches()
        _assert_stats_equal(
            vector, self._corun_stats(spec, "GRASP", STREAM_SCALAR_CFG)
        )

    def test_corun_scalar_pin_fallback(self):
        plan = plan_corun_task(self.PAIR_SPEC, "PIN-75", VECTOR_CFG)
        assert plan.route == ROUTE_CORUN_SCALAR
        vector_cfg_run = self._corun_stats(self.PAIR_SPEC, "PIN-75", STREAM_VECTOR_CFG)
        clear_caches()
        _assert_stats_equal(
            vector_cfg_run,
            self._corun_stats(self.PAIR_SPEC, "PIN-75", STREAM_SCALAR_CFG),
        )

    def test_corun_delegate_matches_reference(self):
        spec = CorunSpec(pairs=(("PR", "lj"),))
        plan = plan_corun_task(spec, "RRIP", VECTOR_CFG)
        assert plan.route == ROUTE_CORUN_DELEGATE
        vector = self._corun_stats(spec, "RRIP", STREAM_VECTOR_CFG)
        clear_caches()
        _assert_stats_equal(
            vector, self._corun_stats(spec, "RRIP", STREAM_SCALAR_CFG)
        )
