"""Unit tests for cache configuration, the set-associative cache and the hierarchy."""

import pytest

from repro.cache import CacheConfig, CacheHierarchy, CacheStats, HierarchyConfig, SetAssociativeCache
from repro.cache.hierarchy import LEVEL_L1, LEVEL_L2, LEVEL_LLC, LEVEL_MEMORY
from repro.cache.policies import LRUPolicy


class TestCacheConfig:
    def test_basic_geometry(self):
        config = CacheConfig(size_bytes=64 * 1024, ways=16, block_bytes=64, name="LLC")
        assert config.num_sets == 64
        assert config.num_blocks == 1024
        assert config.block_offset_bits == 6

    def test_block_address_and_set_index(self):
        config = CacheConfig(size_bytes=8 * 1024, ways=8, block_bytes=64)
        address = 0x12345
        block = config.block_address(address)
        assert block == address >> 6
        assert 0 <= config.set_index(block) < config.num_sets

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, ways=4)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, ways=3, block_bytes=64)  # 5.33 sets
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, ways=4, block_bytes=48)  # non power of two

    def test_scaled(self):
        config = CacheConfig(size_bytes=64 * 1024, ways=16, block_bytes=64)
        half = config.scaled(0.5)
        assert half.size_bytes == 32 * 1024
        assert half.ways == 16
        with pytest.raises(ValueError):
            config.scaled(0)

    def test_hierarchy_ordering_enforced(self):
        with pytest.raises(ValueError):
            HierarchyConfig(
                l1=CacheConfig(size_bytes=16 * 1024, ways=8),
                l2=CacheConfig(size_bytes=8 * 1024, ways=8),
                llc=CacheConfig(size_bytes=64 * 1024, ways=16),
            )

    def test_hierarchy_llc_resize(self):
        hierarchy = HierarchyConfig()
        resized = hierarchy.with_llc_size(128 * 1024)
        assert resized.llc.size_bytes == 128 * 1024
        assert resized.l1 == hierarchy.l1


class TestCacheStats:
    def test_record_and_rates(self):
        stats = CacheStats(name="x")
        stats.record(True, region=1)
        stats.record(False, region=1)
        stats.record(False, region=2)
        assert stats.accesses == 3
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.miss_rate == pytest.approx(2 / 3)
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.region_accesses == {1: 2, 2: 1}
        assert stats.region_misses == {1: 1, 2: 1}

    def test_empty_rates(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0

    def test_merge(self):
        a = CacheStats(name="a")
        a.record(True, region=1)
        b = CacheStats(name="a")
        b.record(False, region=1)
        merged = a.merge(b)
        assert merged.accesses == 2
        assert merged.region_accesses == {1: 2}

    def test_as_dict(self):
        stats = CacheStats(name="LLC")
        stats.record(False)
        assert stats.as_dict()["misses"] == 1


class TestSetAssociativeCache:
    def make_cache(self, size=1024, ways=2):
        return SetAssociativeCache(CacheConfig(size_bytes=size, ways=ways), LRUPolicy())

    def test_miss_then_hit(self):
        cache = self.make_cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_block_different_offsets_hit(self):
        cache = self.make_cache()
        cache.access(0x100)
        assert cache.access(0x13F) is True  # same 64-byte block

    def test_adjacent_block_misses(self):
        cache = self.make_cache()
        cache.access(0x100)
        assert cache.access(0x140) is False

    def test_contains_and_resident_blocks(self):
        cache = self.make_cache()
        cache.access(0x100)
        assert cache.contains(0x100)
        assert not cache.contains(0x2000)
        assert len(cache.resident_blocks()) == 1

    def test_eviction_in_direct_conflict(self):
        # 1 KiB, 2-way, 64 B blocks -> 8 sets. Three blocks mapping to set 0.
        cache = self.make_cache()
        conflicting = [0x0, 8 * 64, 16 * 64, 24 * 64]
        for address in conflicting[:3]:
            cache.access(address)
        assert cache.stats.evictions == 1
        # LRU: 0x0 was least recently used and must be gone.
        assert not cache.contains(conflicting[0])
        assert cache.contains(conflicting[1])
        assert cache.contains(conflicting[2])

    def test_lru_order_respects_hits(self):
        cache = self.make_cache()
        a, b, c = 0x0, 8 * 64, 16 * 64
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes MRU
        cache.access(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)

    def test_reset(self):
        cache = self.make_cache()
        cache.access(0x100)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.contains(0x100)

    def test_working_set_within_capacity_never_evicts(self):
        cache = self.make_cache(size=4096, ways=4)
        addresses = [i * 64 for i in range(64)]  # exactly the cache capacity
        for address in addresses:
            cache.access(address)
        for address in addresses:
            assert cache.access(address) is True
        assert cache.stats.evictions == 0


class TestCacheHierarchy:
    def make_hierarchy(self):
        config = HierarchyConfig(
            l1=CacheConfig(size_bytes=512, ways=2, name="L1D"),
            l2=CacheConfig(size_bytes=1024, ways=4, name="L2"),
            llc=CacheConfig(size_bytes=4096, ways=8, name="LLC"),
        )
        return CacheHierarchy(config, LRUPolicy())

    def test_first_access_misses_everywhere(self):
        hierarchy = self.make_hierarchy()
        assert hierarchy.access(0x1000) == LEVEL_MEMORY

    def test_second_access_hits_l1(self):
        hierarchy = self.make_hierarchy()
        hierarchy.access(0x1000)
        assert hierarchy.access(0x1000) == LEVEL_L1

    def test_l1_victim_hits_in_l2(self):
        hierarchy = self.make_hierarchy()
        # Fill L1 set with conflicting blocks (L1 has 4 sets of 2 ways).
        base = 0x0
        conflict_stride = 4 * 64
        addresses = [base + i * conflict_stride for i in range(3)]
        for address in addresses:
            hierarchy.access(address)
        # The first address was evicted from L1 but still lives in L2.
        assert hierarchy.access(addresses[0]) == LEVEL_L2

    def test_llc_hit_after_l2_eviction(self):
        hierarchy = self.make_hierarchy()
        # Touch enough conflicting blocks to evict from both L1 and L2 but not LLC.
        stride = 4 * 64
        addresses = [i * stride for i in range(8)]
        for address in addresses:
            hierarchy.access(address)
        assert hierarchy.access(addresses[0]) in (LEVEL_L2, LEVEL_LLC)

    def test_filters_only_reports_llc_bound_accesses(self):
        hierarchy = self.make_hierarchy()
        assert hierarchy.filters_only(0x2000) is True
        assert hierarchy.filters_only(0x2000) is False  # now it hits in L1

    def test_reset(self):
        hierarchy = self.make_hierarchy()
        hierarchy.access(0x1000)
        hierarchy.reset()
        assert hierarchy.access(0x1000) == LEVEL_MEMORY
        assert hierarchy.llc_stats.accesses == 1
