"""Tests for memory-layout modelling and trace generation."""

import numpy as np
import pytest

from repro.analytics import get_application
from repro.analytics.base import PULL, PUSH, AccessProfile, PropertySpec
from repro.graph.generators import _chung_lu_graph
from repro.graph.builder import _from_edge_list
from repro.trace import (
    MemoryLayout,
    REGION_EDGE,
    REGION_PROPERTY,
    REGION_VERTEX,
    Trace,
    generate_iteration_trace,
)
from repro.trace.layout import PAGE_BYTES, PC_PROPERTY_GATHER


@pytest.fixture
def small_graph():
    return _from_edge_list(
        [(0, 1), (0, 2), (1, 2), (2, 0), (3, 2), (3, 1)], num_vertices=4, name="tiny"
    )


def profile(num_edge_arrays=1, num_vertex_arrays=1):
    return AccessProfile(
        edge_properties=tuple(PropertySpec(f"edge{i}", 8) for i in range(num_edge_arrays)),
        vertex_properties=tuple(PropertySpec(f"vertex{i}", 8) for i in range(num_vertex_arrays)),
    )


class TestMemoryLayout:
    def test_arrays_are_page_aligned_and_disjoint(self, small_graph):
        layout = MemoryLayout(small_graph, profile(2, 1))
        extents = sorted(layout.describe().values())
        for (start, end), (next_start, _) in zip(extents, extents[1:]):
            assert end <= next_start
        for start, _ in extents:
            assert start % PAGE_BYTES == 0

    def test_property_bounds_cover_edge_arrays_only(self, small_graph):
        layout = MemoryLayout(small_graph, profile(2, 1))
        bounds = layout.property_array_bounds()
        assert len(bounds) == 2
        for (start, end), extent in zip(bounds, layout.edge_property_arrays):
            assert (start, end) == (extent.base, extent.end)

    def test_address_helpers(self, small_graph):
        layout = MemoryLayout(small_graph, profile())
        vertices = np.array([0, 3])
        addresses = layout.edge_property_addresses(0, vertices)
        base = layout.edge_property_arrays[0].base
        assert addresses.tolist() == [base, base + 3 * 8]
        assert layout.vertex_index_addresses(np.array([1]))[0] == layout.vertex_array.base + 8

    def test_region_of(self, small_graph):
        layout = MemoryLayout(small_graph, profile())
        probes = np.array(
            [
                layout.vertex_array.base,
                layout.edge_array.base,
                layout.edge_property_arrays[0].base,
                layout.end_address + 100,
            ]
        )
        assert layout.region_of(probes).tolist() == [REGION_VERTEX, REGION_EDGE, REGION_PROPERTY, 3]

    def test_footprint_scales_with_graph(self):
        small = MemoryLayout(_chung_lu_graph(200, 4.0, seed=1), profile())
        large = MemoryLayout(_chung_lu_graph(2000, 4.0, seed=1), profile())
        assert large.total_footprint_bytes > small.total_footprint_bytes


class TestTraceGeneration:
    def test_pull_trace_reference_counts(self, small_graph):
        """Pull trace = per vertex: 1 vertex read + per in-edge (1 edge read +
        k property reads) + w property writes."""
        layout = MemoryLayout(small_graph, profile(1, 1))
        trace = generate_iteration_trace(small_graph, layout, PULL)
        n, m = small_graph.num_vertices, small_graph.num_edges
        assert len(trace) == n * (1 + 1) + m * (1 + 1)
        assert int((trace.regions == REGION_VERTEX).sum()) == n
        assert int((trace.regions == REGION_EDGE).sum()) == m
        assert int((trace.regions == REGION_PROPERTY).sum()) == m + n

    def test_pull_trace_property_targets_are_in_neighbours(self, small_graph):
        layout = MemoryLayout(small_graph, profile(1, 0))
        trace = generate_iteration_trace(small_graph, layout, PULL)
        gathers = trace.addresses[trace.pcs == PC_PROPERTY_GATHER]
        base = layout.edge_property_arrays[0].base
        touched = sorted(set(((gathers - base) // 8).tolist()))
        expected = sorted(set(small_graph.in_sources.tolist()))
        assert touched == expected

    def test_push_trace_uses_frontier_only(self, small_graph):
        layout = MemoryLayout(small_graph, profile(1, 0))
        frontier = np.array([3])
        trace = generate_iteration_trace(small_graph, layout, PUSH, frontier=frontier)
        # Vertex 3 has two out-edges: 1 vertex read + 2 * (edge + property).
        assert len(trace) == 1 + 2 * 2
        gathers = trace.addresses[trace.pcs == PC_PROPERTY_GATHER]
        base = layout.edge_property_arrays[0].base
        touched = sorted(((gathers - base) // 8).tolist())
        assert touched == sorted(small_graph.out_neighbors(3).tolist())

    def test_multiple_property_arrays_increase_trace_length(self, small_graph):
        single = generate_iteration_trace(small_graph, MemoryLayout(small_graph, profile(1, 0)), PULL)
        double = generate_iteration_trace(small_graph, MemoryLayout(small_graph, profile(2, 0)), PULL)
        assert len(double) == len(single) + small_graph.num_edges

    def test_merged_profile_shrinks_trace(self, small_graph):
        app = get_application("PR", merged_properties=False)
        unmerged_layout = MemoryLayout(small_graph, app.access_profile())
        merged_layout = MemoryLayout(small_graph, app.access_profile().merge())
        unmerged = generate_iteration_trace(small_graph, unmerged_layout, PULL)
        merged = generate_iteration_trace(small_graph, merged_layout, PULL)
        assert len(merged) < len(unmerged)

    def test_empty_frontier_yields_empty_trace(self, small_graph):
        layout = MemoryLayout(small_graph, profile())
        trace = generate_iteration_trace(
            small_graph, layout, PUSH, frontier=np.empty(0, dtype=np.int64)
        )
        assert len(trace) == 0

    def test_invalid_direction_rejected(self, small_graph):
        layout = MemoryLayout(small_graph, profile())
        with pytest.raises(ValueError):
            generate_iteration_trace(small_graph, layout, "diagonal")

    def test_trace_property_fraction(self, small_graph):
        layout = MemoryLayout(small_graph, profile(1, 1))
        trace = generate_iteration_trace(small_graph, layout, PULL)
        expected = (small_graph.num_edges + small_graph.num_vertices) / len(trace)
        assert trace.property_fraction() == pytest.approx(expected)

    def test_trace_concatenate(self, small_graph):
        layout = MemoryLayout(small_graph, profile())
        trace = generate_iteration_trace(small_graph, layout, PULL)
        doubled = trace.concatenate(trace)
        assert len(doubled) == 2 * len(trace)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int16), np.zeros(3, dtype=np.int8))

    def test_hot_vertices_dominate_property_accesses_on_skewed_graph(self):
        """The motivation claim: on a power-law graph most Property-Array
        reads target hot vertices."""
        graph = _chung_lu_graph(1000, 10.0, exponent=1.9, seed=4, deduplicate=False)
        layout = MemoryLayout(graph, profile(1, 0))
        trace = generate_iteration_trace(graph, layout, PULL)
        gathers = trace.addresses[trace.pcs == PC_PROPERTY_GATHER]
        base = layout.edge_property_arrays[0].base
        vertex_ids = (gathers - base) // 8
        degrees = graph.out_degrees
        hot = degrees >= degrees.mean()
        hot_access_share = hot[vertex_ids].mean()
        assert hot_access_share > 0.6
        assert hot.mean() < 0.35
