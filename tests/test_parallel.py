"""Tests for the parallel experiment runner and the on-disk memo store."""

import pickle

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    clear_caches,
    compare_policies,
    compare_policies_parallel,
)
from repro.experiments.memo import DiskMemo, MEMO_VERSION, default_cache_dir
from repro.experiments.runner import active_disk_memo, build_workload, set_disk_memo
from repro.experiments.schemes import scheme_policy
from repro.fastsim import fused_native_supported, kernels


@pytest.fixture(autouse=True)
def _isolated_memo_state():
    """Keep the module-level disk-memo singleton from leaking across tests."""
    clear_caches()
    yield
    set_disk_memo(None)
    clear_caches()


def _points_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert (a.app_name, a.dataset_name, a.scheme) == (b.app_name, b.dataset_name, b.scheme)
        assert a.stats.hits == b.stats.hits
        assert a.stats.misses == b.stats.misses
        assert a.stats.evictions == b.stats.evictions
        assert a.cycles == pytest.approx(b.cycles)
        assert a.miss_reduction_pct == pytest.approx(b.miss_reduction_pct)
        assert a.speedup_pct == pytest.approx(b.speedup_pct)


class TestDiskMemo:
    def test_roundtrip_and_miss(self, tmp_path):
        memo = DiskMemo(tmp_path)
        key = ("PR", "lj", "dbg", 0.12, 42, True)
        assert memo.get("workload", key) is None
        memo.put("workload", key, {"payload": np.arange(4)})
        loaded = memo.get("workload", key)
        assert np.array_equal(loaded["payload"], np.arange(4))
        assert memo.entry_count("workload") == 1
        assert memo.entry_count() == 1

    def test_versioned_layout(self, tmp_path):
        memo = DiskMemo(tmp_path)
        memo.put("policy", ("k",), 1)
        assert (tmp_path / f"v{MEMO_VERSION}" / "policy").is_dir()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        memo = DiskMemo(tmp_path)
        key = ("corrupt",)
        memo.put("llctrace", key, [1, 2, 3])
        memo.path_for("llctrace", key).write_bytes(b"not a pickle")
        assert memo.get("llctrace", key) is None

    def test_distinct_keys_distinct_paths(self, tmp_path):
        memo = DiskMemo(tmp_path)
        assert memo.path_for("policy", ("a",)) != memo.path_for("policy", ("b",))
        assert memo.path_for("policy", ("a",)) != memo.path_for("workload", ("a",))

    def test_default_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path


class TestRunnerDiskIntegration:
    def test_workload_served_from_disk(self, tmp_path):
        config = ExperimentConfig.smoke()
        memo = DiskMemo(tmp_path)
        set_disk_memo(memo)
        first = build_workload("PR", "lj", config=config)
        assert memo.entry_count("workload") == 1
        clear_caches()  # drop in-memory table; disk copy must satisfy the rebuild
        second = build_workload("PR", "lj", config=config)
        assert first is not second
        assert first.key == second.key
        assert np.array_equal(first.roi.frontier, second.roi.frontier)

    def test_env_var_resolution(self, monkeypatch, tmp_path):
        import repro.experiments.runner as runner_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(runner_module, "_DISK_MEMO", None)
        monkeypatch.setattr(runner_module, "_DISK_MEMO_RESOLVED", False)
        memo = active_disk_memo()
        assert memo is not None
        assert str(memo.root).startswith(str(tmp_path))

    def test_disabled_by_default(self, monkeypatch):
        import repro.experiments.runner as runner_module

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setattr(runner_module, "_DISK_MEMO", None)
        monkeypatch.setattr(runner_module, "_DISK_MEMO_RESOLVED", False)
        assert active_disk_memo() is None


class TestParallelRunner:
    APPS = ("PR",)
    DATASETS = ("lj", "pl")
    SCHEMES = ("RRIP", "GRASP")

    def test_matches_serial_results_and_order(self, tmp_path):
        config = ExperimentConfig.smoke()
        serial = compare_policies(self.APPS, self.DATASETS, self.SCHEMES, config=config)
        clear_caches()
        parallel = compare_policies_parallel(
            self.APPS,
            self.DATASETS,
            self.SCHEMES,
            config=config,
            max_workers=2,
            cache_dir=tmp_path / "memo",
        )
        _points_equal(serial, parallel)

    def test_disk_reuse_across_invocations(self, tmp_path):
        config = ExperimentConfig.smoke()
        cache_dir = tmp_path / "memo"
        compare_policies_parallel(
            self.APPS, self.DATASETS, self.SCHEMES, config=config,
            max_workers=2, cache_dir=cache_dir,
        )
        memo = DiskMemo(cache_dir)
        assert memo.entry_count("workload") == len(self.DATASETS)
        # With the fused filter kernel, multi-scheme comparisons take the
        # fused-multi route: one shared filter pass feeds every scheme's
        # replay and no filtered ROI trace is ever materialized.  Without
        # it, the staged path materializes the trace once per workload and
        # shares it across schemes.  The budget-less timing counters ride
        # along for workload_cycles either way.
        if kernels.has_capability("fused:filter"):
            assert memo.entry_count("llctrace") == 0
        else:
            assert memo.entry_count("llctrace") == len(self.DATASETS)
        assert memo.entry_count("roisummary") == len(self.DATASETS)
        assert memo.entry_count("policy") == len(self.DATASETS) * len(self.SCHEMES)
        # A fresh "invocation": cold in-memory tables, warm disk.
        clear_caches()
        set_disk_memo(None)
        again = compare_policies_parallel(
            self.APPS, self.DATASETS, self.SCHEMES, config=config,
            max_workers=2, cache_dir=cache_dir,
        )
        serial = compare_policies(self.APPS, self.DATASETS, self.SCHEMES, config=config)
        _points_equal(serial, again)

    def test_streaming_matches_serial_streaming(self, tmp_path):
        from repro.experiments import compare_policies_streaming

        config = ExperimentConfig.smoke().with_overrides(chunk_accesses=1 << 12)
        serial = compare_policies_streaming(
            self.APPS, self.DATASETS, self.SCHEMES, config=config
        )
        clear_caches()
        set_disk_memo(None)
        cache_dir = tmp_path / "memo"
        parallel = compare_policies_parallel(
            self.APPS,
            self.DATASETS,
            self.SCHEMES,
            config=config,
            max_workers=2,
            cache_dir=cache_dir,
            streaming=True,
        )
        _points_equal(serial, parallel)
        # The workers persisted the chunked LLC streams and per-scheme
        # full-execution results for reuse across schemes and invocations.
        memo = DiskMemo(cache_dir)
        # With the fused filter kernel, multi-scheme streaming comparisons
        # take the fused-multi route: one shared filter pass per workload,
        # no chunk store, only the budget-less counter summary.  Without
        # it, the staged path persists the filtered chunk store once and
        # replays every scheme from it — two llcstream entries per stream
        # (the budget-keyed chunk manifest and the budget-less summary).
        if kernels.has_capability("fused:filter"):
            assert memo.entry_count("llcstream") == len(self.DATASETS)
            assert memo.entry_count("llcchunk") == 0
        else:
            assert memo.entry_count("llcstream") == 2 * len(self.DATASETS)
            assert memo.entry_count("llcchunk") > len(self.DATASETS)
        assert memo.entry_count("policystream") == len(self.DATASETS) * len(self.SCHEMES)

    def test_single_consumer_stream_skips_chunk_store(self, tmp_path):
        """A lone policy replay takes the fused route: no chunk store, only
        the budget-less counter summary (and, for the ROI path, the
        ``roisummary`` counters instead of a materialized ``llctrace``)."""
        from repro.experiments.runner import (
            simulate_llc_policy_streaming,
            simulate_scheme,
        )

        config = ExperimentConfig.smoke()
        policy = scheme_policy("GRASP")
        if not fused_native_supported(policy, config.hierarchy):
            pytest.skip("no fused kernel available")
        memo = DiskMemo(tmp_path / "memo")
        set_disk_memo(memo)
        workload = build_workload("PR", "lj", config=config)
        simulate_llc_policy_streaming(workload, policy, config=config)
        assert memo.entry_count("llcchunk") == 0
        assert memo.entry_count("llcstream") == 1
        simulate_scheme(workload, "GRASP", config)
        assert memo.entry_count("llctrace") == 0
        assert memo.entry_count("roisummary") == 1

    def test_single_pair_runs_serially(self):
        config = ExperimentConfig.smoke()
        points = compare_policies_parallel(
            ("PR",), ("lj",), self.SCHEMES, config=config, max_workers=8
        )
        serial = compare_policies(("PR",), ("lj",), self.SCHEMES, config=config)
        _points_equal(serial, points)

    def test_workers_env_cap(self, monkeypatch):
        from repro.experiments.parallel import _worker_budget

        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert _worker_budget(8, None) == 1
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert _worker_budget(3, 16) == 3
        assert _worker_budget(0, None) == 0

    def test_datapoints_pickle(self):
        config = ExperimentConfig.smoke()
        points = compare_policies(("PR",), ("lj",), ("GRASP",), config=config)
        assert _points_equal is not None
        restored = pickle.loads(pickle.dumps(points))
        _points_equal(points, restored)


class TestBrokenPoolWarning:
    """The pool-death fallback is loud: a structured WorkerPoolBrokenWarning."""

    SCHEMES = ("RRIP", "GRASP")

    def _broken_pool(self, monkeypatch):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        import repro.experiments.parallel as parallel_module

        class _BrokenPool:
            def __init__(self, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, task):
                future = Future()
                future.set_exception(BrokenProcessPool("injected pool death"))
                return future

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _BrokenPool)

    def test_fallback_warns_with_failed_pair(self, monkeypatch):
        from repro.experiments import WorkerPoolBrokenWarning
        from repro.experiments.queue import POOL_BROKEN

        self._broken_pool(monkeypatch)
        config = ExperimentConfig.smoke()
        serial = compare_policies(("PR",), ("lj", "pl"), self.SCHEMES, config=config)
        clear_caches()
        with pytest.warns(WorkerPoolBrokenWarning) as captured:
            points = compare_policies_parallel(
                ("PR",), ("lj", "pl"), self.SCHEMES, config=config, max_workers=2
            )
        _points_equal(serial, points)
        event = captured[0].message.event
        assert event.kind == POOL_BROKEN
        # The first pair awaited is the one whose result was lost.
        assert event.label == "PR/lj"
        assert "BrokenProcessPool" in event.detail
        assert "serial" in event.detail
