"""Trace-structure invariant suite (ISSUE 5).

Validates the generated reference stream access by access against an
independent pure-Python reference that walks the Sec. II-C structure
literally — per processed vertex: Vertex-Array load, then the edge slice
(Edge-Array read + one Property-Array gather per edge-indexed array), then
the per-vertex property updates.  Covers push vs. pull, zero-degree
vertices, empty frontiers, merged vs. split property arrays, and the
streaming chunkers' exactness.

Includes the regression test for the former ``np.insert`` tie-ordering bug:
at equal insert offsets the stable tie-break emitted every Vertex-Array load
before the *preceding* vertex's property updates (and collapsed the ordering
entirely for zero-edge vertices).
"""

import numpy as np
import pytest

from repro.analytics.base import PULL, PUSH, AccessProfile, PropertySpec
from repro.graph.generators import _chung_lu_graph
from repro.graph.builder import _from_edge_list
# Only the seed-era API is imported at module level so the Sec. II-C
# ordering regression tests still *collect* (and fail, rather than error)
# against the pre-fix generator; the chunked-generation tests import the
# streaming API locally.
from repro.trace import (
    MemoryLayout,
    REGION_EDGE,
    REGION_PROPERTY,
    REGION_VERTEX,
    generate_iteration_trace,
)
from repro.trace.layout import (
    PC_EDGE_LOAD,
    PC_PROPERTY_GATHER,
    PC_PROPERTY_UPDATE,
    PC_VERTEX_LOAD,
)


def profile(num_edge_arrays=1, num_vertex_arrays=1):
    return AccessProfile(
        edge_properties=tuple(
            PropertySpec(f"edge{i}", 8) for i in range(num_edge_arrays)
        ),
        vertex_properties=tuple(
            PropertySpec(f"vertex{i}", 8) for i in range(num_vertex_arrays)
        ),
    )


def reference_iteration_trace(graph, layout, direction, frontier=None):
    """Literal Sec. II-C walk: load -> edges -> updates, one vertex at a time."""
    if direction == PULL or frontier is None:
        vertices = range(graph.num_vertices)
    else:
        vertices = [int(v) for v in frontier]
    if direction == PULL:
        index, adjacency = graph.in_index, graph.in_sources
    else:
        index, adjacency = graph.out_index, graph.out_targets
    addresses, pcs, regions = [], [], []

    def emit(address, pc, region):
        addresses.append(int(address))
        pcs.append(pc)
        regions.append(region)

    for vertex in vertices:
        emit(layout.vertex_index_addresses(np.array([vertex]))[0], PC_VERTEX_LOAD, REGION_VERTEX)
        for edge in range(int(index[vertex]), int(index[vertex + 1])):
            emit(layout.edge_addresses(np.array([edge]))[0], PC_EDGE_LOAD, REGION_EDGE)
            neighbour = int(adjacency[edge])
            for array_index in range(len(layout.edge_property_arrays)):
                emit(
                    layout.edge_property_addresses(array_index, np.array([neighbour]))[0],
                    PC_PROPERTY_GATHER,
                    REGION_PROPERTY,
                )
        for array_index in range(len(layout.vertex_property_arrays)):
            emit(
                layout.vertex_property_addresses(array_index, np.array([vertex]))[0],
                PC_PROPERTY_UPDATE,
                REGION_PROPERTY,
            )
    return (
        np.array(addresses, dtype=np.int64),
        np.array(pcs, dtype=np.int16),
        np.array(regions, dtype=np.int8),
    )


def assert_matches_reference(graph, layout, direction, frontier=None):
    trace = generate_iteration_trace(graph, layout, direction, frontier=frontier)
    addresses, pcs, regions = reference_iteration_trace(
        graph, layout, direction, frontier=frontier
    )
    np.testing.assert_array_equal(trace.addresses, addresses)
    np.testing.assert_array_equal(trace.pcs, pcs)
    np.testing.assert_array_equal(trace.regions, regions)


@pytest.fixture
def zero_degree_graph():
    """Vertices 1 and 3 have no in-edges; vertex 4 has no edges at all."""
    return _from_edge_list(
        [(1, 0), (3, 0), (0, 2), (1, 2)], num_vertices=5, name="holes"
    )


class TestSecIICOrdering:
    def test_pull_matches_reference(self, zero_degree_graph):
        layout = MemoryLayout(zero_degree_graph, profile(2, 1))
        assert_matches_reference(zero_degree_graph, layout, PULL)

    def test_push_matches_reference(self, zero_degree_graph):
        layout = MemoryLayout(zero_degree_graph, profile(1, 2))
        frontier = np.array([4, 1, 0, 3])
        assert_matches_reference(zero_degree_graph, layout, PUSH, frontier=frontier)

    def test_random_graph_matches_reference_both_directions(self):
        graph = _chung_lu_graph(120, 5.0, seed=7)
        layout = MemoryLayout(graph, profile(2, 2))
        assert_matches_reference(graph, layout, PULL)
        rng = np.random.default_rng(7)
        frontier = rng.choice(graph.num_vertices, size=40, replace=False)
        assert_matches_reference(graph, layout, PUSH, frontier=frontier)

    def test_merged_and_split_profiles_match_reference(self):
        graph = _chung_lu_graph(80, 4.0, seed=9)
        split = AccessProfile(
            edge_properties=(PropertySpec("a", 8), PropertySpec("b", 4)),
            vertex_properties=(PropertySpec("c", 8),),
        )
        for prof in (split, split.merge()):
            assert_matches_reference(graph, MemoryLayout(graph, prof), PULL)

    def test_updates_precede_next_vertex_load(self, zero_degree_graph):
        """Regression (ISSUE 5): at equal ``np.insert`` offsets the old
        generator emitted the next vertex's Vertex-Array load *before* the
        current vertex's property updates."""
        layout = MemoryLayout(zero_degree_graph, profile(1, 1))
        trace = generate_iteration_trace(zero_degree_graph, layout, PULL)
        load_positions = np.flatnonzero(trace.pcs == PC_VERTEX_LOAD)
        # Every vertex record ends with its property update, so the access
        # immediately before each subsequent load must be an update — also
        # across zero-in-degree vertices, where load and update are adjacent.
        assert (trace.pcs[load_positions[1:] - 1] == PC_PROPERTY_UPDATE).all()
        # And the stream must end with the last vertex's update.
        assert trace.pcs[-1] == PC_PROPERTY_UPDATE

    def test_zero_edge_vertex_record_is_load_then_updates(self, zero_degree_graph):
        layout = MemoryLayout(zero_degree_graph, profile(1, 2))
        trace = generate_iteration_trace(
            zero_degree_graph, layout, PUSH, frontier=np.array([4])
        )
        assert trace.pcs.tolist() == [
            PC_VERTEX_LOAD,
            PC_PROPERTY_UPDATE,
            PC_PROPERTY_UPDATE,
        ]

    def test_empty_frontier(self, zero_degree_graph):
        layout = MemoryLayout(zero_degree_graph, profile())
        trace = generate_iteration_trace(
            zero_degree_graph, layout, PUSH, frontier=np.empty(0, dtype=np.int64)
        )
        assert len(trace) == 0


class TestChunkedGeneration:
    def test_iteration_chunks_concatenate_to_one_shot(self):
        from repro.trace import iter_iteration_trace_chunks

        graph = _chung_lu_graph(150, 6.0, seed=11)
        layout = MemoryLayout(graph, profile(2, 1))
        full = generate_iteration_trace(graph, layout, PULL)
        for budget in (1, 37, 256, 10**9):
            chunks = list(
                iter_iteration_trace_chunks(graph, layout, PULL, max_accesses=budget)
            )
            np.testing.assert_array_equal(
                np.concatenate([chunk.addresses for chunk in chunks]), full.addresses
            )
            np.testing.assert_array_equal(
                np.concatenate([chunk.pcs for chunk in chunks]), full.pcs
            )
            np.testing.assert_array_equal(
                np.concatenate([chunk.regions for chunk in chunks]), full.regions
            )

    def test_chunk_budget_respected_beyond_single_records(self):
        from repro.trace import iter_iteration_trace_chunks

        graph = _chung_lu_graph(150, 6.0, seed=11)
        layout = MemoryLayout(graph, profile(1, 1))
        degrees = (graph.in_index[1:] - graph.in_index[:-1]).astype(np.int64)
        record = int(degrees.max()) * 2 + 2  # largest single vertex record
        budget = max(64, record)
        chunks = list(
            iter_iteration_trace_chunks(graph, layout, PULL, max_accesses=budget)
        )
        assert all(len(chunk) <= budget for chunk in chunks)

    def test_iteration_trace_length(self):
        from repro.trace import iteration_trace_length

        graph = _chung_lu_graph(90, 5.0, seed=13)
        layout = MemoryLayout(graph, profile(2, 2))
        assert iteration_trace_length(graph, layout, PULL) == len(
            generate_iteration_trace(graph, layout, PULL)
        )
        frontier = np.array([0, 5, 17])
        assert iteration_trace_length(graph, layout, PUSH, frontier=frontier) == len(
            generate_iteration_trace(graph, layout, PUSH, frontier=frontier)
        )

    def test_execution_trace_streams_every_iteration(self):
        from repro.analytics import get_application
        from repro.trace import generate_execution_trace, iter_execution_trace

        graph = _chung_lu_graph(200, 5.0, seed=17)
        app = get_application("PR")
        layout = MemoryLayout(graph, app.access_profile())
        result = app.run(graph, root=0)
        full = generate_execution_trace(graph, layout, result.iterations)
        chunks = list(
            iter_execution_trace(graph, layout, result.iterations, max_chunk_accesses=500)
        )
        np.testing.assert_array_equal(
            np.concatenate([chunk.trace.addresses for chunk in chunks]), full.addresses
        )
        # Chunk metadata: contiguous global offsets and real iteration labels.
        offset = 0
        for chunk in chunks:
            assert chunk.start == offset
            offset += len(chunk)
        assert {chunk.iteration for chunk in chunks} == {
            record.index for record in result.iterations if record.active_vertices
        }

    def test_invalid_budget_rejected(self):
        from repro.trace import iter_iteration_trace_chunks

        graph = _chung_lu_graph(40, 3.0, seed=1)
        layout = MemoryLayout(graph, profile())
        with pytest.raises(ValueError):
            list(iter_iteration_trace_chunks(graph, layout, PULL, max_accesses=0))
