"""Tests for the vertex-subset and edge-map framework primitives."""

import numpy as np
import pytest

from repro.analytics import VertexSubset, gather_edges, select_direction
from repro.analytics.base import PULL, PUSH
from repro.analytics.framework import edge_map_pull_any, edge_map_pull_sum, frontier_out_edges
from repro.graph.builder import _from_edge_list


@pytest.fixture
def diamond_graph():
    # 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4
    return _from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], num_vertices=5)


class TestVertexSubset:
    def test_empty(self):
        subset = VertexSubset.empty(10)
        assert subset.is_empty
        assert subset.size == 0
        assert list(subset) == []

    def test_single_and_contains(self):
        subset = VertexSubset.single(10, 3)
        assert subset.size == 1
        assert 3 in subset
        assert 4 not in subset

    def test_full(self):
        subset = VertexSubset.full(5)
        assert subset.size == 5
        assert subset.to_dense().all()

    def test_from_dense_roundtrip(self):
        mask = np.array([True, False, True, False])
        subset = VertexSubset.from_dense(mask)
        assert subset.to_sparse().tolist() == [0, 2]
        assert np.array_equal(subset.to_dense(), mask)

    def test_duplicates_removed(self):
        subset = VertexSubset(5, [1, 1, 2, 2])
        assert subset.size == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            VertexSubset(3, [5])
        with pytest.raises(ValueError):
            VertexSubset(-1)

    def test_equality(self):
        assert VertexSubset(5, [1, 2]) == VertexSubset(5, [2, 1])
        assert VertexSubset(5, [1]) != VertexSubset(5, [2])


class TestGatherEdges:
    def test_push_gathers_out_edges(self, diamond_graph):
        sources, targets, weights = gather_edges(diamond_graph, np.array([0]), PUSH)
        assert sources.tolist() == [0, 0]
        assert sorted(targets.tolist()) == [1, 2]
        assert weights is None

    def test_pull_gathers_in_edges(self, diamond_graph):
        sources, targets, _ = gather_edges(diamond_graph, np.array([3]), PULL)
        assert sorted(sources.tolist()) == [1, 2]
        assert targets.tolist() == [3, 3]

    def test_multiple_vertices(self, diamond_graph):
        sources, targets, _ = gather_edges(diamond_graph, np.array([0, 3]), PUSH)
        assert len(sources) == 3  # 0 has 2 out-edges, 3 has 1
        assert set(zip(sources.tolist(), targets.tolist())) == {(0, 1), (0, 2), (3, 4)}

    def test_empty_frontier(self, diamond_graph):
        sources, targets, _ = gather_edges(diamond_graph, np.array([], dtype=np.int64), PUSH)
        assert sources.size == 0 and targets.size == 0

    def test_vertex_without_edges(self, diamond_graph):
        sources, targets, _ = gather_edges(diamond_graph, np.array([4]), PUSH)
        assert sources.size == 0

    def test_weights_requested_on_unweighted_graph(self, diamond_graph):
        with pytest.raises(ValueError):
            gather_edges(diamond_graph, np.array([0]), PUSH, with_weights=True)

    def test_weights_returned(self, diamond_graph):
        weighted = diamond_graph.with_random_weights(seed=1)
        sources, targets, weights = gather_edges(weighted, np.array([0]), PUSH, with_weights=True)
        assert weights.shape == sources.shape

    def test_invalid_direction(self, diamond_graph):
        with pytest.raises(ValueError):
            gather_edges(diamond_graph, np.array([0]), "sideways")

    def test_gather_matches_manual_enumeration(self, diamond_graph):
        for direction in (PUSH, PULL):
            sources, targets, _ = gather_edges(
                diamond_graph, np.arange(diamond_graph.num_vertices), direction
            )
            expected = {(s, t) for s, t in diamond_graph.edges()}
            assert set(zip(sources.tolist(), targets.tolist())) == expected


class TestDirectionSelection:
    def test_small_frontier_pushes(self, diamond_graph):
        assert select_direction(diamond_graph, VertexSubset.single(5, 4)) == PUSH

    def test_large_frontier_pulls(self, diamond_graph):
        assert select_direction(diamond_graph, VertexSubset.full(5)) == PULL

    def test_frontier_out_edges(self, diamond_graph):
        assert frontier_out_edges(diamond_graph, VertexSubset(5, [0, 3])) == 3
        assert frontier_out_edges(diamond_graph, VertexSubset.empty(5)) == 0


class TestEdgeMapHelpers:
    def test_pull_sum_matches_manual(self, diamond_graph):
        contributions = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        sums = edge_map_pull_sum(diamond_graph, contributions)
        # vertex 3 receives from 1 and 2; vertex 4 from 3; vertices 1,2 from 0.
        assert sums.tolist() == [0.0, 1.0, 1.0, 5.0, 4.0]

    def test_pull_sum_with_active_mask(self, diamond_graph):
        contributions = np.ones(5)
        active = np.array([True, False, True, False, False])
        sums = edge_map_pull_sum(diamond_graph, contributions, active_mask=active)
        assert sums.tolist() == [0.0, 1.0, 1.0, 1.0, 0.0]

    def test_pull_any(self, diamond_graph):
        in_frontier = np.array([False, True, False, False, False])  # vertex 1 active
        candidates = np.array([True, True, True, True, True])
        reachable = edge_map_pull_any(diamond_graph, in_frontier, candidates)
        assert reachable.tolist() == [False, False, False, True, False]

    def test_pull_any_no_candidates(self, diamond_graph):
        reachable = edge_map_pull_any(
            diamond_graph, np.ones(5, dtype=bool), np.zeros(5, dtype=bool)
        )
        assert not reachable.any()
