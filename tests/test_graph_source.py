"""Unified ``repro.graph.load`` GraphSource API (ISSUE 8, satellite 1/2).

Covers the spec grammar (``"lj"``, ``"rmat:scale=8,seed=7"``,
``"file:g.txt?densify=true"``, ``"mtx:g.mtx"``), spec canonicalization
(synthetic specs byte-identical, file specs content-addressed), the source
registry, equivalence with the deprecated per-mechanism entry points, the
DeprecationWarning wrappers themselves, memo-key stability through the
experiment runner, and the new CLI surface (``--graph``, ``repro graph``).
"""

import warnings

import numpy as np
import pytest

import repro.graph as graph_pkg
from repro.experiments.cli import _spec_from_args, build_parser, main
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import canonical_dataset, workload_memo_key
from repro.graph.csr import GraphError
from repro.graph.datasets import _get_dataset
from repro.graph.generators import _chung_lu_graph, _rmat_graph
from repro.graph.io import _save_edge_list
from repro.graph.source import (
    _SOURCES,
    GraphSource,
    LoadContext,
    canonical_spec,
    describe_spec,
    list_sources,
    load,
    load_for_experiment,
    parse_spec_kwargs,
    register_source,
    save,
    split_spec,
)


def arrays_equal(a, b):
    return (
        np.array_equal(np.asarray(a.out_index), np.asarray(b.out_index))
        and np.array_equal(np.asarray(a.out_targets), np.asarray(b.out_targets))
    )


# ---------------------------------------------------------------------------
# spec grammar
# ---------------------------------------------------------------------------


class TestSpecGrammar:
    def test_split_spec(self):
        assert split_spec("lj") == ("lj", "")
        assert split_spec("rmat:scale=8") == ("rmat", "scale=8")
        assert split_spec("file:a:b.txt") == ("file", "a:b.txt")

    def test_parse_spec_kwargs_coercion(self):
        kwargs = parse_spec_kwargs("scale=8,seed=7,ef=1.5,dedup=true,name=x", "rmat")
        assert kwargs == {"scale": 8, "seed": 7, "ef": 1.5, "dedup": True, "name": "x"}

    def test_parse_spec_kwargs_malformed(self):
        with pytest.raises(GraphError, match="key=value"):
            parse_spec_kwargs("scale", "rmat")
        with pytest.raises(GraphError, match="key=value"):
            parse_spec_kwargs("=8", "rmat")

    def test_unknown_head_lists_known_heads(self):
        with pytest.raises(GraphError, match="unknown graph spec"):
            load("no-such-head:x=1")
        with pytest.raises(GraphError, match="rmat"):
            load("definitely-not-a-source")

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(GraphError, match="unknown parameter"):
            load("rmat:scale=6,bogus=1")

    def test_missing_required_kwarg(self):
        with pytest.raises(GraphError, match="scale"):
            load("rmat:seed=3")
        with pytest.raises(GraphError, match="requires"):
            load("chung-lu:n=100")

    def test_dataset_head_forbids_rest(self):
        with pytest.raises(GraphError, match="takes no parameters"):
            load("lj:foo=1")


# ---------------------------------------------------------------------------
# load() equivalence with the deprecated entry points
# ---------------------------------------------------------------------------


class TestLoadEquivalence:
    def test_dataset_spec_matches_get_dataset(self):
        via_load = load("uni", scale=0.05, seed=42)
        direct = _get_dataset("uni", scale=0.05, seed=42)
        assert arrays_equal(via_load, direct)
        assert via_load.name == direct.name

    def test_generator_spec_matches_generator(self):
        via_load = load("rmat:scale=8,ef=4,seed=7")
        direct = _rmat_graph(scale=8, edge_factor=4, seed=7)
        assert arrays_equal(via_load, direct)

    def test_generator_alias_kwargs(self):
        a = load("chung-lu:n=120,deg=5,seed=3")
        b = _chung_lu_graph(120, 5.0, seed=3)
        assert arrays_equal(a, b)

    def test_generator_seed_defaults_to_context(self):
        assert arrays_equal(load("rmat:scale=7", seed=9), load("rmat:scale=7,seed=9"))

    def test_file_spec(self, tmp_path, monkeypatch):
        graph = _chung_lu_graph(100, 4.0, seed=17, name="f")
        path = tmp_path / "f.txt"
        _save_edge_list(graph, path)
        loaded = load(f"file:{path}", cache_root=tmp_path / "cache")
        assert arrays_equal(graph, loaded)

    def test_file_spec_with_options(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("10 20\n20 30\n")
        loaded = load(f"file:{path}?densify=true", cache_root=tmp_path / "cache")
        assert loaded.num_vertices == 3

    def test_file_spec_missing_file(self, tmp_path):
        with pytest.raises(GraphError, match="cannot stat graph file"):
            load(f"file:{tmp_path}/absent.txt")

    def test_weighted_context_adds_weights(self, tmp_path):
        graph = load("uniform:n=80,deg=3", seed=4, weighted=True)
        assert graph.is_weighted
        reference = load("uniform:n=80,deg=3", seed=4).with_random_weights(seed=5)
        assert np.array_equal(
            np.asarray(graph.out_weights), np.asarray(reference.out_weights)
        )

    def test_weighted_context_respects_existing_weights(self, tmp_path):
        graph = _chung_lu_graph(60, 3.0, seed=1, name="w").with_random_weights(seed=2)
        path = tmp_path / "w.txt"
        _save_edge_list(graph, path)
        loaded = load(f"file:{path}", weighted=True, cache_root=tmp_path / "cache")
        assert np.array_equal(
            np.asarray(graph.out_weights), np.asarray(loaded.out_weights)
        )

    def test_scale_applies_to_datasets_only_via_experiment(self):
        small = load_for_experiment("uni", scale=0.02, seed=42, weighted=False)
        big = load_for_experiment("uni", scale=0.05, seed=42, weighted=False)
        assert small.num_vertices < big.num_vertices


# ---------------------------------------------------------------------------
# canonicalization & memo keys
# ---------------------------------------------------------------------------


class TestCanonicalSpec:
    def test_synthetic_specs_are_identity(self):
        # Byte-identity keeps every existing memo key valid (MEMO_VERSION
        # unchanged); do not "normalize" synthetic specs.
        for spec in ("lj", "tw", "uni", "rmat:scale=18,seed=7"):
            assert canonical_spec(spec) == spec

    def test_generator_kwargs_sorted(self):
        assert canonical_spec("rmat:seed=7,scale=18") == "rmat:scale=18,seed=7"

    def test_file_spec_content_addressed(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        canon = canonical_spec(f"file:{path}")
        assert canon.startswith("file:g.txt@sha256:")
        # Moving the file elsewhere (same name+bytes) keeps the canonical form.
        other_dir = tmp_path / "elsewhere"
        other_dir.mkdir()
        copy = other_dir / "g.txt"
        copy.write_text(path.read_text())
        assert canonical_spec(f"file:{copy}") == canon
        # Changing the bytes changes it.
        path.write_text("0 1\n1 2\n2 3\n")
        assert canonical_spec(f"file:{path}") != canon

    def test_file_spec_options_in_canonical_form(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("5 9\n")
        a = canonical_spec(f"file:{path}?self_loops=false,densify=true")
        b = canonical_spec(f"file:{path}?densify=true,self_loops=false")
        assert a == b
        assert "densify=True" in a

    def test_canonical_dataset_falls_back_for_unknown_names(self):
        # Arbitrary dataset names used in tests/memo keys must not explode.
        assert canonical_dataset("totally-made-up") == "totally-made-up"
        assert canonical_dataset("lj") == "lj"

    def test_workload_memo_key_byte_identical(self):
        config = ExperimentConfig(scale=0.12, seed=42)
        key = workload_memo_key("PR", "lj", "dbg", config)
        assert key == ("PR", "lj", "dbg", 0.12, 42, True)

    def test_file_spec_memo_key_uses_digest(self, tmp_path):
        config = ExperimentConfig(scale=1.0, seed=1)
        path = tmp_path / "k.txt"
        path.write_text("0 1\n")
        key = workload_memo_key("PR", f"file:{path}", "none", config)
        assert "@sha256:" in key[1]
        assert str(tmp_path) not in key[1]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_expected_heads_registered(self):
        heads = {source.head for source in list_sources()}
        for head in ("lj", "tw", "uni", "rmat", "chung-lu", "uniform",
                     "file", "snap", "mtx", "npz"):
            assert head in heads

    def test_register_source_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_source("rmat", "duplicate")
            def loader(rest, context):  # pragma: no cover
                raise AssertionError

    def test_register_custom_source(self):
        @register_source("test-custom-head", "test-only source")
        def loader(rest, context):
            return _chung_lu_graph(50, 3.0, seed=int(rest or 0))

        try:
            graph = load("test-custom-head:5")
            assert graph.num_vertices == 50
            assert isinstance(_SOURCES["test-custom-head"], GraphSource)
            # Default canonicalization: identity.
            assert canonical_spec("test-custom-head:5") == "test-custom-head:5"
        finally:
            del _SOURCES["test-custom-head"]

    def test_describe_spec(self):
        info = describe_spec("rmat:scale=8,seed=7")
        assert info["head"] == "rmat"
        assert info["canonical"] == "rmat:scale=8,seed=7"
        assert info["description"]

    def test_load_context_defaults(self):
        context = LoadContext()
        assert context.scale == 1.0
        assert context.seed == 42
        assert context.mmap == "auto"


# ---------------------------------------------------------------------------
# deprecated wrappers
# ---------------------------------------------------------------------------


class TestDeprecationWrappers:
    @pytest.mark.parametrize(
        "call",
        [
            lambda: graph_pkg.get_dataset("uni", scale=0.02),
            lambda: graph_pkg.chung_lu_graph(60, 3.0, seed=1),
            lambda: graph_pkg.rmat_graph(scale=6, seed=1),
            lambda: graph_pkg.uniform_random_graph(50, 3.0, seed=1),
            lambda: graph_pkg.build_csr(
                4, np.array([0, 1]), np.array([1, 2])
            ),
            lambda: graph_pkg.from_edge_list(
                [(0, 1), (1, 2)], num_vertices=3
            ),
        ],
    )
    def test_old_entry_points_warn_and_work(self, call):
        with pytest.warns(DeprecationWarning, match="repro.graph.load"):
            result = call()
        assert result.num_vertices > 0

    def test_io_wrappers_warn(self, tmp_path):
        graph = _chung_lu_graph(40, 3.0, seed=2, name="dep")
        path = tmp_path / "d.txt"
        with pytest.warns(DeprecationWarning):
            graph_pkg.io.save_edge_list(graph, path)
        with pytest.warns(DeprecationWarning):
            loaded = graph_pkg.io.load_edge_list(path)
        assert arrays_equal(graph, loaded)

    def test_new_paths_do_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            load("rmat:scale=6,seed=1")
            load("uni", scale=0.02)
            graph = _chung_lu_graph(40, 3.0, seed=2, name="s")
            save(graph, tmp_path / "s.txt")
            load(f"file:{tmp_path}/s.txt", cache_root=tmp_path / "cache")


# ---------------------------------------------------------------------------
# save() dispatch
# ---------------------------------------------------------------------------


class TestSaveDispatch:
    @pytest.mark.parametrize("suffix", [".txt", ".mtx", ".npz"])
    def test_round_trip_by_suffix(self, tmp_path, suffix):
        graph = _chung_lu_graph(80, 4.0, seed=11, name="rt").with_random_weights(seed=12)
        path = tmp_path / f"g{suffix}"
        save(graph, path)
        head = {"": "file", ".txt": "file", ".mtx": "mtx", ".npz": "npz"}[suffix]
        loaded = load(f"{head}:{path}", cache_root=tmp_path / "cache")
        assert arrays_equal(graph, loaded)
        assert np.array_equal(
            np.asarray(graph.out_weights), np.asarray(loaded.out_weights)
        )

    def test_explicit_fmt_overrides_suffix(self, tmp_path):
        graph = _chung_lu_graph(40, 3.0, seed=13, name="x")
        path = tmp_path / "odd-suffix.graph"
        save(graph, path, fmt="mtx")
        loaded = load(f"mtx:{path}", cache_root=tmp_path / "cache")
        assert arrays_equal(graph, loaded)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCLI:
    def test_sweep_graph_flag_appends_specs(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "sweep", "--apps", "PR", "--schemes", "GRASP", "--datasets", "uni",
                "--graph", "rmat:scale=8,seed=7",
                "--graph", "file:g.txt?densify=true",
            ]
        )
        config = ExperimentConfig()
        spec = _spec_from_args(args, config)
        assert spec.datasets == (
            "uni", "rmat:scale=8,seed=7", "file:g.txt?densify=true"
        )

    def test_graph_cache_flag_reaches_config(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--graph-cache", str(tmp_path / "gc")]
        )
        from repro.experiments.cli import _config_from_args

        config = _config_from_args(args)
        assert config.graph_cache_dir == str(tmp_path / "gc")

    def test_graph_info_no_load(self, capsys):
        assert main(["graph", "info", "--no-load", "rmat:scale=8,seed=7"]) == 0
        out = capsys.readouterr().out
        assert "rmat" in out

    def test_graph_info_loads_and_reports_skew(self, capsys):
        assert main(["graph", "info", "uniform:n=80,deg=3,seed=2"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out

    def test_graph_info_bad_spec_fails(self, capsys):
        assert main(["graph", "info", "bogus-head:x=1"]) == 1

    def test_graph_ingest_and_verify(self, tmp_path, capsys):
        graph = _chung_lu_graph(60, 3.0, seed=19, name="c")
        path = tmp_path / "c.txt"
        _save_edge_list(graph, path)
        code = main(
            ["graph", "ingest", str(path), "--graph-cache", str(tmp_path / "gc")]
        )
        assert code == 0
        assert "edges" in capsys.readouterr().out

    def test_graph_fetch_list(self, capsys):
        assert main(["graph", "fetch", "--list"]) == 0
        assert "web-google" in capsys.readouterr().out

    def test_graph_verify_vendored_samples(self, capsys):
        assert main(["graph", "verify", "--dest", "data/samples"]) == 0
        out = capsys.readouterr().out
        assert "FAILED" not in out and "MISSING" not in out
