"""Out-of-core ingestion suite (ISSUE 8).

Covers the chunked parsers (edge-list / SNAP / Matrix-Market, gzip
transparent), malformed-input handling (loud ``GraphError``s, never silent
corruption), the binary-CSR cache (hits, torn writes, corruption recovery),
the out-of-core builder's bit-identity with the in-RAM ``build_csr``, the
``MmapCSRGraph`` backing (including the acceptance criterion: bit-identical
CacheStats through the trace pipeline against the in-RAM load), the vendored
sample graphs, and the checksum download tooling (over ``file://`` URLs).
"""

import gzip
import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.analytics import get_application
from repro.cache.config import HierarchyConfig
from repro.experiments.runner import filter_trace, simulate_llc_policy
from repro.experiments.schemes import scheme_policy
from repro.graph.builder import _build_csr
from repro.graph.csr import CSRGraph, GraphError, MmapCSRGraph
from repro.graph.generators import _chung_lu_graph, _uniform_random_graph
from repro.graph.ingest import (
    CSRBinaryCache,
    EdgeListReader,
    MatrixMarketReader,
    ParseOptions,
    build_csr_cache_entry,
    detect_format,
    fetch_dataset,
    file_digest,
    ingest_graph,
    load_checksums,
    parse_graph,
    record_checksum,
    save_matrix_market,
    sha256_file,
    verify_file,
)
from repro.graph.io import _format_edge_block, _save_edge_list
from repro.trace import MemoryLayout, generate_iteration_trace

SAMPLES = Path(__file__).resolve().parent.parent / "data" / "samples"


def write(path: Path, text: str) -> Path:
    path.write_text(text)
    return path


def graphs_equal(a: CSRGraph, b: CSRGraph) -> bool:
    if not (
        np.array_equal(np.asarray(a.out_index), np.asarray(b.out_index))
        and np.array_equal(np.asarray(a.out_targets), np.asarray(b.out_targets))
        and np.array_equal(np.asarray(a.in_index), np.asarray(b.in_index))
        and np.array_equal(np.asarray(a.in_sources), np.asarray(b.in_sources))
    ):
        return False
    if (a.out_weights is None) != (b.out_weights is None):
        return False
    if a.out_weights is not None:
        return np.array_equal(
            np.asarray(a.out_weights), np.asarray(b.out_weights)
        ) and np.array_equal(np.asarray(a.in_weights), np.asarray(b.in_weights))
    return True


# ---------------------------------------------------------------------------
# parser round-trips
# ---------------------------------------------------------------------------


class TestEdgeListRoundTrip:
    def test_unweighted_round_trip(self, tmp_path):
        graph = _chung_lu_graph(150, 5.0, seed=3, name="rt")
        path = tmp_path / "g.txt"
        _save_edge_list(graph, path)
        loaded = parse_graph(path)
        assert graphs_equal(graph, loaded)

    def test_weighted_round_trip(self, tmp_path):
        graph = _uniform_random_graph(90, 4.0, seed=5).with_random_weights(seed=6)
        path = tmp_path / "g.txt"
        _save_edge_list(graph, path)
        loaded = parse_graph(path)
        assert loaded.is_weighted
        assert graphs_equal(graph, loaded)

    def test_gzip_transparent(self, tmp_path):
        graph = _chung_lu_graph(80, 4.0, seed=9, name="gz")
        plain = tmp_path / "g.txt"
        _save_edge_list(graph, plain)
        gz = tmp_path / "g.txt.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        assert graphs_equal(graph, parse_graph(gz))

    def test_gzip_magic_sniffed_despite_extension(self, tmp_path):
        graph = _chung_lu_graph(60, 3.0, seed=2)
        plain = tmp_path / "a.txt"
        _save_edge_list(graph, plain)
        mislabelled = tmp_path / "b.txt"  # gzip bytes, .txt name
        mislabelled.write_bytes(gzip.compress(plain.read_bytes()))
        assert graphs_equal(graph, parse_graph(mislabelled))

    def test_matrix_market_round_trip(self, tmp_path):
        graph = _chung_lu_graph(70, 4.0, seed=4).with_random_weights(seed=5)
        path = tmp_path / "g.mtx"
        save_matrix_market(graph, path)
        assert detect_format(path) == "mtx"
        loaded = parse_graph(path)
        assert graphs_equal(graph, loaded)

    def test_format_edge_block_non_integral_weights(self):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 0])
        weights = np.array([0.5, 1.25, 3e-7])
        block = _format_edge_block(src, dst, weights).decode()
        expected = "".join(f"{s} {d} {w:g}\n" for s, d, w in zip(src, dst, weights))
        assert block == expected

    def test_format_edge_block_integral_weights_match_g_format(self):
        weights = np.array([1.0, 34.0, 63.0])
        block = _format_edge_block(np.array([0, 1, 2]), np.array([1, 2, 0]), weights)
        assert block.decode() == "0 1 1\n1 2 34\n2 0 63\n"


# ---------------------------------------------------------------------------
# malformed inputs: loud errors, never silent corruption
# ---------------------------------------------------------------------------


class TestMalformedInputs:
    def test_comment_lines_and_blank_lines_skipped(self, tmp_path):
        path = write(
            tmp_path / "g.txt",
            "# comment\n% other comment style\n\n0 1\n1 2\n# mid-file comment\n2 0\n",
        )
        graph = parse_graph(path)
        assert graph.num_edges == 3

    def test_malformed_line_raises(self, tmp_path):
        path = write(tmp_path / "g.txt", "0 1\n7\n1 2\n")
        with pytest.raises(GraphError, match="malformed line"):
            parse_graph(path)

    def test_token_conserving_corruption_raises(self, tmp_path):
        # One 1-token line plus one 3-token line conserve the token count of
        # two 2-token rows; a naive split-and-reshape would silently mis-pair.
        path = write(tmp_path / "g.txt", "0 1\n3\n4 5 6\n0 2\n")
        with pytest.raises(GraphError, match="malformed line"):
            parse_graph(path)

    def test_text_garbage_raises(self, tmp_path):
        path = write(tmp_path / "g.txt", "0 1\nnot an edge\n")
        with pytest.raises(GraphError, match="malformed line"):
            parse_graph(path)

    def test_non_integer_ids_raise(self, tmp_path):
        path = write(tmp_path / "g.txt", "0 1\n1.5 2\n")
        with pytest.raises(GraphError, match="non-integer vertex IDs"):
            parse_graph(path)

    def test_negative_ids_raise(self, tmp_path):
        path = write(tmp_path / "g.txt", "0 1\n-1 2\n")
        with pytest.raises(GraphError, match="malformed line|negative"):
            parse_graph(path)

    def test_mixed_column_counts_raise(self, tmp_path):
        path = write(tmp_path / "g.txt", "0 1 2.5\n1 2\n")
        with pytest.raises(GraphError, match="malformed line"):
            parse_graph(path)

    def test_truncated_gzip_raises(self, tmp_path):
        graph = _chung_lu_graph(120, 5.0, seed=7)
        plain = tmp_path / "g.txt"
        _save_edge_list(graph, plain)
        payload = gzip.compress(plain.read_bytes())
        truncated = tmp_path / "g.txt.gz"
        truncated.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(GraphError, match="gzip"):
            parse_graph(truncated)

    def test_declared_vertices_below_max_id_raises(self, tmp_path):
        path = write(tmp_path / "g.txt", "# vertices=2 edges=2\n0 1\n1 5\n")
        with pytest.raises(GraphError, match="declared 2 vertices"):
            parse_graph(path)

    def test_zero_degree_tail_from_header(self, tmp_path):
        path = write(tmp_path / "g.txt", "# vertices=10 edges=2\n0 1\n1 2\n")
        graph = parse_graph(path)
        assert graph.num_vertices == 10
        assert graph.out_degrees[3:].sum() == 0

    def test_snap_nodes_header_declares_vertices(self, tmp_path):
        path = write(tmp_path / "g.txt", "# Nodes: 9 Edges: 2\n0\t1\n1\t2\n")
        graph = parse_graph(path)
        assert graph.num_vertices == 9

    def test_self_loops_kept_by_default_and_removable(self, tmp_path):
        path = write(tmp_path / "g.txt", "0 0\n0 1\n1 1\n")
        assert parse_graph(path).num_edges == 3
        pruned = parse_graph(path, ParseOptions(remove_self_loops=True))
        assert pruned.num_edges == 1

    def test_duplicate_edges_preserved(self, tmp_path):
        path = write(tmp_path / "g.txt", "0 1\n0 1\n0 1\n")
        assert parse_graph(path).num_edges == 3

    def test_non_contiguous_ids_densify(self, tmp_path):
        path = write(tmp_path / "g.txt", "10 20\n20 1000000\n")
        sparse = parse_graph(path)
        assert sparse.num_vertices == 1000001
        dense = parse_graph(path, ParseOptions(densify=True))
        assert dense.num_vertices == 3
        assert dense.num_edges == 2
        assert sorted(dense.edge_arrays()[0].tolist()) == [0, 1]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError, match="no such graph file"):
            parse_graph(tmp_path / "absent.txt")

    def test_four_column_file_raises(self, tmp_path):
        path = write(tmp_path / "g.txt", "0 1 2 3\n")
        with pytest.raises(GraphError, match="columns"):
            parse_graph(path)


class TestMatrixMarketErrors:
    def test_bad_banner_raises(self, tmp_path):
        path = write(tmp_path / "g.mtx", "%%NotMatrixMarket nope\n2 2 1\n1 2\n")
        with pytest.raises(GraphError, match="banner"):
            parse_graph(path)

    def test_truncated_entries_raise(self, tmp_path):
        path = write(
            tmp_path / "g.mtx",
            "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n2 3\n",
        )
        with pytest.raises(GraphError, match="truncated"):
            parse_graph(path)

    def test_excess_entries_raise(self, tmp_path):
        path = write(
            tmp_path / "g.mtx",
            "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 2\n2 3\n",
        )
        with pytest.raises(GraphError, match="more than the declared"):
            parse_graph(path)

    def test_non_square_raises(self, tmp_path):
        path = write(
            tmp_path / "g.mtx",
            "%%MatrixMarket matrix coordinate pattern general\n3 4 1\n1 2\n",
        )
        with pytest.raises(GraphError, match="square"):
            parse_graph(path)

    def test_out_of_range_index_raises(self, tmp_path):
        path = write(
            tmp_path / "g.mtx",
            "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 9\n",
        )
        with pytest.raises(GraphError, match="out of range"):
            parse_graph(path)

    def test_symmetric_mirrors_off_diagonal_once(self, tmp_path):
        path = write(
            tmp_path / "g.mtx",
            "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 3\n2 1\n3 1\n3 3\n",
        )
        graph = parse_graph(path)
        # two off-diagonal entries mirrored + one diagonal kept once
        assert graph.num_edges == 5


# ---------------------------------------------------------------------------
# out-of-core builder == in-RAM builder, bit for bit
# ---------------------------------------------------------------------------


class TestOutOfCoreBuilder:
    @pytest.mark.parametrize("chunk_edges", [7, 64, 1 << 20])
    def test_bit_identical_to_build_csr(self, tmp_path, chunk_edges):
        graph = _chung_lu_graph(300, 6.0, seed=13, name="ooc").with_random_weights(seed=14)
        path = tmp_path / "g.txt"
        _save_edge_list(graph, path)
        entry = tmp_path / "entry"
        build_csr_cache_entry(path, entry, chunk_edges=chunk_edges)
        cache = CSRBinaryCache(tmp_path / "root")
        cache.root.mkdir(parents=True)
        key = cache.entry_key(path)
        shutil.move(str(entry), str(cache.entry_dir(key)))
        loaded = cache.load(key)
        assert loaded is not None
        assert graphs_equal(graph, loaded)

    @pytest.mark.parametrize("chunk_edges", [5, 1 << 20])
    def test_densify_matches_in_ram_parse(self, tmp_path, chunk_edges):
        rng = np.random.default_rng(3)
        ids = rng.choice(5000, size=40, replace=False)
        edges = rng.choice(ids, size=(120, 2))
        path = tmp_path / "g.txt"
        path.write_text("".join(f"{s} {t}\n" for s, t in edges))
        options = ParseOptions(densify=True)
        in_ram = parse_graph(path, options)
        out_of_core = ingest_graph(
            path, mmap=True, densify=True,
            cache_root=tmp_path / "cache", chunk_edges=chunk_edges,
        )
        assert graphs_equal(in_ram, out_of_core)

    def test_empty_graph(self, tmp_path):
        path = write(tmp_path / "g.txt", "# vertices=4 edges=0\n")
        graph = ingest_graph(path, mmap=True, cache_root=tmp_path / "cache")
        assert graph.num_vertices == 4
        assert graph.num_edges == 0


# ---------------------------------------------------------------------------
# binary-CSR cache behaviour
# ---------------------------------------------------------------------------


class TestCSRBinaryCache:
    def make_file(self, tmp_path, seed=1):
        graph = _chung_lu_graph(120, 4.0, seed=seed, name="cached")
        path = tmp_path / f"g{seed}.txt"
        _save_edge_list(graph, path)
        return graph, path

    def test_cache_hit_skips_reparse(self, tmp_path):
        graph, path = self.make_file(tmp_path)
        cache = CSRBinaryCache(tmp_path / "cache")
        key = cache.store(path)
        assert cache.entry_count() == 1
        # Delete the source: a hit must not touch it (entry_key needs the
        # digest, which is cached in-process by (path, size, mtime)).
        loaded = cache.load(key)
        assert loaded is not None and graphs_equal(graph, loaded)
        assert cache.store(path) == key
        assert cache.entry_count() == 1

    def test_mmap_backing(self, tmp_path):
        _, path = self.make_file(tmp_path)
        graph = ingest_graph(path, mmap=True, cache_root=tmp_path / "cache")
        assert isinstance(graph, MmapCSRGraph)
        assert graph.is_mmap
        assert isinstance(graph.out_targets, np.memmap)
        materialized = graph.materialize()
        assert not materialized.is_mmap
        assert graphs_equal(graph, materialized)

    def test_corrupt_meta_is_miss_and_rebuilt(self, tmp_path):
        graph, path = self.make_file(tmp_path)
        cache = CSRBinaryCache(tmp_path / "cache")
        key = cache.store(path)
        (cache.entry_dir(key) / "meta.json").write_text("{ torn json")
        assert cache.load(key) is None
        assert cache.store(path) == key
        rebuilt = cache.load(key)
        assert rebuilt is not None and graphs_equal(graph, rebuilt)

    def test_truncated_array_is_miss(self, tmp_path):
        _, path = self.make_file(tmp_path)
        cache = CSRBinaryCache(tmp_path / "cache")
        key = cache.store(path)
        target = cache.entry_dir(key) / "out_targets.npy"
        target.write_bytes(target.read_bytes()[:40])
        assert cache.load(key) is None

    def test_wrong_version_is_miss(self, tmp_path):
        _, path = self.make_file(tmp_path)
        cache = CSRBinaryCache(tmp_path / "cache")
        key = cache.store(path)
        meta_path = cache.entry_dir(key) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        assert cache.load(key) is None

    def test_missing_meta_is_miss(self, tmp_path):
        cache = CSRBinaryCache(tmp_path / "cache")
        assert cache.load("0" * 64) is None

    def test_content_change_changes_entry(self, tmp_path):
        _, path = self.make_file(tmp_path)
        cache = CSRBinaryCache(tmp_path / "cache")
        key1 = cache.entry_key(path)
        path.write_text(path.read_text() + "0 1\n")
        assert cache.entry_key(path) != key1

    def test_options_change_entry_key(self, tmp_path):
        _, path = self.make_file(tmp_path)
        cache = CSRBinaryCache(tmp_path / "cache")
        assert cache.entry_key(path) != cache.entry_key(
            path, ParseOptions(remove_self_loops=True)
        )

    def test_parse_error_leaves_no_tmp_dirs(self, tmp_path):
        path = write(tmp_path / "bad.txt", "0 1\ngarbage\n")
        cache = CSRBinaryCache(tmp_path / "cache")
        with pytest.raises(GraphError):
            cache.store(path)
        leftovers = [p for p in cache.root.iterdir()] if cache.root.exists() else []
        assert leftovers == []

    def test_auto_mmap_prefers_existing_entry(self, tmp_path):
        _, path = self.make_file(tmp_path)
        cache_root = tmp_path / "cache"
        small = ingest_graph(path, mmap="auto", cache_root=cache_root)
        assert not small.is_mmap  # small file parses straight to RAM
        ingest_graph(path, mmap=True, cache_root=cache_root)
        cached = ingest_graph(path, mmap="auto", cache_root=cache_root)
        assert cached.is_mmap  # once an entry exists, auto uses it


# ---------------------------------------------------------------------------
# MmapCSRGraph through the pipeline (acceptance criterion)
# ---------------------------------------------------------------------------


def pipeline_stats(graph: CSRGraph, scheme: str = "GRASP"):
    """App run -> ROI trace -> L1/L2 filter -> LLC replay, no memoisation."""
    app = get_application("PR")
    root = int(np.argmax(np.asarray(graph.out_degrees)))
    result = app.run(graph, root=root)
    candidates = result.iterations_in_direction(app.dominant_direction) or result.iterations
    roi = max(candidates, key=lambda record: record.active_vertices)
    layout = MemoryLayout(graph, app.access_profile())
    trace = generate_iteration_trace(
        graph, layout, roi.direction, frontier=roi.frontier
    )
    hierarchy = HierarchyConfig()
    llc = filter_trace(trace, hierarchy, layout)
    return simulate_llc_policy(llc, scheme_policy(scheme), hierarchy.llc)


class TestMmapPipelineEquivalence:
    @pytest.mark.parametrize("scheme", ["LRU", "RRIP", "GRASP"])
    def test_cachestats_bit_identical_ram_vs_mmap(self, tmp_path, scheme):
        source = _chung_lu_graph(250, 6.0, seed=23, name="accept")
        path = tmp_path / "g.txt"
        _save_edge_list(source, path)
        ram = ingest_graph(path, mmap=False)
        mm = ingest_graph(path, mmap=True, cache_root=tmp_path / "cache", chunk_edges=97)
        assert not ram.is_mmap and mm.is_mmap
        assert pipeline_stats(ram, scheme) == pipeline_stats(mm, scheme)

    def test_consumers_work_on_mmap_backing(self, tmp_path):
        from repro.graph.properties import skew_report
        from repro.reorder import get_technique

        source = _chung_lu_graph(150, 5.0, seed=29, name="g")
        path = tmp_path / "g.txt"
        _save_edge_list(source, path)
        mm = ingest_graph(path, mmap=True, cache_root=tmp_path / "cache")
        assert skew_report(mm) == skew_report(source)
        reordered = get_technique("dbg").apply(mm).graph
        reference = get_technique("dbg").apply(source).graph
        assert graphs_equal(reordered, reference)


# ---------------------------------------------------------------------------
# vendored samples
# ---------------------------------------------------------------------------


class TestVendoredSamples:
    def test_checksums_cover_all_samples(self):
        checksums = load_checksums(SAMPLES)
        files = {
            p.name for p in SAMPLES.iterdir()
            if p.name not in ("CHECKSUMS.sha256", "README.md")
        }
        assert set(checksums) == files

    def test_checksums_verify(self):
        for filename, digest in load_checksums(SAMPLES).items():
            verify_file(SAMPLES / filename, digest)

    @pytest.mark.parametrize(
        "filename,weighted",
        [
            ("powerlaw-small.txt.gz", False),
            ("uniform-small-weighted.txt", True),
            ("snap-style.txt", False),
            ("mm-small.mtx", True),
            ("mm-symmetric.mtx", False),
        ],
    )
    def test_samples_parse(self, filename, weighted, tmp_path):
        ram = parse_graph(SAMPLES / filename)
        assert ram.num_edges > 0
        assert ram.is_weighted == weighted
        mm = ingest_graph(
            SAMPLES / filename, mmap=True, cache_root=tmp_path / "cache",
            chunk_edges=64,
        )
        assert graphs_equal(ram, mm)

    def test_snap_sample_has_zero_degree_tail(self):
        graph = parse_graph(SAMPLES / "snap-style.txt")
        assert graph.num_vertices == 200  # declared, beyond the max edge id
        degrees = np.asarray(graph.out_degrees) + np.asarray(graph.in_degrees)
        assert (degrees == 0).any()


# ---------------------------------------------------------------------------
# download / verify tooling (file:// URLs; no network)
# ---------------------------------------------------------------------------


class TestFetchDataset:
    def make_remote(self, tmp_path):
        remote = tmp_path / "remote"
        remote.mkdir()
        payload = remote / "tiny.txt"
        payload.write_text("0 1\n1 2\n")
        return payload

    def test_fetch_records_trust_on_first_use(self, tmp_path):
        payload = self.make_remote(tmp_path)
        dest_dir = tmp_path / "data"
        dest = fetch_dataset(payload.as_uri(), dest_dir)
        assert dest.read_text() == payload.read_text()
        assert load_checksums(dest_dir)["tiny.txt"] == sha256_file(dest)

    def test_refetch_verifies_against_lockfile(self, tmp_path):
        payload = self.make_remote(tmp_path)
        dest_dir = tmp_path / "data"
        fetch_dataset(payload.as_uri(), dest_dir)
        # Upstream silently changes: re-download must fail the lockfile check.
        payload.write_text("9 9\n")
        with pytest.raises(GraphError, match="checksum mismatch"):
            fetch_dataset(payload.as_uri(), dest_dir, force=True)

    def test_existing_corrupt_file_detected(self, tmp_path):
        payload = self.make_remote(tmp_path)
        dest_dir = tmp_path / "data"
        dest = fetch_dataset(payload.as_uri(), dest_dir)
        dest.write_text("tampered\n")
        with pytest.raises(GraphError, match="checksum mismatch"):
            fetch_dataset(payload.as_uri(), dest_dir)

    def test_explicit_sha256_enforced(self, tmp_path):
        payload = self.make_remote(tmp_path)
        with pytest.raises(GraphError, match="checksum mismatch"):
            fetch_dataset(payload.as_uri(), tmp_path / "data", sha256="ab" * 32)

    def test_unknown_name_raises(self, tmp_path):
        with pytest.raises(GraphError, match="unknown dataset"):
            fetch_dataset("no-such-dataset", tmp_path)

    def test_record_checksum_round_trip(self, tmp_path):
        record_checksum(tmp_path, "a.txt", "AB" * 32)
        record_checksum(tmp_path, "b.txt", "cd" * 32)
        checksums = load_checksums(tmp_path)
        assert checksums == {"a.txt": "ab" * 32, "b.txt": "cd" * 32}

    def test_file_digest_tracks_content(self, tmp_path):
        path = write(tmp_path / "f.txt", "hello\n")
        first = file_digest(path)
        assert first == sha256_file(path)
        path.write_text("changed content\n")
        assert file_digest(path) != first


class TestReaders:
    def test_edge_list_reader_chunks_bounded(self, tmp_path):
        graph = _chung_lu_graph(100, 5.0, seed=31)
        path = tmp_path / "g.txt"
        _save_edge_list(graph, path)
        reader = EdgeListReader(path, chunk_edges=13)
        sizes = [len(chunk) for chunk in reader.chunks()]
        assert sum(sizes) == graph.num_edges
        assert max(sizes) <= 13

    def test_matrix_market_reader_declares_vertices(self, tmp_path):
        path = write(
            tmp_path / "g.mtx",
            "%%MatrixMarket matrix coordinate pattern general\n%\n7 7 2\n1 2\n2 3\n",
        )
        reader = MatrixMarketReader(path)
        list(reader.chunks())
        assert reader.declared_vertices == 7
