"""Tests for the capability-driven execution planner (repro.fastsim.plan).

Three layers: planner unit tests over synthetic :class:`SimRequest` objects
(``native_override`` pins kernel availability so they are environment
independent), golden-plan snapshots pinning the (route, engine, kernel)
triple of every routing decision, and integration checks — plans embedded
in sweep run manifests, the ``repro plan explain`` CLI, and the backend
dispatch error paths the planner leans on.
"""

import importlib
import json
import sys

import pytest

from repro.cache.partition import WayPartition
from repro.experiments import ExperimentConfig, clear_caches
from repro.experiments.cli import main as cli_main
from repro.experiments.memo import DiskMemo
from repro.experiments.runner import (
    CorunSpec,
    plan_corun_task,
    plan_scheme_task,
    set_disk_memo,
)
from repro.experiments.schemes import scheme_policy
from repro.fastsim import kernels
from repro.fastsim.dispatch import (
    BACKEND_ENV_VAR,
    default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.fastsim.plan import (
    ENGINE_CAPABILITIES,
    PLANNER,
    ROUTE_CORUN_DELEGATE,
    ROUTE_CORUN_SCALAR,
    ROUTE_CORUN_VECTOR,
    ROUTE_FUSED,
    ROUTE_FUSED_MULTI,
    ROUTE_OPT_SCALAR,
    ROUTE_OPT_TWO_PASS,
    ROUTE_OPT_VECTOR,
    ROUTE_SCALAR,
    ROUTE_VECTOR,
    STAGE_CORUN,
    STAGE_ONESHOT,
    STAGE_ROI,
    STAGE_STREAMING,
    ExecutionPlan,
    SimRequest,
    capabilities_for,
    plan_request,
)

HIERARCHY = ExperimentConfig.smoke().hierarchy


@pytest.fixture(autouse=True)
def _reset_backend_and_memo():
    set_default_backend(None)
    clear_caches()
    yield
    set_default_backend(None)
    set_disk_memo(None)
    clear_caches()


def _request(scheme="RRIP", *, native=True, **kwargs):
    policies = (scheme_policy(scheme),) if scheme != "OPT" else ()
    kwargs.setdefault("hierarchy", HIERARCHY)
    return SimRequest(
        schemes=(scheme,), policies=policies, native_override=native, **kwargs
    )


class TestSimRequest:
    def test_needs_a_scheme(self):
        with pytest.raises(ValueError, match="at least one scheme"):
            SimRequest(schemes=())

    def test_policies_must_align(self):
        with pytest.raises(ValueError, match="1 policy object"):
            SimRequest(schemes=("RRIP", "GRASP"), policies=(scheme_policy("RRIP"),))

    def test_consumer_count_defaults_to_distinct_schemes(self):
        request = SimRequest(schemes=("RRIP", "GRASP", "RRIP"))
        assert request.consumer_count() == 2
        assert SimRequest(schemes=("RRIP",), consumers=5).consumer_count() == 5

    def test_native_override_cannot_conjure_kernels(self, monkeypatch):
        monkeypatch.setattr(kernels, "available", lambda: False)
        request = SimRequest(schemes=("RRIP",), native_override=True)
        assert not request.has_kernel("fused:rrip")


class TestCapabilities:
    def test_every_family_is_declared(self):
        for scheme in ("LRU", "RRIP", "GRASP", "SHiP-MEM", "Hawkeye", "Leeway", "PIN-75"):
            caps = capabilities_for(scheme_policy(scheme))
            assert caps.vector_replay
            assert caps.fused_kernel is not None

    def test_ablations_are_scalar(self):
        caps = capabilities_for(scheme_policy("RRIP+Hints"))
        assert caps.family == "scalar"
        assert not caps.vector_replay

    def test_opt_has_no_corun(self):
        caps = ENGINE_CAPABILITIES["opt"]
        assert not caps.corun_partitioned and not caps.corun_shared


class TestSinglePolicyRouting:
    def test_roi_prefers_fused(self):
        plan = PLANNER.plan(_request(stage=STAGE_ROI))
        assert plan.route == ROUTE_FUSED
        assert plan.kernel == "native-fused"
        assert plan.fallbacks == ()

    def test_no_kernels_degrades_to_numpy_with_reason(self):
        plan = PLANNER.plan(_request(stage=STAGE_ROI, native=False))
        assert plan.route == ROUTE_VECTOR
        assert plan.kernel == "numpy"
        assert any("unavailable" in reason for reason in plan.fallbacks)

    def test_shared_roi_trace_skips_fused(self):
        plan = PLANNER.plan(_request(stage=STAGE_ROI, consumers=2))
        assert plan.route == ROUTE_VECTOR
        assert any("2 consumers" in reason for reason in plan.fallbacks)

    def test_cached_roi_trace_skips_fused(self):
        plan = PLANNER.plan(_request(stage=STAGE_ROI, have_trace_cache=True))
        assert plan.route == ROUTE_VECTOR
        assert any("already cached" in reason for reason in plan.fallbacks)

    def test_streaming_chunk_store_skips_fused(self):
        plan = PLANNER.plan(_request(stage=STAGE_STREAMING, have_chunk_store=True))
        assert plan.route == ROUTE_VECTOR
        assert any("chunk store" in reason for reason in plan.fallbacks)

    def test_streaming_shared_consumers_need_a_memo_to_skip_fused(self):
        shared = _request(stage=STAGE_STREAMING, consumers=2, have_memo=True)
        assert PLANNER.plan(shared).route == ROUTE_VECTOR
        memoless = _request(stage=STAGE_STREAMING, consumers=2, have_memo=False)
        assert PLANNER.plan(memoless).route == ROUTE_FUSED

    def test_scalar_backend_is_the_reference(self):
        plan = PLANNER.plan(_request(stage=STAGE_ROI, backend="scalar"))
        assert plan.route == ROUTE_SCALAR
        assert plan.kernel == "python"

    def test_verify_rides_the_vector_route(self):
        plan = PLANNER.plan(_request(stage=STAGE_ROI, backend="verify"))
        assert plan.route == ROUTE_VECTOR
        assert plan.verify
        assert any("dual-run" in reason for reason in plan.fallbacks)

    def test_ablation_subclass_is_scalar_on_any_backend(self):
        plan = PLANNER.plan(_request("RRIP+Hints", stage=STAGE_ROI))
        assert plan.route == ROUTE_SCALAR
        assert plan.engine == "scalar"
        assert any("array-form" in reason for reason in plan.fallbacks)


class TestOptRouting:
    def test_oneshot_is_vector(self):
        plan = PLANNER.plan(_request("OPT", stage=STAGE_ONESHOT))
        assert plan.route == ROUTE_OPT_VECTOR
        assert plan.kernel == "native"

    def test_streaming_is_two_pass(self):
        plan = PLANNER.plan(_request("OPT", stage=STAGE_STREAMING))
        assert plan.route == ROUTE_OPT_TWO_PASS
        assert any("two-pass" in reason for reason in plan.fallbacks)

    def test_scalar_backend_is_offline_reference(self):
        plan = PLANNER.plan(_request("OPT", stage=STAGE_STREAMING, backend="scalar"))
        assert plan.route == ROUTE_OPT_SCALAR
        assert plan.kernel == "python"

    def test_corun_raises(self):
        with pytest.raises(ValueError, match="no co-run analogue"):
            PLANNER.plan(_request("OPT", stage=STAGE_CORUN, num_streams=2))


class TestCorunRouting:
    def test_partitioned_is_vector(self):
        plan = PLANNER.plan(
            _request(stage=STAGE_CORUN, num_streams=2,
                     partition=WayPartition.parse("8:8"))
        )
        assert plan.route == ROUTE_CORUN_VECTOR

    def test_degenerate_corun_delegates(self):
        plan = PLANNER.plan(_request(stage=STAGE_CORUN, num_streams=1))
        assert plan.route == ROUTE_CORUN_DELEGATE
        assert any("delegates" in reason for reason in plan.fallbacks)

    def test_unpartitioned_pin_falls_back_to_scalar(self):
        plan = PLANNER.plan(_request("PIN-75", stage=STAGE_CORUN, num_streams=2))
        assert plan.route == ROUTE_CORUN_SCALAR
        assert any("per-stream bypass" in reason for reason in plan.fallbacks)


class TestMultiSchemeRouting:
    def _multi(self, schemes, *, stage=STAGE_ROI, **kwargs):
        return SimRequest(
            schemes=tuple(schemes),
            policies=tuple(scheme_policy(s) for s in schemes),
            stage=stage,
            hierarchy=HIERARCHY,
            **kwargs,
        )

    @pytest.mark.skipif(
        not kernels.has_capability("fused:filter"), reason="no fused filter kernel"
    )
    def test_fused_multi_preferred(self):
        plan = PLANNER.plan(self._multi(("RRIP", "GRASP")))
        assert plan.route == ROUTE_FUSED_MULTI
        assert plan.engine == "multi"
        assert plan.scheme == "RRIP+GRASP"
        assert plan.schemes == ("RRIP", "GRASP")

    def test_no_kernel_materializes_once(self):
        plan = PLANNER.plan(self._multi(("RRIP", "GRASP"), native_override=False))
        assert plan.route == ROUTE_VECTOR
        assert plan.engine == "staged"
        assert any("materializes the filtered trace once" in r for r in plan.fallbacks)

    def test_ablation_member_disables_shared_pass(self):
        plan = PLANNER.plan(self._multi(("RRIP", "RRIP+Hints")))
        assert plan.route == ROUTE_VECTOR
        assert any("'RRIP+Hints'" in reason for reason in plan.fallbacks)

    def test_cached_trace_disables_shared_pass(self):
        plan = PLANNER.plan(self._multi(("RRIP", "GRASP"), have_trace_cache=True))
        assert plan.route == ROUTE_VECTOR

    def test_scalar_backend_stays_scalar(self):
        plan = PLANNER.plan(self._multi(("RRIP", "GRASP"), backend="scalar"))
        assert plan.route == ROUTE_SCALAR
        assert plan.kernel == "python"


#: Golden (route, engine, kernel) snapshots.  ``native_override`` pins the
#: kernel environment, so these hold on any machine.
GOLDEN_PLANS = [
    (dict(scheme="RRIP", stage=STAGE_ROI, native=True),
     (ROUTE_FUSED, "rrip", "native-fused")),
    (dict(scheme="RRIP", stage=STAGE_ROI, native=False),
     (ROUTE_VECTOR, "rrip", "numpy")),
    (dict(scheme="RRIP", stage=STAGE_ROI, native=True, consumers=2),
     (ROUTE_VECTOR, "rrip", "native")),
    (dict(scheme="GRASP", stage=STAGE_STREAMING, native=True),
     (ROUTE_FUSED, "rrip", "native-fused")),
    (dict(scheme="GRASP", stage=STAGE_STREAMING, native=True, have_chunk_store=True),
     (ROUTE_VECTOR, "rrip", "native")),
    (dict(scheme="Hawkeye", stage=STAGE_ONESHOT, native=True),
     (ROUTE_VECTOR, "hawkeye", "native")),
    (dict(scheme="SHiP-MEM", stage=STAGE_ONESHOT, native=False),
     (ROUTE_VECTOR, "ship", "numpy")),
    (dict(scheme="RRIP+Hints", stage=STAGE_ROI, native=True),
     (ROUTE_SCALAR, "scalar", "python")),
    (dict(scheme="RRIP", stage=STAGE_ROI, native=True, backend="scalar"),
     (ROUTE_SCALAR, "scalar", "python")),
    (dict(scheme="OPT", stage=STAGE_ONESHOT, native=True),
     (ROUTE_OPT_VECTOR, "opt", "native")),
    (dict(scheme="OPT", stage=STAGE_ONESHOT, native=False),
     (ROUTE_OPT_VECTOR, "opt", "numpy")),
    (dict(scheme="OPT", stage=STAGE_STREAMING, native=True),
     (ROUTE_OPT_TWO_PASS, "opt", "native")),
    (dict(scheme="OPT", stage=STAGE_STREAMING, native=True, backend="scalar"),
     (ROUTE_OPT_SCALAR, "opt", "python")),
    (dict(scheme="PIN-75", stage=STAGE_CORUN, native=True, num_streams=2),
     (ROUTE_CORUN_SCALAR, "scalar", "python")),
    (dict(scheme="RRIP", stage=STAGE_CORUN, native=True, num_streams=1),
     (ROUTE_CORUN_DELEGATE, "rrip", "native")),
]


@pytest.mark.parametrize("kwargs,expected", GOLDEN_PLANS)
def test_golden_plan(kwargs, expected):
    plan = plan_request(_request(**kwargs))
    assert (plan.route, plan.engine, plan.kernel) == expected


def test_plan_json_roundtrip():
    plan = PLANNER.plan(_request(stage=STAGE_ROI))
    payload = json.loads(json.dumps(plan.to_json()))
    assert payload["route"] == plan.route
    assert payload["schemes"] == list(plan.schemes)
    assert isinstance(payload["fallbacks"], list)
    assert set(payload) == {
        "route", "stage", "scheme", "schemes", "engine", "kernel",
        "backend", "verify", "threads", "fallbacks",
    }


def test_plan_explain_mentions_every_fallback():
    plan = PLANNER.plan(_request(stage=STAGE_ROI, native=False, backend="verify"))
    text = plan.explain()
    assert f"route    : {plan.route}" in text
    for reason in plan.fallbacks:
        assert reason in text


class TestDispatchErrors:
    def test_env_var_named_in_error(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp-drive")
        with pytest.raises(ValueError, match=r"from REPRO_SIM_BACKEND"):
            default_backend()

    def test_explicit_backend_error_has_no_env_blame(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_backend("warp-drive")
        assert BACKEND_ENV_VAR not in str(excinfo.value)

    def test_set_default_backend_normalizes_whitespace(self):
        set_default_backend("  Vector \n")
        assert default_backend() == "vector"

    def test_env_whitespace_normalized(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "  SCALAR ")
        assert default_backend() == "scalar"


class TestTaskPlanning:
    def test_plan_scheme_task_without_memo(self):
        config = ExperimentConfig.smoke()
        plan = plan_scheme_task("PR", "lj", config.reorder, "GRASP", config)
        assert plan.stage == STAGE_ROI
        assert plan.route in (ROUTE_FUSED, ROUTE_VECTOR)

    def test_plan_reflects_memo_state(self, tmp_path):
        """Once a sweep persisted its chunk store, the next plan replays it."""
        from repro.experiments.runner import build_workload, simulate_llc_policy_streaming

        config = ExperimentConfig.smoke()
        memo = DiskMemo(tmp_path)
        set_disk_memo(memo)
        # Force the staged path (shared stream) so the chunk store persists.
        workload = build_workload("PR", "lj", config=config)
        simulate_llc_policy_streaming(
            workload, scheme_policy("GRASP"), config=config, shared_stream=True
        )
        plan = plan_scheme_task(
            "PR", "lj", config.reorder, "GRASP", config, streaming=True
        )
        assert plan.route == ROUTE_VECTOR
        assert any("chunk store" in reason for reason in plan.fallbacks)

    def test_plan_corun_task_matches_runner(self):
        config = ExperimentConfig.smoke()
        spec = CorunSpec(pairs=(("PR", "lj"), ("CC", "lj")))
        plan = plan_corun_task(spec, "RRIP", config)
        assert plan.stage == STAGE_CORUN
        assert plan.route in (ROUTE_CORUN_VECTOR, ROUTE_CORUN_SCALAR)
        with pytest.raises(ValueError, match="no co-run analogue"):
            plan_corun_task(spec, "OPT", config)


class TestManifestPlans:
    def test_sweep_manifest_embeds_plans(self, tmp_path):
        from repro.experiments.service import SweepSpec, load_manifest, run_sweep

        config = ExperimentConfig.smoke()
        spec = SweepSpec(apps=("PR",), datasets=("lj",), schemes=("GRASP",))
        result = run_sweep(
            spec, config=config, cache_dir=tmp_path, worker_backend="inline"
        )
        manifest = load_manifest(tmp_path, result.run_id)
        plans = manifest["plans"]
        assert set(plans) == {"PR/lj/RRIP", "PR/lj/GRASP"}
        for plan in plans.values():
            assert plan["stage"] == STAGE_ROI
            assert plan["route"]
            assert plan["kernel"]


class TestPlanExplainCli:
    def test_text_output(self, tmp_path, capsys):
        status = cli_main([
            "plan", "explain", "--apps", "PR", "--datasets", "lj",
            "--schemes", "RRIP,GRASP", "--preset", "smoke",
            "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "== PR/lj/RRIP ==" in out
        assert "== PR/lj/GRASP ==" in out
        assert "route    :" in out
        assert "because  :" in out

    def test_json_output_is_parseable(self, tmp_path, capsys):
        status = cli_main([
            "plan", "explain", "--apps", "PR", "--datasets", "lj",
            "--schemes", "GRASP", "--streaming", "--preset", "smoke",
            "--json", "--cache-dir", str(tmp_path),
        ])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"PR/lj/RRIP", "PR/lj/GRASP"}
        assert all(plan["stage"] == STAGE_STREAMING for plan in payload.values())

    def test_corun_opt_reports_error(self, tmp_path, capsys):
        status = cli_main([
            "plan", "explain", "--corun", "PR,CC", "--datasets", "lj",
            "--schemes", "RRIP,OPT", "--preset", "smoke",
            "--cache-dir", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert status == 1
        assert "no co-run analogue" in captured.err
        assert "corun:PR/lj+CC/lj/RRIP" in captured.out


def test_native_facade_deprecation():
    sys.modules.pop("repro.fastsim._native", None)
    with pytest.warns(DeprecationWarning, match="repro.fastsim._native is deprecated"):
        importlib.import_module("repro.fastsim._native")
