"""Multi-programmed co-run subsystem suite (ISSUE 9).

Covers every layer the stream identity threads through:

* trace layer — :class:`InterleavedTraceStream` schedule determinism, output
  chunk-size invariance, per-stream subsequence preservation and the
  address-space remap (stream 0 untouched, stream ``k`` offset by
  ``k << STREAM_ADDRESS_BITS``);
* policy layer — :class:`WayPartition` parsing/geometry and the
  :class:`PartitionedPolicy` wrapper contract (plain policies reject a
  partition at bind time, no double wrapping);
* cache layer — the partition boundary invariant: after any partitioned
  replay, every resident block's stream owns the way it occupies, i.e. no
  eviction or insertion ever crossed a partition boundary;
* fastsim layer — :class:`CorunReplayStream` against the scalar
  stream-tracking :class:`SetAssociativeCache` bit-exactly, per scheme, both
  partitioned and shared, and the 1-stream replay identity against the
  single-app :class:`PolicyReplayStream`;
* runner layer — ``simulate_corun``'s degenerate-K=1 delegation to the
  single-app streaming path (same stats, same memo entries, no ``streams``
  key in the summary), the per-stream ``validate()`` invariants of a real
  K=2 co-run under the ``verify`` backend, and the per-app data points of
  ``compare_policies_corun``.
"""

import numpy as np
import pytest

from repro.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.partition import PartitionedPolicy, WayPartition
from repro.cache.policies import LRUPolicy
from repro.cache.policies.opt import BeladyOptimal
from repro.experiments import ExperimentConfig
from repro.experiments.runner import (
    CorunSpec,
    build_workload,
    compare_policies_corun,
    corun_memo_key,
    simulate_corun,
    simulate_scheme_streaming,
)
from repro.experiments.schemes import scheme_policy
from repro.fastsim import CorunReplayStream, PolicyReplayStream, supports_vector_corun
from repro.fastsim.filter import assert_stats_equal
from repro.trace.interleave import (
    SCHEDULES,
    STREAM_ADDRESS_BITS,
    InterleavedTraceStream,
)

#: Shared-LLC geometry of the synthetic co-run tests: 16 sets x 16 ways.
LLC = CacheConfig(size_bytes=16 * 1024, ways=16, block_bytes=64, name="LLC")

#: Schemes exercised against the scalar reference (OPT has no co-run form).
CORUN_SCHEMES = ("LRU", "RRIP", "GRASP", "SHiP-MEM", "Hawkeye", "Leeway", "PIN-50")


class _SourceChunk:
    """Minimal chunk-like object: parallel block/pc/region/hint arrays."""

    def __init__(self, blocks, pcs, regions, hints):
        self.block_addresses = np.asarray(blocks, dtype=np.int64)
        self.pcs = np.asarray(pcs, dtype=np.int64)
        self.regions = np.asarray(regions, dtype=np.int64)
        self.hints = np.asarray(hints, dtype=np.int64)


def synthetic_source(seed, length, pieces=4):
    """One app's LLC stream as a list of unevenly sized chunks."""
    rng = np.random.default_rng(seed)
    blocks = rng.integers(0, 512, size=length)
    pcs = rng.integers(0, 64, size=length) * 4
    regions = rng.integers(0, 4, size=length)
    hints = rng.integers(0, 4, size=length)
    cuts = sorted(rng.integers(1, length, size=pieces - 1).tolist())
    bounds = [0] + cuts + [length]
    return [
        _SourceChunk(blocks[a:b], pcs[a:b], regions[a:b], hints[a:b])
        for a, b in zip(bounds, bounds[1:])
        if b > a
    ]


def _concat(sources_or_chunks, field):
    return np.concatenate([getattr(chunk, field) for chunk in sources_or_chunks])


def merged_arrays(sources, **kwargs):
    chunks = list(InterleavedTraceStream(sources, **kwargs))
    return {
        field: _concat(chunks, field)
        for field in ("block_addresses", "pcs", "regions", "hints", "stream_ids")
    }


# ---------------------------------------------------------------------------
# trace layer
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("schedule", SCHEDULES)
def test_schedule_deterministic_and_chunk_invariant(schedule):
    """The merge order never depends on the output chunk budget."""
    make = lambda: [synthetic_source(11, 700), synthetic_source(22, 450)]  # noqa: E731
    reference = merged_arrays(make(), schedule=schedule, quantum=16, seed=5)
    assert len(reference["block_addresses"]) == 700 + 450
    for chunk_accesses in (97, 256, 1 << 16):
        again = merged_arrays(
            make(), schedule=schedule, quantum=16, seed=5, chunk_accesses=chunk_accesses
        )
        for field, expected in reference.items():
            np.testing.assert_array_equal(again[field], expected)


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_per_stream_subsequence_and_remap(schedule):
    """Each stream's accesses survive in order; only its blocks are offset."""
    sources = [synthetic_source(1, 300), synthetic_source(2, 500), synthetic_source(3, 200)]
    originals = [
        {field: _concat(source, field) for field in ("block_addresses", "pcs", "regions", "hints")}
        for source in sources
    ]
    merged = merged_arrays(sources, schedule=schedule, quantum=7, seed=9)
    for stream, original in enumerate(originals):
        mask = merged["stream_ids"] == stream
        blocks = merged["block_addresses"][mask]
        offset = np.int64(stream) << STREAM_ADDRESS_BITS
        assert np.all((blocks >> STREAM_ADDRESS_BITS) == stream)
        np.testing.assert_array_equal(blocks - offset, original["block_addresses"])
        for field in ("pcs", "regions", "hints"):
            np.testing.assert_array_equal(merged[field][mask], original[field])


def test_remap_disabled_keeps_raw_blocks():
    sources = [synthetic_source(4, 150), synthetic_source(5, 150)]
    raw = [_concat(source, "block_addresses") for source in sources]
    merged = merged_arrays(sources, remap=False)
    for stream in (0, 1):
        np.testing.assert_array_equal(
            merged["block_addresses"][merged["stream_ids"] == stream], raw[stream]
        )


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_single_stream_is_passthrough(schedule):
    """K=1 interleaving is the identity on the underlying stream."""
    source = synthetic_source(7, 600)
    original = {
        field: _concat(source, field)
        for field in ("block_addresses", "pcs", "regions", "hints")
    }
    merged = merged_arrays([source], schedule=schedule, quantum=13, seed=3)
    assert np.all(merged["stream_ids"] == 0)
    for field, expected in original.items():
        np.testing.assert_array_equal(merged[field], expected)


def test_poisson_schedule_is_seeded():
    make = lambda: [synthetic_source(8, 800), synthetic_source(9, 800)]  # noqa: E731
    a = merged_arrays(make(), schedule="poisson", quantum=8, seed=1)
    b = merged_arrays(make(), schedule="poisson", quantum=8, seed=1)
    np.testing.assert_array_equal(a["stream_ids"], b["stream_ids"])
    c = merged_arrays(make(), schedule="poisson", quantum=8, seed=2)
    assert not np.array_equal(a["stream_ids"], c["stream_ids"])


def test_interleave_parameter_validation():
    source = synthetic_source(1, 10)
    with pytest.raises(ValueError):
        InterleavedTraceStream([])
    with pytest.raises(ValueError):
        InterleavedTraceStream([source], schedule="fifo")
    with pytest.raises(ValueError):
        InterleavedTraceStream([source], quantum=0)
    with pytest.raises(ValueError):
        InterleavedTraceStream([source], chunk_accesses=0)


# ---------------------------------------------------------------------------
# partition layer
# ---------------------------------------------------------------------------

def test_way_partition_geometry():
    part = WayPartition.parse("4:12")
    assert part.counts == (4, 12)
    assert part.num_streams == 2
    assert part.total_ways == 16
    assert str(part) == "4:12"
    assert part.bounds(0) == (0, 4)
    assert part.bounds(1) == (4, 16)
    assert list(part.allowed(0)) == [0, 1, 2, 3]
    assert [part.owner_of(way) for way in range(16)] == [0] * 4 + [1] * 12
    part.validate_ways(16)
    with pytest.raises(ValueError):
        part.validate_ways(8)
    with pytest.raises(IndexError):
        part.bounds(2)
    with pytest.raises(IndexError):
        part.owner_of(16)


@pytest.mark.parametrize("bad", ["", "8:", "a:b", "8:0", "8:-4"])
def test_way_partition_parse_rejects(bad):
    with pytest.raises(ValueError):
        WayPartition.parse(bad)


def test_plain_policy_rejects_partition_at_bind():
    with pytest.raises(ValueError, match="PartitionedPolicy"):
        LRUPolicy().bind(16, 16, WayPartition((8, 8)))


def test_partitioned_policy_wrapper_contract():
    part = WayPartition((8, 8))
    wrapper = PartitionedPolicy(LRUPolicy(), part)
    assert wrapper.name == "lru@8:8"
    with pytest.raises(ValueError):
        PartitionedPolicy(wrapper, part)
    with pytest.raises(ValueError):
        wrapper.bind(16, 12)  # shares don't cover 12 ways
    wrapper.bind(16, 16)
    assert wrapper.sub_policy(0).ways == 8


def test_corun_spec_validates_partition_arity():
    with pytest.raises(ValueError):
        CorunSpec(pairs=(("PR", "lj"),), partition=WayPartition((8, 8)))
    with pytest.raises(ValueError):
        CorunSpec(pairs=())


# ---------------------------------------------------------------------------
# cache layer: no eviction crosses a partition boundary
# ---------------------------------------------------------------------------

def _merged_chunks(num_streams=2, length=1500, schedule="round_robin", quantum=16):
    sources = [synthetic_source(100 + k, length) for k in range(num_streams)]
    return list(
        InterleavedTraceStream(
            sources, schedule=schedule, quantum=quantum, seed=0, chunk_accesses=499
        )
    )


def _feed_scalar(cache, chunks):
    for chunk in chunks:
        for block, pc, hint, region, stream in zip(
            chunk.block_addresses.tolist(),
            chunk.pcs.tolist(),
            chunk.hints.tolist(),
            chunk.regions.tolist(),
            chunk.stream_ids.tolist(),
        ):
            cache.access_block(block, pc, hint, region, stream)


@pytest.mark.parametrize("scheme", CORUN_SCHEMES)
def test_partition_boundary_invariant(scheme):
    """Every resident block sits in a way owned by its own stream."""
    part = WayPartition((4, 12))
    cache = SetAssociativeCache(LLC, scheme_policy(scheme), partition=part)
    chunks = _merged_chunks()
    _feed_scalar(cache, chunks)
    placements = cache.resident_blocks_by_way()
    assert placements, "the replay must leave resident blocks behind"
    for _set_index, way, block in placements:
        assert block >> STREAM_ADDRESS_BITS == part.owner_of(way)
    stats = cache.stats.validate()
    assert set(stats.stream_accesses) == {0, 1}
    assert sum(stats.stream_accesses.values()) == stats.accesses


@pytest.mark.parametrize("scheme", CORUN_SCHEMES)
@pytest.mark.parametrize("counts", [None, (8, 8), (4, 12)])
def test_vector_corun_matches_scalar(scheme, counts):
    """CorunReplayStream reproduces the stream-tracking scalar cache exactly."""
    part = WayPartition(counts) if counts else None
    policy = scheme_policy(scheme)
    if not supports_vector_corun(policy, part):
        pytest.skip(f"{scheme} with partition={part} is scalar-only by design")
    vector = CorunReplayStream(policy, LLC, 2, partition=part)
    cache = SetAssociativeCache(
        LLC, scheme_policy(scheme), partition=part, track_streams=True
    )
    chunks = _merged_chunks(schedule="poisson", quantum=8)
    for chunk in chunks:
        vector.feed(
            chunk.block_addresses, chunk.stream_ids, chunk.hints, chunk.regions, chunk.pcs
        )
    _feed_scalar(cache, chunks)
    assert_stats_equal(cache.stats.validate(), vector.stats(), f"co-run {scheme}")


@pytest.mark.parametrize("scheme", CORUN_SCHEMES)
def test_single_stream_replay_identity(scheme):
    """A 1-stream co-run replay is bit-identical to the single-app replay."""
    policy = scheme_policy(scheme)
    if not supports_vector_corun(policy, None):
        pytest.skip(f"{scheme} is scalar-only when unpartitioned")
    source = synthetic_source(42, 2000)
    chunks = list(InterleavedTraceStream([source], chunk_accesses=333))
    corun = CorunReplayStream(policy, LLC, 1)
    single = PolicyReplayStream(scheme_policy(scheme), LLC)
    corun_hits = np.concatenate(
        [
            corun.feed(c.block_addresses, c.stream_ids, c.hints, c.regions, c.pcs)
            for c in chunks
        ]
    )
    single_hits = np.concatenate(
        [single.feed(c.block_addresses, c.hints, c.regions, c.pcs) for c in chunks]
    )
    np.testing.assert_array_equal(corun_hits, single_hits)
    corun_stats, single_stats = corun.stats(), single.stats()
    for field in ("accesses", "hits", "misses", "evictions", "bypasses"):
        assert getattr(corun_stats, field) == getattr(single_stats, field)
    assert corun_stats.region_accesses == single_stats.region_accesses
    assert corun_stats.region_misses == single_stats.region_misses


def test_supports_vector_corun_predicate():
    part = WayPartition((8, 8))
    assert supports_vector_corun(scheme_policy("LRU"), None)
    assert supports_vector_corun(scheme_policy("GRASP"), part)
    assert not supports_vector_corun(scheme_policy("PIN-50"), None)
    assert supports_vector_corun(scheme_policy("PIN-50"), part)
    assert not supports_vector_corun(BeladyOptimal(LLC), None)


def test_corun_replay_stream_validates_geometry():
    with pytest.raises(ValueError):
        CorunReplayStream(scheme_policy("LRU"), LLC, 0)
    with pytest.raises(ValueError):
        CorunReplayStream(scheme_policy("LRU"), LLC, 2, partition=WayPartition((4, 4)))
    with pytest.raises(ValueError):
        CorunReplayStream(scheme_policy("LRU"), LLC, 3, partition=WayPartition((8, 8)))
    with pytest.raises(ValueError):
        CorunReplayStream(scheme_policy("PIN-50"), LLC, 2)


# ---------------------------------------------------------------------------
# runner layer
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def corun_config():
    return ExperimentConfig.smoke().with_overrides(scale=0.06, backend="verify")


def test_degenerate_corun_is_the_single_app_path(memo_isolation, corun_config):
    """K=1 + no partition delegates: same stats, same memo keys, no streams."""
    config = corun_config.with_overrides(backend="vector")
    spec = CorunSpec(pairs=(("PR", "lj"),))
    corun = simulate_corun(spec, "GRASP", config)
    workload = build_workload("PR", "lj", reorder=config.reorder, config=config)
    single = simulate_scheme_streaming(workload, "GRASP", config)
    assert corun is single  # served from the policystream memo, not recomputed
    assert corun.as_dict() == single.as_dict()
    assert "streams" not in corun.as_dict()


def test_corun_rejects_opt(corun_config):
    spec = CorunSpec(pairs=(("PR", "lj"), ("PR", "pl")))
    with pytest.raises(ValueError, match="OPT"):
        simulate_corun(spec, "OPT", corun_config)


@pytest.mark.parametrize("counts", [None, (8, 8)])
def test_corun_stream_invariants_end_to_end(memo_isolation, corun_config, counts):
    """A real K=2 co-run verifies scalar==vector and the per-stream sums."""
    part = WayPartition(counts) if counts else None
    spec = CorunSpec(pairs=(("PR", "lj"), ("PR", "pl")), partition=part)
    stats = simulate_corun(spec, "GRASP", corun_config)
    stats.validate()
    assert set(stats.stream_accesses) == {0, 1}
    assert sum(stats.stream_accesses.values()) == stats.accesses
    assert sum(stats.stream_hits.values()) == stats.hits
    assert sum(stats.stream_misses.values()) == stats.misses
    assert stats.stream_view(0).accesses == stats.stream_accesses[0]
    assert "streams" in stats.as_dict()


def test_corun_memo_key_is_schedule_sensitive(corun_config):
    base = CorunSpec(pairs=(("PR", "lj"), ("PR", "pl")))
    key = corun_memo_key(base, "dbg", "GRASP", corun_config)
    assert key[-1] == "corun"
    variants = [
        CorunSpec(pairs=base.pairs, schedule="poisson"),
        CorunSpec(pairs=base.pairs, quantum=8),
        CorunSpec(pairs=base.pairs, seed=1),
        CorunSpec(pairs=base.pairs, partition=WayPartition((8, 8))),
    ]
    keys = {key} | {
        corun_memo_key(variant, "dbg", "GRASP", corun_config) for variant in variants
    }
    assert len(keys) == 1 + len(variants)


def test_compare_policies_corun_points(memo_isolation, corun_config):
    """One data point per co-runner per scheme, baseline-relative per stream."""
    spec = CorunSpec(
        pairs=(("PR", "lj"), ("PR", "pl")), partition=WayPartition((8, 8))
    )
    points = compare_policies_corun(
        spec, ["RRIP", "GRASP"], config=corun_config, baseline="RRIP"
    )
    assert [(p.app_name, p.dataset_name, p.scheme) for p in points] == [
        ("PR", "lj", "RRIP"),
        ("PR", "pl", "RRIP"),
        ("PR", "lj", "GRASP"),
        ("PR", "pl", "GRASP"),
    ]
    for point in points[:2]:
        assert point.miss_reduction_pct == pytest.approx(0.0)
        assert point.speedup_pct == pytest.approx(0.0)
    totals = simulate_corun(spec, "GRASP", corun_config)
    assert points[2].stats.misses + points[3].stats.misses == totals.misses
