"""Tests for the GRASP replacement policy and its ablation variants (Table II / Fig. 7)."""


from repro.cache import CacheConfig, SetAssociativeCache
from repro.cache.hints import HINT_DEFAULT, HINT_HIGH, HINT_LOW, HINT_MODERATE
from repro.cache.policies import DRRIPPolicy, LRUPolicy, create_policy
from repro.core import GraspInsertionOnlyPolicy, GraspPolicy, RRIPWithHintsPolicy

CONFIG = CacheConfig(size_bytes=1024, ways=4, block_bytes=64, name="LLC")  # 4 sets


def same_set_blocks(count, set_index=0, num_sets=4):
    return [(set_index + i * num_sets) * 64 for i in range(count)]


class TestGraspInsertionPolicy:
    """Table II, insertion column."""

    def setup_method(self):
        self.policy = GraspPolicy()
        self.policy.bind(num_sets=4, ways=4)

    def test_high_reuse_inserts_at_mru(self):
        assert self.policy.insertion_rrpv(2, 0, 0, HINT_HIGH) == 0

    def test_moderate_reuse_inserts_near_lru(self):
        assert self.policy.insertion_rrpv(2, 0, 0, HINT_MODERATE) == 6

    def test_low_reuse_inserts_at_lru(self):
        assert self.policy.insertion_rrpv(2, 0, 0, HINT_LOW) == 7

    def test_default_follows_drrip(self):
        value = self.policy.insertion_rrpv(2, 0, 0, HINT_DEFAULT)
        assert value in (6, 7)


class TestGraspHitPolicy:
    """Table II, hit column."""

    def setup_method(self):
        self.policy = GraspPolicy()
        self.policy.bind(num_sets=4, ways=4)

    def test_high_reuse_hit_promotes_to_mru(self):
        self.policy.set_rrpv(0, 1, 5)
        self.policy.on_hit(0, 1, 0, 0, HINT_HIGH)
        assert self.policy.rrpv_of(0, 1) == 0

    def test_moderate_hit_decrements(self):
        self.policy.set_rrpv(0, 1, 6)
        self.policy.on_hit(0, 1, 0, 0, HINT_MODERATE)
        assert self.policy.rrpv_of(0, 1) == 5

    def test_low_hit_decrements(self):
        self.policy.set_rrpv(0, 1, 7)
        self.policy.on_hit(0, 1, 0, 0, HINT_LOW)
        assert self.policy.rrpv_of(0, 1) == 6

    def test_decrement_saturates_at_zero(self):
        self.policy.set_rrpv(0, 1, 0)
        self.policy.on_hit(0, 1, 0, 0, HINT_LOW)
        assert self.policy.rrpv_of(0, 1) == 0

    def test_default_hit_promotes_to_mru(self):
        self.policy.set_rrpv(0, 1, 6)
        self.policy.on_hit(0, 1, 0, 0, HINT_DEFAULT)
        assert self.policy.rrpv_of(0, 1) == 0


class TestGraspEvictionUnchanged:
    def test_victim_selection_ignores_hints(self):
        """GRASP's eviction policy is the baseline RRIP victim search; a stale
        High-Reuse block must be evictable once it has aged to RRPV max."""
        grasp = GraspPolicy()
        drrip = DRRIPPolicy()
        grasp.bind(4, 4)
        drrip.bind(4, 4)
        for way, value in enumerate([3, 7, 2, 6]):
            grasp.set_rrpv(1, way, value)
            drrip.set_rrpv(1, way, value)
        assert grasp.choose_victim(1, 0, 0, HINT_HIGH) == drrip.choose_victim(1, 0, 0, HINT_DEFAULT)

    def test_stale_hot_blocks_yield_space(self):
        """A High-Reuse block that stops being referenced is eventually evicted
        (the flexibility pinning lacks)."""
        cache = SetAssociativeCache(CONFIG, GraspPolicy())
        hot = same_set_blocks(1)[0]
        cache.access(hot, hint=HINT_HIGH)
        # A long phase of moderately reused blocks that do get hits.
        others = same_set_blocks(9)[1:]
        for _ in range(8):
            for address in others:
                cache.access(address, hint=HINT_MODERATE)
        assert not cache.contains(hot)


class TestGraspEndToEnd:
    def test_protects_hot_blocks_from_thrashing(self):
        """The core claim: under a thrashing scan, GRASP keeps High-Reuse
        blocks resident while the RRIP baseline loses them."""
        hot_blocks = same_set_blocks(2)
        cold_blocks = same_set_blocks(34)[2:]

        def run(policy):
            cache = SetAssociativeCache(CONFIG, policy)
            for address in hot_blocks:
                cache.access(address, hint=HINT_HIGH)
            hits = 0
            for _ in range(6):
                for address in cold_blocks:
                    cache.access(address, hint=HINT_LOW)
                for address in hot_blocks:
                    hits += cache.access(address, hint=HINT_HIGH)
            return hits

        grasp_hits = run(GraspPolicy())
        rrip_hits = run(DRRIPPolicy())
        lru_hits = run(LRUPolicy())
        assert grasp_hits == 2 * 6
        assert grasp_hits > rrip_hits
        assert grasp_hits > lru_hits

    def test_moderate_blocks_can_earn_residency(self):
        """Unlike pinning, GRASP lets blocks outside the High Reuse Region
        exploit temporal reuse: a Moderate block that hits repeatedly climbs
        towards MRU and survives."""
        cache = SetAssociativeCache(CONFIG, GraspPolicy())
        moderate = same_set_blocks(1)[0]
        cold = same_set_blocks(20)[1:]
        for _ in range(10):
            cache.access(moderate, hint=HINT_MODERATE)
        for address in cold[:3]:
            cache.access(address, hint=HINT_LOW)
        assert cache.contains(moderate)

    def test_default_hint_everywhere_matches_drrip(self):
        """With no ABRs configured every access carries Default and GRASP must
        be byte-for-byte identical to its DRRIP baseline."""
        import random

        rng = random.Random(3)
        trace = [rng.randrange(0, 1 << 16) & ~0x3F for _ in range(3000)]
        grasp_cache = SetAssociativeCache(CONFIG, GraspPolicy())
        drrip_cache = SetAssociativeCache(CONFIG, DRRIPPolicy())
        for address in trace:
            grasp_cache.access(address, hint=HINT_DEFAULT)
            drrip_cache.access(address, hint=HINT_DEFAULT)
        assert grasp_cache.stats.misses == drrip_cache.stats.misses
        assert sorted(grasp_cache.resident_blocks()) == sorted(drrip_cache.resident_blocks())


class TestAblationVariants:
    def test_rrip_with_hints_insertion_positions(self):
        policy = RRIPWithHintsPolicy()
        policy.bind(4, 4)
        assert policy.insertion_rrpv(2, 0, 0, HINT_HIGH) == 6
        assert policy.insertion_rrpv(2, 0, 0, HINT_MODERATE) == 7
        assert policy.insertion_rrpv(2, 0, 0, HINT_LOW) == 7
        assert policy.insertion_rrpv(2, 0, 0, HINT_DEFAULT) in (6, 7)

    def test_rrip_with_hints_keeps_baseline_hit_policy(self):
        policy = RRIPWithHintsPolicy()
        policy.bind(4, 4)
        policy.set_rrpv(0, 0, 6)
        policy.on_hit(0, 0, 0, 0, HINT_LOW)
        assert policy.rrpv_of(0, 0) == 0

    def test_insertion_only_uses_grasp_insertion(self):
        policy = GraspInsertionOnlyPolicy()
        policy.bind(4, 4)
        assert policy.insertion_rrpv(2, 0, 0, HINT_HIGH) == 0
        assert policy.insertion_rrpv(2, 0, 0, HINT_LOW) == 7

    def test_insertion_only_uses_baseline_hit_policy(self):
        policy = GraspInsertionOnlyPolicy()
        policy.bind(4, 4)
        policy.set_rrpv(0, 0, 6)
        policy.on_hit(0, 0, 0, 0, HINT_MODERATE)
        assert policy.rrpv_of(0, 0) == 0

    def test_registry_names(self):
        assert isinstance(create_policy("grasp"), GraspPolicy)
        assert isinstance(create_policy("rrip+hints"), RRIPWithHintsPolicy)
        assert isinstance(create_policy("grasp-insertion"), GraspInsertionOnlyPolicy)

    def test_feature_progression_on_synthetic_thrashing(self):
        """Fig. 7's qualitative ordering: adding hints, then MRU insertion,
        never hurts hot-block hit counts on a hot-plus-scan pattern."""
        hot_blocks = same_set_blocks(2)
        cold_blocks = same_set_blocks(26)[2:]

        def hot_hits(policy):
            cache = SetAssociativeCache(CONFIG, policy)
            hits = 0
            for _ in range(6):
                for address in hot_blocks:
                    hits += cache.access(address, hint=HINT_HIGH)
                for address in cold_blocks:
                    cache.access(address, hint=HINT_LOW)
            return hits

        baseline = hot_hits(DRRIPPolicy())
        hints_only = hot_hits(RRIPWithHintsPolicy())
        insertion = hot_hits(GraspInsertionOnlyPolicy())
        full = hot_hits(GraspPolicy())
        assert hints_only >= baseline
        assert insertion >= hints_only
        assert full >= insertion
