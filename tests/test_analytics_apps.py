"""Correctness tests for the graph applications, validated against networkx
where a reference algorithm exists."""

import networkx as nx
import numpy as np
import pytest

from repro.analytics import (
    APPLICATIONS,
    BetweennessCentrality,
    BreadthFirstSearch,
    ConnectedComponents,
    PageRank,
    PageRankDelta,
    RadiiEstimation,
    SingleSourceShortestPaths,
    get_application,
    list_applications,
)
from repro.analytics.apps import PAPER_APPLICATIONS
from repro.analytics.base import PULL, PUSH
from repro.graph import load
from repro.graph.generators import _chung_lu_graph
from repro.graph.builder import _from_edge_list


@pytest.fixture(scope="module")
def small_graph():
    """A modest power-law graph used across the validation tests."""
    return _chung_lu_graph(300, 6.0, exponent=2.1, seed=5)


def to_networkx(graph, weighted=False):
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(graph.num_vertices))
    sources, targets = graph.edge_arrays()
    if weighted:
        nx_graph.add_weighted_edges_from(
            zip(sources.tolist(), targets.tolist(), graph.out_weights.tolist())
        )
    else:
        nx_graph.add_edges_from(zip(sources.tolist(), targets.tolist()))
    return nx_graph


class TestRegistry:
    def test_paper_applications_present(self):
        assert set(PAPER_APPLICATIONS) <= set(APPLICATIONS)
        assert list_applications(paper_only=True) == list(PAPER_APPLICATIONS)

    def test_get_application(self):
        assert isinstance(get_application("PR"), PageRank)
        with pytest.raises(KeyError):
            get_application("NotAnApp")

    def test_access_profiles_well_formed(self):
        for name in APPLICATIONS:
            app = get_application(name)
            profile = app.access_profile()
            assert profile.num_property_arrays >= 1
            unmerged = app.base_access_profile()
            merged = unmerged.merge()
            assert merged.num_property_arrays == 1
            assert merged.edge_properties[0].element_bytes == sum(
                spec.element_bytes for spec in unmerged.edge_properties
            )

    def test_dominant_directions_match_paper(self):
        """Sec. IV-C: SSSP is push-dominant, all other apps pull-dominant."""
        assert get_application("SSSP").dominant_direction == PUSH
        for name in ("PR", "PRD", "BC", "Radii"):
            assert get_application(name).dominant_direction == PULL


class TestPageRank:
    def test_matches_networkx(self, small_graph):
        result = PageRank(tolerance=1e-12, max_iterations=200).run(small_graph)
        expected = nx.pagerank(to_networkx(small_graph), alpha=0.85, tol=1e-12, max_iter=200)
        ours = result.values["rank"]
        reference = np.array([expected[v] for v in range(small_graph.num_vertices)])
        assert np.allclose(ours, reference, atol=1e-6)

    def test_ranks_sum_to_one(self, small_graph):
        result = PageRank().run(small_graph)
        assert result.values["rank"].sum() == pytest.approx(1.0, abs=1e-6)

    def test_iterations_recorded_as_dense_pull(self, small_graph):
        result = PageRank().run(small_graph)
        assert result.num_iterations >= 2
        for record in result.iterations:
            assert record.direction == PULL
            assert record.active_vertices == small_graph.num_vertices

    def test_high_in_degree_vertex_ranks_high(self):
        edges = [(i, 0) for i in range(1, 20)] + [(0, 1)]
        graph = _from_edge_list(edges, num_vertices=20)
        ranks = PageRank().run(graph).values["rank"]
        assert np.argmax(ranks) == 0

    def test_empty_graph(self):
        graph = _from_edge_list([], num_vertices=0)
        assert PageRank().run(graph).values["rank"].size == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)
        with pytest.raises(ValueError):
            PageRank(tolerance=0)
        with pytest.raises(ValueError):
            PageRank(max_iterations=0)


class TestPageRankDelta:
    def test_approximates_pagerank(self, small_graph):
        pr = PageRank(tolerance=1e-12, max_iterations=200).run(small_graph).values["rank"]
        prd = PageRankDelta(epsilon=1e-4, max_iterations=200).run(small_graph).values["rank"]
        # PRD is an approximation: rank ordering of the top vertices must agree.
        top_pr = set(np.argsort(pr)[-10:].tolist())
        top_prd = set(np.argsort(prd)[-10:].tolist())
        assert len(top_pr & top_prd) >= 7
        assert prd.sum() == pytest.approx(pr.sum(), rel=0.05)

    def test_frontier_shrinks_over_time(self, small_graph):
        result = PageRankDelta(epsilon=1e-2).run(small_graph)
        sizes = [record.active_vertices for record in result.iterations]
        assert sizes[0] == small_graph.num_vertices
        assert sizes[-1] < sizes[0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PageRankDelta(damping=0)
        with pytest.raises(ValueError):
            PageRankDelta(epsilon=0)


class TestBFS:
    def test_distances_match_networkx(self, small_graph):
        result = BreadthFirstSearch().run(small_graph, root=0)
        expected = nx.single_source_shortest_path_length(to_networkx(small_graph), 0)
        distance = result.values["distance"]
        for vertex in range(small_graph.num_vertices):
            if vertex in expected:
                assert distance[vertex] == expected[vertex]
            else:
                assert distance[vertex] == -1

    def test_parents_are_consistent(self, small_graph):
        result = BreadthFirstSearch().run(small_graph, root=0)
        distance, parent = result.values["distance"], result.values["parent"]
        for vertex in range(small_graph.num_vertices):
            if distance[vertex] > 0:
                assert distance[parent[vertex]] == distance[vertex] - 1
                assert vertex in small_graph.out_neighbors(parent[vertex])

    def test_uses_both_directions_on_skewed_graph(self):
        graph = _chung_lu_graph(2000, 10.0, exponent=2.0, seed=2, deduplicate=False)
        result = BreadthFirstSearch().run(graph, root=int(np.argmax(graph.out_degrees)))
        directions = {record.direction for record in result.iterations}
        assert PUSH in directions
        assert PULL in directions

    def test_invalid_root(self, small_graph):
        with pytest.raises(ValueError):
            BreadthFirstSearch().run(small_graph, root=-1)


class TestBC:
    def test_single_source_matches_manual_brandes(self):
        """Hand-checkable diamond: 0->1->3, 0->2->3, 3->4."""
        graph = _from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], num_vertices=5)
        result = BetweennessCentrality().run(graph, root=0)
        centrality = result.values["centrality"]
        # Dependencies from source 0: delta(1)=delta(2)=0.5+0.5*... compute:
        # sigma: 0:1, 1:1, 2:1, 3:2, 4:2.
        # delta(3) = 1 (for 4), delta(1) = 1/2*(1+1) = 1, delta(2) = 1.
        assert centrality[3] == pytest.approx(1.0)
        assert centrality[1] == pytest.approx(1.0)
        assert centrality[2] == pytest.approx(1.0)
        assert centrality[4] == pytest.approx(0.0)
        assert centrality[0] == pytest.approx(0.0)

    def test_all_sources_match_networkx(self):
        graph = _chung_lu_graph(120, 4.0, seed=9)
        result = BetweennessCentrality().run(graph, roots=list(range(graph.num_vertices)))
        expected = nx.betweenness_centrality(to_networkx(graph), normalized=False)
        ours = result.values["centrality"]
        reference = np.array([expected[v] for v in range(graph.num_vertices)])
        assert np.allclose(ours, reference, atol=1e-6)

    def test_records_forward_and_backward_iterations(self, small_graph):
        result = BetweennessCentrality().run(small_graph, root=0)
        assert result.num_iterations >= 2

    def test_invalid_root(self, small_graph):
        with pytest.raises(ValueError):
            BetweennessCentrality().run(small_graph, root=10**6)


class TestSSSP:
    def test_matches_networkx_bellman_ford(self, small_graph):
        weighted = small_graph.with_random_weights(seed=3)
        result = SingleSourceShortestPaths().run(weighted, root=0)
        expected = nx.single_source_bellman_ford_path_length(
            to_networkx(weighted, weighted=True), 0
        )
        distance = result.values["distance"]
        for vertex in range(weighted.num_vertices):
            if vertex in expected:
                assert distance[vertex] == pytest.approx(expected[vertex])
            else:
                assert np.isinf(distance[vertex])

    def test_requires_weights(self, small_graph):
        with pytest.raises(ValueError):
            SingleSourceShortestPaths().run(small_graph, root=0)

    def test_all_iterations_push(self, small_graph):
        weighted = small_graph.with_random_weights(seed=3)
        result = SingleSourceShortestPaths().run(weighted, root=0)
        assert all(record.direction == PUSH for record in result.iterations)

    def test_root_distance_zero(self, small_graph):
        weighted = small_graph.with_random_weights(seed=3)
        result = SingleSourceShortestPaths().run(weighted, root=5)
        assert result.values["distance"][5] == 0.0

    def test_invalid_root(self, small_graph):
        weighted = small_graph.with_random_weights(seed=3)
        with pytest.raises(ValueError):
            SingleSourceShortestPaths().run(weighted, root=weighted.num_vertices)


class TestRadii:
    def test_radius_bounds_on_path_graph(self):
        # Directed path 0 -> 1 -> 2 -> 3 -> 4 with all vertices sampled.
        graph = _from_edge_list([(0, 1), (1, 2), (2, 3), (3, 4)], num_vertices=5)
        result = RadiiEstimation(num_samples=5, seed=1).run(graph)
        radius = result.values["radius"]
        # Vertex 4 is 4 hops from vertex 0: its radius estimate must be 4.
        assert radius[4] == 4
        assert radius[0] == 0

    def test_estimates_bounded_by_vertex_count(self, small_graph):
        result = RadiiEstimation(num_samples=16, seed=2).run(small_graph)
        radius = result.values["radius"]
        assert radius.min() >= 0
        assert radius.max() < small_graph.num_vertices

    def test_sample_count_validation(self):
        with pytest.raises(ValueError):
            RadiiEstimation(num_samples=0)
        with pytest.raises(ValueError):
            RadiiEstimation(num_samples=65)

    def test_more_samples_never_lower_estimates(self, small_graph):
        few = RadiiEstimation(num_samples=4, seed=7).run(small_graph).values["radius"]
        many = RadiiEstimation(num_samples=64, seed=7).run(small_graph).values["radius"]
        # With more sources, each vertex sees at least as distant a source.
        assert many.sum() >= few.sum()


class TestConnectedComponents:
    def test_matches_networkx_weak_components(self, small_graph):
        result = ConnectedComponents().run(small_graph)
        labels = result.values["component"]
        for component in nx.weakly_connected_components(to_networkx(small_graph)):
            component = list(component)
            assert len(set(labels[component].tolist())) == 1

    def test_two_islands(self):
        graph = _from_edge_list([(0, 1), (1, 2), (3, 4)], num_vertices=6)
        labels = ConnectedComponents().run(graph).values["component"]
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] == 5  # isolated vertex keeps its own label

    def test_max_iterations_cap(self, small_graph):
        result = ConnectedComponents().run(small_graph, max_iterations=1)
        assert result.num_iterations == 1


class TestIterationRecords:
    @pytest.mark.parametrize("name", list(PAPER_APPLICATIONS))
    def test_busiest_iteration_exists(self, name, small_graph):
        graph = small_graph.with_random_weights(seed=1) if name == "SSSP" else small_graph
        app = get_application(name)
        result = app.run(graph, root=int(np.argmax(graph.out_degrees)))
        busiest = result.busiest_iteration()
        assert busiest is not None
        assert busiest.active_vertices > 0
        assert busiest.active_vertices == max(r.active_vertices for r in result.iterations)

    def test_iterations_in_direction(self, small_graph):
        weighted = small_graph.with_random_weights(seed=1)
        result = SingleSourceShortestPaths().run(weighted, root=0)
        assert result.iterations_in_direction(PUSH) == result.iterations
        assert result.iterations_in_direction(PULL) == []

    @pytest.mark.parametrize("name", ["PR", "PRD", "BC", "Radii", "BFS", "CC"])
    def test_apps_run_on_registry_dataset(self, name):
        """Every application must run end-to-end on a registry dataset."""
        graph = load("lj", scale=0.05)
        result = get_application(name).run(graph, root=int(np.argmax(graph.out_degrees)))
        assert result.num_iterations >= 1
