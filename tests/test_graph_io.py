"""Tests for graph persistence (edge-list text and npz)."""

import numpy as np
import pytest

from repro.graph.builder import _from_edge_list
from repro.graph.csr import GraphError
from repro.graph.generators import _chung_lu_graph
from repro.graph.io import _load_edge_list, _load_npz, _save_edge_list, _save_npz


@pytest.fixture
def small_graph():
    return _from_edge_list(
        [(0, 1), (0, 2), (1, 2), (2, 0), (3, 1)], num_vertices=5, name="tiny"
    )


class TestEdgeListIO:
    def test_roundtrip_unweighted(self, small_graph, tmp_path):
        path = tmp_path / "graph.el"
        _save_edge_list(small_graph, path)
        loaded = _load_edge_list(path)
        assert loaded.num_vertices == small_graph.num_vertices
        assert loaded.num_edges == small_graph.num_edges
        assert loaded.out_targets.tolist() == small_graph.out_targets.tolist()

    def test_roundtrip_weighted(self, small_graph, tmp_path):
        weighted = small_graph.with_random_weights(seed=1)
        path = tmp_path / "graph.wel"
        _save_edge_list(weighted, path)
        loaded = _load_edge_list(path)
        assert loaded.is_weighted
        assert np.allclose(
            np.sort(loaded.out_weights), np.sort(weighted.out_weights)
        )

    def test_vertex_count_preserved_for_isolated_tail(self, tmp_path):
        """Vertex 4 has no edges; the header comment must preserve it."""
        graph = _from_edge_list([(0, 1)], num_vertices=5)
        path = tmp_path / "g.el"
        _save_edge_list(graph, path)
        assert _load_edge_list(path).num_vertices == 5

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("0 1\n7\n")
        with pytest.raises(GraphError):
            _load_edge_list(path)

    def test_explicit_vertex_count_override(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n1 2\n")
        assert _load_edge_list(path, num_vertices=10).num_vertices == 10

    def test_blank_lines_and_comments_ignored(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# a comment\n\n0 1\n\n# another\n1 0\n")
        assert _load_edge_list(path).num_edges == 2


class TestNpzIO:
    def test_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "graph.npz"
        _save_npz(small_graph, path)
        loaded = _load_npz(path)
        assert loaded.out_index.tolist() == small_graph.out_index.tolist()
        assert loaded.in_sources.tolist() == small_graph.in_sources.tolist()
        assert loaded.name == "tiny"

    def test_roundtrip_weighted_larger_graph(self, tmp_path):
        graph = _chung_lu_graph(200, 5.0, seed=2).with_random_weights(seed=3)
        path = tmp_path / "big.npz"
        _save_npz(graph, path)
        loaded = _load_npz(path)
        assert loaded.is_weighted
        assert np.allclose(loaded.out_weights, graph.out_weights)
        assert loaded.num_edges == graph.num_edges
