"""Integration tests: the experiment pipeline and every table/figure driver.

These run at a very small scale (ExperimentConfig.smoke) so the whole file
stays fast, while still exercising the full path from dataset generation to
policy comparison.
"""

import numpy as np
import pytest

from repro.cache.hints import HINT_HIGH
from repro.experiments import (
    ExperimentConfig,
    build_workload,
    clear_caches,
    compare_policies,
    scheme_policy,
)
from repro.experiments.config import PAPER_APPS
from repro.experiments.figures import (
    fig2_llc_breakdown,
    fig5_miss_reduction,
    fig7_ablation,
    fig9_low_skew,
    fig10a_reordering_speedup,
    fig10b_grasp_over_reorderings,
    fig11_vs_opt,
    summarize_fig11,
)
from repro.experiments.reporting import format_table, pivot_by_scheme
from repro.experiments.runner import (
    average_miss_reduction,
    geometric_mean_speedup,
    llc_trace_for,
    roi_trace,
    simulate_opt,
)
from repro.experiments.schemes import POLICY_SPECS
from repro.experiments.tables import table1_skew, table4_merging, table7_llc_sweep


@pytest.fixture(scope="module")
def smoke():
    clear_caches()
    return ExperimentConfig.smoke()


class TestConfig:
    def test_default_and_benchmark_presets(self):
        assert ExperimentConfig.default().scale == 1.0
        bench = ExperimentConfig.benchmark()
        assert bench.scale < 1.0
        assert set(bench.apps) <= set(PAPER_APPS)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0)

    def test_with_overrides(self):
        config = ExperimentConfig.default().with_overrides(scale=0.5, reorder="sort")
        assert config.scale == 0.5
        assert config.reorder == "sort"


class TestSchemes:
    def test_all_schemes_instantiate(self):
        for name in POLICY_SPECS:
            policy = scheme_policy(name)
            assert hasattr(policy, "choose_victim")

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            scheme_policy("MAGIC")


class TestWorkloads:
    def test_workload_is_memoised(self, smoke):
        a = build_workload("PR", "lj", config=smoke)
        b = build_workload("PR", "lj", config=smoke)
        assert a is b

    def test_roi_is_busiest_dominant_iteration(self, smoke):
        workload = build_workload("PR", "lj", config=smoke)
        assert workload.dominant_direction == "pull"
        assert workload.roi.active_vertices == workload.graph.num_vertices

    def test_sssp_workload_is_push(self, smoke):
        workload = build_workload("SSSP", "lj", config=smoke)
        assert workload.dominant_direction == "push"
        assert workload.roi.direction == "push"

    def test_llc_trace_has_hints(self, smoke):
        workload = build_workload("PR", "lj", config=smoke)
        llc = llc_trace_for(workload, smoke)
        assert len(llc) > 0
        assert HINT_HIGH in set(np.unique(llc.hints).tolist())
        assert len(llc) <= len(roi_trace(workload))
        assert llc.upstream_l1_hits + llc.upstream_l2_hits + len(llc) == llc.total_references

    def test_hints_cover_llc_sized_prefix(self, smoke):
        workload = build_workload("PR", "lj", config=smoke)
        llc = llc_trace_for(workload, smoke)
        bounds = workload.layout.property_array_bounds()
        assert len(bounds) == 1  # merged Property Array
        start, _ = bounds[0]
        high = llc.byte_addresses[llc.hints == HINT_HIGH]
        assert high.size > 0
        assert high.min() >= start
        assert high.max() < start + smoke.hierarchy.llc.size_bytes


class TestComparePolicies:
    def test_baseline_has_zero_deltas(self, smoke):
        points = compare_policies(["PR"], ["lj"], ["RRIP", "GRASP"], config=smoke)
        baseline = [p for p in points if p.scheme == "RRIP"][0]
        assert baseline.miss_reduction_pct == 0.0
        assert baseline.speedup_pct == 0.0

    def test_grasp_beats_rrip_on_high_skew(self, smoke):
        """The headline result at smoke scale: GRASP reduces misses and speeds
        up every high-skew datapoint relative to RRIP."""
        points = compare_policies(["PR"], list(smoke.high_skew_datasets), ["GRASP"], config=smoke)
        assert all(point.miss_reduction_pct > 0 for point in points)
        assert all(point.speedup_pct > 0 for point in points)

    def test_miss_reduction_consistent_with_stats(self, smoke):
        points = compare_policies(["PR"], ["lj"], ["RRIP", "GRASP"], config=smoke)
        rrip = [p for p in points if p.scheme == "RRIP"][0]
        grasp = [p for p in points if p.scheme == "GRASP"][0]
        expected = (1 - grasp.stats.misses / rrip.stats.misses) * 100
        assert grasp.miss_reduction_pct == pytest.approx(expected)

    def test_aggregates(self, smoke):
        points = compare_policies(["PR"], ["lj", "pl"], ["GRASP"], config=smoke)
        assert geometric_mean_speedup(points) != 0.0
        assert average_miss_reduction(points) != 0.0
        assert geometric_mean_speedup([]) == 0.0
        assert average_miss_reduction([]) == 0.0

    def test_opt_never_worse_than_any_policy(self, smoke):
        workload = build_workload("PR", "lj", config=smoke)
        llc = llc_trace_for(workload, smoke)
        opt_stats = simulate_opt(llc, smoke.hierarchy.llc)
        points = compare_policies(["PR"], ["lj"], ["RRIP", "GRASP", "Hawkeye"], config=smoke)
        for point in points:
            assert opt_stats.misses <= point.stats.misses


class TestTableDrivers:
    def test_table1(self, smoke):
        rows = table1_skew(smoke)
        assert len(rows) == len(smoke.high_skew_datasets)
        for row in rows:
            assert 0 < row["out_hot_vertices_pct"] < 100
            assert row["out_edge_coverage_pct"] > 50

    def test_table4(self, smoke):
        rows = table4_merging(smoke, apps=("PR", "BC"), datasets=("lj",))
        by_app = {row["app"]: row for row in rows}
        assert by_app["PR"]["merging_opportunity"] == "Yes"
        assert by_app["BC"]["merging_opportunity"] == "No"
        assert by_app["PR"]["max_speedup_pct"] > 0

    def test_table7(self, smoke):
        llc = smoke.hierarchy.llc.size_bytes
        rows = table7_llc_sweep(smoke, llc_sizes=[llc, llc * 2], apps=("PR",), datasets=("lj",))
        assert len(rows) == 2
        for row in rows:
            assert row["OPT"] >= row["GRASP"] - 1e-9
            assert row["OPT"] >= row["RRIP"] - 1e-9


class TestFigureDrivers:
    def test_fig2(self, smoke):
        rows = fig2_llc_breakdown(smoke, datasets=("pl",), apps=("PR",))
        row = rows[0]
        assert row["property_access_pct"] + row["other_access_pct"] == pytest.approx(100.0, abs=0.1)
        assert row["property_access_pct"] > 50.0

    def test_fig5_and_fig7_structures(self, smoke):
        points = fig5_miss_reduction(smoke)
        assert {p.scheme for p in points} == {"SHiP-MEM", "Hawkeye", "Leeway", "GRASP"}
        ablation = fig7_ablation(smoke)
        assert {p.scheme for p in ablation} == {"RRIP+Hints", "GRASP (Insertion-Only)", "GRASP"}

    def test_fig9(self, smoke):
        points = fig9_low_skew(smoke)
        datasets = {p.dataset_name for p in points}
        assert datasets == set(smoke.adversarial_datasets)

    def test_fig10a(self, smoke):
        rows = fig10a_reordering_speedup(smoke, techniques=("dbg", "gorder"))
        for row in rows:
            # Gorder's reordering cost must make it far worse than DBG.
            assert row["gorder"] < row["dbg"]
            assert row["gorder"] < 0

    def test_fig10b(self, smoke):
        rows = fig10b_grasp_over_reorderings(smoke, techniques=("sort", "dbg"))
        for row in rows:
            assert "sort" in row and "dbg" in row

    def test_fig11_and_summary(self, smoke):
        rows = fig11_vs_opt(smoke)
        summary = summarize_fig11(rows)
        assert summary["OPT"] >= summary["GRASP"] >= 0
        assert summary["OPT"] >= summary["RRIP"]
        assert 0 < summary["grasp_vs_opt_pct"] <= 100
        assert summarize_fig11([])["OPT"] == 0.0


class TestReporting:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 3.25}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "10" in text
        assert "3.25" in text or "3.25" in text

    def test_format_empty(self):
        assert "(no data)" in format_table([])

    def test_pivot_by_scheme(self, smoke):
        points = compare_policies(["PR"], ["lj"], ["RRIP", "GRASP"], config=smoke)
        rows = pivot_by_scheme(points, "speedup_pct")
        assert len(rows) == 1
        assert "GRASP" in rows[0] and "RRIP" in rows[0]
