"""Regression tests: corrupt or contended DiskMemo entries never poison a sweep.

The store is the service's single source of truth ("task done" == "memo entry
loads"), so a truncated, bit-flipped or garbage entry must read as a *miss* —
the scheduler recomputes exactly the damaged tasks and repairs the entries in
place, and the resulting DataPoints stay bit-identical.  The atomic
``os.replace`` write path must also hold up under concurrent writers: readers
see either nothing or a complete entry, never a torn one.
"""

import multiprocessing
import pickle

import pytest
from conftest import assert_points_equal

from repro.experiments import (
    DiskMemo,
    ExperimentConfig,
    clear_caches,
    compare_policies,
    set_disk_memo,
)
from repro.experiments.queue import InlineBackend
from repro.experiments.service import SweepSpec, run_sweep, sweep_tasks

pytestmark = pytest.mark.usefixtures("memo_isolation")

APPS = ("PR",)
DATASETS = ("lj",)
SCHEMES = ("RRIP", "GRASP")

SPEC = SweepSpec(apps=APPS, datasets=DATASETS, schemes=SCHEMES)


def _task_paths(memo: DiskMemo, config) -> dict:
    """label -> on-disk memo path for every task of SPEC's DAG."""
    return {
        task.label: memo.path_for(task.kind, task.store_key)
        for task in sweep_tasks(SPEC, config, memo.root.parent)
    }


def _run(config, cache_dir, **kwargs):
    return run_sweep(
        SPEC, config=config, cache_dir=cache_dir, workers=2,
        worker_backend=InlineBackend(), **kwargs,
    )


class TestCorruptEntriesAreMisses:
    def test_damaged_entries_are_recomputed_and_repaired(self, tmp_path):
        config = ExperimentConfig.smoke()
        serial = compare_policies(APPS, DATASETS, SCHEMES, config=config)
        clear_caches()
        set_disk_memo(None)

        first = _run(config, tmp_path)
        assert first.report.executed == 4  # workload, filter, 2 schemes
        memo = DiskMemo(tmp_path)
        paths = _task_paths(memo, config)

        # Three distinct damage modes across the three task kinds.
        truncated = paths["GRASP PR/lj"]
        truncated.write_bytes(truncated.read_bytes()[: truncated.stat().st_size // 2])
        flipped = paths["workload PR/lj"]
        blob = bytearray(flipped.read_bytes())
        blob[0] ^= 0xFF  # clobber the pickle PROTO opcode: guaranteed load failure
        flipped.write_bytes(bytes(blob))
        paths["filter PR/lj"].write_bytes(b"not a pickle at all")

        clear_caches()
        set_disk_memo(None)
        second = _run(config, tmp_path)
        # Exactly the three damaged tasks rerun; the intact scheme stays cached.
        assert second.report.executed == 3
        assert second.report.cached == 1
        assert_points_equal(serial, second.points)
        for path in paths.values():
            assert path.exists()
        for label in ("GRASP PR/lj", "workload PR/lj", "filter PR/lj"):
            with open(paths[label], "rb") as handle:
                pickle.load(handle)  # repaired entries load cleanly again

    def test_missing_entry_is_a_miss(self, tmp_path):
        config = ExperimentConfig.smoke()
        _run(config, tmp_path)
        memo = DiskMemo(tmp_path)
        paths = _task_paths(memo, config)
        paths["RRIP PR/lj"].unlink()

        clear_caches()
        set_disk_memo(None)
        again = _run(config, tmp_path)
        assert again.report.executed == 1
        assert again.report.cached == 3

    def test_contains_rejects_corrupt_entries(self, tmp_path):
        memo = DiskMemo(tmp_path)
        memo.put("unit", ("k",), {"v": 1})
        assert memo.contains("unit", ("k",))
        memo.path_for("unit", ("k",)).write_bytes(b"\x80\x04garbage")
        assert not memo.contains("unit", ("k",))
        assert memo.get("unit", ("k",)) is None


def _hammer_put(root: str, worker_id: int, rounds: int) -> None:
    memo = DiskMemo(root)
    payload = {"worker": worker_id, "blob": list(range(2000))}
    for _ in range(rounds):
        memo.put("race", ("shared-key",), payload)


class TestConcurrentWriters:
    def test_reader_never_sees_a_torn_entry(self, tmp_path):
        memo = DiskMemo(tmp_path)
        writers = [
            multiprocessing.Process(target=_hammer_put, args=(str(tmp_path), wid, 150))
            for wid in range(2)
        ]
        for proc in writers:
            proc.start()
        observed = set()
        try:
            while any(proc.is_alive() for proc in writers):
                value = memo.get("race", ("shared-key",))
                if value is not None:
                    # A torn read would fail here (get would raise or return junk).
                    assert value["blob"] == list(range(2000))
                    observed.add(value["worker"])
        finally:
            for proc in writers:
                proc.join(timeout=30)
        assert all(proc.exitcode == 0 for proc in writers)
        final = memo.get("race", ("shared-key",))
        assert final is not None and final["blob"] == list(range(2000))
        # os.replace cleaned up after itself: no temp files left behind.
        leftovers = [p for p in memo.root.rglob("*.tmp.*")]
        assert leftovers == []

    def test_sequential_second_client_dedups_everything(self, tmp_path):
        config = ExperimentConfig.smoke()
        first = _run(config, tmp_path)
        assert first.report.executed == 4
        clear_caches()
        set_disk_memo(None)
        second = _run(config, tmp_path)
        assert second.report.executed == 0
        assert second.report.cached == 4
        assert_points_equal(first.points, second.points)
