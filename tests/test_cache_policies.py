"""Unit tests for the baseline replacement policies (LRU, RRIP family, SHiP,
Hawkeye, Leeway, pinning, OPT) on hand-built access patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, SetAssociativeCache
from repro.cache.hints import HINT_DEFAULT, HINT_HIGH
from repro.cache.policies import (
    BRRIPPolicy,
    DRRIPPolicy,
    HawkeyePolicy,
    LeewayPolicy,
    LRUPolicy,
    PinningPolicy,
    RandomPolicy,
    ShipMemPolicy,
    SRRIPPolicy,
    create_policy,
    list_policies,
    simulate_opt_misses,
)

SMALL = CacheConfig(size_bytes=1024, ways=4, block_bytes=64, name="test")  # 4 sets


def run_trace(policy, addresses, config=SMALL, hints=None, pcs=None):
    """Drive a list of byte addresses through a cache using ``policy``."""
    cache = SetAssociativeCache(config, policy)
    hints = hints or [HINT_DEFAULT] * len(addresses)
    pcs = pcs or [0] * len(addresses)
    for address, hint, pc in zip(addresses, hints, pcs):
        cache.access(address, pc=pc, hint=hint)
    return cache


def same_set_blocks(count, set_index=0, num_sets=4, block=64):
    """Generate ``count`` distinct block addresses that all map to one set."""
    return [(set_index + i * num_sets) * block for i in range(count)]


class TestRegistry:
    def test_baselines_registered(self):
        names = list_policies()
        for expected in ("lru", "rrip", "drrip", "srrip", "brrip", "ship-mem", "hawkeye", "leeway", "pin"):
            assert expected in names

    def test_create_policy_by_name(self):
        assert isinstance(create_policy("lru"), LRUPolicy)
        assert isinstance(create_policy("rrip"), DRRIPPolicy)
        assert isinstance(create_policy("pin", reserved_fraction=0.5), PinningPolicy)

    def test_grasp_family_available_through_registry(self):
        # repro.core registers these on import; create_policy must trigger it.
        assert create_policy("grasp").name == "grasp"
        assert create_policy("rrip+hints").name == "rrip+hints"
        assert create_policy("grasp-insertion").name == "grasp-insertion"

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            create_policy("not-a-policy")


class TestLRU:
    def test_evicts_least_recently_used(self):
        blocks = same_set_blocks(5)
        cache = run_trace(LRUPolicy(), blocks[:4] + [blocks[0]] + [blocks[4]])
        # blocks[0] was re-touched, so blocks[1] is the LRU victim.
        assert cache.contains(blocks[0])
        assert not cache.contains(blocks[1])

    def test_sequential_scan_thrashes(self):
        """A working set 2x the cache gets zero hits under LRU — the classic
        thrashing pattern that motivates RRIP."""
        blocks = same_set_blocks(8)
        cache = SetAssociativeCache(SMALL, LRUPolicy())
        for _ in range(4):
            for address in blocks:
                cache.access(address)
        assert cache.stats.hits == 0


class TestSRRIP:
    def test_insertion_uses_long_interval(self):
        policy = SRRIPPolicy()
        assert policy.insertion_rrpv(0, 0, 0, HINT_DEFAULT) == policy.max_rrpv - 1

    def test_hit_promotes_to_zero(self):
        blocks = same_set_blocks(2)
        policy = SRRIPPolicy()
        cache = SetAssociativeCache(SMALL, policy)
        cache.access(blocks[0])
        cache.access(blocks[0])
        way = cache._tags[0].index(blocks[0] >> 6)
        assert policy.rrpv_of(0, way) == 0

    def test_rrpv_bits_validation(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(rrpv_bits=0)

    def test_preserves_reused_block_under_thrashing(self):
        """One hot block + a long scan: SRRIP keeps the hot block resident."""
        hot = same_set_blocks(1)[0]
        cold = same_set_blocks(9)[1:]
        policy = SRRIPPolicy()
        cache = SetAssociativeCache(SMALL, policy)
        cache.access(hot)
        cache.access(hot)  # promoted to RRPV 0
        for address in cold:
            cache.access(address)
        assert cache.contains(hot)


class TestBRRIPAndDRRIP:
    def test_brrip_mostly_inserts_at_max(self):
        policy = BRRIPPolicy(epsilon=32)
        values = [policy.insertion_rrpv(0, 0, 0, HINT_DEFAULT) for _ in range(64)]
        assert values.count(policy.max_rrpv) == 62
        assert values.count(policy.max_rrpv - 1) == 2

    def test_brrip_epsilon_validation(self):
        with pytest.raises(ValueError):
            BRRIPPolicy(epsilon=0)

    def test_drrip_set_roles(self):
        policy = DRRIPPolicy()
        policy.bind(num_sets=64, ways=4)
        assert policy._set_role(0) == "srrip"
        assert policy._set_role(1) == "brrip"
        assert policy._set_role(5) == "follower"

    def test_drrip_psel_moves_with_leader_misses(self):
        policy = DRRIPPolicy()
        policy.bind(num_sets=64, ways=4)
        start = policy._psel
        policy.insertion_rrpv(0, 0, 0, HINT_DEFAULT)  # srrip leader miss
        assert policy._psel == start + 1
        policy.insertion_rrpv(1, 0, 0, HINT_DEFAULT)  # brrip leader miss
        assert policy._psel == start

    def test_drrip_beats_lru_on_thrashing_scan(self):
        """The cyclic working set > capacity is exactly where RRIP wins.

        Set index 1 is a BRRIP leader in our DRRIP set-dueling layout, so the
        bimodal insertion protects part of the working set there."""
        blocks = same_set_blocks(8, set_index=1)
        trace = blocks * 20
        lru = run_trace(LRUPolicy(), trace)
        drrip = run_trace(DRRIPPolicy(), trace)
        assert drrip.stats.hits > lru.stats.hits


class TestShipMem:
    def test_signature_is_memory_region(self):
        policy = ShipMemPolicy(region_bytes=16 * 1024, block_bytes=64)
        # Blocks within the same 16 KB region share a signature.
        assert policy._signature_of(0) == policy._signature_of(255)
        assert policy._signature_of(0) != policy._signature_of(256)

    def test_region_validation(self):
        with pytest.raises(ValueError):
            ShipMemPolicy(region_bytes=32, block_bytes=64)

    def test_learns_dead_region(self):
        """A region whose blocks are never reused ends up predicted dead."""
        policy = ShipMemPolicy()
        config = CacheConfig(size_bytes=1024, ways=4, block_bytes=64)
        cache = SetAssociativeCache(config, policy)
        # Stream over many distinct blocks in region 0 (no reuse at all).
        for i in range(256):
            cache.access(i * 64)
        signature = policy._signature_of(0)
        assert policy.shct_value(signature) == 0
        # New insertions from that region now go to distant RRPV.
        assert policy.insertion_rrpv(0, 0, 0, HINT_DEFAULT) == policy.max_rrpv

    def test_reused_region_predicted_live(self):
        policy = ShipMemPolicy()
        config = CacheConfig(size_bytes=1024, ways=4, block_bytes=64)
        cache = SetAssociativeCache(config, policy)
        for _ in range(4):
            for i in range(4):
                cache.access(i * 64)
        signature = policy._signature_of(0)
        assert policy.shct_value(signature) > 1


class TestHawkeye:
    def test_predictor_defaults_to_friendly(self):
        policy = HawkeyePolicy()
        assert policy.is_cache_friendly(pc=1234)

    def test_streaming_pc_becomes_averse(self):
        """A PC that streams over a huge working set should be detected as
        cache-averse by OPTgen training."""
        policy = HawkeyePolicy(sample_period=1)
        config = CacheConfig(size_bytes=1024, ways=4, block_bytes=64)
        cache = SetAssociativeCache(config, policy)
        streaming_pc = 7
        # 64 distinct blocks re-visited with reuse distance 64 blocks >> capacity.
        for _ in range(6):
            for i in range(64):
                cache.access(i * 64, pc=streaming_pc)
        assert not policy.is_cache_friendly(streaming_pc)

    def test_reused_pc_stays_friendly(self):
        policy = HawkeyePolicy(sample_period=1)
        config = CacheConfig(size_bytes=1024, ways=4, block_bytes=64)
        cache = SetAssociativeCache(config, policy)
        friendly_pc = 3
        for _ in range(20):
            for i in range(4):
                cache.access(i * 64, pc=friendly_pc)
        assert policy.is_cache_friendly(friendly_pc)

    def test_averse_insertion_goes_to_max_rrpv(self):
        policy = HawkeyePolicy()
        policy.bind(4, 4)
        policy._predictor[99] = 0
        assert policy.insertion_rrpv(0, 0, pc=99, hint=HINT_DEFAULT) == policy.max_rrpv


class TestLeeway:
    def test_decay_period_validation(self):
        with pytest.raises(ValueError):
            LeewayPolicy(decay_period=0)

    def test_live_distance_grows_fast(self):
        policy = LeewayPolicy()
        policy.bind(1, 4)
        policy._update_prediction(signature=5, observed=3)
        assert policy.predicted_live_distance(5) == 3

    def test_live_distance_shrinks_slowly(self):
        policy = LeewayPolicy(decay_period=4)
        policy.bind(1, 4)
        policy._update_prediction(5, 3)
        for _ in range(3):
            policy._update_prediction(5, 0)
        assert policy.predicted_live_distance(5) == 3  # not yet
        policy._update_prediction(5, 0)
        assert policy.predicted_live_distance(5) == 2  # one slow step

    def test_prefers_predicted_dead_victim(self):
        blocks = same_set_blocks(5)
        policy = LeewayPolicy()
        cache = SetAssociativeCache(SMALL, policy)
        # Fill the set; none of the blocks ever hit, so observed LD stays 0 and
        # the default prediction (0) marks deep blocks dead.
        for address in blocks[:4]:
            cache.access(address)
        victim_way = policy.choose_victim(0, blocks[4] >> 6, pc=0, hint=HINT_DEFAULT)
        assert 0 <= victim_way < 4

    def test_behaves_close_to_baseline_without_signal(self):
        """With a single signature and no reuse, Leeway must not crash and
        must produce the same number of misses as LRU (all cold misses)."""
        blocks = [i * 64 for i in range(128)]
        lru = run_trace(LRUPolicy(), blocks)
        leeway = run_trace(LeewayPolicy(), blocks)
        assert leeway.stats.misses == lru.stats.misses


class TestPinning:
    def test_reserved_fraction_validation(self):
        with pytest.raises(ValueError):
            PinningPolicy(reserved_fraction=0.0)
        with pytest.raises(ValueError):
            PinningPolicy(reserved_fraction=1.5)

    def test_constructors(self):
        assert PinningPolicy.pin_25().reserved_fraction == 0.25
        assert PinningPolicy.pin_100().reserved_fraction == 1.0

    def test_high_reuse_blocks_get_pinned_and_survive_thrashing(self):
        policy = PinningPolicy(reserved_fraction=0.5)
        cache = SetAssociativeCache(SMALL, policy)
        hot = same_set_blocks(2)
        cold = same_set_blocks(12)[2:]
        for address in hot:
            cache.access(address, hint=HINT_HIGH)
        for address in cold:
            cache.access(address, hint=HINT_DEFAULT)
        for address in hot:
            assert cache.contains(address)

    def test_pinned_capacity_is_limited(self):
        policy = PinningPolicy(reserved_fraction=0.5)  # 2 of 4 ways
        cache = SetAssociativeCache(SMALL, policy)
        hot = same_set_blocks(4)
        for address in hot:
            cache.access(address, hint=HINT_HIGH)
        assert policy._pinned_count[0] == 2

    def test_pin_100_bypasses_when_full(self):
        policy = PinningPolicy(reserved_fraction=1.0)
        cache = SetAssociativeCache(SMALL, policy)
        hot = same_set_blocks(4)
        for address in hot:
            cache.access(address, hint=HINT_HIGH)
        # Set 0 is now fully pinned: a new block must bypass, not evict.
        newcomer = same_set_blocks(5)[4]
        cache.access(newcomer, hint=HINT_DEFAULT)
        assert cache.stats.bypasses == 1
        for address in hot:
            assert cache.contains(address)

    def test_pinning_wastes_capacity_on_stale_blocks(self):
        """Once pinned, blocks that stop being reused still hold capacity —
        the rigidity the paper criticises."""
        policy = PinningPolicy(reserved_fraction=1.0)
        cache = SetAssociativeCache(SMALL, policy)
        stale = same_set_blocks(4)
        for address in stale:
            cache.access(address, hint=HINT_HIGH)
        # A new phase with a small, highly reused working set cannot be cached.
        fresh = same_set_blocks(6)[4:]
        for _ in range(10):
            for address in fresh:
                cache.access(address, hint=HINT_DEFAULT)
        assert all(not cache.contains(address) for address in fresh)


class TestRandom:
    def test_random_policy_is_deterministic_per_seed(self):
        blocks = same_set_blocks(8) * 4
        a = run_trace(RandomPolicy(seed=1), blocks)
        b = run_trace(RandomPolicy(seed=1), blocks)
        assert a.stats.hits == b.stats.hits


class TestOpt:
    def test_opt_on_empty_trace(self):
        stats = simulate_opt_misses([], SMALL)
        assert stats.accesses == 0

    def test_opt_counts_cold_misses(self):
        blocks = [i for i in range(8)]
        stats = simulate_opt_misses(blocks, SMALL)
        assert stats.misses == 8

    def test_opt_is_perfect_when_working_set_fits(self):
        blocks = [0, 4, 8, 12] * 10  # 4 blocks in set 0 == capacity
        stats = simulate_opt_misses(blocks, SMALL)
        assert stats.misses == 4

    def test_opt_beats_lru_on_cyclic_pattern(self):
        blocks = [i * 4 for i in range(8)] * 10  # all map to set 0, 2x capacity
        byte_trace = [b * 64 for b in blocks]
        lru = run_trace(LRUPolicy(), byte_trace)
        opt = simulate_opt_misses(blocks, SMALL)
        assert opt.misses < lru.stats.misses

    def test_opt_matches_belady_hand_example(self):
        """Direct-mapped-style example worked out by hand.

        Cache: 1 set (ways=2).  Trace: A B C A B C.  OPT misses: A, B, C
        (evict B keeping A? — optimal is 4 misses: A B C(A kept) A hit? ...)
        Verified against manual MIN simulation: accesses=6, misses=4.
        """
        config = CacheConfig(size_bytes=128, ways=2, block_bytes=64)  # 1 set
        trace = [0, 1, 2, 0, 1, 2]
        stats = simulate_opt_misses(trace, config)
        assert stats.accesses == 6
        assert stats.misses == 4

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_opt_never_worse_than_lru(self, blocks):
        """Belady's MIN is provably optimal: it can never produce more misses
        than LRU on the same trace and geometry."""
        byte_trace = [b * 64 for b in blocks]
        lru = run_trace(LRUPolicy(), byte_trace)
        opt = simulate_opt_misses(blocks, SMALL)
        assert opt.misses <= lru.stats.misses

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_opt_misses_at_least_cold_misses(self, blocks):
        """Every distinct block must miss at least once (cold misses are
        unavoidable even for OPT), and hits + misses must equal accesses."""
        opt = simulate_opt_misses(blocks, SMALL)
        assert opt.misses >= len(set(blocks))
        assert opt.hits + opt.misses == len(blocks)


class TestPolicyContract:
    """All online policies must satisfy basic behavioural invariants."""

    POLICIES = [
        LRUPolicy,
        SRRIPPolicy,
        BRRIPPolicy,
        DRRIPPolicy,
        ShipMemPolicy,
        HawkeyePolicy,
        LeewayPolicy,
        PinningPolicy,
        RandomPolicy,
    ]

    @pytest.mark.parametrize("policy_cls", POLICIES)
    def test_repeated_access_to_one_block_hits(self, policy_cls):
        cache = SetAssociativeCache(SMALL, policy_cls())
        cache.access(0x400)
        assert cache.access(0x400) is True

    @pytest.mark.parametrize("policy_cls", POLICIES)
    def test_miss_count_equals_distinct_blocks_when_fits(self, policy_cls):
        cache = SetAssociativeCache(CacheConfig(size_bytes=4096, ways=8), policy_cls())
        addresses = [i * 64 for i in range(32)] * 3
        for address in addresses:
            cache.access(address)
        assert cache.stats.misses == 32

    @pytest.mark.parametrize("policy_cls", POLICIES)
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_never_crashes_on_random_traces(self, policy_cls, data):
        addresses = data.draw(
            st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200)
        )
        hints = data.draw(
            st.lists(st.integers(min_value=0, max_value=3), min_size=len(addresses), max_size=len(addresses))
        )
        cache = SetAssociativeCache(SMALL, policy_cls())
        for address, hint in zip(addresses, hints):
            cache.access(address, pc=address % 13, hint=hint)
        assert cache.stats.accesses == len(addresses)
