"""Shared test fixtures: the sweep-service fault-injection harness.

The classes here plug into the scheduler of
:mod:`repro.experiments.service` through the regular
:class:`~repro.experiments.queue.WorkerBackend` interface — no test hooks
exist inside the service itself:

:class:`VirtualClock`
    Deterministic time source; ``sleep`` advances it, so scheduler runs that
    involve backoffs and heartbeat timeouts complete instantly.
:class:`FaultPlan`
    A seeded schedule deciding, per task, whether its *first* execution is
    killed (before or after its side effects land), fails transiently, or
    hangs with dropped heartbeats.  At most one fault per task, so every
    sweep converges under the default retry budget and the scheduler's
    retry/death/timeout counters must match the plan's injection log
    exactly.
:class:`FaultyWorkerBackend`
    An :class:`~repro.experiments.queue.InlineBackend` that *really executes*
    tasks (side effects — memo writes — happen exactly as on a real worker)
    while injecting the plan's faults at the transport layer.
:class:`CrashingBackend`
    Raises ``KeyboardInterrupt`` after N executions — a hard kill of the
    whole client, used to test ``--resume``.
:class:`SimBackend`
    Virtual-time backend for scheduler property tests: tasks have seeded
    durations and nothing executes, but starts/finishes are logged so
    ordering invariants can be asserted.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional, Tuple

import pytest

from repro.experiments.queue import (
    TASK_DIED,
    TASK_ERROR,
    TASK_OK,
    InlineBackend,
    Task,
    TaskOutcome,
    WorkerBackend,
)


class VirtualClock:
    """Monotonic clock advanced only by ``sleep`` — deterministic tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += max(0.0, seconds)


KILL_BEFORE = "kill-before"
KILL_AFTER = "kill-after"
TRANSIENT = "transient"
DROP_HEARTBEAT = "drop-heartbeat"


class FaultPlan:
    """Seeded per-task fault schedule (at most one fault per task).

    Rates are cumulative probabilities over the first execution of each
    task; retries are always clean, so a sweep converges whenever the retry
    budget allows at least one retry.  ``injected`` counts the faults that
    were actually applied — the ground truth the scheduler's counters are
    checked against.
    """

    def __init__(
        self,
        seed: int,
        kill_rate: float = 0.0,
        transient_rate: float = 0.0,
        drop_rate: float = 0.0,
    ) -> None:
        self.rng = random.Random(seed)
        self.kill_rate = kill_rate
        self.transient_rate = transient_rate
        self.drop_rate = drop_rate
        self.decisions: Dict[str, Optional[str]] = {}
        self.injected: Counter = Counter()

    def fault_for(self, task_id: str, attempt: int) -> Optional[str]:
        """The fault to inject for this execution, or ``None``."""
        if attempt > 1:
            return None
        if task_id not in self.decisions:
            roll = self.rng.random()
            if roll < self.kill_rate:
                kind = self.rng.choice((KILL_BEFORE, KILL_AFTER))
            elif roll < self.kill_rate + self.transient_rate:
                kind = TRANSIENT
            elif roll < self.kill_rate + self.transient_rate + self.drop_rate:
                kind = DROP_HEARTBEAT
            else:
                kind = None
            self.decisions[task_id] = kind
            if kind is not None:
                self.injected[kind] += 1
        return self.decisions[task_id]

    @property
    def kills(self) -> int:
        return self.injected[KILL_BEFORE] + self.injected[KILL_AFTER]

    @property
    def transients(self) -> int:
        return self.injected[TRANSIENT]

    @property
    def drops(self) -> int:
        return self.injected[DROP_HEARTBEAT]

    @property
    def total(self) -> int:
        return sum(self.injected.values())


class FaultyWorkerBackend(InlineBackend):
    """Inline execution with transport-level fault injection.

    * ``kill-before`` — the worker dies before running the task (no side
      effects; the retry recomputes).
    * ``kill-after`` — the worker dies *after* the task's side effects
      landed in the store (the retry finds the memo entry warm).
    * ``transient`` — the task raises without running.
    * ``drop-heartbeat`` — the task runs but the worker goes silent: its
      outcome is withheld and its heartbeat age reports infinite, so the
      scheduler must time it out and re-dispatch.
    """

    name = "faulty-inline"

    def __init__(self, plan: FaultPlan) -> None:
        super().__init__()
        self.plan = plan
        self._held: Dict[int, TaskOutcome] = {}

    def submit(self, worker: int, task: Task, attempt: int) -> int:
        fault = self.plan.fault_for(task.task_id, attempt)
        if fault is None:
            return super().submit(worker, task, attempt)
        handle = self._next_handle
        self._next_handle += 1
        if fault == KILL_BEFORE:
            self._outcomes[handle] = TaskOutcome(
                handle, task.task_id, TASK_DIED, error="injected worker kill (pre-task)"
            )
        elif fault == TRANSIENT:
            self._outcomes[handle] = TaskOutcome(
                handle, task.task_id, TASK_ERROR, error="injected transient error"
            )
        elif fault == KILL_AFTER:
            self._execute(worker, task, attempt)  # side effects land, result is lost
            self._outcomes[handle] = TaskOutcome(
                handle, task.task_id, TASK_DIED, error="injected worker kill (post-task)"
            )
        elif fault == DROP_HEARTBEAT:
            outcome = self._execute(worker, task, attempt)
            outcome.handle = handle
            self._held[handle] = outcome  # never surfaces through poll
        return handle

    def heartbeat_age(self, handle: int) -> Optional[float]:
        if handle in self._held:
            return float("inf")
        return 0.0

    def cancel(self, handle: int) -> None:
        self._held.pop(handle, None)
        super().cancel(handle)


class CrashingBackend(InlineBackend):
    """Hard-kills the whole client after ``crash_after`` executed tasks."""

    name = "crashing-inline"

    def __init__(self, crash_after: int) -> None:
        super().__init__()
        self.crash_after = crash_after

    def submit(self, worker: int, task: Task, attempt: int) -> int:
        if len(self.executed) >= self.crash_after:
            raise KeyboardInterrupt("simulated hard kill of the sweep client")
        return super().submit(worker, task, attempt)


class SimBackend(WorkerBackend):
    """Virtual-time backend for scheduler property tests.

    Tasks do not execute; each dispatch is assigned a seeded duration and
    completes once the (virtual) clock passes it.  ``starts`` /
    ``finish_times`` record the simulated execution history the property
    tests assert over.  Task ids in ``fail_ids`` produce a transient error
    on every execution; ids in ``die_once`` report a worker death on their
    first execution only.
    """

    name = "sim"

    def __init__(
        self,
        clock: VirtualClock,
        seed: int = 0,
        min_duration: float = 0.01,
        max_duration: float = 0.25,
    ) -> None:
        self.clock = clock
        self.rng = random.Random(seed)
        self.min_duration = min_duration
        self.max_duration = max_duration
        self._pending: Dict[int, Tuple[str, float]] = {}
        self._next_handle = 0
        self.starts: List[Tuple[str, float, int]] = []  #: (task_id, sim time, worker)
        self.start_counts: Counter = Counter()
        self.finish_times: Dict[str, float] = {}
        self.fail_ids: set = set()
        self.die_once: set = set()
        self._died: set = set()

    def start(self, num_workers: int) -> None:
        pass

    def submit(self, worker: int, task: Task, attempt: int) -> int:
        handle = self._next_handle
        self._next_handle += 1
        duration = self.rng.uniform(self.min_duration, self.max_duration)
        self.starts.append((task.task_id, self.clock(), worker))
        self.start_counts[task.task_id] += 1
        self._pending[handle] = (task.task_id, self.clock() + duration)
        return handle

    def poll(self) -> List[TaskOutcome]:
        now = self.clock()
        done: List[TaskOutcome] = []
        for handle, (task_id, finish) in list(self._pending.items()):
            if finish > now:
                continue
            del self._pending[handle]
            if task_id in self.fail_ids:
                done.append(TaskOutcome(handle, task_id, TASK_ERROR, error="sim failure"))
            elif task_id in self.die_once and task_id not in self._died:
                self._died.add(task_id)
                done.append(TaskOutcome(handle, task_id, TASK_DIED, error="sim worker death"))
            else:
                self.finish_times[task_id] = finish
                done.append(TaskOutcome(handle, task_id, TASK_OK))
        return done

    def heartbeat_age(self, handle: int) -> Optional[float]:
        return 0.0

    def cancel(self, handle: int) -> None:
        self._pending.pop(handle, None)


def assert_points_equal(left, right) -> None:
    """Bit-identity check for two DataPoint sequences (stats are integers)."""
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert (a.app_name, a.dataset_name, a.scheme) == (b.app_name, b.dataset_name, b.scheme)
        assert a.stats.hits == b.stats.hits
        assert a.stats.misses == b.stats.misses
        assert a.stats.evictions == b.stats.evictions
        assert a.cycles == pytest.approx(b.cycles)
        assert a.miss_reduction_pct == pytest.approx(b.miss_reduction_pct)
        assert a.speedup_pct == pytest.approx(b.speedup_pct)


@pytest.fixture
def memo_isolation():
    """Fresh in-memory memo tables and no disk store, before and after."""
    from repro.experiments import clear_caches, set_disk_memo

    clear_caches()
    set_disk_memo(None)
    yield
    clear_caches()
    set_disk_memo(None)


@pytest.fixture
def virtual_clock() -> VirtualClock:
    return VirtualClock()
