"""Fused single-pass pipeline and kernel-registry suite (ISSUE 7).

Covers the two contracts the fused path must honour:

* **Bit-identity** — the threaded fused pipeline (L1/L2 filter + LLC replay
  in one native call) must match the scalar reference pipeline access for
  access, for every policy family, at every thread count, for any chunking
  of the input stream; and the NumPy fallback must produce the same
  statistics as the native path.
* **Registry hygiene** — kernels are registered declaratively and compiled
  lazily (importing ``repro`` must not touch a compiler), the build cache
  key covers source, flags and compiler, capability probes replace
  hard-coded symbol checks, and a broken/missing compiler degrades to the
  NumPy engines with no error surfaced to callers.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cache.config import HierarchyConfig
from repro.cache.policies import create_policy
from repro.core import AddressBoundRegisterFile, GraspClassifier
from repro.experiments.runner import LLCTrace, simulate_llc_policy
from repro.fastsim import (
    FusedPipeline,
    MultiFusedPipeline,
    effective_threads,
    fused_native_supported,
    fused_supported,
    kernels,
    run_filter,
)
from repro.fastsim.pipeline import FusedStats
from repro.trace import Trace, iter_trace_slices

HIERARCHY = HierarchyConfig()
FAMILIES = ("lru", "srrip", "brrip", "drrip", "grasp", "ship-mem", "hawkeye", "leeway", "pin")
THREAD_COUNTS = (1, 2, 8)

needs_native = pytest.mark.skipif(
    not kernels.has_capability("fused"), reason="fused kernels unavailable"
)


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(20260807)
    n = 30000
    addresses = (rng.integers(0, 4000, n) * 8 + rng.integers(0, 8, n)).astype(np.int64)
    return Trace(
        addresses=addresses,
        pcs=rng.integers(0, 16, n).astype(np.int64),
        regions=rng.integers(0, 4, n).astype(np.int64),
    )


@pytest.fixture(scope="module")
def classifier():
    abrs = AddressBoundRegisterFile(capacity=8)
    abrs.configure(0, 9000)
    abrs.configure(16000, 24000)
    return GraspClassifier(abrs, llc_size_bytes=HIERARCHY.llc.size_bytes)


@pytest.fixture(scope="module")
def scalar_reference(trace, classifier):
    """Scalar filter + scalar LLC replay, computed once per policy family."""
    cache: dict = {}

    def compute(name: str) -> FusedStats:
        if name not in cache:
            policy = create_policy(name)
            result = run_filter(trace, HIERARCHY, backend="scalar")
            keep = result.keep
            byte_addresses = trace.addresses[keep]
            llc_trace = LLCTrace(
                byte_addresses=byte_addresses,
                block_addresses=byte_addresses >> HIERARCHY.llc.block_offset_bits,
                pcs=trace.pcs[keep],
                regions=trace.regions[keep],
                hints=classifier.classify_array(byte_addresses),
                upstream_l1_hits=int(result.l1_stats.hits),
                upstream_l2_hits=int(result.l2_stats.hits),
                total_references=len(trace),
            )
            llc_stats = simulate_llc_policy(
                llc_trace, policy, HIERARCHY.llc, backend="scalar"
            )
            cache[name] = FusedStats(
                l1_stats=result.l1_stats, l2_stats=result.l2_stats, llc_stats=llc_stats
            )
        return cache[name]

    return compute


def run_fused(trace, policy, classifier, threads, chunk=3333):
    fused = FusedPipeline(HIERARCHY, policy, classifier=classifier, threads=threads)
    outcomes = []
    for piece in iter_trace_slices(trace, chunk):
        out = fused.feed(piece)
        if out is not None:
            outcomes.append(out)
    return fused, (np.concatenate(outcomes) if outcomes else None)


# ---------------------------------------------------------------------------
# bit-identity
# ---------------------------------------------------------------------------


@needs_native
@pytest.mark.parametrize("threads", THREAD_COUNTS)
@pytest.mark.parametrize("name", FAMILIES)
class TestFusedMatchesScalar:
    def test_stats(self, trace, classifier, scalar_reference, name, threads):
        policy = create_policy(name)
        assert fused_native_supported(policy, HIERARCHY)
        fused, _ = run_fused(trace, policy, classifier, threads)
        assert fused.native
        got = fused.stats()
        want = scalar_reference(name)
        assert got.l1_stats == want.l1_stats
        assert got.l2_stats == want.l2_stats
        # Scalar replay names differ only by construction path; compare counts.
        for field in ("hits", "misses", "evictions", "bypasses",
                      "region_accesses", "region_misses"):
            assert getattr(got.llc_stats, field) == getattr(want.llc_stats, field), field


@needs_native
@pytest.mark.parametrize("name", FAMILIES)
class TestFusedInvariances:
    def test_outcomes_thread_invariant(self, trace, classifier, name):
        policy = create_policy(name)
        _, base = run_fused(trace, policy, classifier, threads=1)
        for threads in THREAD_COUNTS[1:]:
            _, out = run_fused(trace, create_policy(name), classifier, threads=threads)
            np.testing.assert_array_equal(base, out)

    def test_chunked_equals_oneshot(self, trace, classifier, name):
        policy = create_policy(name)
        _, oneshot = run_fused(trace, policy, classifier, threads=2, chunk=10**9)
        for chunk in (17, 4096):
            fused, out = run_fused(
                trace, create_policy(name), classifier, threads=2, chunk=chunk
            )
            np.testing.assert_array_equal(oneshot, out)

    def test_numpy_fallback_matches_native(self, trace, classifier, name, monkeypatch):
        policy = create_policy(name)
        native, _ = run_fused(trace, policy, classifier, threads=2)
        monkeypatch.setattr(
            "repro.fastsim.pipeline.fused_native_supported", lambda p, h: False
        )
        fallback, out = run_fused(trace, create_policy(name), classifier, threads=2)
        assert not fallback.native
        assert out is None
        got, want = fallback.stats(), native.stats()
        assert got.l1_stats == want.l1_stats
        assert got.l2_stats == want.l2_stats
        assert got.llc_stats == want.llc_stats
        assert fallback.total_references == native.total_references


class TestMultiFusedPipeline:
    """The multi-scheme shared-filter pipeline matches every per-policy
    reference, native or not (the phases differ only in where the filter
    runs; the replay engines are the same)."""

    NAMES = ("lru", "grasp", "ship-mem", "hawkeye")

    def _run_multi(self, trace, classifier, names, threads=2, chunk=3333):
        multi = MultiFusedPipeline(
            HIERARCHY,
            [create_policy(name) for name in names],
            classifier=classifier,
            threads=threads,
        )
        for piece in iter_trace_slices(trace, chunk):
            multi.feed(piece)
        return multi

    def test_matches_scalar_reference(self, trace, classifier, scalar_reference):
        multi = self._run_multi(trace, classifier, self.NAMES)
        l1, l2 = multi.level_stats()
        assert multi.total_references == len(trace)
        for name, got in zip(self.NAMES, multi.stats()):
            want = scalar_reference(name)
            assert l1 == want.l1_stats
            assert l2 == want.l2_stats
            for field in ("hits", "misses", "evictions", "bypasses",
                          "region_accesses", "region_misses"):
                assert getattr(got, field) == getattr(want.llc_stats, field), (name, field)

    @needs_native
    def test_thread_and_chunk_invariant(self, trace, classifier):
        base = self._run_multi(trace, classifier, self.NAMES, threads=1)
        for threads, chunk in ((2, 3333), (8, 17), (2, 10**9)):
            other = self._run_multi(trace, classifier, self.NAMES, threads, chunk)
            for a, b in zip(base.stats(), other.stats()):
                assert (a.hits, a.misses, a.evictions) == (b.hits, b.misses, b.evictions)

    @needs_native
    def test_filter_stream_fallback_matches_native(self, trace, classifier, monkeypatch):
        native = self._run_multi(trace, classifier, self.NAMES)
        assert native.native
        monkeypatch.setattr(
            "repro.fastsim.pipeline.kernels.has_capability", lambda cap: False
        )
        fallback = self._run_multi(trace, classifier, self.NAMES)
        assert not fallback.native
        assert fallback.level_stats() == native.level_stats()
        for a, b in zip(native.stats(), fallback.stats()):
            assert (a.hits, a.misses, a.evictions) == (b.hits, b.misses, b.evictions)

    def test_rejects_non_vector_policies(self):
        from repro.cache.policies import BeladyOptimal

        with pytest.raises(ValueError, match="no vector replay engine"):
            MultiFusedPipeline(HIERARCHY, [create_policy("random")])
        with pytest.raises(ValueError, match="no vector replay engine"):
            MultiFusedPipeline(HIERARCHY, [BeladyOptimal(HIERARCHY.llc)])
        with pytest.raises(ValueError, match="at least one policy"):
            MultiFusedPipeline(HIERARCHY, [])


class TestSupportPredicates:
    def test_fused_supported_matrix(self):
        for name in FAMILIES:
            assert fused_supported(create_policy(name))
        assert not fused_supported(create_policy("random"))
        from repro.cache.policies import BeladyOptimal

        assert not fused_supported(BeladyOptimal(HIERARCHY.llc))

    def test_unsupported_policy_raises(self):
        with pytest.raises(ValueError):
            FusedPipeline(HIERARCHY, create_policy("random"))

    def test_effective_threads_clamps_to_set_counts(self):
        # Default hierarchy: 4/8/16 sets -> at most 4 shards, powers of two.
        assert effective_threads(1, HIERARCHY) == 1
        assert effective_threads(2, HIERARCHY) == 2
        assert effective_threads(3, HIERARCHY) == 2
        assert effective_threads(8, HIERARCHY) == 4
        assert effective_threads(0, HIERARCHY) == 1
        big = HierarchyConfig().with_llc_size(1 << 20)
        assert effective_threads(64, big) <= min(
            big.l1.num_sets, big.l2.num_sets, big.llc.num_sets
        )


# ---------------------------------------------------------------------------
# kernel registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_build_key_covers_inputs(self):
        base = kernels.build_key("int x;", ("-O3",), "cc")
        assert base == kernels.build_key("int x;", ("-O3",), "cc")
        assert base != kernels.build_key("int y;", ("-O3",), "cc")
        assert base != kernels.build_key("int x;", ("-O2",), "cc")
        assert base != kernels.build_key("int x;", ("-O3",), "gcc")

    def test_registered_families(self):
        names = kernels.registered()
        for family in ("core", "lru", "rrip", "pin", "opt", "ship", "leeway",
                       "hawkeye", "fused"):
            assert family in names

    def test_capability_probes(self):
        if not kernels.available():
            pytest.skip("native kernels unavailable")
        for capability in ("replay:lru", "replay:rrip", "replay:pin", "replay:opt",
                           "replay:ship", "replay:leeway", "replay:hawkeye",
                           "fused", "fused:lru", "fused:rrip", "fused:pin",
                           "fused:ship", "fused:leeway", "fused:hawkeye"):
            assert kernels.has_capability(capability), capability
        assert not kernels.has_capability("replay:nonesuch")

    def test_thread_count_parsing(self, monkeypatch):
        monkeypatch.delenv(kernels.THREADS_ENV_VAR, raising=False)
        assert kernels.thread_count() == 1
        monkeypatch.setenv(kernels.THREADS_ENV_VAR, "6")
        assert kernels.thread_count() == 6
        monkeypatch.setenv(kernels.THREADS_ENV_VAR, "0")
        assert kernels.thread_count() == 1
        monkeypatch.setenv(kernels.THREADS_ENV_VAR, "soon")
        with pytest.raises(ValueError):
            kernels.thread_count()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            kernels.register_kernel(
                kernels.KernelSpec(name="lru", source="", functions={})
            )


def _run_subprocess(code: str, env_overrides: dict) -> str:
    env = dict(os.environ)
    env.update(env_overrides)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(p) for p in (os.path.join(os.getcwd(), "src"),)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, timeout=180, check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


class TestLazyCompilation:
    def test_import_does_not_compile(self, tmp_path):
        # Even with the compiler replaced by /usr/bin/false, importing the
        # package (and the top-level repro package) must succeed and must not
        # attempt a build; only the first kernel lookup resolves.
        out = _run_subprocess(
            "import repro, repro.fastsim\n"
            "import repro.fastsim.kernels as k\n"
            "print(k.resolved())\n"
            "k.lookup('lru_replay')\n"
            "print(k.resolved())\n",
            {"REPRO_CC": "/usr/bin/false", "XDG_CACHE_HOME": str(tmp_path)},
        )
        assert out.splitlines() == ["False", "True"]

    def test_broken_compiler_degrades_to_numpy(self, tmp_path):
        # End to end under a toolchain that always fails: engines fall back
        # to NumPy, the fused pipeline falls back to the staged engines, and
        # results still come out (exercised via one policy replay).
        out = _run_subprocess(
            "import numpy as np\n"
            "import repro.fastsim.kernels as k\n"
            "from repro.cache.config import HierarchyConfig\n"
            "from repro.cache.policies import create_policy\n"
            "from repro.fastsim import FusedPipeline, fused_native_supported\n"
            "from repro.trace import Trace\n"
            "hier = HierarchyConfig()\n"
            "policy = create_policy('grasp')\n"
            "assert not fused_native_supported(policy, hier)\n"
            "assert not k.available()\n"
            "assert k.lookup('lru_replay') is None\n"
            "rng = np.random.default_rng(3)\n"
            "n = 500\n"
            "trace = Trace(addresses=(rng.integers(0, 300, n) * 8).astype(np.int64),\n"
            "              pcs=np.zeros(n, dtype=np.int64),\n"
            "              regions=np.zeros(n, dtype=np.int64))\n"
            "fused = FusedPipeline(hier, policy)\n"
            "assert not fused.native\n"
            "assert fused.feed(trace) is None\n"
            "stats = fused.stats()\n"
            "assert stats.llc_stats.hits + stats.llc_stats.misses > 0\n"
            "print('ok')\n",
            {"REPRO_CC": "/usr/bin/false", "XDG_CACHE_HOME": str(tmp_path)},
        )
        assert out == "ok"

    def test_native_disable_env(self, tmp_path):
        out = _run_subprocess(
            "import repro.fastsim.kernels as k\n"
            "print(k.available(), k.lookup('lru_replay') is None)\n",
            {"REPRO_NATIVE": "0", "XDG_CACHE_HOME": str(tmp_path)},
        )
        assert out == "False True"
