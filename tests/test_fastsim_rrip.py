"""Equivalence tests for the vectorized RRIP-family replay engine.

Property-style: randomized block streams x randomized reuse-hint streams x
randomized cache geometries must produce byte-identical outcomes on the
scalar policies and both fast engines (NumPy and, when a compiler is
present, the compiled kernel) — per-access hit masks, full
hit/miss/eviction statistics, and the global set-dueling state (PSEL and
the bimodal insertion counter).
"""

import numpy as np
import pytest

from repro.cache import CacheConfig, SetAssociativeCache
from repro.cache.policies import LRUPolicy
from repro.cache.policies.rrip import (
    DYNAMIC_INSERTION,
    BRRIPPolicy,
    DRRIPPolicy,
    SRRIPPolicy,
)
from repro.cache.stats import CacheStats
from repro.core.grasp import GraspPolicy
from repro.core.variants import GraspInsertionOnlyPolicy, RRIPWithHintsPolicy
from repro.experiments import ExperimentConfig, build_workload, clear_caches
from repro.experiments.runner import (
    _scalar_llc_replay,
    llc_trace_for,
    simulate_llc_policy,
)
from repro.experiments.schemes import scheme_policy
from repro.fastsim import (
    SCALAR,
    VECTOR,
    VERIFY,
    kernels,
    numpy_rrip_replay,
    rrip_replay,
    rrip_spec,
    supports_vector_replay,
    vector_policy_replay,
)
from repro.fastsim.filter import assert_stats_equal

GEOMETRIES = [(1, 1), (1, 4), (4, 2), (8, 8), (16, 16), (32, 4), (64, 2)]

#: Policy factories under test; fresh instances per replay because the scalar
#: path mutates them.  Non-default parameters (narrow RRPVs, short bimodal
#: periods, a 4-bit PSEL that saturates constantly) stress every code path.
POLICIES = {
    "srrip": lambda: SRRIPPolicy(),
    "srrip-2bit": lambda: SRRIPPolicy(rrpv_bits=2),
    "brrip": lambda: BRRIPPolicy(),
    "brrip-tight": lambda: BRRIPPolicy(rrpv_bits=2, epsilon=3),
    "drrip": lambda: DRRIPPolicy(),
    "drrip-saturating": lambda: DRRIPPolicy(epsilon=4, psel_bits=3),
    "grasp": lambda: GraspPolicy(),
    "grasp-tight": lambda: GraspPolicy(rrpv_bits=2, epsilon=2, psel_bits=4),
}


def _scalar_reference(policy, blocks, hints, num_sets, ways):
    """Independent scalar replay built directly on SetAssociativeCache."""
    config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways, name="ref")
    cache = SetAssociativeCache(config, policy)
    hits = np.array(
        [cache.access_block(int(b), 0, int(h)) for b, h in zip(blocks, hints)],
        dtype=bool,
    )
    return hits, cache.stats


def _assert_replay_matches(replay, policy, expected_hits, expected_stats, spec):
    assert np.array_equal(replay.hits, expected_hits)
    assert replay.hit_count == expected_stats.hits
    assert replay.miss_count == expected_stats.misses
    assert replay.evictions == expected_stats.evictions
    if spec.dueling:
        # The set-dueling state must track the scalar policy exactly too.
        assert replay.psel == policy._psel
        assert replay.insert_count == policy._insert_count
    else:
        assert replay.psel is None
        if spec.epsilon:
            assert replay.insert_count == policy._insert_count


class TestSpecExtraction:
    def test_exact_types_supported(self):
        for factory in POLICIES.values():
            policy = factory()
            assert rrip_spec(policy) is not None
            assert supports_vector_replay(policy)

    def test_subclasses_and_other_policies_rejected(self):
        class NotQuiteDRRIP(DRRIPPolicy):
            pass

        for policy in (
            NotQuiteDRRIP(),
            RRIPWithHintsPolicy(),
            GraspInsertionOnlyPolicy(),
            scheme_policy("SHiP-MEM"),
            scheme_policy("Hawkeye"),
            scheme_policy("Leeway"),
            scheme_policy("PIN-50"),
        ):
            # None of these may masquerade as a plain RRIP-family policy...
            assert rrip_spec(policy) is None
        # ...but the exact SHiP/Hawkeye/Leeway/PIN types have dedicated
        # engines (tests/test_fastsim_policies.py); only true subclasses
        # fall back to the scalar simulator.
        for policy in (NotQuiteDRRIP(), RRIPWithHintsPolicy(), GraspInsertionOnlyPolicy()):
            assert not supports_vector_replay(policy)

    def test_invalid_epsilon_rejected(self):
        # A zero bimodal period would make the scalar policy divide by zero
        # and the engines diverge; every bimodal policy must reject it.
        for factory in (BRRIPPolicy, DRRIPPolicy, GraspPolicy):
            with pytest.raises(ValueError):
                factory(epsilon=0)

    def test_spec_reflects_policy_parameters(self):
        spec = rrip_spec(DRRIPPolicy(rrpv_bits=2, epsilon=8, psel_bits=4))
        assert spec.max_rrpv == 3
        assert spec.epsilon == 8
        assert spec.psel_max == 15
        assert spec.leader_period == DRRIPPolicy.LEADER_PERIOD
        assert all(entry == DYNAMIC_INSERTION for entry in spec.insertion_table)
        grasp = rrip_spec(GraspPolicy())
        # Table II: High->MRU, Moderate->near-LRU, Low->LRU, Default->duel.
        assert grasp.insertion_table == (DYNAMIC_INSERTION, 0, 6, 7)
        assert grasp.promotion_table == (0, 0, -1, -1)


class TestRRIPReplayEquivalence:
    # ``rrip_replay`` dispatches to the compiled kernel when one is available;
    # ``numpy_rrip_replay`` is the portable batched engine.  Both must
    # reproduce the scalar policies exactly.
    ENGINES = (rrip_replay, numpy_rrip_replay)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("num_sets,ways", GEOMETRIES)
    def test_random_streams(self, engine, policy_name, num_sets, ways):
        seed = sorted(POLICIES).index(policy_name) * 9973 + num_sets * 131 + ways
        rng = np.random.default_rng(seed)
        for n in (0, 1, ways, 193, 800):
            blocks = rng.integers(0, max(1, 3 * num_sets * ways), size=n)
            hints = rng.integers(0, 4, size=n)
            policy = POLICIES[policy_name]()
            spec = rrip_spec(policy)
            expected_hits, expected_stats = _scalar_reference(
                policy, blocks, hints, num_sets, ways
            )
            replay = engine(blocks, hints, num_sets, ways, spec)
            _assert_replay_matches(replay, policy, expected_hits, expected_stats, spec)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("policy_name", ["drrip-saturating", "grasp-tight"])
    def test_leader_heavy_streams_keep_psel_exact(self, engine, policy_name):
        # Concentrate accesses on leader sets so PSEL saturates repeatedly.
        num_sets, ways = 32, 2
        rng = np.random.default_rng(5)
        leader_blocks = rng.integers(0, 8, size=600) * num_sets  # set 0
        brrip_blocks = rng.integers(0, 8, size=600) * num_sets + 1  # set 1
        blocks = np.empty(1200, dtype=np.int64)
        blocks[0::2] = leader_blocks
        blocks[1::2] = brrip_blocks
        hints = np.zeros(1200, dtype=np.int64)
        policy = POLICIES[policy_name]()
        spec = rrip_spec(policy)
        expected_hits, expected_stats = _scalar_reference(
            policy, blocks, hints, num_sets, ways
        )
        replay = engine(blocks, hints, num_sets, ways, spec)
        _assert_replay_matches(replay, policy, expected_hits, expected_stats, spec)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_hint_stream_none_matches_hint_blind_scalar(self, engine):
        rng = np.random.default_rng(9)
        blocks = rng.integers(0, 128, size=700)
        policy = GraspPolicy()
        spec = rrip_spec(policy)
        expected_hits, expected_stats = _scalar_reference(
            policy, blocks, np.zeros(700, dtype=np.int64), 16, 4
        )
        replay = engine(blocks, None, 16, 4, spec)
        _assert_replay_matches(replay, policy, expected_hits, expected_stats, spec)

    def test_native_and_numpy_engines_agree(self):
        if not kernels.available():
            pytest.skip("no C compiler available for the native kernel")
        rng = np.random.default_rng(77)
        for policy_name in sorted(POLICIES):
            blocks = rng.integers(0, 512, size=int(rng.integers(1, 2500)))
            hints = rng.integers(0, 4, size=blocks.shape[0])
            spec = rrip_spec(POLICIES[policy_name]())
            native = rrip_replay(blocks, hints, num_sets=16, ways=4, spec=spec)
            portable = numpy_rrip_replay(blocks, hints, num_sets=16, ways=4, spec=spec)
            assert np.array_equal(native.hits, portable.hits)
            assert np.array_equal(native.misses_per_set, portable.misses_per_set)
            assert native.psel == portable.psel
            assert native.insert_count == portable.insert_count


class TestVectorPolicyReplay:
    def test_region_breakdown_matches_scalar(self):
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 96, size=900)
        hints = rng.integers(0, 4, size=900)
        regions = rng.integers(0, 4, size=900).astype(np.int8)
        llc = CacheConfig(size_bytes=16 * 64 * 4, ways=4, name="LLC")
        stats = vector_policy_replay(
            GraspPolicy(), blocks, llc, hints=hints, regions=regions
        )
        cache = SetAssociativeCache(llc, GraspPolicy())
        for block, hint, region in zip(blocks.tolist(), hints.tolist(), regions.tolist()):
            cache.access_block(block, 0, hint, region)
        assert_stats_equal(cache.stats, stats, "test")
        assert cache.stats.region_accesses == stats.region_accesses
        assert cache.stats.region_misses == stats.region_misses

    def test_unsupported_policy_raises(self):
        with pytest.raises(ValueError):
            vector_policy_replay(
                scheme_policy("RRIP+Hints"),
                np.arange(10),
                CacheConfig(size_bytes=16 * 64 * 4, ways=4, name="LLC"),
            )

    def test_lru_still_routes_to_stack_distance_engine(self):
        rng = np.random.default_rng(21)
        blocks = rng.integers(0, 64, size=500)
        llc = CacheConfig(size_bytes=16 * 64 * 4, ways=4, name="LLC")
        stats = vector_policy_replay(LRUPolicy(), blocks, llc)
        cache = SetAssociativeCache(llc, LRUPolicy())
        for block in blocks.tolist():
            cache.access_block(block)
        assert_stats_equal(cache.stats, stats, "test")


class TestEndToEndDispatch:
    @pytest.mark.parametrize("scheme", ["RRIP", "GRASP"])
    def test_real_workload_stats_identical(self, scheme):
        clear_caches()
        config = ExperimentConfig.smoke()
        workload = build_workload("PR", "lj", config=config)
        llc_trace = llc_trace_for(workload, config)
        llc = config.hierarchy.llc
        scalar = simulate_llc_policy(llc_trace, scheme_policy(scheme), llc, backend=SCALAR)
        vector = simulate_llc_policy(llc_trace, scheme_policy(scheme), llc, backend=VECTOR)
        verify = simulate_llc_policy(llc_trace, scheme_policy(scheme), llc, backend=VERIFY)
        for other in (vector, verify):
            assert_stats_equal(scalar, other, "test")
        # The region breakdown (Fig. 2) must survive vectorization too.
        assert scalar.region_accesses == vector.region_accesses
        assert scalar.region_misses == vector.region_misses

    def test_hint_blind_replay_matches_scalar(self):
        clear_caches()
        config = ExperimentConfig.smoke()
        workload = build_workload("PR", "lj", config=config)
        llc_trace = llc_trace_for(workload, config)
        llc = config.hierarchy.llc
        direct = _scalar_llc_replay(llc_trace, GraspPolicy(), llc, False)
        public = simulate_llc_policy(
            llc_trace, GraspPolicy(), llc, use_hints=False, backend=VECTOR
        )
        assert_stats_equal(direct, public, "test")

    def test_ablation_variants_stay_on_scalar_path(self):
        # The Fig. 7 ablations subclass DRRIP/GRASP but override hooks the
        # array tables cannot express; they must not be routed to the engine.
        for scheme in ("RRIP+Hints", "GRASP (Insertion-Only)"):
            assert not supports_vector_replay(scheme_policy(scheme))


class TestStatsContract:
    def test_from_counts_round_trip(self):
        stats = CacheStats.from_counts("LLC", hits=7, misses=5, evictions=2)
        assert stats.accesses == 12
        assert stats.miss_rate == pytest.approx(5 / 12)
