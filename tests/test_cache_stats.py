"""Property-based invariant suite for :class:`CacheStats` (ISSUE 9).

Drives the counter object with randomized access/bypass/merge schedules and
checks the invariants ``validate()`` promises, for the aggregate and per
stream: ``hits + misses == accesses``, ``bypasses <= misses``, every
per-stream column summing exactly to its aggregate, merge additivity, and
the single-stream summary staying byte-identical to the pre-co-run format.

The suite needs ``hypothesis``; it is skipped wholesale where the package
is unavailable.
"""

import pickle

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.cache.stats import CacheStats  # noqa: E402

#: One recorded access: (hit, region label or None, stream id or None,
#: bypass after a miss).  Bypasses only ever follow misses, as in the cache.
ACCESS = st.tuples(
    st.booleans(),
    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    st.booleans(),
)

ACCESSES = st.lists(ACCESS, max_size=200)


def replay(accesses, name="LLC"):
    stats = CacheStats(name=name)
    for hit, region, stream, bypass in accesses:
        stats.record(hit, region, stream)
        if not hit and bypass:
            stats.record_bypass(stream)
    return stats


@given(ACCESSES)
@settings(max_examples=200, deadline=None)
def test_record_preserves_invariants(accesses):
    stats = replay(accesses)
    tagged_count = sum(1 for a in accesses if a[2] is not None)
    if tagged_count in (0, len(accesses)):
        # A real replay tags every access or none; validate() accepts those
        # and rejects the partial taggings (columns can't sum to aggregates).
        assert stats.validate() is stats
    elif tagged_count:
        with pytest.raises(ValueError):
            stats.validate()
    assert stats.accesses == len(accesses)
    assert stats.hits + stats.misses == stats.accesses
    assert stats.bypasses <= stats.misses
    tagged = [a for a in accesses if a[2] is not None]
    assert sum(stats.stream_accesses.values()) == len(tagged)
    for stream in stats.stream_accesses:
        assert (
            stats.stream_hits.get(stream, 0) + stats.stream_misses.get(stream, 0)
            == stats.stream_accesses[stream]
        )


@given(ACCESSES)
@settings(max_examples=100, deadline=None)
def test_stream_columns_sum_to_aggregate_when_fully_tagged(accesses):
    """When every access carries a stream, validate() accepts the totals."""
    tagged = [(hit, region, stream or 0, bypass) for hit, region, stream, bypass in accesses]
    stats = replay(tagged).validate()
    if tagged:
        assert sum(stats.stream_accesses.values()) == stats.accesses
        assert sum(stats.stream_hits.values()) == stats.hits
        assert sum(stats.stream_misses.values()) == stats.misses
        assert sum(stats.stream_bypasses.values()) == stats.bypasses


@given(ACCESSES, ACCESSES)
@settings(max_examples=100, deadline=None)
def test_merge_is_counterwise_additive(left_accesses, right_accesses):
    left, right = replay(left_accesses), replay(right_accesses)
    merged = left.merge(right)
    whole = replay(left_accesses + right_accesses)
    assert merged.accesses == whole.accesses
    assert merged.hits == whole.hits
    assert merged.misses == whole.misses
    assert merged.bypasses == whole.bypasses
    assert merged.region_accesses == whole.region_accesses
    assert merged.region_misses == whole.region_misses
    assert merged.stream_accesses == whole.stream_accesses
    assert merged.stream_hits == whole.stream_hits
    assert merged.stream_misses == whole.stream_misses
    assert merged.stream_bypasses == whole.stream_bypasses
    if (left.stream_accesses or right.stream_accesses) and merged.stream_accesses:
        # Fully-tagged merges must still validate; partially tagged ones are
        # legitimately rejected (the columns cannot sum to the aggregate).
        if sum(merged.stream_accesses.values()) == merged.accesses:
            merged.validate()


@given(ACCESSES)
@settings(max_examples=100, deadline=None)
def test_stream_views_partition_the_tagged_counters(accesses):
    tagged = [(hit, region, stream or 0, bypass) for hit, region, stream, bypass in accesses]
    stats = replay(tagged)
    views = [stats.stream_view(stream) for stream in sorted(stats.stream_accesses)]
    assert sum(view.accesses for view in views) == stats.accesses
    assert sum(view.hits for view in views) == stats.hits
    assert sum(view.misses for view in views) == stats.misses
    assert sum(view.bypasses for view in views) == stats.bypasses
    for view in views:
        view.validate()
        assert view.name.startswith(f"{stats.name}[s")


@given(ACCESSES)
@settings(max_examples=100, deadline=None)
def test_untagged_summary_format_is_unchanged(accesses):
    """Single-programmed runs never grow a ``streams`` key."""
    untagged = [(hit, region, None, bypass) for hit, region, _stream, bypass in accesses]
    stats = replay(untagged)
    summary = stats.as_dict()
    assert "streams" not in summary
    assert set(summary) == {
        "name", "accesses", "hits", "misses", "miss_rate", "evictions", "bypasses",
    }


@given(ACCESSES)
@settings(max_examples=50, deadline=None)
def test_pickle_round_trip(accesses):
    stats = replay(accesses)
    clone = pickle.loads(pickle.dumps(stats))
    assert clone.as_dict() == stats.as_dict()
    assert clone.stream_accesses == stats.stream_accesses


def test_old_pickles_gain_empty_stream_fields():
    """Entries persisted before co-run existed must deserialize cleanly."""
    stats = CacheStats(name="LLC", accesses=3, hits=2, misses=1)
    state = {
        key: value
        for key, value in stats.__dict__.items()
        if not key.startswith("stream_")
    }
    revived = CacheStats.__new__(CacheStats)
    revived.__setstate__(state)
    assert revived.stream_accesses == {}
    assert revived.stream_bypasses == {}
    revived.validate()


def test_validate_rejects_inconsistent_counters():
    with pytest.raises(ValueError):
        CacheStats(name="x", accesses=2, hits=2, misses=1).validate()
    with pytest.raises(ValueError):
        CacheStats(name="x", accesses=1, misses=1, bypasses=2).validate()
    broken = CacheStats(name="x", accesses=2, hits=1, misses=1)
    broken.stream_accesses = {0: 1}
    broken.stream_hits = {0: 1}
    with pytest.raises(ValueError, match="stream_accesses sum"):
        broken.validate()
    lying = CacheStats(name="x", accesses=2, hits=1, misses=1)
    lying.stream_accesses = {0: 2}
    lying.stream_hits = {0: 1}
    with pytest.raises(ValueError, match="stream 0"):
        lying.validate()
    skewed = CacheStats(name="x", accesses=1, hits=1)
    skewed.stream_accesses = {0: 1}
    skewed.stream_misses = {0: 1}
    with pytest.raises(ValueError, match="stream_hits sum|stream 0"):
        skewed.validate()


def test_from_counts_derives_stream_accesses():
    stats = CacheStats.from_counts(
        name="LLC",
        hits=7,
        misses=5,
        stream_hits={0: 4, 1: 3},
        stream_misses={0: 2, 1: 3},
    )
    assert stats.stream_accesses == {0: 6, 1: 6}
    stats.validate()
