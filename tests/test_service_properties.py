"""Property-based tests for the sweep scheduler and work-stealing queue.

Randomized (but seeded — no hypothesis dependency) DAGs and worker counts,
driven on a virtual clock through :class:`conftest.SimBackend`, check the
scheduler's core invariants:

* no task is dispatched before every dependency finished;
* no task executes twice when its first execution succeeds;
* work stealing never lets a worker idle while another worker's queue holds
  ready tasks;
* resume dispatches only tasks the completion store does not already hold;
* a permanently failing task takes down exactly its transitive dependents.
"""

import zlib

import pytest
from conftest import SimBackend, VirtualClock

from repro.experiments.queue import RetryPolicy, Task, WorkQueue
from repro.experiments.service import (
    DONE,
    FAILED,
    InMemoryTaskStore,
    Scheduler,
    SchedulerError,
)

import random


def make_dag(rng: random.Random, size: int, max_deps: int = 3):
    """Random DAG: each task depends on up to ``max_deps`` earlier tasks."""
    tasks = []
    for index in range(size):
        n_deps = rng.randint(0, min(max_deps, index))
        deps = tuple(sorted(rng.sample([t.task_id for t in tasks], n_deps)))
        tasks.append(Task(task_id=f"t{index:03d}", deps=deps, label=f"task {index}"))
    return tasks


def run_scheduler(tasks, workers, *, backend=None, clock=None, store=None,
                  retry=None, seed=0):
    clock = clock or VirtualClock()
    backend = backend or SimBackend(clock, seed=seed)
    scheduler = Scheduler(
        tasks,
        backend,
        workers,
        store=store,
        retry=retry or RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.1),
        clock=clock,
        sleep=clock.sleep,
    )
    report = scheduler.run()
    return scheduler, backend, report


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_random_dags_respect_dependencies_and_run_once(seed, workers):
    rng = random.Random(1000 + seed)
    tasks = make_dag(rng, size=rng.randint(5, 30))
    scheduler, backend, report = run_scheduler(tasks, workers, seed=seed)

    assert report.executed == len(tasks)
    assert not report.failed
    assert all(record.status == DONE for record in scheduler.records.values())

    # Every task started exactly once (no duplicate dispatch on success).
    assert set(backend.start_counts) == {task.task_id for task in tasks}
    assert all(count == 1 for count in backend.start_counts.values())

    # No task started before all of its dependencies finished.
    start_time = {task_id: at for task_id, at, _ in backend.starts}
    for task in tasks:
        for dep in task.deps:
            assert start_time[task.task_id] >= backend.finish_times[dep], (
                f"{task.task_id} started at {start_time[task.task_id]} before "
                f"dependency {dep} finished at {backend.finish_times[dep]}"
            )


def _ids_homed_at(worker: int, num_workers: int, count: int):
    """Task ids whose crc32 placement lands every task on one worker."""
    ids = []
    index = 0
    while len(ids) < count:
        candidate = f"skew{index}"
        if zlib.crc32(candidate.encode("utf-8")) % num_workers == worker:
            ids.append(candidate)
        index += 1
    return ids


def test_work_stealing_spreads_a_skewed_queue_across_all_workers():
    # All 12 independent tasks hash-home onto worker 0; without stealing,
    # workers 1 and 2 would idle for the whole run.
    workers = 3
    tasks = [Task(task_id=tid) for tid in _ids_homed_at(0, workers, 12)]
    assert all(task.home_worker(workers) == 0 for task in tasks)

    scheduler, backend, report = run_scheduler(tasks, workers)
    assert report.executed == len(tasks)
    workers_used = {worker for _, _, worker in backend.starts}
    assert workers_used == {0, 1, 2}
    assert report.steals > 0

    # No-starvation: whenever a task starts, it starts at the same virtual
    # instant as the earliest moment any worker was both idle and work was
    # queued — i.e. the first batch dispatches all three workers at t=0.
    first_tick = [worker for _, at, worker in backend.starts if at == 0.0]
    assert sorted(first_tick) == [0, 1, 2]


@pytest.mark.parametrize("seed", range(4))
def test_resume_dispatches_only_incomplete_tasks(seed):
    rng = random.Random(2000 + seed)
    tasks = make_dag(rng, size=20)
    done_before = {task.task_id for task in tasks if rng.random() < 0.4}
    store = InMemoryTaskStore(done=done_before)

    scheduler, backend, report = run_scheduler(tasks, workers=3, store=store, seed=seed)
    assert report.cached == len(done_before)
    assert report.executed == len(tasks) - len(done_before)
    assert set(backend.start_counts) == {t.task_id for t in tasks} - done_before
    assert store.done == {task.task_id for task in tasks}


def test_permanent_failure_takes_down_exactly_the_dependent_subtree():
    #      a        d
    #     / \       |
    #    b   c      e      (b fails permanently; d/e are unrelated)
    #     \ /
    #      f
    tasks = [
        Task(task_id="a"),
        Task(task_id="b", deps=("a",)),
        Task(task_id="c", deps=("a",)),
        Task(task_id="f", deps=("b", "c")),
        Task(task_id="d"),
        Task(task_id="e", deps=("d",)),
    ]
    clock = VirtualClock()
    backend = SimBackend(clock)
    backend.fail_ids.add("b")
    scheduler, backend, report = run_scheduler(tasks, workers=2, backend=backend, clock=clock)

    status = {tid: record.status for tid, record in scheduler.records.items()}
    assert status == {"a": DONE, "b": FAILED, "c": DONE, "f": FAILED, "d": DONE, "e": DONE}
    assert set(report.failed) == {"b", "f"}
    assert "dependency failed" in scheduler.records["f"].error
    # b was retried to exhaustion; f was never dispatched at all.
    assert backend.start_counts["b"] == 3
    assert "f" not in backend.start_counts
    assert report.task_errors == 3


def test_worker_death_retries_with_backoff_and_converges():
    clock = VirtualClock()
    backend = SimBackend(clock)
    backend.die_once.add("t001")
    tasks = [Task(task_id="t000"), Task(task_id="t001", deps=("t000",))]
    retry = RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=4.0)
    scheduler, backend, report = run_scheduler(
        tasks, workers=1, backend=backend, clock=clock, retry=retry
    )
    assert not report.failed
    assert report.worker_deaths == 1
    assert report.retries == 1
    assert backend.start_counts["t001"] == 2
    # The retry respected the backoff delay: the second start of t001 is at
    # least base_delay after the death was observed.
    t001_starts = [at for task_id, at, _ in backend.starts if task_id == "t001"]
    assert t001_starts[1] - t001_starts[0] >= retry.base_delay


class TestGraphValidation:
    def test_cycle_is_rejected(self):
        tasks = [Task(task_id="a", deps=("b",)), Task(task_id="b", deps=("a",))]
        with pytest.raises(SchedulerError, match="cycle"):
            run_scheduler(tasks, workers=1)

    def test_unknown_dependency_is_rejected(self):
        with pytest.raises(SchedulerError, match="unknown task"):
            run_scheduler([Task(task_id="a", deps=("ghost",))], workers=1)

    def test_duplicate_task_id_is_rejected(self):
        with pytest.raises(SchedulerError, match="duplicate"):
            run_scheduler([Task(task_id="a"), Task(task_id="a")], workers=1)


class TestWorkQueue:
    def test_local_queue_is_fifo(self):
        queue = WorkQueue(2)
        first, second = Task(task_id="x1"), Task(task_id="x2")
        queue.push(first, worker=0)
        queue.push(second, worker=0)
        assert queue.pop(0) is first
        assert queue.pop(0) is second
        assert queue.steals == 0

    def test_steal_takes_from_back_of_longest_queue(self):
        queue = WorkQueue(3)
        for index in range(3):
            queue.push(Task(task_id=f"long{index}"), worker=0)
        queue.push(Task(task_id="short"), worker=1)
        stolen = queue.pop(2)
        assert stolen.task_id == "long2"  # back of worker 0's (longest) queue
        assert queue.steals == 1
        assert queue.pending() == 3

    def test_pop_on_empty_queues_returns_none(self):
        queue = WorkQueue(2)
        assert queue.pop(0) is None
        assert queue.steals == 0
