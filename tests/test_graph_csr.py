"""Unit tests for the CSR graph representation and builder."""

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.graph.builder import _build_csr, _from_edge_list
from repro.graph.csr import GraphError


def paper_example_graph() -> CSRGraph:
    """The 6-vertex example graph from Fig. 1(a) of the paper.

    In-edges (destination <- source): 1<-3, 1<-2, 2<-0, 2<-5, 3<-1, 3<-5,
    3<-4, 4<-5, 5<-2.  Vertex 0 has no in-edges.
    """
    edges = [
        (3, 1),
        (2, 1),
        (0, 2),
        (5, 2),
        (1, 3),
        (5, 3),
        (4, 3),
        (5, 4),
        (2, 5),
    ]
    return _from_edge_list(edges, num_vertices=6, name="fig1")


class TestBuildCSR:
    def test_vertex_and_edge_counts(self):
        graph = paper_example_graph()
        assert graph.num_vertices == 6
        assert graph.num_edges == 9

    def test_in_csr_matches_paper_figure(self):
        """Fig. 1(b): the in-edge Vertex Array is [0, 0, 2, 4, 7, 8, 9]."""
        graph = paper_example_graph()
        expected_index = [0, 0, 2, 4, 7, 8, 9]
        assert graph.in_index.tolist() == expected_index
        assert sorted(graph.in_neighbors(1).tolist()) == [2, 3]
        assert sorted(graph.in_neighbors(3).tolist()) == [1, 4, 5]
        assert graph.in_neighbors(0).tolist() == []

    def test_out_neighbors(self):
        graph = paper_example_graph()
        assert sorted(graph.out_neighbors(5).tolist()) == [2, 3, 4]
        assert graph.out_degree(5) == 3
        assert graph.in_degree(5) == 1

    def test_degree_arrays_sum_to_edges(self):
        graph = paper_example_graph()
        assert graph.out_degrees.sum() == graph.num_edges
        assert graph.in_degrees.sum() == graph.num_edges

    def test_edge_arrays_roundtrip(self):
        graph = paper_example_graph()
        sources, targets = graph.edge_arrays()
        rebuilt = _build_csr(6, sources, targets)
        assert rebuilt.out_index.tolist() == graph.out_index.tolist()
        assert rebuilt.out_targets.tolist() == graph.out_targets.tolist()

    def test_neighbor_lists_are_sorted(self):
        graph = paper_example_graph()
        for v in range(graph.num_vertices):
            out = graph.out_neighbors(v)
            assert np.all(np.diff(out) >= 0)

    def test_empty_graph(self):
        graph = _from_edge_list([], num_vertices=4)
        assert graph.num_vertices == 4
        assert graph.num_edges == 0
        assert graph.average_degree == 0.0

    def test_zero_vertex_graph(self):
        graph = _from_edge_list([])
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(GraphError):
            _build_csr(3, np.array([0, 5]), np.array([1, 2]))

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError):
            _build_csr(3, np.array([0, -1]), np.array([1, 2]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphError):
            _build_csr(3, np.array([0, 1]), np.array([1]))

    def test_self_loop_removal(self):
        graph = _build_csr(
            3, np.array([0, 1, 2]), np.array([0, 2, 2]), remove_self_loops=True
        )
        assert graph.num_edges == 1
        assert graph.out_neighbors(1).tolist() == [2]

    def test_deduplicate(self):
        graph = _build_csr(
            3, np.array([0, 0, 0, 1]), np.array([1, 1, 2, 2]), deduplicate=True
        )
        assert graph.num_edges == 3
        assert graph.out_neighbors(0).tolist() == [1, 2]


class TestTransformations:
    def test_reverse_swaps_directions(self):
        graph = paper_example_graph()
        reversed_graph = graph.reverse()
        assert reversed_graph.num_edges == graph.num_edges
        for v in range(graph.num_vertices):
            assert sorted(reversed_graph.out_neighbors(v).tolist()) == sorted(
                graph.in_neighbors(v).tolist()
            )

    def test_reverse_twice_is_identity(self):
        graph = paper_example_graph()
        double = graph.reverse().reverse()
        assert double.out_index.tolist() == graph.out_index.tolist()
        assert double.out_targets.tolist() == graph.out_targets.tolist()

    def test_relabel_identity(self):
        graph = paper_example_graph()
        relabeled = graph.relabel(np.arange(6))
        assert relabeled.out_index.tolist() == graph.out_index.tolist()
        assert relabeled.out_targets.tolist() == graph.out_targets.tolist()

    def test_relabel_preserves_degree_multiset(self):
        graph = paper_example_graph()
        permutation = np.array([5, 4, 3, 2, 1, 0])
        relabeled = graph.relabel(permutation)
        assert sorted(relabeled.out_degrees.tolist()) == sorted(graph.out_degrees.tolist())
        assert sorted(relabeled.in_degrees.tolist()) == sorted(graph.in_degrees.tolist())

    def test_relabel_moves_edges_correctly(self):
        graph = paper_example_graph()
        permutation = np.array([1, 0, 2, 3, 4, 5])  # swap vertices 0 and 1
        relabeled = graph.relabel(permutation)
        # Old edge 0 -> 2 becomes 1 -> 2.
        assert 2 in relabeled.out_neighbors(1).tolist()
        # Old edge 3 -> 1 becomes 3 -> 0.
        assert 0 in relabeled.out_neighbors(3).tolist()

    def test_relabel_rejects_non_bijection(self):
        graph = paper_example_graph()
        with pytest.raises(GraphError):
            graph.relabel(np.zeros(6, dtype=np.int64))

    def test_relabel_rejects_wrong_length(self):
        graph = paper_example_graph()
        with pytest.raises(GraphError):
            graph.relabel(np.arange(5))


class TestWeights:
    def test_with_random_weights_attaches_weights(self):
        graph = paper_example_graph().with_random_weights(seed=3)
        assert graph.is_weighted
        assert graph.out_weights.shape == (graph.num_edges,)
        assert graph.in_weights.shape == (graph.num_edges,)
        assert graph.out_weights.min() >= 1

    def test_weights_consistent_between_directions(self):
        """The same logical edge must carry the same weight in both CSRs."""
        graph = paper_example_graph().with_random_weights(seed=7)
        out_edge_weights = {}
        for v in range(graph.num_vertices):
            for neighbor, weight in zip(
                graph.out_neighbors(v).tolist(), graph.out_edge_weights(v).tolist()
            ):
                out_edge_weights[(v, neighbor)] = weight
        for v in range(graph.num_vertices):
            for source, weight in zip(
                graph.in_neighbors(v).tolist(), graph.in_edge_weights(v).tolist()
            ):
                assert out_edge_weights[(source, v)] == weight

    def test_unweighted_weight_access_raises(self):
        graph = paper_example_graph()
        with pytest.raises(GraphError):
            graph.out_edge_weights(0)

    def test_weighted_flag_round_trips_through_relabel(self):
        graph = paper_example_graph().with_random_weights(seed=5)
        relabeled = graph.relabel(np.array([5, 4, 3, 2, 1, 0]))
        assert relabeled.is_weighted
        assert sorted(relabeled.out_weights.tolist()) == sorted(graph.out_weights.tolist())
