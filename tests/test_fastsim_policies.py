"""Equivalence tests for the PR 4 vectorized LLC policy engines.

Property-style, mirroring ``tests/test_fastsim_rrip.py``: randomized block
streams x reuse-hint streams x PC streams x cache geometries must produce
byte-identical outcomes on the scalar policies and both fast engines (NumPy
and, when a compiler is present, the compiled kernel) for SHiP-MEM, Hawkeye,
Leeway, the PIN-X pinning configurations and Belady's OPT — per-access hit
masks, full hit/miss/eviction/bypass statistics, and the global learning
state (SHCT, PC predictors, PSEL).  Also regression-tests the scalar-policy
bugs fixed in this PR (PIN's skipped PSEL updates and stale pinned RRPVs,
SHiP's silently truncated region sizes, Leeway's quadratic victim scan).
"""

import numpy as np
import pytest

from repro.cache import CacheConfig, SetAssociativeCache
from repro.cache.hints import HINT_DEFAULT, HINT_HIGH
from repro.cache.policies.base import BYPASS
from repro.cache.policies.hawkeye import HawkeyePolicy
from repro.cache.policies.leeway import LeewayPolicy
from repro.cache.policies.opt import BeladyOptimal, simulate_opt_misses
from repro.cache.policies.pin import PinningPolicy
from repro.cache.policies.ship import ShipMemPolicy
from repro.core.variants import GraspInsertionOnlyPolicy, RRIPWithHintsPolicy
from repro.experiments import ExperimentConfig, build_workload, clear_caches
from repro.experiments.runner import (
    _scalar_llc_replay,
    llc_trace_for,
    simulate_llc_policy,
    simulate_opt,
)
from repro.experiments.schemes import scheme_policy
from repro.fastsim import (
    SCALAR,
    VECTOR,
    VERIFY,
    kernels,
    hawkeye_spec,
    leeway_spec,
    numpy_hawkeye_replay,
    numpy_leeway_replay,
    numpy_opt_replay,
    numpy_pin_replay,
    numpy_ship_replay,
    opt_replay,
    pin_spec,
    ship_spec,
    supports_vector_replay,
    vector_policy_replay,
)
from repro.fastsim import (
    hawkeye_replay as dispatch_hawkeye_replay,
)
from repro.fastsim import (
    leeway_replay as dispatch_leeway_replay,
)
from repro.fastsim import (
    pin_replay as dispatch_pin_replay,
)
from repro.fastsim import (
    ship_replay as dispatch_ship_replay,
)
from repro.fastsim.filter import assert_stats_equal

GEOMETRIES = [(1, 1), (1, 4), (4, 2), (8, 8), (16, 16), (32, 4), (64, 2)]

#: Policy factories under test; fresh instances per replay because the scalar
#: path mutates them.  Non-default parameters (tiny regions, 1-bit counters,
#: every-set sampling, decay period 1) stress every code path.
POLICIES = {
    "ship": lambda: ShipMemPolicy(region_bytes=256, block_bytes=64),
    "ship-tight": lambda: ShipMemPolicy(
        rrpv_bits=2, region_bytes=128, counter_bits=1, block_bytes=64
    ),
    "hawkeye": lambda: HawkeyePolicy(),
    "hawkeye-dense": lambda: HawkeyePolicy(
        rrpv_bits=2, sample_period=1, predictor_bits=1, history_factor=1
    ),
    "leeway": lambda: LeewayPolicy(),
    "leeway-jumpy": lambda: LeewayPolicy(decay_period=1),
    "pin-25": lambda: PinningPolicy(reserved_fraction=0.25),
    "pin-50": lambda: PinningPolicy(reserved_fraction=0.50),
    "pin-75": lambda: PinningPolicy(reserved_fraction=0.75),
    "pin-100": lambda: PinningPolicy(reserved_fraction=1.00),
}


def _scalar_reference(policy, blocks, hints, pcs, num_sets, ways):
    """Independent scalar replay built directly on SetAssociativeCache."""
    config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways, name="ref")
    cache = SetAssociativeCache(config, policy)
    hits = np.array(
        [
            cache.access_block(int(b), int(p), int(h))
            for b, p, h in zip(blocks, pcs, hints)
        ],
        dtype=bool,
    )
    return hits, cache.stats


def _vector_replay(engine, policy, blocks, hints, pcs, num_sets, ways):
    """Run the matching fast engine for one (fresh) policy instance."""
    if type(policy) is ShipMemPolicy:
        return engine["ship"](blocks, num_sets, ways, ship_spec(policy))
    if type(policy) is HawkeyePolicy:
        return engine["hawkeye"](blocks, pcs, num_sets, ways, hawkeye_spec(policy))
    if type(policy) is LeewayPolicy:
        return engine["leeway"](blocks, pcs, num_sets, ways, leeway_spec(policy))
    return engine["pin"](blocks, hints, num_sets, ways, pin_spec(policy))


#: Engine families: the public dispatchers (compiled kernel when available)
#: and the portable NumPy engines.
ENGINES = {
    "dispatch": {
        "ship": dispatch_ship_replay,
        "hawkeye": dispatch_hawkeye_replay,
        "leeway": dispatch_leeway_replay,
        "pin": dispatch_pin_replay,
    },
    "numpy": {
        "ship": numpy_ship_replay,
        "hawkeye": numpy_hawkeye_replay,
        "leeway": numpy_leeway_replay,
        "pin": numpy_pin_replay,
    },
}


def _assert_replay_matches(replay, policy, expected_hits, expected_stats):
    assert np.array_equal(replay.hits, expected_hits)
    assert replay.hit_count == expected_stats.hits
    assert replay.miss_count == expected_stats.misses
    assert replay.evictions == expected_stats.evictions
    # The global learning state must track the scalar policy exactly too.
    if type(policy) is ShipMemPolicy:
        for signature, value in policy._shct.items():
            assert replay.shct.get(signature, 1) == value
    elif type(policy) is HawkeyePolicy:
        midpoint = (policy.predictor_max + 1) // 2
        for pc, value in policy._predictor.items():
            assert replay.predictor.get(pc, midpoint) == value
    elif type(policy) is LeewayPolicy:
        for signature, value in policy._predicted_ld.items():
            assert replay.predicted_live_distances.get(signature, 0) == value
    elif type(policy) is PinningPolicy:
        assert replay.bypass_count == expected_stats.bypasses
        assert replay.psel == policy._psel
        assert replay.insert_count == policy._insert_count


class TestScalarBugfixes:
    def test_pin_leader_set_misses_update_psel(self):
        # Regression for the pinning fast path skipping DRRIP's set duel:
        # misses in SRRIP leader set 0 that insert *pinned* blocks must still
        # push PSEL up.  Pre-fix, on_insert early-returned before the duel
        # update and PSEL never moved.
        policy = PinningPolicy(reserved_fraction=1.0)
        num_sets, ways = 32, 2
        config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways, name="LLC")
        cache = SetAssociativeCache(config, policy)
        initial_psel = policy._psel
        # Distinct blocks mapping to leader set 0, all High-Reuse: every
        # access is a miss that pins its block.
        for index in range(ways):
            cache.access_block(index * num_sets, 0, HINT_HIGH)
        assert policy._psel == initial_psel + ways
        # The BRRIP leader (set 1) must symmetrically tick the bimodal
        # counter and pull PSEL down, pinned or not.
        for index in range(ways):
            cache.access_block(index * num_sets + 1, 0, HINT_HIGH)
        assert policy._psel == initial_psel
        assert policy._insert_count == ways

    def test_pin_on_hit_refreshes_rrpv(self):
        # Regression for pin-on-hit keeping the stale RRPV: a block inserted
        # unpinned at a distant interval and pinned on a later hit must be
        # promoted to hit priority.
        policy = PinningPolicy(reserved_fraction=1.0)
        num_sets, ways = 32, 4
        config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways, name="LLC")
        cache = SetAssociativeCache(config, policy)
        follower_set = 2
        cache.access_block(follower_set, 0, HINT_DEFAULT)  # insert unpinned
        assert policy.rrpv_of(follower_set, 0) > 0
        cache.access_block(follower_set, 0, HINT_HIGH)  # hit pins the block
        assert policy.is_pinned(follower_set, 0)
        assert policy.rrpv_of(follower_set, 0) == 0

    def test_pin_bypass_only_when_fully_pinned(self):
        policy = PinningPolicy(reserved_fraction=1.0)
        num_sets, ways = 32, 2
        config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways, name="LLC")
        cache = SetAssociativeCache(config, policy)
        for index in range(ways):
            cache.access_block(index * num_sets, 0, HINT_HIGH)
        # The set is full of pinned blocks: the next insertion must bypass.
        assert policy.choose_victim(0, ways * num_sets, 0, HINT_DEFAULT) == BYPASS
        cache.access_block(ways * num_sets, 0, HINT_DEFAULT)
        assert cache.stats.bypasses == 1

    def test_ship_rejects_non_power_of_two_regions(self):
        for region_bytes, block_bytes in ((192, 64), (3 * 1024, 64), (256, 96)):
            with pytest.raises(ValueError):
                ShipMemPolicy(region_bytes=region_bytes, block_bytes=block_bytes)
        # Power-of-two ratios (the paper's configurations) still work.
        assert ShipMemPolicy(region_bytes=2 * 1024, block_bytes=64).region_shift == 5

    def test_leeway_victim_scan_matches_quadratic_reference(self):
        # The single-pass victim search must pick exactly the block the old
        # per-way list.index scan picked.
        def reference_victim(policy, set_index):
            stack = policy._stack[set_index]
            for way in reversed(stack):
                signature = policy._signature[set_index][way]
                position = stack.index(way)
                if position > policy.predicted_live_distance(signature):
                    return way
            return stack[-1]

        rng = np.random.default_rng(11)
        num_sets, ways = 8, 8
        policy = LeewayPolicy(decay_period=2)
        config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways, name="LLC")
        cache = SetAssociativeCache(config, policy)
        for block, pc in zip(
            rng.integers(0, 3 * num_sets * ways, size=600).tolist(),
            rng.integers(0, 5, size=600).tolist(),
        ):
            set_index = block & (num_sets - 1)
            if not cache.contains(block << config.block_offset_bits):
                # About to miss: check both scans agree on the victim.
                assert policy.choose_victim(set_index, block, pc, 0) == (
                    reference_victim(policy, set_index)
                )
            cache.access_block(block, pc, 0)


class TestSpecExtraction:
    def test_exact_types_supported(self):
        for factory in POLICIES.values():
            assert supports_vector_replay(factory())
        assert supports_vector_replay(
            BeladyOptimal(CacheConfig(size_bytes=16 * 64 * 4, ways=4, name="LLC"))
        )

    def test_subclasses_rejected(self):
        class NotQuiteShip(ShipMemPolicy):
            pass

        class NotQuiteHawkeye(HawkeyePolicy):
            pass

        class NotQuiteLeeway(LeewayPolicy):
            pass

        class NotQuitePin(PinningPolicy):
            pass

        for policy in (
            NotQuiteShip(region_bytes=256, block_bytes=64),
            NotQuiteHawkeye(),
            NotQuiteLeeway(),
            NotQuitePin(),
            RRIPWithHintsPolicy(),
            GraspInsertionOnlyPolicy(),
        ):
            assert ship_spec(policy) is None
            assert hawkeye_spec(policy) is None
            assert leeway_spec(policy) is None
            assert pin_spec(policy) is None
            assert not supports_vector_replay(policy)

    def test_spec_reflects_policy_parameters(self):
        ship = ship_spec(ShipMemPolicy(rrpv_bits=2, region_bytes=512, counter_bits=2, block_bytes=64))
        assert (ship.max_rrpv, ship.region_shift, ship.counter_max) == (3, 3, 3)
        hawkeye = hawkeye_spec(HawkeyePolicy(sample_period=4, predictor_bits=2, history_factor=3))
        assert (hawkeye.sample_period, hawkeye.predictor_max, hawkeye.history_factor) == (4, 3, 3)
        assert leeway_spec(LeewayPolicy(decay_period=5)).decay_period == 5
        pin = pin_spec(PinningPolicy(reserved_fraction=0.75))
        assert pin.reserved_fraction == 0.75
        assert pin.reserved_ways(8) == 6
        assert pin.reserved_ways(1) == 1


class TestPolicyReplayEquivalence:
    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("num_sets,ways", GEOMETRIES)
    def test_random_streams(self, engine_name, policy_name, num_sets, ways):
        seed = sorted(POLICIES).index(policy_name) * 9973 + num_sets * 131 + ways
        rng = np.random.default_rng(seed)
        for n in (0, 1, ways, 193, 600):
            blocks = rng.integers(0, max(1, 3 * num_sets * ways), size=n)
            hints = rng.integers(0, 4, size=n)
            pcs = rng.integers(0, 7, size=n)
            policy = POLICIES[policy_name]()
            expected_hits, expected_stats = _scalar_reference(
                policy, blocks, hints, pcs, num_sets, ways
            )
            replay = _vector_replay(
                ENGINES[engine_name], policy, blocks, hints, pcs, num_sets, ways
            )
            _assert_replay_matches(replay, policy, expected_hits, expected_stats)

    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    def test_pin_100_bypass_accounting(self, engine_name):
        # All-High-Reuse traffic under PIN-100 pins every way of every
        # touched set; the steady state is nothing but bypasses, which must
        # be counted (inside misses) identically to the scalar simulator.
        num_sets, ways = 8, 4
        rng = np.random.default_rng(23)
        blocks = rng.integers(0, 4 * num_sets * ways, size=900)
        hints = np.full(900, HINT_HIGH, dtype=np.int64)
        pcs = np.zeros(900, dtype=np.int64)
        policy = PinningPolicy(reserved_fraction=1.0)
        expected_hits, expected_stats = _scalar_reference(
            policy, blocks, hints, pcs, num_sets, ways
        )
        assert expected_stats.bypasses > 0  # the scenario actually bypasses
        replay = _vector_replay(
            ENGINES[engine_name], policy, blocks, hints, pcs, num_sets, ways
        )
        _assert_replay_matches(replay, policy, expected_hits, expected_stats)
        assert replay.bypass_count == expected_stats.bypasses
        # Bypasses are misses that never insert: eviction counts must agree.
        assert replay.evictions == expected_stats.evictions == 0

    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    @pytest.mark.parametrize("sample_period", [1, 4, 1024])
    def test_hawkeye_sampled_and_unsampled_sets(self, engine_name, sample_period):
        # sample_period=1 trains OPTgen on every set, 4 on a subset, 1024 on
        # set 0 only (period larger than the set count); all must match.
        num_sets, ways = 8, 4
        rng = np.random.default_rng(sample_period)
        blocks = rng.integers(0, 5 * num_sets * ways, size=700)
        pcs = rng.integers(0, 5, size=700)
        hints = np.zeros(700, dtype=np.int64)
        policy = HawkeyePolicy(sample_period=sample_period)
        expected_hits, expected_stats = _scalar_reference(
            policy, blocks, hints, pcs, num_sets, ways
        )
        assert policy._samplers  # OPTgen actually engaged
        replay = _vector_replay(
            ENGINES[engine_name], policy, blocks, hints, pcs, num_sets, ways
        )
        _assert_replay_matches(replay, policy, expected_hits, expected_stats)

    @pytest.mark.parametrize("engine", [opt_replay, numpy_opt_replay])
    @pytest.mark.parametrize("num_sets,ways", GEOMETRIES)
    def test_opt_matches_offline_reference(self, engine, num_sets, ways):
        rng = np.random.default_rng(num_sets * 131 + ways)
        config = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways, name="ref")
        for n in (0, 1, ways, 400, 1200):
            blocks = rng.integers(0, max(1, 2 * num_sets * ways), size=n).astype(np.int64)
            expected = simulate_opt_misses(blocks, config)
            replay = engine(blocks, num_sets, ways)
            assert replay.hit_count == expected.hits
            assert replay.miss_count == expected.misses
            assert replay.evictions == expected.evictions

    def test_native_and_numpy_engines_agree(self):
        if not kernels.available():
            pytest.skip("no C compiler available for the native kernel")
        rng = np.random.default_rng(77)
        for policy_name in sorted(POLICIES):
            blocks = rng.integers(0, 512, size=int(rng.integers(1, 2000)))
            hints = rng.integers(0, 4, size=blocks.shape[0])
            pcs = rng.integers(0, 9, size=blocks.shape[0])
            policy = POLICIES[policy_name]()
            native = _vector_replay(
                ENGINES["dispatch"], policy, blocks, hints, pcs, 16, 4
            )
            portable = _vector_replay(
                ENGINES["numpy"], policy, blocks, hints, pcs, 16, 4
            )
            assert np.array_equal(native.hits, portable.hits)
            assert np.array_equal(native.misses_per_set, portable.misses_per_set)


class TestVectorPolicyReplay:
    @pytest.mark.parametrize("policy_name", ["ship", "hawkeye", "leeway", "pin-75"])
    def test_region_breakdown_matches_scalar(self, policy_name):
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 96, size=900)
        hints = rng.integers(0, 4, size=900)
        pcs = rng.integers(0, 5, size=900)
        regions = rng.integers(0, 4, size=900).astype(np.int8)
        llc = CacheConfig(size_bytes=16 * 64 * 4, ways=4, name="LLC")
        stats = vector_policy_replay(
            POLICIES[policy_name](), blocks, llc, hints=hints, regions=regions, pcs=pcs
        )
        cache = SetAssociativeCache(llc, POLICIES[policy_name]())
        for block, pc, hint, region in zip(
            blocks.tolist(), pcs.tolist(), hints.tolist(), regions.tolist()
        ):
            cache.access_block(block, pc, hint, region)
        assert_stats_equal(cache.stats, stats, "test")
        assert cache.stats.region_accesses == stats.region_accesses
        assert cache.stats.region_misses == stats.region_misses

    def test_pin_100_bypasses_surface_in_cache_stats(self):
        rng = np.random.default_rng(5)
        blocks = rng.integers(0, 256, size=800)
        hints = np.full(800, HINT_HIGH, dtype=np.int64)
        llc = CacheConfig(size_bytes=16 * 64 * 4, ways=4, name="LLC")
        stats = vector_policy_replay(
            PinningPolicy(reserved_fraction=1.0), blocks, llc, hints=hints
        )
        cache = SetAssociativeCache(llc, PinningPolicy(reserved_fraction=1.0))
        for block, hint in zip(blocks.tolist(), hints.tolist()):
            cache.access_block(block, 0, hint)
        assert stats.bypasses == cache.stats.bypasses > 0
        # BYPASS semantics: a bypass is counted inside misses, so hits +
        # misses covers every access and evictions exclude bypasses.
        assert stats.hits + stats.misses == 800
        assert_stats_equal(cache.stats, stats, "test")

    def test_belady_wrapper_routes_to_opt_engine(self):
        rng = np.random.default_rng(9)
        blocks = rng.integers(0, 128, size=600).astype(np.int64)
        llc = CacheConfig(size_bytes=16 * 64 * 4, ways=4, name="LLC")
        stats = vector_policy_replay(BeladyOptimal(llc), blocks, llc)
        expected = simulate_opt_misses(blocks, llc)
        assert_stats_equal(expected, stats, "test")


class TestEndToEndDispatch:
    @pytest.mark.parametrize(
        "scheme", ["SHiP-MEM", "Hawkeye", "Leeway", "PIN-75", "PIN-100"]
    )
    def test_real_workload_stats_identical(self, scheme):
        clear_caches()
        config = ExperimentConfig.smoke()
        workload = build_workload("PR", "lj", config=config)
        llc_trace = llc_trace_for(workload, config)
        llc = config.hierarchy.llc
        scalar = simulate_llc_policy(llc_trace, scheme_policy(scheme), llc, backend=SCALAR)
        vector = simulate_llc_policy(llc_trace, scheme_policy(scheme), llc, backend=VECTOR)
        verify = simulate_llc_policy(llc_trace, scheme_policy(scheme), llc, backend=VERIFY)
        for other in (vector, verify):
            assert_stats_equal(scalar, other, "test")
        # The region breakdown (Fig. 2) must survive vectorization too.
        assert scalar.region_accesses == vector.region_accesses
        assert scalar.region_misses == vector.region_misses

    def test_opt_backends_agree(self):
        clear_caches()
        config = ExperimentConfig.smoke()
        workload = build_workload("PR", "lj", config=config)
        llc_trace = llc_trace_for(workload, config)
        llc = config.hierarchy.llc
        scalar = simulate_opt(llc_trace, llc, backend=SCALAR)
        vector = simulate_opt(llc_trace, llc, backend=VECTOR)
        verify = simulate_opt(llc_trace, llc, backend=VERIFY)
        for other in (vector, verify):
            assert_stats_equal(scalar, other, "test")
        # The BeladyOptimal wrapper must take the same offline path through
        # the generic entry point on every backend (it cannot run online, so
        # a scalar/verify request must not reach SetAssociativeCache).
        for backend in (SCALAR, VECTOR, VERIFY):
            wrapped = simulate_llc_policy(
                llc_trace, BeladyOptimal(llc), llc, backend=backend
            )
            assert_stats_equal(scalar, wrapped, "test")

    def test_hint_blind_replay_matches_scalar(self):
        clear_caches()
        config = ExperimentConfig.smoke()
        workload = build_workload("PR", "lj", config=config)
        llc_trace = llc_trace_for(workload, config)
        llc = config.hierarchy.llc
        direct = _scalar_llc_replay(
            llc_trace, PinningPolicy(reserved_fraction=0.75), llc, False
        )
        public = simulate_llc_policy(
            llc_trace,
            PinningPolicy(reserved_fraction=0.75),
            llc,
            use_hints=False,
            backend=VECTOR,
        )
        assert_stats_equal(direct, public, "test")
