"""Tests for vertex-reordering techniques."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import load
from repro.graph.generators import _chung_lu_graph
from repro.graph.builder import _from_edge_list
from repro.graph.properties import hot_vertex_mask
from repro.reorder import (
    DBGReordering,
    GorderReordering,
    HubSortReordering,
    IdentityReordering,
    SortReordering,
    get_technique,
    list_techniques,
)
from repro.reorder.base import select_degrees


@pytest.fixture(scope="module")
def skewed_graph():
    return _chung_lu_graph(1500, 10.0, exponent=1.95, seed=11, deduplicate=False)


ALL_TECHNIQUES = [
    IdentityReordering,
    SortReordering,
    HubSortReordering,
    DBGReordering,
    GorderReordering,
]


class TestRegistry:
    def test_all_techniques_registered(self):
        names = list_techniques()
        assert {"identity", "sort", "hubsort", "dbg", "gorder"} <= set(names)

    def test_get_technique_roundtrip(self):
        technique = get_technique("dbg", degree_source="in")
        assert isinstance(technique, DBGReordering)
        assert technique.degree_source == "in"

    def test_unknown_technique_raises(self):
        with pytest.raises(KeyError):
            get_technique("bogus")

    def test_invalid_degree_source_raises(self, skewed_graph):
        with pytest.raises(ValueError):
            select_degrees(skewed_graph, "sideways")


@pytest.mark.parametrize("technique_cls", ALL_TECHNIQUES)
class TestPermutationValidity:
    def test_permutation_is_bijection(self, technique_cls, skewed_graph):
        permutation = technique_cls().compute_permutation(skewed_graph)
        assert sorted(permutation.tolist()) == list(range(skewed_graph.num_vertices))

    def test_apply_preserves_graph_invariants(self, technique_cls, skewed_graph):
        result = technique_cls().apply(skewed_graph)
        assert result.graph.num_vertices == skewed_graph.num_vertices
        assert result.graph.num_edges == skewed_graph.num_edges
        assert sorted(result.graph.out_degrees.tolist()) == sorted(
            skewed_graph.out_degrees.tolist()
        )

    def test_edges_preserved_under_relabel(self, technique_cls):
        graph = _from_edge_list(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], num_vertices=4, name="ring"
        )
        result = technique_cls().apply(graph)
        original = {(s, t) for s, t in graph.edges()}
        mapped = {
            (result.permutation[s], result.permutation[t]) for s, t in original
        }
        relabelled = {(s, t) for s, t in result.graph.edges()}
        assert mapped == relabelled

    def test_operations_non_negative(self, technique_cls, skewed_graph):
        result = technique_cls().apply(skewed_graph)
        assert result.operations >= 0.0

    def test_inverse_permutation(self, technique_cls, skewed_graph):
        result = technique_cls().apply(skewed_graph)
        inverse = result.inverse_permutation
        assert np.array_equal(result.permutation[inverse], np.arange(skewed_graph.num_vertices))


class TestIdentity:
    def test_identity_returns_arange(self, skewed_graph):
        perm = IdentityReordering().compute_permutation(skewed_graph)
        assert np.array_equal(perm, np.arange(skewed_graph.num_vertices))

    def test_identity_costs_nothing(self, skewed_graph):
        assert IdentityReordering().estimated_operations(skewed_graph) == 0.0


class TestSort:
    def test_degrees_monotonically_decreasing(self, skewed_graph):
        result = SortReordering(degree_source="out").apply(skewed_graph)
        degrees = result.graph.out_degrees
        assert np.all(np.diff(degrees) <= 0)

    def test_respects_degree_source(self, skewed_graph):
        result = SortReordering(degree_source="in").apply(skewed_graph)
        assert np.all(np.diff(result.graph.in_degrees) <= 0)


class TestHubSort:
    def test_hot_vertices_form_prefix(self, skewed_graph):
        result = HubSortReordering(degree_source="out").apply(skewed_graph)
        degrees = result.graph.out_degrees
        hot = hot_vertex_mask(degrees, skewed_graph.average_degree)
        num_hot = int(hot.sum())
        assert hot[:num_hot].all()
        assert not hot[num_hot:].any()

    def test_hot_prefix_sorted_descending(self, skewed_graph):
        result = HubSortReordering(degree_source="out").apply(skewed_graph)
        degrees = result.graph.out_degrees
        num_hot = int((skewed_graph.out_degrees >= skewed_graph.out_degrees.mean()).sum())
        assert np.all(np.diff(degrees[:num_hot]) <= 0)

    def test_cold_relative_order_preserved(self):
        # Cold vertices 0..3 (degree 1 each), hot vertex 4 with degree 6.
        edges = [(0, 4), (1, 4), (2, 4), (3, 4)] + [(4, i) for i in range(4)] + [(4, 0), (4, 1)]
        graph = _from_edge_list(edges, num_vertices=5)
        result = HubSortReordering(degree_source="total").apply(graph)
        # Vertex 4 must be first; cold vertices keep order 0,1,2,3 after it.
        assert result.permutation[4] == 0
        assert result.permutation[0] < result.permutation[1] < result.permutation[2] < result.permutation[3]


class TestDBG:
    def test_invalid_group_count(self):
        with pytest.raises(ValueError):
            DBGReordering(num_groups=1)

    def test_group_thresholds_shape(self, skewed_graph):
        technique = DBGReordering(num_groups=8)
        thresholds = technique.group_thresholds(10.0)
        assert thresholds.shape == (8,)
        assert thresholds[-1] == 0.0
        assert np.all(np.diff(thresholds[:-1]) < 0)

    def test_hot_vertices_form_prefix(self, skewed_graph):
        result = DBGReordering(degree_source="out").apply(skewed_graph)
        degrees = result.graph.out_degrees
        hot = degrees >= skewed_graph.average_degree
        num_hot = int(hot.sum())
        assert hot[:num_hot].all()

    def test_group_order_is_monotonic_in_threshold(self, skewed_graph):
        """Every vertex in an earlier group has degree >= the next group's lower bound."""
        technique = DBGReordering(degree_source="out")
        result = technique.apply(skewed_graph)
        degrees = result.graph.out_degrees
        thresholds = technique.group_thresholds(float(skewed_graph.out_degrees.mean()))
        # Walking the new order, the group index may only increase.
        group_of = np.zeros(len(degrees), dtype=int)
        for new_id, degree in enumerate(degrees):
            group = np.flatnonzero(degree >= thresholds)[0]
            group_of[new_id] = group
        assert np.all(np.diff(group_of) >= 0)

    def test_preserves_order_within_group_better_than_sort(self, skewed_graph):
        """DBG must move far fewer vertices away from their original position
        than a full sort — that is its whole reason to exist."""
        dbg_perm = DBGReordering(degree_source="out").compute_permutation(skewed_graph)
        sort_perm = SortReordering(degree_source="out").compute_permutation(skewed_graph)
        original = np.arange(skewed_graph.num_vertices)
        dbg_inversions = np.abs(dbg_perm - original).sum()
        sort_inversions = np.abs(sort_perm - original).sum()
        assert dbg_inversions < sort_inversions

    def test_dbg_cheaper_than_sort(self, skewed_graph):
        assert DBGReordering().estimated_operations(skewed_graph) < SortReordering().estimated_operations(skewed_graph)


class TestGorder:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            GorderReordering(window=0)

    def test_gorder_is_most_expensive(self, skewed_graph):
        gorder_cost = GorderReordering().estimated_operations(skewed_graph)
        for other in (SortReordering(), HubSortReordering(), DBGReordering()):
            assert gorder_cost > 10 * other.estimated_operations(skewed_graph)

    def test_neighbours_placed_close(self):
        """On a graph of two cliques, Gorder should keep each clique contiguous."""
        edges = []
        for block in (range(0, 6), range(6, 12)):
            block = list(block)
            for u in block:
                for v in block:
                    if u != v:
                        edges.append((u, v))
        edges.append((0, 6))  # single bridge
        graph = _from_edge_list(edges, num_vertices=12)
        result = GorderReordering(window=3).apply(graph)
        positions = result.inverse_permutation  # old id at each new position
        first_half = {int(v) for v in positions[:6]}
        assert first_half in ({0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11})

    def test_dbg_refinement_segregates_hot_vertices(self):
        graph = _chung_lu_graph(600, 8.0, exponent=1.95, seed=3, deduplicate=False)
        result = GorderReordering(window=4, dbg_refinement=True).apply(graph)
        degrees = result.graph.out_degrees
        hot = degrees >= graph.average_degree
        num_hot = int(hot.sum())
        assert hot[:num_hot].all()

    def test_segregation_flag_tracks_refinement(self):
        assert not GorderReordering().segregates_hot_vertices
        assert GorderReordering(dbg_refinement=True).segregates_hot_vertices


class TestDatasetIntegration:
    @pytest.mark.parametrize("name", ["lj", "uni"])
    def test_reordering_on_registry_datasets(self, name):
        graph = load(name, scale=0.1)
        for technique in (SortReordering(), HubSortReordering(), DBGReordering()):
            result = technique.apply(graph)
            assert result.graph.num_edges == graph.num_edges


class TestPermutationProperty:
    @given(
        n=st.integers(min_value=2, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
        technique_index=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_produce_valid_permutations(self, n, seed, technique_index):
        rng = np.random.default_rng(seed)
        num_edges = max(1, 3 * n)
        graph = _from_edge_list(
            list(zip(rng.integers(0, n, num_edges).tolist(), rng.integers(0, n, num_edges).tolist())),
            num_vertices=n,
        )
        technique = [SortReordering(), HubSortReordering(), DBGReordering(), IdentityReordering()][
            technique_index
        ]
        permutation = technique.compute_permutation(graph)
        assert sorted(permutation.tolist()) == list(range(n))
