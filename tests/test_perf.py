"""Tests for the timing and reordering-cost models."""

import pytest

from repro.perf import LevelCounts, ReorderCostModel, TimingModel


class TestLevelCounts:
    def test_total(self):
        counts = LevelCounts(l1_hits=10, l2_hits=5, llc_hits=3, memory_accesses=2)
        assert counts.total_accesses == 20

    def test_with_llc_outcome(self):
        counts = LevelCounts(l1_hits=10, l2_hits=5, llc_hits=3, memory_accesses=2)
        updated = counts.with_llc_outcome(llc_hits=4, llc_misses=1)
        assert updated.l1_hits == 10
        assert updated.llc_hits == 4
        assert updated.memory_accesses == 1
        assert updated.total_accesses == 20


class TestTimingModel:
    def test_cycles_increase_with_misses(self):
        model = TimingModel()
        fast = model.cycles(LevelCounts(l1_hits=100, llc_hits=10, memory_accesses=0))
        slow = model.cycles(LevelCounts(l1_hits=100, llc_hits=0, memory_accesses=10))
        assert slow > fast

    def test_cycles_formula(self):
        model = TimingModel(core_overhead=1, l1_latency=2, l2_latency=3, llc_latency=4, memory_latency=5)
        counts = LevelCounts(l1_hits=1, l2_hits=1, llc_hits=1, memory_accesses=1)
        assert model.cycles(counts) == pytest.approx(4 * 1 + 2 + 3 + 4 + 5)

    def test_speedup_percent(self):
        assert TimingModel.speedup_percent(110, 100) == pytest.approx(10.0)
        assert TimingModel.speedup_percent(100, 110) == pytest.approx(-9.0909, abs=1e-3)
        with pytest.raises(ValueError):
            TimingModel.speedup_percent(100, 0)

    def test_miss_reduction_percent(self):
        assert TimingModel.miss_reduction_percent(100, 80) == pytest.approx(20.0)
        assert TimingModel.miss_reduction_percent(100, 120) == pytest.approx(-20.0)
        assert TimingModel.miss_reduction_percent(0, 10) == 0.0

    def test_fewer_misses_is_a_speedup(self):
        """Eliminating LLC misses must always translate into positive speed-up."""
        model = TimingModel()
        base = LevelCounts(l1_hits=1000, l2_hits=100, llc_hits=50, memory_accesses=100)
        better = base.with_llc_outcome(llc_hits=80, llc_misses=70)
        assert model.speedup_percent(model.cycles(base), model.cycles(better)) > 0


class TestReorderCostModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReorderCostModel(cycles_per_operation=0)
        with pytest.raises(ValueError):
            ReorderCostModel(parallel_threads=0)
        with pytest.raises(ValueError):
            ReorderCostModel().reorder_cycles(-1)

    def test_parallel_threads_divide_cost(self):
        serial = ReorderCostModel(cycles_per_operation=10, parallel_threads=1)
        parallel = ReorderCostModel(cycles_per_operation=10, parallel_threads=40)
        assert parallel.reorder_cycles(1000) == pytest.approx(serial.reorder_cycles(1000) / 40)

    def test_net_speedup_sign(self):
        model = ReorderCostModel(cycles_per_operation=1)
        # Reordering makes the app 2x faster at negligible cost: net speed-up.
        assert model.net_speedup_percent(200.0, 100.0, reorder_operations=1) > 0
        # Same 2x faster app, but the reordering itself costs 10x the runtime.
        assert model.net_speedup_percent(200.0, 100.0, reorder_operations=2000) < 0

    def test_zero_cost_matches_plain_speedup(self):
        model = ReorderCostModel()
        assert model.net_speedup_percent(150.0, 100.0, 0.0) == pytest.approx(50.0)
