"""Streaming-vs-one-shot equivalence suite (ISSUE 5).

Every resumable fast engine must replay a chunked stream bit-identically to
one replay over the concatenation — per-access hit masks, per-set miss
counts, hit/miss/eviction/bypass statistics and the *final policy state*
(PSEL and bimodal counters, SHCT contents, PC predictors, predicted live
distances).  Covered at three levels:

* engine level: randomized block/hint/PC streams through every ``*Stream``
  against the one-shot dispatchers, for both the compiled kernel and the
  NumPy fallback, across several chunk budgets;
* filter level: :class:`repro.fastsim.FilterStream` against
  :func:`repro.fastsim.run_filter` under all three backends;
* pipeline level: the runner's full-execution streaming simulation against
  one-shot replay of the materialized execution trace, for every scheme of
  the paper's matrix including OPT, plus chunk-budget invariance and the
  per-chunk disk memoisation round trip.
"""

import numpy as np
import pytest

from repro.cache.hints import HINT_HIGH
from repro.cache.policies.hawkeye import HawkeyePolicy
from repro.cache.policies.leeway import LeewayPolicy
from repro.cache.policies.pin import PinningPolicy
from repro.cache.policies.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.cache.policies.ship import ShipMemPolicy
from repro.core.grasp import GraspPolicy
from repro.experiments import ExperimentConfig, clear_caches, set_disk_memo
from repro.experiments.memo import DiskMemo
from repro.experiments.runner import (
    _chunk_budget,
    _stream_key,
    build_workload,
    execution_stream_summary,
    execution_trace,
    filter_trace,
    iter_llc_chunks,
    simulate_llc_policy,
    simulate_llc_policy_streaming,
    simulate_opt,
    simulate_opt_streaming,
    simulate_scheme_streaming,
)
from repro.experiments.schemes import scheme_policy
from repro.fastsim import (
    FilterStream,
    HawkeyeStream,
    LeewayStream,
    LRUStream,
    OptStream,
    PinStream,
    PolicyReplayStream,
    RRIPStream,
    ShipStream,
    kernels,
    hawkeye_replay,
    hawkeye_spec,
    leeway_replay,
    leeway_spec,
    lru_replay,
    opt_replay,
    pin_replay,
    pin_spec,
    resolve_chunk_next_use,
    rrip_replay,
    rrip_spec,
    run_filter,
    ship_replay,
    ship_spec,
    vector_policy_replay,
)
from repro.fastsim.filter import assert_stats_equal
from repro.trace import Trace, generate_execution_trace, iter_execution_trace

GEOMETRY = (8, 4)
CHUNK_SIZES = (1, 97, 1024, 10**9)

BACKENDS = [True, False] if kernels.available() else [False]


@pytest.fixture(scope="module")
def streams():
    rng = np.random.default_rng(2026)
    n = 4000
    return {
        "blocks": rng.integers(0, 350, size=n).astype(np.int64),
        "hints": rng.integers(0, 4, size=n).astype(np.int64),
        "pcs": rng.integers(0, 10, size=n).astype(np.int64),
    }


def chunked(array, size):
    return [array[start : start + size] for start in range(0, len(array), size)]


@pytest.mark.parametrize("use_native", BACKENDS)
@pytest.mark.parametrize("chunk", CHUNK_SIZES)
class TestEngineStreams:
    def test_lru(self, streams, use_native, chunk):
        num_sets, ways = GEOMETRY
        one = lru_replay(streams["blocks"], num_sets, ways)
        stream = LRUStream(num_sets, ways, use_native=use_native)
        hits = np.concatenate(
            [stream.feed(part) for part in chunked(streams["blocks"], chunk)]
        )
        np.testing.assert_array_equal(hits, one.hits)
        np.testing.assert_array_equal(stream.misses_per_set, one.misses_per_set)
        assert stream.evictions == one.evictions

    @pytest.mark.parametrize(
        "policy_factory",
        [SRRIPPolicy, BRRIPPolicy, DRRIPPolicy, GraspPolicy],
        ids=["srrip", "brrip", "drrip", "grasp"],
    )
    def test_rrip_family(self, streams, use_native, chunk, policy_factory):
        num_sets, ways = GEOMETRY
        spec = rrip_spec(policy_factory())
        one = rrip_replay(streams["blocks"], streams["hints"], num_sets, ways, spec)
        stream = RRIPStream(num_sets, ways, spec, use_native=use_native)
        hits = np.concatenate(
            [
                stream.feed(blocks, hints)
                for blocks, hints in zip(
                    chunked(streams["blocks"], chunk), chunked(streams["hints"], chunk)
                )
            ]
        )
        np.testing.assert_array_equal(hits, one.hits)
        np.testing.assert_array_equal(stream.misses_per_set, one.misses_per_set)
        assert stream.psel == one.psel
        assert stream.insert_count == one.insert_count

    @pytest.mark.parametrize("fraction", [0.25, 1.0], ids=["pin25", "pin100"])
    def test_pin(self, streams, use_native, chunk, fraction):
        num_sets, ways = GEOMETRY
        spec = pin_spec(PinningPolicy(reserved_fraction=fraction))
        one = pin_replay(streams["blocks"], streams["hints"], num_sets, ways, spec)
        stream = PinStream(num_sets, ways, spec, use_native=use_native)
        hits = np.concatenate(
            [
                stream.feed(blocks, hints)
                for blocks, hints in zip(
                    chunked(streams["blocks"], chunk), chunked(streams["hints"], chunk)
                )
            ]
        )
        np.testing.assert_array_equal(hits, one.hits)
        np.testing.assert_array_equal(stream.misses_per_set, one.misses_per_set)
        np.testing.assert_array_equal(stream.bypasses_per_set, one.bypasses_per_set)
        assert stream.psel == one.psel
        assert stream.insert_count == one.insert_count
        assert stream.evictions == one.evictions

    def test_ship(self, streams, use_native, chunk):
        num_sets, ways = GEOMETRY
        spec = ship_spec(ShipMemPolicy(region_bytes=256, block_bytes=64))
        one = ship_replay(streams["blocks"], num_sets, ways, spec)
        stream = ShipStream(num_sets, ways, spec, use_native=use_native)
        hits = np.concatenate(
            [stream.feed(part) for part in chunked(streams["blocks"], chunk)]
        )
        np.testing.assert_array_equal(hits, one.hits)
        np.testing.assert_array_equal(stream.misses_per_set, one.misses_per_set)
        assert stream.shct == one.shct

    def test_hawkeye(self, streams, use_native, chunk):
        num_sets, ways = GEOMETRY
        spec = hawkeye_spec(HawkeyePolicy())
        one = hawkeye_replay(streams["blocks"], streams["pcs"], num_sets, ways, spec)
        stream = HawkeyeStream(num_sets, ways, spec, use_native=use_native)
        hits = np.concatenate(
            [
                stream.feed(blocks, pcs)
                for blocks, pcs in zip(
                    chunked(streams["blocks"], chunk), chunked(streams["pcs"], chunk)
                )
            ]
        )
        np.testing.assert_array_equal(hits, one.hits)
        np.testing.assert_array_equal(stream.misses_per_set, one.misses_per_set)
        assert stream.predictor == one.predictor

    def test_leeway(self, streams, use_native, chunk):
        num_sets, ways = GEOMETRY
        spec = leeway_spec(LeewayPolicy())
        one = leeway_replay(streams["blocks"], streams["pcs"], num_sets, ways, spec)
        stream = LeewayStream(num_sets, ways, spec, use_native=use_native)
        hits = np.concatenate(
            [
                stream.feed(blocks, pcs)
                for blocks, pcs in zip(
                    chunked(streams["blocks"], chunk), chunked(streams["pcs"], chunk)
                )
            ]
        )
        np.testing.assert_array_equal(hits, one.hits)
        np.testing.assert_array_equal(stream.misses_per_set, one.misses_per_set)
        assert stream.predicted_live_distances == one.predicted_live_distances

    def test_opt_two_pass(self, streams, use_native, chunk):
        num_sets, ways = GEOMETRY
        one = opt_replay(streams["blocks"], num_sets, ways)
        parts = chunked(streams["blocks"], chunk)
        starts = list(range(0, len(streams["blocks"]), chunk))
        next_seen = {}
        next_uses = [None] * len(parts)
        for index in reversed(range(len(parts))):
            next_uses[index] = resolve_chunk_next_use(
                parts[index], starts[index], next_seen
            )
        stream = OptStream(num_sets, ways, use_native=use_native)
        hits = np.concatenate(
            [stream.feed(blocks, nxt) for blocks, nxt in zip(parts, next_uses)]
        )
        np.testing.assert_array_equal(hits, one.hits)
        np.testing.assert_array_equal(stream.misses_per_set, one.misses_per_set)


class TestPolicyReplayStream:
    def test_stats_match_one_shot_vector_replay(self, streams):
        num_sets, ways = GEOMETRY
        from repro.cache.config import CacheConfig

        llc = CacheConfig(size_bytes=num_sets * ways * 64, ways=ways, name="LLC")
        regions = (streams["blocks"] % 3).astype(np.int8)
        for factory in (
            GraspPolicy,
            lambda: PinningPolicy(reserved_fraction=0.5),
            lambda: ShipMemPolicy(region_bytes=256, block_bytes=64),
            HawkeyePolicy,
            LeewayPolicy,
        ):
            one = vector_policy_replay(
                factory(),
                streams["blocks"],
                llc,
                hints=streams["hints"],
                regions=regions,
                pcs=streams["pcs"],
            )
            stream = PolicyReplayStream(factory(), llc)
            for lo in range(0, len(streams["blocks"]), 313):
                hi = lo + 313
                stream.feed(
                    streams["blocks"][lo:hi],
                    hints=streams["hints"][lo:hi],
                    regions=regions[lo:hi],
                    pcs=streams["pcs"][lo:hi],
                )
            assert_stats_equal(one, stream.stats(), "PolicyReplayStream")

    def test_opt_policy_rejected(self):
        from repro.cache.config import CacheConfig
        from repro.cache.policies.opt import BeladyOptimal

        llc = CacheConfig(size_bytes=2048, ways=4, name="LLC")
        with pytest.raises(ValueError):
            PolicyReplayStream(BeladyOptimal(llc), llc)


@pytest.mark.parametrize("backend", ["vector", "scalar", "verify"])
def test_filter_stream_matches_one_shot(backend):
    config = ExperimentConfig.smoke()
    workload = build_workload("PR", "pl", config=config)
    trace = execution_trace(workload)
    one = run_filter(trace, config.hierarchy, backend=backend)
    stream = FilterStream(config.hierarchy, backend=backend)
    keeps = []
    for lo in range(0, len(trace), 4096):
        hi = lo + 4096
        keeps.append(
            stream.feed(
                Trace(trace.addresses[lo:hi], trace.pcs[lo:hi], trace.regions[lo:hi])
            )
        )
    np.testing.assert_array_equal(np.concatenate(keeps), one.keep)
    l1_stats, l2_stats = stream.finish()
    assert_stats_equal(one.l1_stats, l1_stats, "FilterStream L1")
    assert_stats_equal(one.l2_stats, l2_stats, "FilterStream L2")


class TestRunnerStreaming:
    """Full-pipeline equivalence on a real multi-iteration workload."""

    SCHEMES = (
        "LRU",
        "RRIP",
        "GRASP",
        "SHiP-MEM",
        "Hawkeye",
        "Leeway",
        "PIN-75",
        "PIN-100",
        "RRIP+Hints",  # scalar-only policy: exercises the scalar stream path
    )

    @pytest.fixture(scope="class")
    def setup(self):
        clear_caches()
        config = ExperimentConfig.smoke()
        workload = build_workload("PR", "lj", config=config)
        one_shot_llc = filter_trace(
            execution_trace(workload), config.hierarchy, workload.layout
        )
        return config, workload, one_shot_llc

    def test_llc_chunks_concatenate_to_one_shot_filter(self, setup):
        config, workload, one = setup
        chunks = list(iter_llc_chunks(workload, config, max_chunk_accesses=5000))
        np.testing.assert_array_equal(
            np.concatenate([chunk.block_addresses for chunk in chunks]),
            one.block_addresses,
        )
        np.testing.assert_array_equal(
            np.concatenate([chunk.hints for chunk in chunks]), one.hints
        )
        np.testing.assert_array_equal(
            np.concatenate([chunk.pcs for chunk in chunks]), one.pcs
        )
        summary = execution_stream_summary(workload, config, max_chunk_accesses=5000)
        assert summary["l1_hits"] == one.upstream_l1_hits
        assert summary["l2_hits"] == one.upstream_l2_hits
        assert summary["total_references"] == one.total_references

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_policy_streaming_matches_one_shot(self, setup, scheme):
        config, workload, one = setup
        streamed = simulate_llc_policy_streaming(
            workload, scheme_policy(scheme), config, max_chunk_accesses=5000
        )
        reference = simulate_llc_policy(one, scheme_policy(scheme), config.hierarchy.llc)
        assert_stats_equal(reference, streamed, f"streaming {scheme}")

    def test_opt_streaming_matches_one_shot(self, setup):
        config, workload, one = setup
        streamed = simulate_opt_streaming(workload, config, max_chunk_accesses=5000)
        reference = simulate_opt(one, config.hierarchy.llc)
        assert_stats_equal(reference, streamed, "streaming OPT")

    def test_chunk_budget_invariance(self, setup):
        config, workload, _ = setup
        policy = scheme_policy("GRASP")
        baseline = simulate_llc_policy_streaming(
            workload, policy, config, max_chunk_accesses=1500
        )
        for budget in (700, 50_000, 10**9):
            other = simulate_llc_policy_streaming(
                workload, scheme_policy("GRASP"), config, max_chunk_accesses=budget
            )
            assert_stats_equal(baseline, other, f"budget {budget}")

    def test_verify_backend_passes(self, setup):
        config, workload, _ = setup
        simulate_llc_policy_streaming(
            workload,
            scheme_policy("GRASP"),
            config,
            backend="verify",
            max_chunk_accesses=5000,
        )
        simulate_opt_streaming(
            workload, config, backend="verify", max_chunk_accesses=5000
        )

    def test_hint_stream_steers_pinning(self, setup):
        """The hint plumbing must survive chunking: PIN-100 with hints must
        differ from hint-blind replay on a skewed workload."""
        config, workload, one = setup
        assert (one.hints == HINT_HIGH).any()
        with_hints = simulate_llc_policy_streaming(
            workload, scheme_policy("PIN-100"), config, max_chunk_accesses=5000
        )
        without = simulate_llc_policy_streaming(
            workload,
            scheme_policy("PIN-100"),
            config,
            use_hints=False,
            max_chunk_accesses=5000,
        )
        assert with_hints.misses != without.misses

    def test_disk_memo_round_trip(self, setup, tmp_path):
        config, workload, _ = setup
        set_disk_memo(DiskMemo(tmp_path))
        try:
            first = list(iter_llc_chunks(workload, config, max_chunk_accesses=5000))
            stats_first = simulate_scheme_streaming(workload, "GRASP", config)
            memo = DiskMemo(tmp_path)
            assert memo.entry_count("llcchunk") >= len(first)
            assert memo.entry_count("llcstream") >= 1
            assert memo.entry_count("policystream") == 1
            clear_caches()
            second = list(iter_llc_chunks(workload, config, max_chunk_accesses=5000))
            assert len(first) == len(second)
            for a, b in zip(first, second):
                np.testing.assert_array_equal(a.block_addresses, b.block_addresses)
                np.testing.assert_array_equal(a.hints, b.hints)
            assert simulate_scheme_streaming(workload, "GRASP", config) == stats_first
        finally:
            set_disk_memo(None)
            clear_caches()

    def test_corrupt_memo_chunk_falls_back_mid_stream(self, setup, tmp_path):
        """A lost/corrupt persisted chunk regenerates the tail, bit-identically."""
        config, workload, _ = setup
        memo = DiskMemo(tmp_path)
        set_disk_memo(memo)
        try:
            first = list(iter_llc_chunks(workload, config, max_chunk_accesses=5000))
            assert len(first) > 2
            # Corrupt a middle chunk: the memo-hit path serves the prefix from
            # disk, then falls back to regeneration for the rest of the stream.
            key = _stream_key(
                workload, config, _chunk_budget(config, 5000)
            )
            memo.path_for("llcchunk", key + (1,)).write_bytes(b"not a pickle")
            clear_caches()
            second = list(iter_llc_chunks(workload, config, max_chunk_accesses=5000))
            assert len(first) == len(second)
            for a, b in zip(first, second):
                np.testing.assert_array_equal(a.block_addresses, b.block_addresses)
                np.testing.assert_array_equal(a.hints, b.hints)
            # The fallback also repaired the corrupted entry.
            assert memo.get("llcchunk", key + (1,)) is not None
        finally:
            set_disk_memo(None)
            clear_caches()

    def test_execution_covers_multiple_iterations(self, setup):
        config, workload, one = setup
        assert workload.app_result.num_iterations > 1
        roi_only = filter_trace(
            generate_execution_trace(
                workload.graph, workload.layout, [workload.roi]
            ),
            config.hierarchy,
            workload.layout,
        )
        assert one.total_references > roi_only.total_references


class TestFusedStreaming:
    """Fused single-pass streaming vs the staged chunked pipeline (ISSUE 7).

    The ``vector`` route of ``simulate_llc_policy_streaming`` fuses trace
    generation, L1/L2 filtering and the LLC replay into one native call per
    chunk, sharded over ``REPRO_THREADS`` filter threads.  It must stay
    bit-identical to the staged/scalar cross-checked pipeline for every
    thread count and chunk budget, including the hint-driven schemes.
    """

    SCHEMES = ("GRASP", "SHiP-MEM", "Hawkeye", "Leeway", "PIN-50")

    @pytest.fixture(scope="class")
    def setup(self):
        clear_caches()
        set_disk_memo(None)
        config = ExperimentConfig.smoke()
        workload = build_workload("PR", "lj", config=config)
        return config, workload

    @pytest.mark.parametrize("threads", ["1", "2", "8"])
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_thread_counts_match_verify(self, setup, monkeypatch, scheme, threads):
        config, workload = setup
        monkeypatch.setenv("REPRO_THREADS", threads)
        fused = simulate_llc_policy_streaming(
            workload, scheme_policy(scheme), config,
            backend="vector", max_chunk_accesses=5000,
        )
        reference = simulate_llc_policy_streaming(
            workload, scheme_policy(scheme), config,
            backend="verify", max_chunk_accesses=5000,
        )
        assert_stats_equal(reference, fused, f"fused {scheme} x{threads}")

    def test_chunk_budget_invariance_under_threads(self, setup, monkeypatch):
        config, workload = setup
        monkeypatch.setenv("REPRO_THREADS", "8")
        baseline = simulate_llc_policy_streaming(
            workload, scheme_policy("GRASP"), config,
            backend="vector", max_chunk_accesses=1500,
        )
        for budget in (700, 50_000, 10**9):
            other = simulate_llc_policy_streaming(
                workload, scheme_policy("GRASP"), config,
                backend="vector", max_chunk_accesses=budget,
            )
            assert_stats_equal(baseline, other, f"fused budget {budget}")


def test_execution_chunks_respect_budget():
    config = ExperimentConfig.smoke()
    workload = build_workload("PR", "pl", config=config)
    degrees = (workload.graph.in_index[1:] - workload.graph.in_index[:-1]).astype(
        np.int64
    )
    stride = 1 + len(workload.layout.edge_property_arrays)
    record = int(degrees.max()) * stride + 1 + len(workload.layout.vertex_property_arrays)
    budget = max(2048, record)
    for chunk in iter_execution_trace(
        workload.graph,
        workload.layout,
        workload.app_result.iterations,
        max_chunk_accesses=budget,
    ):
        assert len(chunk) <= budget
