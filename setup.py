"""Setup shim so that ``pip install -e .`` works on environments without the
``wheel`` package (legacy ``setup.py develop`` path).  All project metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
