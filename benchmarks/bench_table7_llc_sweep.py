"""Benchmark E12 — Table VII: miss elimination over LRU across LLC sizes."""

from repro.experiments.reporting import format_table
from repro.experiments.tables import table7_llc_sweep


def bench(config):
    llc = config.hierarchy.llc.size_bytes
    return table7_llc_sweep(
        config,
        llc_sizes=[llc // 2, llc, llc * 2],
        apps=config.apps,
        datasets=config.high_skew_datasets[:2],
    )


def test_table7_llc_sweep(benchmark, bench_config):
    rows = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(rows)
    # OPT dominates at every size; GRASP's advantage over RRIP grows (or at
    # least does not collapse) as the LLC gets larger, as in Table VII.
    for row in rows:
        assert row["OPT"] >= row["GRASP"] - 1e-9
        assert row["OPT"] >= row["RRIP"] - 1e-9
    assert rows[-1]["GRASP"] >= rows[-1]["RRIP"]
