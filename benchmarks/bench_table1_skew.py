"""Benchmark E1 — Table I: degree skew of the evaluated datasets."""

from repro.experiments.reporting import format_table
from repro.experiments.tables import table1_skew


def bench(config):
    return table1_skew(config)


def test_table1_skew(benchmark, bench_config):
    rows = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(rows)
    # Table I regime: hot vertices are a small minority yet cover most edges.
    for row in rows:
        assert row["out_hot_vertices_pct"] < 35.0
        assert row["out_edge_coverage_pct"] > 70.0
