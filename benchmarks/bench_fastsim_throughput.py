"""Benchmark F1 — fastsim: vectorized vs scalar `filter_trace` throughput.

Replays the Fig. 6 workload set (the benchmark config's apps x high-skew
datasets) through the L1-D/L2 filter on both backends and reports simulated
accesses per second.  The acceptance bar for the fast path is a >= 5x
speed-up over the scalar reference on this workload set.
"""

from repro.experiments.runner import build_workload, filter_trace, roi_trace
from repro.fastsim import SCALAR, VECTOR
from repro.perf.throughput import measure_throughput

#: The fast path must beat the scalar reference by at least this factor.
MIN_SPEEDUP = 5.0


def _fig6_traces(config):
    """The (workload, ROI trace) pairs behind Fig. 6 at benchmark scale."""
    traces = []
    for dataset in config.high_skew_datasets:
        for app in config.apps:
            workload = build_workload(app, dataset, config=config)
            traces.append((workload, roi_trace(workload)))
    return traces


def _filter_all(traces, hierarchy, backend):
    for workload, trace in traces:
        filter_trace(trace, hierarchy, workload.layout, backend=backend)


def test_fastsim_throughput(benchmark, bench_config):
    traces = _fig6_traces(bench_config)
    total_accesses = sum(len(trace) for _, trace in traces)

    vector = measure_throughput(
        lambda: _filter_all(traces, bench_config.hierarchy, VECTOR),
        accesses=total_accesses,
        label=VECTOR,
    )
    scalar = measure_throughput(
        lambda: _filter_all(traces, bench_config.hierarchy, SCALAR),
        accesses=total_accesses,
        label=SCALAR,
        repeats=1,
    )
    benchmark.pedantic(
        _filter_all, args=(traces, bench_config.hierarchy, VECTOR), iterations=1, rounds=3
    )

    speedup = vector.speedup_over(scalar)
    benchmark.extra_info["accesses"] = total_accesses
    benchmark.extra_info["scalar_accesses_per_s"] = round(scalar.accesses_per_second)
    benchmark.extra_info["vector_accesses_per_s"] = round(vector.accesses_per_second)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 1)
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized filter_trace only {speedup:.1f}x faster than scalar "
        f"(required: {MIN_SPEEDUP}x) over {total_accesses} accesses"
    )
