"""Benchmark E5 — Fig. 6: speed-up over RRIP for prior schemes and GRASP."""

from repro.experiments.figures import fig6_speedup
from repro.experiments.reporting import format_table, pivot_by_scheme
from repro.experiments.runner import geometric_mean_speedup


def bench(config):
    return fig6_speedup(config)


def test_fig6_speedup(benchmark, bench_config):
    points = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(pivot_by_scheme(points, "speedup_pct"))
    by_scheme = {
        scheme: geometric_mean_speedup([p for p in points if p.scheme == scheme])
        for scheme in {p.scheme for p in points}
    }
    benchmark.extra_info["geomean_speedup_pct"] = {k: round(v, 2) for k, v in by_scheme.items()}
    # Headline result: GRASP provides a positive average speed-up and beats
    # every domain-agnostic scheme.
    assert by_scheme["GRASP"] > 0.0
    for scheme in ("SHiP-MEM", "Hawkeye", "Leeway"):
        assert by_scheme["GRASP"] >= by_scheme[scheme]
    # GRASP does not cause a slowdown on any datapoint (max slowdown 0.1% in the paper).
    assert min(p.speedup_pct for p in points if p.scheme == "GRASP") > -1.0
