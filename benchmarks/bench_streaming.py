"""Benchmark F4 — streaming full-execution pipeline: memory bound + throughput.

PR 5 adds the streaming trace pipeline: trace generation, L1/L2 filtering and
the vectorized LLC replay all run chunk by chunk with resumable state, so a
full multi-iteration execution (every iteration's direction and frontier, not
just the ROI) replays under a peak-memory bound set by the chunk budget
instead of the execution length.  This benchmark gates the three contracts
the pipeline makes:

1. **Exactness** — streaming replay of the full execution is bit-identical
   (hits/misses/evictions/bypasses) to one-shot replay of the materialized
   execution trace, for every vectorized engine family (LRU, RRIP/GRASP,
   SHiP-MEM, Hawkeye, Leeway, PIN-X) and for two-pass streaming OPT.
2. **Bounded memory** — peak traced allocations of the streaming pipeline at
   a fixed chunk budget stay flat when the execution is made 4x longer,
   while the one-shot pipeline's peak is O(trace); the streaming peak must
   also sit far below the one-shot peak.
3. **Throughput** — the streaming pipeline (generate + filter + replay) is
   within 10% of the one-shot fast path on the same workload.

Memory is measured with :mod:`tracemalloc`, which NumPy reports its array
allocations to; the workload (graph, layout, application result) is built
before tracing starts so only pipeline allocations are counted.
"""

import tracemalloc

from repro.experiments.runner import (
    _hint_classifier,
    build_workload,
    filter_trace,
    simulate_llc_policy,
    simulate_llc_policy_streaming,
    simulate_opt,
    simulate_opt_streaming,
)
from repro.experiments.schemes import scheme_policy
from repro.fastsim import VECTOR, FilterStream, PolicyReplayStream
from repro.perf.throughput import measure_throughput
from repro.trace import generate_execution_trace, iter_execution_trace

#: Streaming must retain at least this fraction of the one-shot throughput.
MIN_THROUGHPUT_RATIO = 0.9

#: Peak traced memory may grow at most this factor when the execution
#: quadruples (the bound is the chunk budget, not the trace length).
MAX_PEAK_GROWTH = 1.3

#: Streaming peak must sit at least this factor below the one-shot peak on
#: the 4x execution (measured ~75x at benchmark scale; 4x is a safe floor
#: that still proves the O(chunk) vs O(trace) separation).
MIN_PEAK_SEPARATION = 4.0

#: One scheme per vectorized engine family, plus the offline bound.
SCHEMES = ("LRU", "RRIP", "GRASP", "SHiP-MEM", "Hawkeye", "Leeway", "PIN-100", "OPT")

#: Deliberately small budget for the exactness/memory gates: cuts every
#: iteration into many chunks, exercising the resume path hard.
SMALL_BUDGET = 1 << 14


def _stream_replay(workload, iterations, config, budget, scheme="GRASP"):
    """Memo-free streaming pipeline over an explicit iteration list.

    Mirrors :func:`repro.experiments.runner.iter_llc_chunks` +
    :class:`~repro.fastsim.PolicyReplayStream` without the disk memo, so the
    measurement covers the pipeline itself and accepts a scaled (repeated)
    iteration list for the memory-growth gate.
    """
    llc = config.hierarchy.llc
    filter_stream = FilterStream(config.hierarchy, backend=VECTOR)
    replay = PolicyReplayStream(scheme_policy(scheme), llc)
    classifier = _hint_classifier(workload.layout, llc)
    offset_bits = llc.block_offset_bits
    for chunk in iter_execution_trace(
        workload.graph, workload.layout, iterations, max_chunk_accesses=budget
    ):
        keep = filter_stream.feed(chunk.trace)
        addresses = chunk.trace.addresses[keep]
        replay.feed(
            addresses >> offset_bits,
            hints=classifier.classify_array(addresses),
            regions=chunk.trace.regions[keep],
            pcs=chunk.trace.pcs[keep],
        )
    return replay.stats()


def _one_shot_replay(workload, iterations, config, scheme="GRASP"):
    """Materialize the full execution trace, filter it, replay it once."""
    trace = generate_execution_trace(workload.graph, workload.layout, iterations)
    llc_trace = filter_trace(trace, config.hierarchy, workload.layout, backend=VECTOR)
    if scheme == "OPT":
        return simulate_opt(llc_trace, config.hierarchy.llc, backend=VECTOR)
    return simulate_llc_policy(
        llc_trace, scheme_policy(scheme), config.hierarchy.llc, backend=VECTOR
    )


def _peak_traced_bytes(fn):
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _assert_identical(one_shot, streamed, context):
    for field in ("hits", "misses", "evictions", "bypasses"):
        assert getattr(one_shot, field) == getattr(streamed, field), (
            f"{context}: streaming {field}={getattr(streamed, field)} != "
            f"one-shot {field}={getattr(one_shot, field)}"
        )


def test_streaming_bit_identical_all_engines(benchmark, bench_config):
    """Gate 1: streaming == one-shot for every vectorized engine family."""
    workload = build_workload("PR", "lj", config=bench_config)
    iterations = list(workload.app_result.iterations)
    mismatches = 0
    for scheme in SCHEMES:
        one_shot = _one_shot_replay(workload, iterations, bench_config, scheme)
        if scheme == "OPT":
            streamed = simulate_opt_streaming(
                workload, bench_config, backend=VECTOR, max_chunk_accesses=SMALL_BUDGET
            )
        else:
            streamed = simulate_llc_policy_streaming(
                workload,
                scheme_policy(scheme),
                bench_config,
                backend=VECTOR,
                max_chunk_accesses=SMALL_BUDGET,
            )
        _assert_identical(one_shot, streamed, scheme)
        benchmark.extra_info[f"{scheme}_misses"] = streamed.misses
        mismatches += one_shot.misses != streamed.misses
    assert mismatches == 0
    benchmark.pedantic(
        simulate_llc_policy_streaming,
        args=(workload, scheme_policy("GRASP"), bench_config),
        kwargs={"backend": VECTOR, "max_chunk_accesses": SMALL_BUDGET},
        iterations=1,
        rounds=3,
    )


def test_streaming_peak_memory_bounded(benchmark, bench_config):
    """Gate 2: peak memory is O(chunk budget), not O(trace length)."""
    workload = build_workload("PR", "lj", config=bench_config)
    iterations = list(workload.app_result.iterations)
    def run(iters):
        return _stream_replay(workload, iters, bench_config, SMALL_BUDGET)

    run(iterations)  # warm allocator/import caches outside the measurement

    stream_peak_1x = _peak_traced_bytes(lambda: run(iterations))
    stream_peak_4x = _peak_traced_bytes(lambda: run(iterations * 4))
    one_shot_peak_4x = _peak_traced_bytes(
        lambda: _one_shot_replay(workload, iterations * 4, bench_config)
    )
    growth = stream_peak_4x / stream_peak_1x
    separation = one_shot_peak_4x / stream_peak_4x

    benchmark.extra_info["stream_peak_1x_bytes"] = stream_peak_1x
    benchmark.extra_info["stream_peak_4x_bytes"] = stream_peak_4x
    benchmark.extra_info["one_shot_peak_4x_bytes"] = one_shot_peak_4x
    benchmark.extra_info["stream_peak_growth_4x"] = round(growth, 2)
    benchmark.extra_info["one_shot_over_stream_peak"] = round(separation, 1)
    benchmark.pedantic(run, args=(iterations,), iterations=1, rounds=3)

    assert growth <= MAX_PEAK_GROWTH, (
        f"streaming peak grew {growth:.2f}x for a 4x longer execution "
        f"(bound: {MAX_PEAK_GROWTH}x) — peak memory is not O(chunk)"
    )
    assert separation >= MIN_PEAK_SEPARATION, (
        f"streaming peak ({stream_peak_4x / 1e6:.1f} MB) only "
        f"{separation:.1f}x below the one-shot peak "
        f"({one_shot_peak_4x / 1e6:.1f} MB); required {MIN_PEAK_SEPARATION}x"
    )


def test_streaming_throughput_matches_one_shot(benchmark, bench_config):
    """Gate 3: the streaming pipeline keeps the one-shot fast path's speed."""
    workload = build_workload("PR", "lj", config=bench_config)
    iterations = list(workload.app_result.iterations)
    trace = generate_execution_trace(workload.graph, workload.layout, iterations)
    accesses = len(trace)
    del trace

    one_shot = measure_throughput(
        lambda: _one_shot_replay(workload, iterations, bench_config),
        accesses=accesses,
        label="one-shot",
    )
    streaming = measure_throughput(
        lambda: _stream_replay(workload, iterations, bench_config, None),
        accesses=accesses,
        label="streaming",
    )
    ratio = streaming.accesses_per_second / one_shot.accesses_per_second

    benchmark.extra_info["accesses"] = accesses
    benchmark.extra_info["one_shot_accesses_per_s"] = round(one_shot.accesses_per_second)
    benchmark.extra_info["streaming_accesses_per_s"] = round(streaming.accesses_per_second)
    benchmark.extra_info["streaming_over_one_shot"] = round(ratio, 3)
    benchmark.pedantic(
        _stream_replay,
        args=(workload, iterations, bench_config, None),
        iterations=1,
        rounds=3,
    )

    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"streaming pipeline at {ratio:.2f}x of the one-shot fast path "
        f"(required: {MIN_THROUGHPUT_RATIO}x) over {accesses} references"
    )
