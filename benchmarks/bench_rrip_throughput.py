"""Benchmark F2 — fastsim: vectorized vs scalar RRIP/GRASP LLC replay.

Replays the Fig. 6 workload set's LLC traces (post-L1/L2 filter) under the
paper's DRRIP baseline and under full GRASP (hint streams wired through) on
both backends and reports simulated accesses per second.  The acceptance bar
for the RRIP fast path is a >= 5x speed-up over the scalar reference for
*each* policy.

The bar is carried by the compiled kernel (`repro.fastsim.kernels`); the
portable NumPy engine is exact but its set-parallel batches are only as wide
as the scaled-down LLC's 16 sets, so the benchmark skips when no C compiler
is available rather than measure an engine the dispatch would not pick for
throughput-critical runs.
"""

import pytest

from repro.experiments.runner import build_workload, llc_trace_for
from repro.experiments.schemes import scheme_policy
from repro.fastsim import SCALAR, VECTOR, kernels
from repro.perf.throughput import measure_throughput

#: The fast path must beat the scalar reference by at least this factor.
MIN_SPEEDUP = 5.0

#: Paper scheme names under test: the DRRIP baseline and full GRASP.
SCHEMES = ("RRIP", "GRASP")


def _fig6_llc_traces(config):
    """The (workload, LLC trace) pairs behind Fig. 6 at benchmark scale."""
    traces = []
    for dataset in config.high_skew_datasets:
        for app in config.apps:
            workload = build_workload(app, dataset, config=config)
            traces.append((workload, llc_trace_for(workload, config)))
    return traces


def _replay_all(traces, llc_config, scheme, backend):
    from repro.experiments.runner import simulate_llc_policy

    for _, llc_trace in traces:
        simulate_llc_policy(llc_trace, scheme_policy(scheme), llc_config, backend=backend)


def test_rrip_replay_throughput(benchmark, bench_config):
    if not kernels.available():
        pytest.skip("no C compiler for the native kernel; NumPy RRIP engine is "
                    "exactness-oriented and not held to the 5x bar")
    traces = _fig6_llc_traces(bench_config)
    total_accesses = sum(len(llc_trace) for _, llc_trace in traces)
    llc = bench_config.hierarchy.llc

    speedups = {}
    for scheme in SCHEMES:
        vector = measure_throughput(
            lambda scheme=scheme: _replay_all(traces, llc, scheme, VECTOR),
            accesses=total_accesses,
            label=f"{scheme}-{VECTOR}",
        )
        scalar = measure_throughput(
            lambda scheme=scheme: _replay_all(traces, llc, scheme, SCALAR),
            accesses=total_accesses,
            label=f"{scheme}-{SCALAR}",
            repeats=1,
        )
        speedups[scheme] = vector.speedup_over(scalar)
        benchmark.extra_info[f"{scheme}_scalar_accesses_per_s"] = round(
            scalar.accesses_per_second
        )
        benchmark.extra_info[f"{scheme}_vector_accesses_per_s"] = round(
            vector.accesses_per_second
        )
        benchmark.extra_info[f"{scheme}_speedup_vs_scalar"] = round(speedups[scheme], 1)

    benchmark.extra_info["accesses"] = total_accesses
    benchmark.pedantic(
        _replay_all, args=(traces, llc, "GRASP", VECTOR), iterations=1, rounds=3
    )

    for scheme, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized {scheme} replay only {speedup:.1f}x faster than scalar "
            f"(required: {MIN_SPEEDUP}x) over {total_accesses} accesses"
        )
