"""Benchmark F5 — co-run interleaved replay: K=1 exactness + memory bound.

PR 9 adds the multi-programmed co-run subsystem: per-app LLC streams are
merged under an arrival schedule (:class:`InterleavedTraceStream`) and
replayed through one shared — optionally way-partitioned — LLC with
per-stream attribution (:class:`CorunReplayStream`).  This benchmark gates
the two contracts that keep the subsystem honest against the single-app
pipeline it generalizes:

1. **K=1 exactness** — replaying a single application through the whole
   interleaving machinery (merge, stream tagging, per-stream engines) is
   bit-identical to the single-app :class:`PolicyReplayStream` fast path,
   for every vectorized engine family.  PIN-X is covered through a
   one-share partition spanning the full associativity (the unpartitioned
   PIN co-run is scalar-only by design: per-stream bypass attribution
   needs per-stream engines).
2. **Bounded memory** — the interleaved co-run replay streams: peak traced
   allocations at a fixed chunk budget stay flat when the co-run is made
   4x longer, for a real K=2 partitioned co-run.

Wired into CI as ``BENCH_corun.json``.
"""

import itertools
import tracemalloc

from repro.cache.partition import WayPartition
from repro.experiments.runner import build_workload, iter_llc_chunks
from repro.experiments.schemes import scheme_policy
from repro.fastsim import CorunReplayStream, PolicyReplayStream, supports_vector_corun
from repro.trace.interleave import InterleavedTraceStream

#: Peak traced memory may grow at most this factor when the co-run
#: quadruples (the bound is the chunk budget, not the merged length).
MAX_PEAK_GROWTH = 1.3

#: One scheme per vectorized engine family (OPT has no co-run analogue).
SCHEMES = ("LRU", "RRIP", "GRASP", "SHiP-MEM", "Hawkeye", "Leeway", "PIN-100")

#: Small chunk budget: many merge turns and many resume points per run.
SMALL_BUDGET = 1 << 14


def _single_app_replay(workload, config, scheme):
    """The single-app fast path: replay the app's LLC stream directly."""
    replay = PolicyReplayStream(scheme_policy(scheme), config.hierarchy.llc)
    for chunk in iter_llc_chunks(workload, config, SMALL_BUDGET):
        replay.feed(chunk.block_addresses, chunk.hints, chunk.regions, chunk.pcs)
    return replay.stats()


def _interleaved_replay(workload, config, scheme, partition):
    """The same stream through the K=1 co-run machinery."""
    llc = config.hierarchy.llc
    merged = InterleavedTraceStream(
        [iter_llc_chunks(workload, config, SMALL_BUDGET)],
        chunk_accesses=SMALL_BUDGET,
    )
    replay = CorunReplayStream(scheme_policy(scheme), llc, 1, partition=partition)
    for chunk in merged:
        replay.feed(
            chunk.block_addresses, chunk.stream_ids, chunk.hints, chunk.regions, chunk.pcs
        )
    return replay.stats()


def _corun_replay(sources_fn, config, scheme, partition):
    """A K=2 partitioned co-run replay over lazily built chunk sources."""
    merged = InterleavedTraceStream(
        sources_fn(), schedule="round_robin", quantum=64, chunk_accesses=SMALL_BUDGET
    )
    replay = CorunReplayStream(
        scheme_policy(scheme), config.hierarchy.llc, 2, partition=partition
    )
    for chunk in merged:
        replay.feed(
            chunk.block_addresses, chunk.stream_ids, chunk.hints, chunk.regions, chunk.pcs
        )
    return replay.stats()


def _peak_traced_bytes(fn):
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def test_corun_k1_bit_identical_all_engines(benchmark, bench_config):
    """Gate 1: the K=1 interleaved replay equals the single-app replay."""
    workload = build_workload("PR", "lj", config=bench_config)
    ways = bench_config.hierarchy.llc.ways
    mismatches = 0
    for scheme in SCHEMES:
        single = _single_app_replay(workload, bench_config, scheme)
        # The one-share partition covers the whole associativity, so it
        # constrains nothing — and it gives PIN-X its per-stream engine.
        partition = (
            None
            if supports_vector_corun(scheme_policy(scheme), None)
            else WayPartition((ways,))
        )
        corun = _interleaved_replay(workload, bench_config, scheme, partition)
        for field in ("accesses", "hits", "misses", "evictions", "bypasses"):
            assert getattr(single, field) == getattr(corun, field), (
                f"{scheme}: K=1 co-run {field}={getattr(corun, field)} != "
                f"single-app {field}={getattr(single, field)}"
            )
        assert corun.stream_accesses == {0: single.accesses}
        benchmark.extra_info[f"{scheme}_misses"] = corun.misses
        mismatches += single.misses != corun.misses
    assert mismatches == 0
    benchmark.pedantic(
        _interleaved_replay,
        args=(workload, bench_config, "GRASP", None),
        iterations=1,
        rounds=3,
    )


def test_corun_peak_memory_bounded(benchmark, bench_config):
    """Gate 2: the merged co-run replay's peak memory is O(chunk budget)."""
    workloads = [
        build_workload("PR", "lj", config=bench_config),
        build_workload("PR", "pl", config=bench_config),
    ]
    partition = WayPartition((bench_config.hierarchy.llc.ways // 2,) * 2)

    def sources(repeats):
        # A `repeats`-times-longer co-run: each app's stream is chained
        # end to end, regenerated lazily so nothing is held in memory.
        return lambda: [
            itertools.chain.from_iterable(
                iter_llc_chunks(workload, bench_config, SMALL_BUDGET)
                for _ in range(repeats)
            )
            for workload in workloads
        ]

    def run(repeats):
        return _corun_replay(sources(repeats), bench_config, "GRASP", partition)

    run(1)  # warm allocator/import caches outside the measurement

    peak_1x = _peak_traced_bytes(lambda: run(1))
    peak_4x = _peak_traced_bytes(lambda: run(4))
    growth = peak_4x / peak_1x

    benchmark.extra_info["corun_peak_1x_bytes"] = peak_1x
    benchmark.extra_info["corun_peak_4x_bytes"] = peak_4x
    benchmark.extra_info["corun_peak_growth_4x"] = round(growth, 2)
    benchmark.pedantic(run, args=(1,), iterations=1, rounds=3)

    assert growth <= MAX_PEAK_GROWTH, (
        f"co-run replay peak grew {growth:.2f}x for a 4x longer co-run "
        f"(bound: {MAX_PEAK_GROWTH}x) — peak memory is not O(chunk)"
    )
