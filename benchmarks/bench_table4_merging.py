"""Benchmark E3 — Table IV: speed-up from merging the Property Arrays."""

from repro.experiments.reporting import format_table
from repro.experiments.tables import table4_merging


def bench(config):
    return table4_merging(
        config, apps=("PR", "SSSP", "BC"), datasets=config.high_skew_datasets[:2]
    )


def test_table4_merging(benchmark, bench_config):
    rows = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(rows)
    by_app = {row["app"]: row for row in rows}
    # PR and SSSP have a merging opportunity and must not slow down; BC has none.
    assert by_app["PR"]["merging_opportunity"] == "Yes"
    assert by_app["PR"]["max_speedup_pct"] > 0.0
    assert by_app["SSSP"]["merging_opportunity"] == "Yes"
    assert by_app["SSSP"]["max_speedup_pct"] > 0.0
    assert by_app["BC"]["merging_opportunity"] == "No"
