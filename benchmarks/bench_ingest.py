"""Benchmark F5 — out-of-core ingestion: flat mmap memory + I/O throughput.

ISSUE 8 adds the ingestion layer: chunked parsers, a binary-CSR on-disk
cache and ``np.memmap``-backed graphs, so real-world graph files larger
than RAM stream through the trace pipeline with flat peak memory.  This
benchmark gates the three contracts the layer makes:

1. **Flat mmap memory** — peak traced allocations of loading a cached
   graph through ``mmap=True`` stay flat (<= ``MAX_MMAP_GROWTH``) when the
   graph is made 4x larger, while the in-RAM parse path's peak grows with
   the graph (>= ``MIN_RAM_GROWTH``).  Driving the LLC trace pipeline off
   the mmap-backed graph must cost at most ``MAX_PIPELINE_OVERHEAD`` of
   the pipeline's own peak on the equivalent in-RAM graph: the graph
   arrays stay on disk and do not inflate the pipeline's working set.
2. **Warm cache wins** — a warm binary-CSR cache hit (mmap open) beats the
   cold parse+build+publish path by at least ``MIN_CACHE_SPEEDUP``.
3. **Writer throughput** — the bulk printf edge-list writer beats a
   per-edge Python formatting loop by at least ``MIN_WRITE_SPEEDUP``
   (measured ~1.9x unweighted, ~10x with integral weights).

Memory is measured with :mod:`tracemalloc`: NumPy reports heap array
allocations to it, but pages faulted in through ``np.memmap`` never hit the
allocator — which is precisely the property under test.
"""

import time
import tracemalloc

import numpy as np

from repro.cache.config import HierarchyConfig
from repro.experiments.runner import filter_trace, simulate_llc_policy
from repro.experiments.schemes import scheme_policy
from repro.analytics import get_application
from repro.graph.generators import _chung_lu_graph
from repro.graph.ingest import CSRBinaryCache, ingest_graph, parse_graph
from repro.graph.io import _save_edge_list
from repro.trace import MemoryLayout, generate_iteration_trace

#: Peak traced bytes of a cached mmap load may grow at most this factor
#: when the graph quadruples (the bound is metadata, not the arrays).
MAX_MMAP_GROWTH = 1.2

#: The in-RAM parse peak must grow at least this factor over the same 4x
#: size step (it holds every edge array on the heap).
MIN_RAM_GROWTH = 2.0

#: Trace-pipeline peak on the mmap-backed graph, relative to the identical
#: pipeline on the in-RAM graph (the acceptance criterion's baseline).
MAX_PIPELINE_OVERHEAD = 1.2

#: Warm cache hit vs cold parse+build+store, wall-clock.
MIN_CACHE_SPEEDUP = 2.0

#: Bulk printf writer vs per-edge Python loop, wall-clock.
MIN_WRITE_SPEEDUP = 1.2

#: Small/large graph sizes (vertices); average degree 8 keeps the file in
#: the hundreds of kilobytes so CI stays fast while the 4x separation is
#: still far above allocator noise.
SMALL_VERTICES = 15_000
LARGE_VERTICES = 4 * SMALL_VERTICES
AVG_DEGREE = 8.0


def _peak_traced_bytes(fn):
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _best_time(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _edge_file(tmp_path, vertices, seed, name):
    graph = _chung_lu_graph(vertices, AVG_DEGREE, seed=seed, name=name)
    path = tmp_path / f"{name}.txt"
    _save_edge_list(graph, path)
    return path


def _pipeline(graph):
    app = get_application("PR")
    result = app.run(graph, root=int(np.argmax(np.asarray(graph.out_degrees))))
    roi = max(
        result.iterations_in_direction(app.dominant_direction) or result.iterations,
        key=lambda record: record.active_vertices,
    )
    layout = MemoryLayout(graph, app.access_profile())
    trace = generate_iteration_trace(graph, layout, roi.direction, frontier=roi.frontier)
    hierarchy = HierarchyConfig()
    llc = filter_trace(trace, hierarchy, layout)
    return simulate_llc_policy(llc, scheme_policy("GRASP"), hierarchy.llc)


def test_mmap_peak_memory_flat(benchmark, tmp_path):
    """Gate 1: cached mmap loads are O(metadata); in-RAM parses are O(graph)."""
    small = _edge_file(tmp_path, SMALL_VERTICES, seed=101, name="small")
    large = _edge_file(tmp_path, LARGE_VERTICES, seed=102, name="large")
    cache_root = tmp_path / "cache"
    # Populate the cache outside the measurement (cold builds are gate 2).
    ingest_graph(small, mmap=True, cache_root=cache_root)
    ingest_graph(large, mmap=True, cache_root=cache_root)

    mmap_peak_small = _peak_traced_bytes(
        lambda: ingest_graph(small, mmap=True, cache_root=cache_root)
    )
    mmap_peak_large = _peak_traced_bytes(
        lambda: ingest_graph(large, mmap=True, cache_root=cache_root)
    )
    ram_peak_small = _peak_traced_bytes(lambda: ingest_graph(small, mmap=False))
    ram_peak_large = _peak_traced_bytes(lambda: ingest_graph(large, mmap=False))

    mmap_growth = mmap_peak_large / mmap_peak_small
    ram_growth = ram_peak_large / ram_peak_small
    benchmark.extra_info["mmap_peak_small_bytes"] = mmap_peak_small
    benchmark.extra_info["mmap_peak_large_bytes"] = mmap_peak_large
    benchmark.extra_info["ram_peak_small_bytes"] = ram_peak_small
    benchmark.extra_info["ram_peak_large_bytes"] = ram_peak_large
    benchmark.extra_info["mmap_peak_growth_4x"] = round(mmap_growth, 2)
    benchmark.extra_info["ram_peak_growth_4x"] = round(ram_growth, 2)

    assert mmap_growth <= MAX_MMAP_GROWTH, (
        f"mmap load peak grew {mmap_growth:.2f}x on a 4x graph "
        f"(bound {MAX_MMAP_GROWTH}x): arrays are leaking onto the heap"
    )
    assert ram_growth >= MIN_RAM_GROWTH, (
        f"in-RAM parse peak grew only {ram_growth:.2f}x on a 4x graph; "
        "the memory gate is no longer measuring the graph arrays"
    )
    assert mmap_peak_large < ram_peak_large / 4

    benchmark.pedantic(
        ingest_graph,
        args=(large,),
        kwargs={"mmap": True, "cache_root": cache_root},
        iterations=1,
        rounds=3,
    )


def test_mmap_pipeline_overhead_and_exactness(benchmark, tmp_path):
    """Gate 1b: the trace pipeline on an mmap graph — same stats, flat peak."""
    path = _edge_file(tmp_path, SMALL_VERTICES // 10, seed=103, name="pipe")
    ram = ingest_graph(path, mmap=False)
    mm = ingest_graph(path, mmap=True, cache_root=tmp_path / "cache")

    ram_stats = _pipeline(ram)
    mmap_stats = _pipeline(mm)
    for field in ("hits", "misses", "evictions", "bypasses"):
        assert getattr(ram_stats, field) == getattr(mmap_stats, field), (
            f"mmap pipeline {field}={getattr(mmap_stats, field)} != "
            f"in-RAM {field}={getattr(ram_stats, field)}"
        )

    _pipeline(mm)  # warm allocator/import caches outside the measurement
    ram_peak = _peak_traced_bytes(lambda: _pipeline(ram))
    mmap_peak = _peak_traced_bytes(lambda: _pipeline(mm))
    overhead = mmap_peak / ram_peak
    benchmark.extra_info["pipeline_peak_ram_bytes"] = ram_peak
    benchmark.extra_info["pipeline_peak_mmap_bytes"] = mmap_peak
    benchmark.extra_info["pipeline_mmap_overhead"] = round(overhead, 2)
    benchmark.extra_info["misses"] = mmap_stats.misses
    assert overhead <= MAX_PIPELINE_OVERHEAD, (
        f"trace pipeline peaked {overhead:.2f}x higher on the mmap graph "
        f"(bound {MAX_PIPELINE_OVERHEAD}x)"
    )

    benchmark.pedantic(_pipeline, args=(mm,), iterations=1, rounds=3)


def test_warm_cache_beats_cold_parse(benchmark, tmp_path):
    """Gate 2: a binary-CSR cache hit skips the parse entirely."""
    path = _edge_file(tmp_path, SMALL_VERTICES, seed=104, name="warm")
    cache_root = tmp_path / "cache"

    def cold():
        cache = CSRBinaryCache(cache_root / "cold")
        try:
            cache.store(path)
        finally:
            import shutil

            shutil.rmtree(cache_root / "cold", ignore_errors=True)

    warm_root = cache_root / "warm"
    ingest_graph(path, mmap=True, cache_root=warm_root)

    def warm():
        ingest_graph(path, mmap=True, cache_root=warm_root)

    cold_s = _best_time(cold)
    warm_s = _best_time(warm, rounds=5)
    speedup = cold_s / warm_s
    benchmark.extra_info["cold_parse_build_s"] = round(cold_s, 4)
    benchmark.extra_info["warm_hit_s"] = round(warm_s, 4)
    benchmark.extra_info["cache_hit_speedup"] = round(speedup, 1)
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"warm cache hit only {speedup:.1f}x faster than cold parse+build "
        f"(gate {MIN_CACHE_SPEEDUP}x)"
    )

    benchmark.pedantic(warm, iterations=1, rounds=5)


def test_bulk_writer_beats_per_edge_loop(benchmark, tmp_path):
    """Gate 3: the bulk printf writer vs the old per-edge formatting loop."""
    graph = _chung_lu_graph(SMALL_VERTICES, AVG_DEGREE, seed=105, name="writer")
    weighted = graph.with_random_weights(seed=106)
    bulk_path = tmp_path / "bulk.txt"
    loop_path = tmp_path / "loop.txt"

    def loop_writer(g, path):
        sources, targets = g.edge_arrays()
        weights = g.out_weights
        with open(path, "w") as handle:
            handle.write(f"# repro edge list: {g.name}\n")
            handle.write(f"# vertices={g.num_vertices} edges={g.num_edges}\n")
            if weights is None:
                for s, t in zip(sources.tolist(), targets.tolist()):
                    handle.write(f"{s} {t}\n")
            else:
                for s, t, w in zip(
                    sources.tolist(), targets.tolist(), weights.tolist()
                ):
                    handle.write(f"{s} {t} {w:g}\n")

    results = {}
    for label, g in (("unweighted", graph), ("weighted", weighted)):
        bulk_s = _best_time(lambda: _save_edge_list(g, bulk_path))
        loop_s = _best_time(lambda: loop_writer(g, loop_path))
        assert bulk_path.read_bytes() == loop_path.read_bytes(), (
            f"{label}: bulk writer output differs from the reference loop"
        )
        results[label] = loop_s / bulk_s
        benchmark.extra_info[f"write_{label}_bulk_s"] = round(bulk_s, 4)
        benchmark.extra_info[f"write_{label}_loop_s"] = round(loop_s, 4)
        benchmark.extra_info[f"write_{label}_speedup"] = round(loop_s / bulk_s, 2)

    edges_per_s = graph.num_edges / _best_time(lambda: parse_graph(bulk_path))
    benchmark.extra_info["parse_edges_per_s"] = int(edges_per_s)

    for label, speedup in results.items():
        assert speedup >= MIN_WRITE_SPEEDUP, (
            f"{label} bulk writer only {speedup:.2f}x over the loop "
            f"(gate {MIN_WRITE_SPEEDUP}x)"
        )

    benchmark.pedantic(
        _save_edge_list, args=(weighted, bulk_path), iterations=1, rounds=3
    )
