"""Benchmark F5 — fused single-pass pipeline: end-to-end throughput.

PR 7 fuses the per-chunk generate → filter → replay flow into one native
pipeline pass (:class:`~repro.fastsim.FusedPipeline`): each raw trace chunk
runs through the L1/L2 filter and the LLC engine in a single kernel call,
with no intermediate filtered-trace materialization and no per-chunk
persistence.  This benchmark gates the contracts the fused route makes for
its regime — a *single-consumer* replay (one policy, cold caches), the unit
of work a cold sweep performs per scheme:

1. **Exactness** — the fused end-to-end result (graph → trace generation →
   filter → LLC replay → ``CacheStats``) is bit-identical to the staged
   pipeline's, for every fused engine family, and the fused route really
   engages (no filtered chunks reach the memo).
2. **Throughput** — end-to-end accesses/sec of the fused route is at least
   ``MIN_FUSED_SPEEDUP``x the staged persist-as-you-filter pipeline for the
   paper's GRASP scheme, and at least ``MIN_FUSED_SPEEDUP_ALL``x for every
   fused family.
3. **Thread scaling** — with more than one core, the set-sharded filter
   (``REPRO_THREADS``) beats the single-threaded pass; on any machine the
   outcome vectors are identical for every thread count.

Both sides run the product code paths with a cold on-disk memo per round:
the staged side is :func:`~repro.experiments.runner.iter_llc_chunks` feeding
a :class:`~repro.fastsim.PolicyReplayStream` (materialize + persist every
filtered chunk — what every replay paid before the fused route existed, and
still pays when the stream is shared), the fused side is
:func:`~repro.experiments.runner.simulate_llc_policy_streaming`, whose fused
gate takes the single-pass route.
"""

import os
import shutil

import pytest

from repro.experiments.memo import DiskMemo
from repro.experiments.runner import (
    _hint_classifier,
    _maybe_fused_multi_roi,
    build_workload,
    clear_caches,
    iter_execution_chunks,
    iter_llc_chunks,
    set_disk_memo,
    simulate_llc_policy_streaming,
    simulate_scheme,
)
from repro.experiments.schemes import scheme_policy
from repro.fastsim import VECTOR, FusedPipeline, PolicyReplayStream
from repro.fastsim import kernels
from repro.fastsim.kernels import THREADS_ENV_VAR
from repro.perf.throughput import measure_throughput

pytestmark = pytest.mark.skipif(
    not kernels.has_capability("fused"),
    reason="fused native kernels unavailable (no C compiler or REPRO_NATIVE=0)",
)

#: Fused must beat the staged persist-as-you-filter pipeline by this factor
#: end to end for the paper's headline scheme (measured ~1.6x at bench scale).
MIN_FUSED_SPEEDUP = 1.5

#: ... and by this factor for every fused engine family (the LRU replay's
#: staged engine is already lean, so its margin is the smallest).
MIN_FUSED_SPEEDUP_ALL = 1.1

#: The fused multi-scheme route (one shared filter pass feeding N replay
#: engines) must beat the staged materialize-once path end to end for a
#: compare_policies-shaped scheme set by this factor.
MIN_MULTI_SPEEDUP = 1.1

#: A declined fused-multi attempt (single consumer: the pass plans, sees <2
#: eligible schemes and returns) may cost at most this fraction of one
#: plain single-consumer run (measured ~2% at bench scale).
MAX_DECLINED_MULTI_COST = 0.25

#: Minimum threaded-over-serial speedup of the fused replay when the machine
#: actually has cores to shard across (kept modest: at most
#: ``min(l1_sets, l2_sets, llc_sets)`` shards exist, and only the filter
#: phase parallelizes).
MIN_THREAD_SPEEDUP = 1.05

#: One scheme per fused engine family.
SCHEMES = ("LRU", "RRIP", "GRASP", "SHiP-MEM", "Hawkeye", "Leeway", "PIN-100")

#: Bounded-memory chunk budget, matching bench_streaming's regime.
SMALL_BUDGET = 1 << 14


def _fresh_memo(root):
    """Install a cold on-disk memo so each round starts from nothing."""
    shutil.rmtree(root, ignore_errors=True)
    memo = DiskMemo(root)
    set_disk_memo(memo)
    return memo


def _staged_e2e(workload, config, scheme, memo_root):
    """The pre-fused product path: filter, materialize and persist every
    chunk (``llcchunk`` store), replay through the vectorized engine."""
    _fresh_memo(memo_root)
    replay = PolicyReplayStream(scheme_policy(scheme), config.hierarchy.llc)
    for chunk in iter_llc_chunks(workload, config, SMALL_BUDGET, backend=VECTOR):
        replay.feed(
            chunk.block_addresses,
            hints=chunk.hints,
            regions=chunk.regions,
            pcs=chunk.pcs,
        )
    return replay.stats()


def _fused_e2e(workload, config, scheme, memo_root):
    """The fused product path: one native pass per raw chunk, no chunk store."""
    _fresh_memo(memo_root)
    return simulate_llc_policy_streaming(
        workload,
        scheme_policy(scheme),
        config,
        backend=VECTOR,
        max_chunk_accesses=SMALL_BUDGET,
    )


def _assert_identical(staged, fused, context):
    for field in ("hits", "misses", "evictions", "bypasses"):
        assert getattr(staged, field) == getattr(fused, field), (
            f"{context}: fused {field}={getattr(fused, field)} != "
            f"staged {field}={getattr(staged, field)}"
        )


def test_fused_beats_staged_e2e(benchmark, bench_config, tmp_path):
    """Gates 1 + 2: exactness and end-to-end throughput per engine family."""
    workload = build_workload("PR", "lj", config=bench_config)
    memo_root = tmp_path / "memo"
    total = workload_total_references(workload)
    try:
        ratios = {}
        for scheme in SCHEMES:
            staged_stats = _staged_e2e(workload, bench_config, scheme, memo_root)
            fused_stats = _fused_e2e(workload, bench_config, scheme, memo_root)
            _assert_identical(staged_stats, fused_stats, scheme)
            # The fused route must actually have run: it never writes
            # filtered chunks, only the budget-less counter summary.
            memo = DiskMemo(memo_root)
            assert memo.entry_count("llcchunk") == 0, (
                f"{scheme}: fused route wrote llcchunk entries — the staged "
                "path ran instead"
            )
            staged = measure_throughput(
                lambda s=scheme: _staged_e2e(workload, bench_config, s, memo_root),
                accesses=total,
                label=f"staged:{scheme}",
            )
            fused = measure_throughput(
                lambda s=scheme: _fused_e2e(workload, bench_config, s, memo_root),
                accesses=total,
                label=f"fused:{scheme}",
            )
            ratios[scheme] = fused.speedup_over(staged)
            benchmark.extra_info[f"{scheme}_fused_over_staged"] = round(
                ratios[scheme], 2
            )
            benchmark.extra_info[f"{scheme}_fused_accesses_per_s"] = round(
                fused.accesses_per_second
            )
        benchmark.extra_info["accesses"] = total
        benchmark.pedantic(
            _fused_e2e,
            args=(workload, bench_config, "GRASP", memo_root),
            iterations=1,
            rounds=3,
        )
        assert ratios["GRASP"] >= MIN_FUSED_SPEEDUP, (
            f"fused GRASP e2e at {ratios['GRASP']:.2f}x of the staged "
            f"pipeline (required: {MIN_FUSED_SPEEDUP}x)"
        )
        for scheme, ratio in ratios.items():
            assert ratio >= MIN_FUSED_SPEEDUP_ALL, (
                f"fused {scheme} e2e at {ratio:.2f}x of the staged pipeline "
                f"(required: {MIN_FUSED_SPEEDUP_ALL}x)"
            )
    finally:
        set_disk_memo(None)


def workload_total_references(workload):
    """Total raw references of the streamed execution (for accesses/sec)."""
    return sum(
        len(chunk.trace)
        for chunk in iter_execution_chunks(workload, SMALL_BUDGET)
    )


#: The compare_policies-shaped multi-scheme set (baseline + headline schemes).
MULTI_SCHEMES = ("RRIP", "GRASP", "SHiP-MEM", "Leeway")


def _multi_reset(memo_root):
    """Cold caches for one round: in-memory tables and the disk memo."""
    clear_caches()
    _fresh_memo(memo_root)


def _multi_staged(workload, config, schemes, memo_root):
    """The pre-planner compare_policies flow: materialize the filtered ROI
    trace once (``shared_trace=True``) and replay every scheme from it."""
    _multi_reset(memo_root)
    return [
        simulate_scheme(workload, scheme, config, shared_trace=True)
        for scheme in schemes
    ]


def _multi_fused(workload, config, schemes, memo_root):
    """The fused-multi product flow compare_policies runs: one shared filter
    pass feeds every scheme's replay, then per-scheme reads are memo hits."""
    _multi_reset(memo_root)
    _maybe_fused_multi_roi(workload, schemes, config)
    return [
        simulate_scheme(workload, scheme, config, shared_trace=True)
        for scheme in schemes
    ]


def test_multi_scheme_fused_beats_staged(benchmark, bench_config, tmp_path):
    """The fused-multi route: exactness, engagement and the e2e gate —
    plus proof that a single-consumer run is untouched by the multi path."""
    workload = build_workload("PR", "lj", config=bench_config)
    memo_root = tmp_path / "memo"
    total = workload_total_references(workload)
    try:
        staged_stats = _multi_staged(workload, bench_config, MULTI_SCHEMES, memo_root)
        # The staged path really materialized the shared trace.
        assert DiskMemo(memo_root).entry_count("llctrace") == 1
        fused_stats = _multi_fused(workload, bench_config, MULTI_SCHEMES, memo_root)
        for scheme, staged_s, fused_s in zip(MULTI_SCHEMES, staged_stats, fused_stats):
            _assert_identical(staged_s, fused_s, f"multi:{scheme}")
        # The fused-multi route really ran: per-scheme stats landed without
        # the filtered ROI trace ever being materialized.
        memo = DiskMemo(memo_root)
        assert memo.entry_count("llctrace") == 0, (
            "fused-multi route wrote an llctrace entry — the staged path ran"
        )
        assert memo.entry_count("policy") == len(MULTI_SCHEMES)

        staged = measure_throughput(
            lambda: _multi_staged(workload, bench_config, MULTI_SCHEMES, memo_root),
            accesses=total,
            label="staged:multi",
        )
        fused = measure_throughput(
            lambda: _multi_fused(workload, bench_config, MULTI_SCHEMES, memo_root),
            accesses=total,
            label="fused:multi",
        )
        ratio = fused.speedup_over(staged)
        benchmark.extra_info["schemes"] = "+".join(MULTI_SCHEMES)
        benchmark.extra_info["accesses"] = total
        benchmark.extra_info["multi_fused_over_staged"] = round(ratio, 2)
        benchmark.extra_info["multi_fused_accesses_per_s"] = round(
            fused.accesses_per_second
        )

        # Single-consumer runs must be untouched by the multi machinery: the
        # opportunistic pass declines (<2 eligible schemes) without side
        # effects, and the declined attempt itself is a small fraction of
        # one plain single-consumer run.
        _multi_reset(memo_root)
        _maybe_fused_multi_roi(workload, ("GRASP",), bench_config)
        assert DiskMemo(memo_root).entry_count("policy") == 0, (
            "fused-multi pass engaged for a single consumer"
        )

        def _single_fused():
            # The product single-consumer call: no shared_trace, so the
            # planner picks the fused single-pass route.
            _multi_reset(memo_root)
            return simulate_scheme(workload, "GRASP", bench_config)

        single_plain = measure_throughput(
            _single_fused,
            accesses=total,
            label="single:fused",
        )
        # The memo stays cold from the last reset, so every repeat of the
        # declined attempt does the same work: plan, find one eligible
        # scheme, return without touching anything.
        _multi_reset(memo_root)
        declined = measure_throughput(
            lambda: _maybe_fused_multi_roi(workload, ("GRASP",), bench_config),
            accesses=total,
            label="single:declined-multi-attempt",
        )
        declined_cost = declined.seconds / max(single_plain.seconds, 1e-12)
        benchmark.extra_info["declined_multi_cost_of_single_run"] = round(
            declined_cost, 3
        )

        benchmark.pedantic(
            _multi_fused,
            args=(workload, bench_config, MULTI_SCHEMES, memo_root),
            iterations=1,
            rounds=3,
        )
        assert ratio >= MIN_MULTI_SPEEDUP, (
            f"fused-multi compare at {ratio:.2f}x of the staged materialize-"
            f"once path (required: {MIN_MULTI_SPEEDUP}x)"
        )
        assert declined_cost <= MAX_DECLINED_MULTI_COST, (
            f"declined fused-multi attempt costs {declined_cost:.1%} of a "
            f"single-consumer run (allowed: {MAX_DECLINED_MULTI_COST:.0%})"
        )
    finally:
        set_disk_memo(None)
        clear_caches()


def test_fused_thread_scaling(benchmark, bench_config, monkeypatch):
    """Gate 3: REPRO_THREADS shards the filter; identical outcomes always,
    faster wall-clock whenever there is more than one core to shard onto."""
    workload = build_workload("PR", "lj", config=bench_config)
    classifier = _hint_classifier(workload.layout, bench_config.hierarchy.llc)
    chunks = [
        chunk.trace
        for chunk in iter_execution_chunks(workload, SMALL_BUDGET)
    ]
    accesses = sum(len(trace) for trace in chunks)

    def replay(threads):
        monkeypatch.setenv(THREADS_ENV_VAR, str(threads))
        pipeline = FusedPipeline(
            bench_config.hierarchy, scheme_policy("GRASP"), classifier=classifier
        )
        outcomes = [pipeline.feed(trace) for trace in chunks]
        return pipeline.stats(), outcomes

    serial_stats, serial_outcomes = replay(1)
    threaded_stats, threaded_outcomes = replay(4)
    _assert_identical(serial_stats.llc_stats, threaded_stats.llc_stats, "threads")
    for serial_out, threaded_out in zip(serial_outcomes, threaded_outcomes):
        assert (serial_out == threaded_out).all(), (
            "threaded outcome vector differs from single-threaded"
        )

    serial = measure_throughput(
        lambda: replay(1), accesses=accesses, label="threads=1"
    )
    threaded = measure_throughput(
        lambda: replay(4), accesses=accesses, label="threads=4"
    )
    speedup = threaded.speedup_over(serial)

    cores = os.cpu_count() or 1
    benchmark.extra_info["cpu_count"] = cores
    benchmark.extra_info["accesses"] = accesses
    benchmark.extra_info["serial_accesses_per_s"] = round(serial.accesses_per_second)
    benchmark.extra_info["threaded_accesses_per_s"] = round(
        threaded.accesses_per_second
    )
    benchmark.extra_info["threaded_over_serial"] = round(speedup, 2)
    benchmark.pedantic(replay, args=(4,), iterations=1, rounds=3)

    if cores > 1:
        assert speedup >= MIN_THREAD_SPEEDUP, (
            f"threaded fused replay at {speedup:.2f}x of single-threaded on "
            f"{cores} cores (required: {MIN_THREAD_SPEEDUP}x)"
        )
