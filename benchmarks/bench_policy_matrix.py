"""Benchmark F3 — fastsim: vectorized vs scalar replay for the full matrix.

PR 4 completes the vectorized LLC engine matrix: SHiP-MEM, Hawkeye, Leeway,
the PIN-X pinning configurations and Belady's OPT join LRU and the RRIP
family on the fast path.  This benchmark replays the Fig. 6 workload set's
LLC traces (post-L1/L2 filter) under each newly vectorized scheme on both
backends and reports simulated accesses per second.  The acceptance bar is a
>= 5x speed-up over the scalar reference for *each* scheme.

As with the RRIP benchmark, the bar is carried by the compiled kernels
(`repro.fastsim.kernels`); the portable NumPy engines are exact but their
set-parallel batches are bounded by the scaled-down LLC's 16 sets (and the
globally shared predictor tables serialize part of the SHiP/Leeway/Hawkeye
work), so the benchmark skips when no C compiler is available rather than
measure engines the dispatch would not pick for throughput-critical runs.
"""

import pytest

from repro.experiments.runner import build_workload, llc_trace_for, simulate_opt
from repro.experiments.schemes import scheme_policy
from repro.fastsim import SCALAR, VECTOR, kernels
from repro.perf.throughput import measure_throughput

#: The fast path must beat the scalar reference by at least this factor.
MIN_SPEEDUP = 5.0

#: Paper scheme names newly vectorized in PR 4 ("OPT" routes through
#: ``simulate_opt`` rather than a ReplacementPolicy).
SCHEMES = ("SHiP-MEM", "Hawkeye", "Leeway", "PIN-75", "PIN-100", "OPT")


def _fig6_llc_traces(config):
    """The (workload, LLC trace) pairs behind Fig. 6 at benchmark scale."""
    traces = []
    for dataset in config.high_skew_datasets:
        for app in config.apps:
            workload = build_workload(app, dataset, config=config)
            traces.append((workload, llc_trace_for(workload, config)))
    return traces


def _replay_all(traces, llc_config, scheme, backend):
    from repro.experiments.runner import simulate_llc_policy

    for _, llc_trace in traces:
        if scheme == "OPT":
            simulate_opt(llc_trace, llc_config, backend=backend)
        else:
            simulate_llc_policy(
                llc_trace, scheme_policy(scheme), llc_config, backend=backend
            )


def test_policy_matrix_throughput(benchmark, bench_config):
    if not kernels.available():
        pytest.skip("no C compiler for the native kernels; NumPy engines are "
                    "exactness-oriented and not held to the 5x bar")
    traces = _fig6_llc_traces(bench_config)
    total_accesses = sum(len(llc_trace) for _, llc_trace in traces)
    llc = bench_config.hierarchy.llc

    speedups = {}
    for scheme in SCHEMES:
        vector = measure_throughput(
            lambda scheme=scheme: _replay_all(traces, llc, scheme, VECTOR),
            accesses=total_accesses,
            label=f"{scheme}-{VECTOR}",
        )
        scalar = measure_throughput(
            lambda scheme=scheme: _replay_all(traces, llc, scheme, SCALAR),
            accesses=total_accesses,
            label=f"{scheme}-{SCALAR}",
            repeats=1,
        )
        speedups[scheme] = vector.speedup_over(scalar)
        benchmark.extra_info[f"{scheme}_scalar_accesses_per_s"] = round(
            scalar.accesses_per_second
        )
        benchmark.extra_info[f"{scheme}_vector_accesses_per_s"] = round(
            vector.accesses_per_second
        )
        benchmark.extra_info[f"{scheme}_speedup_vs_scalar"] = round(speedups[scheme], 1)

    benchmark.extra_info["accesses"] = total_accesses
    benchmark.pedantic(
        _replay_all, args=(traces, llc, "SHiP-MEM", VECTOR), iterations=1, rounds=3
    )

    for scheme, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized {scheme} replay only {speedup:.1f}x faster than scalar "
            f"(required: {MIN_SPEEDUP}x) over {total_accesses} accesses"
        )
