"""Benchmark E11 — Fig. 11: misses eliminated over LRU by RRIP, GRASP and Belady's OPT."""

from repro.experiments.figures import fig11_vs_opt, summarize_fig11
from repro.experiments.reporting import format_table


def bench(config):
    return fig11_vs_opt(config)


def test_fig11_vs_opt(benchmark, bench_config):
    rows = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    summary = summarize_fig11(rows)
    benchmark.extra_info["table"] = format_table(rows)
    benchmark.extra_info["summary"] = {k: round(v, 2) for k, v in summary.items()}
    # Ordering of the averages must match the paper: OPT > GRASP > RRIP, with
    # GRASP capturing a substantial fraction of OPT's headroom (57.5% there).
    assert summary["OPT"] >= summary["GRASP"]
    assert summary["GRASP"] > summary["RRIP"]
    assert summary["grasp_vs_opt_pct"] > 30.0
