"""Benchmark E8 — Fig. 9: robustness on low-/no-skew (adversarial) datasets."""

from repro.experiments.figures import fig9_low_skew
from repro.experiments.reporting import format_table, pivot_by_scheme
from repro.experiments.runner import geometric_mean_speedup


def bench(config):
    return fig9_low_skew(config)


def test_fig9_low_skew(benchmark, bench_config):
    points = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(pivot_by_scheme(points, "speedup_pct"))
    grasp = [p for p in points if p.scheme == "GRASP"]
    pin100 = [p for p in points if p.scheme == "PIN-100"]
    benchmark.extra_info["grasp_worst_pct"] = round(min(p.speedup_pct for p in grasp), 2)
    benchmark.extra_info["pin100_worst_pct"] = round(min(p.speedup_pct for p in pin100), 2)
    benchmark.extra_info["grasp_geomean_pct"] = round(geometric_mean_speedup(grasp), 2)
    # Robustness: GRASP must not cause a meaningful slowdown on adversarial
    # low-/no-skew inputs (the paper's max slowdown is 0.1%).  The PIN-vs-GRASP
    # gap only emerges at full scale, so it is recorded but not asserted here.
    assert min(p.speedup_pct for p in grasp) > -3.0
    assert geometric_mean_speedup(grasp) > -1.0
