"""Benchmark E7 — Fig. 8: XMem-style pinning (PIN-25..PIN-100) vs GRASP on high-skew datasets."""

from repro.experiments.figures import fig8_pinning
from repro.experiments.reporting import format_table, pivot_by_scheme
from repro.experiments.runner import geometric_mean_speedup


def bench(config):
    return fig8_pinning(config)


def test_fig8_pinning(benchmark, bench_config):
    points = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(pivot_by_scheme(points, "speedup_pct"))
    means = {
        scheme: geometric_mean_speedup([p for p in points if p.scheme == scheme])
        for scheme in ("PIN-25", "PIN-50", "PIN-75", "PIN-100", "GRASP")
    }
    benchmark.extra_info["geomean_speedup_pct"] = {k: round(v, 2) for k, v in means.items()}
    # GRASP provides a positive average speed-up and is competitive with the
    # best pinning configuration on high-skew inputs.
    assert means["GRASP"] > 0.0
    assert means["GRASP"] >= min(means["PIN-25"], means["PIN-50"])
