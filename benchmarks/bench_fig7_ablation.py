"""Benchmark E6 — Fig. 7: contribution of each GRASP feature (hints, insertion, hit-promotion)."""

from repro.experiments.figures import fig7_ablation
from repro.experiments.reporting import format_table, pivot_by_scheme
from repro.experiments.runner import geometric_mean_speedup


def bench(config):
    return fig7_ablation(config)


def test_fig7_ablation(benchmark, bench_config):
    points = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(pivot_by_scheme(points, "speedup_pct"))
    means = {
        scheme: geometric_mean_speedup([p for p in points if p.scheme == scheme])
        for scheme in ("RRIP+Hints", "GRASP (Insertion-Only)", "GRASP")
    }
    benchmark.extra_info["geomean_speedup_pct"] = {k: round(v, 2) for k, v in means.items()}
    # Every variant improves on the RRIP baseline, and the full design is at
    # least as good as hints alone (the paper reports 3.3% / 5.0% / 5.2%).
    assert means["RRIP+Hints"] > 0.0
    assert means["GRASP (Insertion-Only)"] > 0.0
    assert means["GRASP"] > 0.0
    assert means["GRASP"] >= means["RRIP+Hints"] - 1.0
