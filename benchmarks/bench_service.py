"""Benchmark F5 — sweep service: scheduling identity and dedup gates.

The distributed sweep scheduler must be invisible in the numbers and free on
warm stores.  This benchmark gates both contracts at benchmark scale:

1. **Identity** — ``run_sweep`` over the process-pool backend produces
   DataPoints bit-identical (hits/misses/evictions; cycles to float
   precision) to the serial runner's, whatever order the workers picked.
2. **Dedup** — a second client sweeping the same spec against the same store
   executes zero tasks: every task is a content-addressed cache hit.

The timed section is the cold scheduled sweep; the warm re-sweep's elapsed
time is recorded in ``extra_info`` alongside the task/steal counters.
"""

import pytest

from repro.experiments import (
    clear_caches,
    compare_policies,
    run_sweep,
    set_disk_memo,
    SweepSpec,
)

APPS = ("PR",)
DATASETS = ("lj", "pl")
SCHEMES = ("LRU", "RRIP", "GRASP")

#: 2 workload + 2 filter + 6 replay tasks for the spec above.
EXPECTED_TASKS = 10


def _points_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert (a.app_name, a.dataset_name, a.scheme) == (b.app_name, b.dataset_name, b.scheme)
        assert a.stats.hits == b.stats.hits
        assert a.stats.misses == b.stats.misses
        assert a.stats.evictions == b.stats.evictions
        assert a.cycles == pytest.approx(b.cycles)


def test_sweep_identity_and_dedup(benchmark, bench_config, tmp_path):
    spec = SweepSpec(apps=APPS, datasets=DATASETS, schemes=SCHEMES)
    serial = compare_policies(APPS, DATASETS, SCHEMES, config=bench_config)
    clear_caches()
    set_disk_memo(None)

    def cold_sweep():
        return run_sweep(
            spec,
            config=bench_config,
            cache_dir=tmp_path,
            workers=4,
            worker_backend="process",
        )

    try:
        cold = benchmark.pedantic(cold_sweep, iterations=1, rounds=1)

        _points_equal(serial, cold.points)
        assert cold.report.executed == EXPECTED_TASKS
        assert not cold.report.failed

        # Second client, fresh process state, same store: everything dedups.
        clear_caches()
        set_disk_memo(None)
        warm = run_sweep(
            spec, config=bench_config, cache_dir=tmp_path, workers=4,
            worker_backend="process",
        )
        _points_equal(serial, warm.points)
        assert warm.report.executed == 0
        assert warm.report.cached == EXPECTED_TASKS

        benchmark.extra_info["tasks"] = EXPECTED_TASKS
        benchmark.extra_info["cold_steals"] = cold.report.steals
        benchmark.extra_info["cold_retries"] = cold.report.retries
        benchmark.extra_info["warm_elapsed_s"] = round(warm.report.elapsed, 4)
    finally:
        clear_caches()
        set_disk_memo(None)
