"""Benchmark E9 — Fig. 10a: net speed-up of vertex-reordering techniques (cost included)."""

from repro.experiments.figures import fig10a_reordering_speedup
from repro.experiments.reporting import format_table


def bench(config):
    # Gorder on the full benchmark datasets is expensive; two datasets and the
    # two iterative applications are enough to show the amortisation story.
    reduced = config.with_overrides(high_skew_datasets=config.high_skew_datasets[:2])
    return fig10a_reordering_speedup(reduced)


def test_fig10a_reordering(benchmark, bench_config):
    rows = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(rows)
    for row in rows:
        # Gorder's reordering cost dominates: always a large net slowdown,
        # and always worse than the skew-aware DBG.
        assert row["gorder"] < 0.0
        assert row["gorder"] < row["dbg"]
