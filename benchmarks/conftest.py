"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (``ExperimentConfig.benchmark()``); set the ``REPRO_SCALE`` environment
variable to run them at other scales (1.0 reproduces the EXPERIMENTS.md
configuration).  Results are attached to each benchmark's ``extra_info`` so
``pytest benchmarks/ --benchmark-only`` both times the experiment and records
the series it produced.
"""

import pytest

from repro.experiments import ExperimentConfig, clear_caches


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Reduced-scale configuration shared by all benchmarks."""
    return ExperimentConfig.benchmark()


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Clear memoised workloads so each benchmark measures its own work."""
    clear_caches()
    yield
