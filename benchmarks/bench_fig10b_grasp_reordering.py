"""Benchmark E10 — Fig. 10b: GRASP's speed-up over RRIP on top of each reordering technique."""

import numpy as np

from repro.experiments.figures import fig10b_grasp_over_reorderings
from repro.experiments.reporting import format_table

TECHNIQUES = ("sort", "hubsort", "dbg")


def bench(config):
    reduced = config.with_overrides(high_skew_datasets=config.high_skew_datasets[:2])
    return fig10b_grasp_over_reorderings(reduced, techniques=TECHNIQUES)


def test_fig10b_grasp_over_reorderings(benchmark, bench_config):
    rows = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(rows)
    means = {t: float(np.mean([row[t] for row in rows])) for t in TECHNIQUES}
    benchmark.extra_info["mean_speedup_pct"] = {k: round(v, 2) for k, v in means.items()}
    # GRASP complements every skew-aware reordering technique (positive
    # average speed-up on top of each of them).
    for technique in TECHNIQUES:
        assert means[technique] > 0.0
