"""Benchmark E2 — Fig. 2: LLC access/miss breakdown inside vs outside the Property Array."""

from repro.experiments.figures import fig2_llc_breakdown
from repro.experiments.reporting import format_table


def bench(config):
    return fig2_llc_breakdown(config, datasets=("pl",), apps=config.apps)


def test_fig2_llc_breakdown(benchmark, bench_config):
    rows = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(rows)
    # The Property Array dominates LLC accesses (78-94% in the paper).
    for row in rows:
        assert row["property_access_pct"] > 55.0
        assert row["property_miss_pct"] > 0.0
