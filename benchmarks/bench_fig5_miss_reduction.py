"""Benchmark E4 — Fig. 5: LLC miss reduction over RRIP for prior schemes and GRASP."""

from repro.experiments.figures import fig5_miss_reduction
from repro.experiments.reporting import format_table, pivot_by_scheme
from repro.experiments.runner import average_miss_reduction


def bench(config):
    return fig5_miss_reduction(config)


def test_fig5_miss_reduction(benchmark, bench_config):
    points = benchmark.pedantic(bench, args=(bench_config,), iterations=1, rounds=1)
    benchmark.extra_info["table"] = format_table(pivot_by_scheme(points, "miss_reduction_pct"))
    grasp = [p for p in points if p.scheme == "GRASP"]
    ship = [p for p in points if p.scheme == "SHiP-MEM"]
    # GRASP reduces misses on average; SHiP-MEM does not (its region-based
    # prediction is defeated by the irregular accesses).
    assert average_miss_reduction(grasp) > 0.0
    assert average_miss_reduction(grasp) > average_miss_reduction(ship)
    # GRASP never increases misses dramatically on any datapoint.
    assert min(p.miss_reduction_pct for p in grasp) > -1.0
