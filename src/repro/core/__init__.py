"""GRASP — GRAph-SPecialized LLC management (the paper's contribution).

The three hardware components of GRASP (Sec. III) map onto three modules:

* :mod:`repro.core.abr` — the software–hardware interface: one pair of
  Address Bound Registers per Property Array, populated by the graph
  framework at start-up.
* :mod:`repro.core.classification` — the comparison logic that labels each
  LLC access High-Reuse, Moderate-Reuse, Low-Reuse or Default and produces
  the 2-bit reuse hint.
* :mod:`repro.core.grasp` — the specialized insertion and hit-promotion
  policies layered on RRIP (Table II), plus the ablation variants of Fig. 7
  in :mod:`repro.core.variants`.

Importing this package registers the GRASP family in the replacement-policy
registry (``"grasp"``, ``"rrip+hints"``, ``"grasp-insertion"``).
"""

from repro.cache.hints import HINT_DEFAULT, HINT_HIGH, HINT_LOW, HINT_MODERATE, ReuseHint
from repro.core.abr import AddressBoundRegister, AddressBoundRegisterFile
from repro.core.classification import GraspClassifier
from repro.core.grasp import GraspPolicy
from repro.core.variants import GraspInsertionOnlyPolicy, RRIPWithHintsPolicy

__all__ = [
    "AddressBoundRegister",
    "AddressBoundRegisterFile",
    "GraspClassifier",
    "GraspInsertionOnlyPolicy",
    "GraspPolicy",
    "HINT_DEFAULT",
    "HINT_HIGH",
    "HINT_LOW",
    "HINT_MODERATE",
    "ReuseHint",
    "RRIPWithHintsPolicy",
]
