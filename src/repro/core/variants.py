"""GRASP ablation variants used in Fig. 7 of the paper.

Fig. 7 decomposes GRASP's benefit into three cumulative features:

* ``RRIP+Hints`` (:class:`RRIPWithHintsPolicy`) — RRIP whose two insertion
  positions are steered by the software hint instead of the DRRIP duel:
  High-Reuse blocks insert near the LRU position, everything else inserts at
  LRU.  Hit promotion is unchanged.
* ``GRASP (Insertion-Only)`` (:class:`GraspInsertionOnlyPolicy`) — the full
  GRASP insertion policy (High-Reuse blocks go straight to MRU) with the
  baseline hit-promotion policy.
* ``GRASP (Hit-Promotion)`` — the complete design; this is simply
  :class:`repro.core.grasp.GraspPolicy`.
"""

from __future__ import annotations

from repro.cache.hints import HINT_HIGH, HINT_LOW, HINT_MODERATE
from repro.cache.policies.base import register_policy
from repro.cache.policies.rrip import DRRIPPolicy
from repro.core.grasp import GraspPolicy


@register_policy("rrip+hints")
class RRIPWithHintsPolicy(DRRIPPolicy):
    """RRIP with software-hint-guided insertion positions.

    Identical to the RRIP baseline except that the choice between the two
    RRIP insertion positions is made by the reuse hint rather than
    probabilistically: High-Reuse accesses insert near LRU (``max-1``) and all
    other accesses insert at LRU (``max``).
    """

    name = "rrip+hints"

    def insertion_rrpv(self, set_index: int, block_address: int, pc: int, hint: int) -> int:
        if hint == HINT_HIGH:
            return self.max_rrpv - 1
        if hint in (HINT_MODERATE, HINT_LOW):
            return self.max_rrpv
        return super().insertion_rrpv(set_index, block_address, pc, hint)


@register_policy("grasp-insertion")
class GraspInsertionOnlyPolicy(GraspPolicy):
    """GRASP's insertion policy with the baseline RRIP hit promotion."""

    name = "grasp-insertion"

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        # Baseline RRIP hit priority for every access, regardless of hint.
        DRRIPPolicy.on_hit(self, set_index, way, block_address, pc, hint)
