"""Address Bound Registers (ABRs) — GRASP's software–hardware interface.

Sec. III-A of the paper: the interface consists of one pair of registers per
Property Array holding the array's start and end *virtual* addresses.  They
are part of the application context, populated by the graph framework during
initialization; when no ABR is set (every non-graph application), the
domain-specialized cache management is disabled and all accesses carry the
Default hint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple


@dataclass(frozen=True)
class AddressBoundRegister:
    """One ABR pair: the ``[start, end)`` virtual-address bounds of a Property Array."""

    start: int
    end: int
    label: str = "property"

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < 0:
            raise ValueError("ABR bounds must be non-negative addresses")
        if self.end <= self.start:
            raise ValueError("ABR end must be greater than start")

    @property
    def size_bytes(self) -> int:
        """Extent of the registered array in bytes."""
        return self.end - self.start

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside the registered array."""
        return self.start <= address < self.end


class AddressBoundRegisterFile:
    """The set of ABR pairs exposed to software.

    Real hardware would provision a small fixed number of pairs; the paper
    needed at most two per application after the Property-Array-merging
    optimization (Sec. IV-A).  ``capacity`` models that limit.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("ABR file needs at least one register pair")
        self.capacity = capacity
        self._registers: List[AddressBoundRegister] = []

    def __len__(self) -> int:
        return len(self._registers)

    def __iter__(self) -> Iterator[AddressBoundRegister]:
        return iter(self._registers)

    @property
    def is_configured(self) -> bool:
        """True when software has populated at least one ABR pair."""
        return bool(self._registers)

    def configure(self, start: int, end: int, label: str = "property") -> AddressBoundRegister:
        """Populate the next free ABR pair with a Property Array's bounds."""
        if len(self._registers) >= self.capacity:
            raise RuntimeError(
                f"all {self.capacity} ABR pairs are in use; merge Property Arrays "
                "or increase the register file capacity"
            )
        register = AddressBoundRegister(start, end, label)
        for existing in self._registers:
            if register.start < existing.end and existing.start < register.end:
                raise ValueError(
                    f"ABR [{start:#x}, {end:#x}) overlaps existing register "
                    f"[{existing.start:#x}, {existing.end:#x})"
                )
        self._registers.append(register)
        return register

    def configure_many(self, bounds: Iterable[Tuple[int, int]]) -> None:
        """Populate several ABR pairs at once."""
        for start, end in bounds:
            self.configure(start, end)

    def clear(self) -> None:
        """Reset to the unconfigured state (context switch to a non-graph app)."""
        self._registers.clear()

    def registers(self) -> List[AddressBoundRegister]:
        """Snapshot of the configured registers."""
        return list(self._registers)
