"""GRASP classification logic (Sec. III-B of the paper).

Given the Address Bound Registers and the LLC capacity, the classifier labels
two LLC-sized sub-regions inside every registered Property Array:

* the **High Reuse Region** — the LLC-sized region at the start of the array
  (after skew-aware reordering it holds the hottest vertices);
* the **Moderate Reuse Region** — the next LLC-sized region;

and maps every LLC access to a 2-bit reuse hint:

* inside a High Reuse Region      → ``HIGH_REUSE``
* inside a Moderate Reuse Region  → ``MODERATE_REUSE``
* anywhere else (graph app)       → ``LOW_REUSE``
* ABRs not configured             → ``DEFAULT``

When an application registers more than one Property Array, the LLC capacity
is divided equally between them before the regions are sized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cache.hints import HINT_DEFAULT, HINT_HIGH, HINT_LOW, HINT_MODERATE
from repro.core.abr import AddressBoundRegisterFile


@dataclass(frozen=True)
class _Region:
    """One classified sub-region of a Property Array."""

    start: int
    end: int
    hint: int


class GraspClassifier:
    """Comparison-based address classifier producing GRASP reuse hints.

    Parameters
    ----------
    abr_file:
        The configured Address Bound Registers.
    llc_size_bytes:
        Capacity of the LLC; determines the extent of the High and Moderate
        Reuse Regions.
    """

    def __init__(self, abr_file: AddressBoundRegisterFile, llc_size_bytes: int) -> None:
        if llc_size_bytes <= 0:
            raise ValueError("llc_size_bytes must be positive")
        self.abr_file = abr_file
        self.llc_size_bytes = llc_size_bytes
        self._regions: List[_Region] = []
        self._rebuild()

    def _rebuild(self) -> None:
        self._regions = []
        registers = self.abr_file.registers()
        if not registers:
            return
        # Divide the LLC capacity between the registered Property Arrays.
        share = max(1, self.llc_size_bytes // len(registers))
        for register in registers:
            high_end = min(register.end, register.start + share)
            moderate_end = min(register.end, high_end + share)
            self._regions.append(_Region(register.start, high_end, HINT_HIGH))
            if moderate_end > high_end:
                self._regions.append(_Region(high_end, moderate_end, HINT_MODERATE))

    @property
    def is_active(self) -> bool:
        """Whether domain-specialized classification is enabled."""
        return self.abr_file.is_configured

    def high_reuse_bytes(self) -> int:
        """Total bytes currently labelled High-Reuse (for tests and reports)."""
        return sum(r.end - r.start for r in self._regions if r.hint == HINT_HIGH)

    def regions(self) -> tuple:
        """Current classification regions as ``(start, end, hint)`` triples.

        Ordered as consulted by :meth:`classify` (first match wins); native
        kernels replicate the lookup from this table.
        """
        return tuple((r.start, r.end, r.hint) for r in self._regions)

    def classify(self, address: int) -> int:
        """Classify a single byte address into a reuse hint."""
        if not self._regions:
            return HINT_DEFAULT
        for region in self._regions:
            if region.start <= address < region.end:
                return region.hint
        return HINT_LOW

    def classify_array(self, addresses: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorised classification of many addresses at once.

        The experiment runner uses this to tag a whole LLC trace in one pass
        instead of calling :meth:`classify` per access.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if not self._regions:
            return np.full(addresses.shape, HINT_DEFAULT, dtype=np.int8)
        hints = np.full(addresses.shape, HINT_LOW, dtype=np.int8)
        for region in self._regions:
            mask = (addresses >= region.start) & (addresses < region.end)
            hints[mask] = region.hint
        return hints
