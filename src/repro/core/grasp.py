"""GRASP's specialized cache policies (Sec. III-C, Table II of the paper).

GRASP augments the insertion and hit-promotion policies of a base RRIP scheme
and leaves the eviction (victim-selection) policy untouched:

===============  ==========================  ===========================
Reuse hint       Insertion policy            Hit-promotion policy
===============  ==========================  ===========================
High-Reuse       RRPV = 0 (MRU)              RRPV = 0
Moderate-Reuse   RRPV = 6 (near LRU)         RRPV -= 1 (towards MRU)
Low-Reuse        RRPV = 7 (LRU)              RRPV -= 1
Default          RRPV = 6 or 7 (DRRIP duel)  RRPV = 0
===============  ==========================  ===========================

Because the eviction policy is unchanged, blocks do not need to store the
reuse hint: a High-Reuse block that goes unreferenced simply ages out like
any other block, which is what keeps GRASP flexible compared with pinning.
"""

from __future__ import annotations

from typing import List

from repro.cache.hints import HINT_DEFAULT, HINT_HIGH, HINT_LOW, HINT_MODERATE
from repro.cache.policies.base import register_policy
from repro.cache.policies.rrip import DECREMENT_PROMOTION, DYNAMIC_INSERTION, DRRIPPolicy


@register_policy("grasp")
class GraspPolicy(DRRIPPolicy):
    """Full GRASP: hint-guided insertion *and* hit promotion over DRRIP."""

    name = "grasp"

    #: Near-LRU insertion position for Moderate-Reuse blocks (RRPV = 6 when
    #: using 3-bit counters, i.e. ``max_rrpv - 1``).
    def _moderate_rrpv(self) -> int:
        return self.max_rrpv - 1

    def insertion_rrpv(self, set_index: int, block_address: int, pc: int, hint: int) -> int:
        if hint == HINT_HIGH:
            return 0
        if hint == HINT_MODERATE:
            return self._moderate_rrpv()
        if hint == HINT_LOW:
            return self.max_rrpv
        # Default: fall back to the DRRIP set-dueling insertion.
        return super().insertion_rrpv(set_index, block_address, pc, hint)

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        if hint == HINT_HIGH:
            self.set_rrpv(set_index, way, 0)
            return
        if hint in (HINT_MODERATE, HINT_LOW):
            # Gradual promotion: one step towards MRU per hit.
            current = self.rrpv_of(set_index, way)
            if current > 0:
                self.set_rrpv(set_index, way, current - 1)
            return
        # Default accesses keep the baseline hit-priority promotion.
        super().on_hit(set_index, way, block_address, pc, hint)

    # choose_victim is intentionally inherited unchanged from DRRIP: GRASP
    # does not modify the eviction policy (Sec. III-C, "Eviction Policy").

    # -- array-form policy description (consumed by repro.fastsim.rrip) --------

    def hint_insertion_table(self) -> List[int]:
        # Table II of the paper, hint-indexed.  Only Default accesses reach
        # the DRRIP duel (and only they touch PSEL / the bimodal counter).
        table = [0] * 4
        table[HINT_DEFAULT] = DYNAMIC_INSERTION
        table[HINT_HIGH] = 0
        table[HINT_MODERATE] = self._moderate_rrpv()
        table[HINT_LOW] = self.max_rrpv
        return table

    def hint_promotion_table(self) -> List[int]:
        table = [0] * 4
        table[HINT_MODERATE] = DECREMENT_PROMOTION
        table[HINT_LOW] = DECREMENT_PROMOTION
        return table
