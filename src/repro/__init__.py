"""repro — a reproduction of GRASP (HPCA 2020).

GRASP is domain-specialized last-level-cache management for graph analytics
on power-law ("natural") graphs.  This library reimplements the paper's
contribution and every substrate it depends on:

* ``repro.graph`` — CSR graphs, synthetic dataset generators, skew analysis.
* ``repro.reorder`` — skew-aware vertex reordering (Sort, HubSort, DBG) and
  a Gorder approximation.
* ``repro.analytics`` — a Ligra-style vertex-centric framework with the five
  applications the paper evaluates (PR, PRD, BC, SSSP, Radii) plus extras.
* ``repro.cache`` — a trace-driven set-associative cache simulator with the
  full set of replacement policies the paper compares against (LRU, DRRIP,
  SHiP-MEM, Hawkeye, Leeway, XMem pinning, Belady's OPT).
* ``repro.core`` — GRASP itself: the Address Bound Register interface, the
  reuse-region classifier and the specialized insertion / hit-promotion
  policies, plus the ablation variants from Fig. 7.
* ``repro.trace`` — memory-layout modelling and LLC access-trace generation.
* ``repro.perf`` — analytical timing and reordering-cost models.
* ``repro.experiments`` — drivers that regenerate every table and figure in
  the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
