"""Edge-map helpers: vectorised pull/push traversal and direction switching.

Ligra's ``edgeMap`` applies an update function over the edges incident to a
frontier, choosing between a *sparse* (push) implementation that scans the
out-edges of active vertices and a *dense* (pull) implementation that scans
the in-edges of all destinations.  The applications in this package use the
same structure, but the per-edge work is expressed with NumPy scatter/gather
primitives instead of per-edge callbacks so that full-size runs stay fast in
pure Python.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.analytics.base import PULL, PUSH
from repro.analytics.frontier import VertexSubset
from repro.graph.csr import CSRGraph, VERTEX_DTYPE

#: Ligra switches from push to pull when the frontier (plus its out-edges)
#: exceeds |E| / DIRECTION_THRESHOLD_DENOMINATOR.
DIRECTION_THRESHOLD_DENOMINATOR = 20


def gather_edges(
    graph: CSRGraph,
    vertices: np.ndarray,
    direction: str,
    with_weights: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Return the edges incident to ``vertices`` in the given direction.

    For ``direction == "push"`` the out-edges of the vertices are returned as
    ``(sources, targets, weights)``; for ``"pull"`` the in-edges are returned
    (``sources`` are the neighbours, ``targets`` the given vertices).  The
    gather is fully vectorised (no per-vertex Python loop).
    """
    vertices = np.asarray(vertices, dtype=VERTEX_DTYPE)
    if direction == PUSH:
        index, adjacency, weights = graph.out_index, graph.out_targets, graph.out_weights
    elif direction == PULL:
        index, adjacency, weights = graph.in_index, graph.in_sources, graph.in_weights
    else:
        raise ValueError(f"unknown direction {direction!r}; use 'push' or 'pull'")

    if vertices.size == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return empty, empty, (np.empty(0) if with_weights else None)

    starts = index[vertices]
    counts = index[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return empty, empty, (np.empty(0) if with_weights else None)

    # Ragged gather: edge_positions[i] enumerates every incident edge index.
    offsets = np.concatenate(([0], np.cumsum(counts)))
    edge_positions = np.repeat(starts - offsets[:-1], counts) + np.arange(total)
    owners = np.repeat(vertices, counts)
    neighbours = adjacency[edge_positions]

    edge_weights = None
    if with_weights:
        if weights is None:
            raise ValueError("graph has no edge weights")
        edge_weights = weights[edge_positions]

    if direction == PUSH:
        return owners, neighbours, edge_weights
    return neighbours, owners, edge_weights


def frontier_out_edges(graph: CSRGraph, frontier: VertexSubset) -> int:
    """Total number of out-edges of the frontier (Ligra's direction metric)."""
    members = frontier.to_sparse()
    if members.size == 0:
        return 0
    return int((graph.out_index[members + 1] - graph.out_index[members]).sum())


def select_direction(graph: CSRGraph, frontier: VertexSubset) -> str:
    """Ligra's direction-switching heuristic.

    Push (sparse) when the frontier and its out-edges are small; pull (dense)
    when they exceed ``|E| / 20``.
    """
    threshold = max(1, graph.num_edges // DIRECTION_THRESHOLD_DENOMINATOR)
    work = frontier.size + frontier_out_edges(graph, frontier)
    return PULL if work > threshold else PUSH


def edge_map_pull_sum(
    graph: CSRGraph,
    contributions: np.ndarray,
    active_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Dense pull-mode gather: ``result[v] = Σ contributions[u]`` over in-edges ``u→v``.

    ``active_mask`` restricts the sum to contributions from active sources
    (inactive sources contribute zero), which is how PageRank-Delta's pull
    iterations are expressed.
    """
    per_edge = contributions[graph.in_sources]
    if active_mask is not None:
        per_edge = per_edge * active_mask[graph.in_sources]
    destinations = np.repeat(
        np.arange(graph.num_vertices, dtype=VERTEX_DTYPE), graph.in_degrees
    )
    return np.bincount(destinations, weights=per_edge, minlength=graph.num_vertices)


def edge_map_pull_any(
    graph: CSRGraph,
    in_frontier: np.ndarray,
    candidates: np.ndarray,
) -> np.ndarray:
    """Dense pull-mode existence check.

    For every candidate vertex, returns True when at least one in-neighbour is
    in the frontier (the BFS/BC bottom-up step).
    """
    sources, targets, _ = gather_edges(graph, np.flatnonzero(candidates), PULL)
    reachable = np.zeros(graph.num_vertices, dtype=bool)
    if targets.size == 0:
        return reachable
    hit = in_frontier[sources]
    reachable[targets[hit]] = True
    return reachable
