"""Vertex subsets (frontiers) in sparse or dense representation.

Ligra's central abstraction is the *vertexSubset*: the set of active vertices
in an iteration, stored sparsely (an array of vertex IDs) when small and
densely (a boolean per vertex) when large.  The representation also drives
the push/pull direction decision.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.graph.csr import VERTEX_DTYPE


class VertexSubset:
    """A set of active vertices over a universe of ``num_vertices``."""

    def __init__(self, num_vertices: int, members: np.ndarray | Iterable[int] | None = None):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        if members is None:
            self._sparse = np.empty(0, dtype=VERTEX_DTYPE)
        else:
            members = np.asarray(list(members) if not isinstance(members, np.ndarray) else members)
            members = np.unique(members.astype(VERTEX_DTYPE))
            if members.size and (members[0] < 0 or members[-1] >= num_vertices):
                raise ValueError("vertex IDs out of range for this subset")
            self._sparse = members

    # -- constructors ----------------------------------------------------------

    @classmethod
    def empty(cls, num_vertices: int) -> "VertexSubset":
        """An empty frontier."""
        return cls(num_vertices)

    @classmethod
    def single(cls, num_vertices: int, vertex: int) -> "VertexSubset":
        """A frontier containing one root vertex."""
        return cls(num_vertices, np.array([vertex]))

    @classmethod
    def full(cls, num_vertices: int) -> "VertexSubset":
        """A frontier containing every vertex (e.g. PageRank iterations)."""
        return cls(num_vertices, np.arange(num_vertices, dtype=VERTEX_DTYPE))

    @classmethod
    def from_dense(cls, mask: np.ndarray) -> "VertexSubset":
        """Build a frontier from a boolean membership mask."""
        mask = np.asarray(mask, dtype=bool)
        return cls(mask.shape[0], np.flatnonzero(mask))

    # -- views ----------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of active vertices."""
        return int(self._sparse.shape[0])

    @property
    def is_empty(self) -> bool:
        """Whether the frontier has no active vertices."""
        return self.size == 0

    def to_sparse(self) -> np.ndarray:
        """Sorted array of active vertex IDs."""
        return self._sparse.copy()

    def to_dense(self) -> np.ndarray:
        """Boolean membership mask of length ``num_vertices``."""
        mask = np.zeros(self.num_vertices, dtype=bool)
        mask[self._sparse] = True
        return mask

    def __contains__(self, vertex: int) -> bool:
        index = np.searchsorted(self._sparse, vertex)
        return bool(index < self.size and self._sparse[index] == vertex)

    def __iter__(self) -> Iterator[int]:
        return iter(self._sparse.tolist())

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexSubset):
            return NotImplemented
        return self.num_vertices == other.num_vertices and np.array_equal(
            self._sparse, other._sparse
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VertexSubset({self.size}/{self.num_vertices})"
