"""Common types for graph applications.

Every application records, per iteration, which vertices were active and
whether the iteration ran pull- or push-based.  The experiment runner uses
those records to regenerate the LLC access stream of the paper's region of
interest (the iteration with the most active vertices — Sec. IV-C) without
re-running the algorithm inside the cache simulator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph.csr import CSRGraph

#: Traversal directions.
PULL = "pull"
PUSH = "push"


@dataclass(frozen=True)
class PropertySpec:
    """One per-vertex property array used by an application.

    Attributes
    ----------
    name:
        Human-readable array name (``"rank"``, ``"distance"``, ...).
    element_bytes:
        Size of one vertex's entry in bytes.
    """

    name: str
    element_bytes: int

    def __post_init__(self) -> None:
        if self.element_bytes <= 0:
            raise ValueError("element_bytes must be positive")


@dataclass(frozen=True)
class AccessProfile:
    """The memory-access signature of an application's inner loop.

    ``edge_properties`` are the Property Arrays indexed by the *neighbour*
    vertex on every edge traversal (the irregular accesses the paper studies);
    ``vertex_properties`` are arrays accessed once per active vertex.  When
    ``merged`` is True the edge properties have been merged into a single
    array of wider elements — the software optimization of Sec. IV-A
    (Table IV).
    """

    edge_properties: tuple[PropertySpec, ...]
    vertex_properties: tuple[PropertySpec, ...] = ()
    merged: bool = False

    def merge(self) -> "AccessProfile":
        """Return the merged-array variant of this profile."""
        if self.merged or len(self.edge_properties) <= 1:
            return AccessProfile(self.edge_properties, self.vertex_properties, merged=True)
        combined = PropertySpec(
            name="+".join(spec.name for spec in self.edge_properties),
            element_bytes=sum(spec.element_bytes for spec in self.edge_properties),
        )
        return AccessProfile((combined,), self.vertex_properties, merged=True)

    @property
    def num_property_arrays(self) -> int:
        """Number of distinct Property Arrays touched per edge."""
        return len(self.edge_properties)


@dataclass
class IterationRecord:
    """What happened in one iteration of an application."""

    index: int
    direction: str
    frontier: np.ndarray
    edges_traversed: int = 0

    @property
    def active_vertices(self) -> int:
        """Number of active vertices in this iteration."""
        return int(self.frontier.shape[0])


@dataclass
class AppResult:
    """Output of one application run."""

    name: str
    values: Dict[str, np.ndarray] = field(default_factory=dict)
    iterations: List[IterationRecord] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        """Number of iterations executed."""
        return len(self.iterations)

    def busiest_iteration(self) -> Optional[IterationRecord]:
        """The iteration with the most active vertices (the paper's ROI)."""
        if not self.iterations:
            return None
        best = max(self.iterations, key=lambda record: record.active_vertices)
        if best.active_vertices == 0:
            return None
        return best

    def iterations_in_direction(self, direction: str) -> List[IterationRecord]:
        """All iterations that ran in the given traversal direction."""
        return [record for record in self.iterations if record.direction == direction]


class GraphApplication(abc.ABC):
    """Base class for graph applications.

    Subclasses implement :meth:`run` and describe their memory behaviour via
    :meth:`access_profile`.  ``merged_properties`` selects the Property-Array
    merging optimization of Sec. IV-A; it changes the access profile (and thus
    the generated trace) but not the computed results.
    """

    name: str = "app"
    #: Direction the application spends most of its time in (Sec. IV-C): the
    #: ROI simulated by the paper is a pull iteration for every application
    #: except SSSP, which is push-dominant.
    dominant_direction: str = PULL

    def __init__(self, merged_properties: bool = True) -> None:
        self.merged_properties = merged_properties

    @abc.abstractmethod
    def run(self, graph: CSRGraph, **params) -> AppResult:
        """Execute the application and return results plus iteration records."""

    @abc.abstractmethod
    def base_access_profile(self) -> AccessProfile:
        """The unmerged memory-access signature of the application."""

    def access_profile(self) -> AccessProfile:
        """The access profile honouring the ``merged_properties`` setting."""
        profile = self.base_access_profile()
        return profile.merge() if self.merged_properties else profile

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(merged_properties={self.merged_properties})"
