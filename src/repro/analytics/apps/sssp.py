"""Single-Source Shortest Paths (SSSP) using frontier-based Bellman-Ford.

As in Ligra, only vertices whose distance improved in the previous round
relax their out-edges in the next one; the paper notes SSSP is push-based
throughout its execution, so its simulated region of interest is a push
iteration (Sec. IV-C).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.base import PUSH, AccessProfile, AppResult, GraphApplication, IterationRecord, PropertySpec
from repro.analytics.framework import gather_edges
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


class SingleSourceShortestPaths(GraphApplication):
    """Bellman-Ford SSSP over non-negative edge weights."""

    name = "SSSP"
    dominant_direction = PUSH

    def base_access_profile(self) -> AccessProfile:
        # Each relaxation reads and writes the target's distance and checks a
        # "changed this round" flag; the merging opportunity is small
        # (Table IV reports 3-8%).
        return AccessProfile(
            edge_properties=(
                PropertySpec("distance", 8),
                PropertySpec("changed_flag", 8),
            ),
            vertex_properties=(),
        )

    def run(self, graph: CSRGraph, root: int = 0, **params) -> AppResult:
        """Compute shortest distances from ``root``."""
        n = graph.num_vertices
        result = AppResult(name=self.name)
        if n == 0:
            result.values["distance"] = np.empty(0)
            return result
        if not 0 <= root < n:
            raise ValueError(f"root {root} out of range")
        if not graph.is_weighted:
            raise ValueError("SSSP requires a weighted graph (use with_random_weights)")

        distance = np.full(n, np.inf)
        distance[root] = 0.0
        frontier = np.array([root], dtype=VERTEX_DTYPE)
        iteration = 0
        # Bellman-Ford terminates after at most n-1 relaxation rounds.
        while frontier.size and iteration < n:
            sources, targets, weights = gather_edges(graph, frontier, PUSH, with_weights=True)
            result.iterations.append(
                IterationRecord(
                    index=iteration,
                    direction=PUSH,
                    frontier=frontier,
                    edges_traversed=int(sources.shape[0]),
                )
            )
            iteration += 1
            if sources.size == 0:
                break
            candidates = distance[sources] + weights
            previous = distance.copy()
            np.minimum.at(distance, targets, candidates)
            frontier = np.flatnonzero(distance < previous).astype(VERTEX_DTYPE)

        result.values["distance"] = distance
        return result
