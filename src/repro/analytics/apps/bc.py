"""Betweenness Centrality (BC) via Brandes' algorithm from one or more roots.

The forward phase is a level-synchronous BFS that counts shortest paths
(sigma); the backward phase accumulates dependencies level by level.  This is
the structure of Ligra's BC benchmark, which the paper runs from a handful of
root vertices per dataset.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.base import PULL, PUSH, AccessProfile, AppResult, GraphApplication, IterationRecord, PropertySpec
from repro.analytics.frontier import VertexSubset
from repro.analytics.framework import gather_edges, select_direction
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


class BetweennessCentrality(GraphApplication):
    """Single-source (or few-source) betweenness-centrality contributions."""

    name = "BC"
    dominant_direction = PULL

    def base_access_profile(self) -> AccessProfile:
        # The forward phase reads the neighbour's path count per edge; the
        # backward phase writes the per-vertex dependency.  (Table IV: no
        # Property-Array merging opportunity for BC.)
        return AccessProfile(
            edge_properties=(PropertySpec("num_paths", 8),),
            vertex_properties=(PropertySpec("dependency", 8),),
        )

    def run(self, graph: CSRGraph, root: int = 0, roots: list[int] | None = None, **params) -> AppResult:
        """Compute BC contributions from ``roots`` (default: the single ``root``)."""
        n = graph.num_vertices
        result = AppResult(name=self.name)
        centrality = np.zeros(n)
        if n == 0:
            result.values["centrality"] = centrality
            return result
        source_list = roots if roots is not None else [root]
        for source in source_list:
            if not 0 <= source < n:
                raise ValueError(f"root {source} out of range")
            centrality += self._single_source(graph, int(source), result)
        result.values["centrality"] = centrality
        return result

    def _single_source(self, graph: CSRGraph, root: int, result: AppResult) -> np.ndarray:
        n = graph.num_vertices
        distance = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n)
        distance[root] = 0
        sigma[root] = 1.0
        levels: list[np.ndarray] = [np.array([root], dtype=VERTEX_DTYPE)]
        iteration_base = len(result.iterations)

        # Forward phase: BFS levels with shortest-path counting.
        level = 0
        frontier = levels[0]
        while frontier.size:
            subset = VertexSubset(n, frontier)
            direction = select_direction(graph, subset)
            sources, targets, _ = gather_edges(graph, frontier, PUSH)
            if sources.size:
                useful = distance[targets] < 0
                additions = np.bincount(
                    targets[useful], weights=sigma[sources[useful]], minlength=n
                )
                new_vertices = np.unique(targets[useful]).astype(VERTEX_DTYPE)
                sigma += additions
            else:
                new_vertices = np.empty(0, dtype=VERTEX_DTYPE)
            result.iterations.append(
                IterationRecord(
                    index=iteration_base + level,
                    direction=direction,
                    frontier=frontier,
                    edges_traversed=int(sources.shape[0]),
                )
            )
            level += 1
            distance[new_vertices] = level
            frontier = new_vertices
            if frontier.size:
                levels.append(frontier)

        # Backward phase: dependency accumulation from the deepest level up.
        dependency = np.zeros(n)
        for depth in range(len(levels) - 1, 0, -1):
            vertices = levels[depth - 1]
            sources, targets, _ = gather_edges(graph, vertices, PUSH)
            if sources.size == 0:
                continue
            downstream = distance[targets] == distance[sources] + 1
            src, dst = sources[downstream], targets[downstream]
            safe_sigma = np.where(sigma[dst] > 0, sigma[dst], 1.0)
            contributions = (sigma[src] / safe_sigma) * (1.0 + dependency[dst])
            dependency += np.bincount(src, weights=contributions, minlength=n)
            result.iterations.append(
                IterationRecord(
                    index=len(result.iterations),
                    direction=PULL,
                    frontier=vertices,
                    edges_traversed=int(sources.shape[0]),
                )
            )
        dependency[root] = 0.0
        return dependency
