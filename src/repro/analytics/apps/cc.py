"""Connected Components via label propagation (treating edges as undirected)."""

from __future__ import annotations

import numpy as np

from repro.analytics.base import PULL, AccessProfile, AppResult, GraphApplication, IterationRecord, PropertySpec
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


class ConnectedComponents(GraphApplication):
    """Label propagation: every vertex adopts the minimum label of its neighbourhood.

    Directed edges are treated as undirected, so the result identifies the
    weakly connected components of the graph.
    """

    name = "CC"
    dominant_direction = PULL

    def base_access_profile(self) -> AccessProfile:
        return AccessProfile(
            edge_properties=(PropertySpec("label", 8),),
            vertex_properties=(PropertySpec("label_next", 8),),
        )

    def run(self, graph: CSRGraph, max_iterations: int | None = None, **params) -> AppResult:
        """Propagate labels until a fixed point (or ``max_iterations``)."""
        n = graph.num_vertices
        result = AppResult(name=self.name)
        labels = np.arange(n, dtype=np.int64)
        if n == 0:
            result.values["component"] = labels
            return result
        limit = max_iterations if max_iterations is not None else n
        all_vertices = np.arange(n, dtype=VERTEX_DTYPE)

        sources, _ = graph.edge_arrays()
        targets = graph.out_targets

        for iteration in range(limit):
            new_labels = labels.copy()
            np.minimum.at(new_labels, targets, labels[sources])
            np.minimum.at(new_labels, sources, labels[targets])
            changed = np.flatnonzero(new_labels != labels).astype(VERTEX_DTYPE)
            result.iterations.append(
                IterationRecord(
                    index=iteration,
                    direction=PULL,
                    frontier=all_vertices if iteration == 0 else changed,
                    edges_traversed=2 * graph.num_edges,
                )
            )
            labels = new_labels
            if changed.size == 0:
                break

        result.values["component"] = labels
        return result
