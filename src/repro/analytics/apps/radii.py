"""Radii Estimation: multi-source BFS with bit-parallel visited masks.

Following Magnien et al. (and Ligra's Radii benchmark), a sample of up to 64
source vertices run BFS simultaneously, one bit per source in a 64-bit mask
per vertex.  A vertex's radius estimate is the last iteration in which its
mask changed, i.e. the farthest distance to any sampled source that reaches it.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.base import PULL, AccessProfile, AppResult, GraphApplication, IterationRecord, PropertySpec
from repro.analytics.framework import gather_edges
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


class RadiiEstimation(GraphApplication):
    """Estimate per-vertex radii via simultaneous BFS from sampled sources."""

    name = "Radii"
    dominant_direction = PULL

    def __init__(self, merged_properties: bool = True, num_samples: int = 64, seed: int = 0) -> None:
        super().__init__(merged_properties)
        if not 1 <= num_samples <= 64:
            raise ValueError("num_samples must be between 1 and 64 (one bit per sample)")
        self.num_samples = num_samples
        self.seed = seed

    def base_access_profile(self) -> AccessProfile:
        # The kernel ORs the neighbour's visited mask per edge and writes the
        # vertex's radius once per change.  (Table IV: no merging opportunity.)
        return AccessProfile(
            edge_properties=(PropertySpec("visited_mask", 8),),
            vertex_properties=(PropertySpec("radius", 8),),
        )

    def run(self, graph: CSRGraph, **params) -> AppResult:
        """Estimate radii using ``num_samples`` random sources."""
        n = graph.num_vertices
        result = AppResult(name=self.name)
        if n == 0:
            result.values["radius"] = np.empty(0, dtype=np.int64)
            return result

        rng = np.random.default_rng(self.seed)
        sample_count = min(self.num_samples, n)
        sources = rng.choice(n, size=sample_count, replace=False)

        visited = np.zeros(n, dtype=np.uint64)
        visited[sources] |= np.left_shift(
            np.uint64(1), np.arange(sample_count, dtype=np.uint64)
        )
        radius = np.zeros(n, dtype=np.int64)
        radius[sources] = 0
        frontier = np.unique(sources).astype(VERTEX_DTYPE)
        iteration = 0

        while frontier.size and iteration < n:
            edge_sources, edge_targets, _ = gather_edges(graph, frontier, "push")
            result.iterations.append(
                IterationRecord(
                    index=iteration,
                    direction=PULL,
                    frontier=frontier,
                    edges_traversed=int(edge_sources.shape[0]),
                )
            )
            iteration += 1
            if edge_sources.size == 0:
                break
            before = visited.copy()
            np.bitwise_or.at(visited, edge_targets, visited[edge_sources])
            changed = np.flatnonzero(visited != before).astype(VERTEX_DTYPE)
            radius[changed] = iteration
            frontier = changed

        result.values["radius"] = radius
        result.values["visited_mask"] = visited
        return result
