"""PageRank (PR): iterative rank computation over in-edges (pull-based)."""

from __future__ import annotations

import numpy as np

from repro.analytics.base import PULL, AccessProfile, AppResult, GraphApplication, IterationRecord, PropertySpec
from repro.analytics.framework import edge_map_pull_sum
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


class PageRank(GraphApplication):
    """Power-iteration PageRank with uniform teleport and dangling-mass redistribution.

    Every iteration is a dense pull over all in-edges: the per-edge work reads
    the source vertex's current rank and out-degree, which makes the rank
    Property Array the reuse-rich structure the paper studies.
    """

    name = "PR"
    dominant_direction = PULL

    def __init__(
        self,
        merged_properties: bool = True,
        damping: float = 0.85,
        tolerance: float = 1e-9,
        max_iterations: int = 100,
    ) -> None:
        super().__init__(merged_properties)
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must lie in (0, 1)")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations

    def base_access_profile(self) -> AccessProfile:
        # Per edge the kernel reads the neighbour's rank and its out-degree
        # (for normalisation); per active vertex it writes the next rank.
        return AccessProfile(
            edge_properties=(
                PropertySpec("rank", 8),
                PropertySpec("out_degree", 8),
            ),
            vertex_properties=(PropertySpec("next_rank", 8),),
        )

    def run(self, graph: CSRGraph, **params) -> AppResult:
        """Run PageRank to convergence (or ``max_iterations``)."""
        n = graph.num_vertices
        result = AppResult(name=self.name)
        if n == 0:
            result.values["rank"] = np.empty(0)
            return result

        out_degrees = graph.out_degrees.astype(np.float64)
        safe_degrees = np.where(out_degrees > 0, out_degrees, 1.0)
        dangling = out_degrees == 0
        ranks = np.full(n, 1.0 / n)
        all_vertices = np.arange(n, dtype=VERTEX_DTYPE)

        for iteration in range(self.max_iterations):
            contributions = ranks / safe_degrees
            contributions[dangling] = 0.0
            sums = edge_map_pull_sum(graph, contributions)
            dangling_mass = ranks[dangling].sum() / n
            new_ranks = (1.0 - self.damping) / n + self.damping * (sums + dangling_mass)
            delta = np.abs(new_ranks - ranks).sum()
            ranks = new_ranks
            result.iterations.append(
                IterationRecord(
                    index=iteration,
                    direction=PULL,
                    frontier=all_vertices,
                    edges_traversed=graph.num_edges,
                )
            )
            if delta < self.tolerance * n:
                break

        result.values["rank"] = ranks
        return result
