"""PageRank-Delta (PRD): incremental PageRank over an active frontier.

Vertices stay active only while the change (delta) in their rank exceeds a
small fraction of the rank itself, so later iterations touch progressively
fewer vertices.  The paper evaluates the pull/push variant after merging the
Property Arrays (Sec. IV-A).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.base import PULL, AccessProfile, AppResult, GraphApplication, IterationRecord, PropertySpec
from repro.analytics.frontier import VertexSubset
from repro.analytics.framework import edge_map_pull_sum, select_direction
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


class PageRankDelta(GraphApplication):
    """Delta-based PageRank with Ligra-style frontier filtering."""

    name = "PRD"
    dominant_direction = PULL

    def __init__(
        self,
        merged_properties: bool = True,
        damping: float = 0.85,
        epsilon: float = 1e-2,
        min_delta: float = 1e-9,
        max_iterations: int = 100,
    ) -> None:
        super().__init__(merged_properties)
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must lie in (0, 1)")
        if epsilon <= 0 or min_delta <= 0:
            raise ValueError("epsilon and min_delta must be positive")
        self.damping = damping
        self.epsilon = epsilon
        self.min_delta = min_delta
        self.max_iterations = max_iterations

    def base_access_profile(self) -> AccessProfile:
        return AccessProfile(
            edge_properties=(
                PropertySpec("delta", 8),
                PropertySpec("out_degree", 8),
            ),
            vertex_properties=(PropertySpec("rank", 8),),
        )

    def run(self, graph: CSRGraph, **params) -> AppResult:
        """Run PageRank-Delta until the active frontier is empty."""
        n = graph.num_vertices
        result = AppResult(name=self.name)
        if n == 0:
            result.values["rank"] = np.empty(0)
            return result

        out_degrees = graph.out_degrees.astype(np.float64)
        safe_degrees = np.where(out_degrees > 0, out_degrees, 1.0)
        dangling = out_degrees == 0
        all_vertices = np.arange(n, dtype=VERTEX_DTYPE)

        # Iteration 0 is a full PageRank step; afterwards only the rank
        # *changes* (deltas) of active vertices propagate.
        ranks = np.full(n, 1.0 / n)
        contributions = ranks / safe_degrees
        contributions[dangling] = 0.0
        sums = edge_map_pull_sum(graph, contributions)
        dangling_mass = ranks[dangling].sum() / n
        new_ranks = (1.0 - self.damping) / n + self.damping * (sums + dangling_mass)
        delta = new_ranks - ranks
        ranks = new_ranks
        active_mask = np.abs(delta) > self.epsilon * np.maximum(ranks, self.min_delta)
        result.iterations.append(
            IterationRecord(index=0, direction=PULL, frontier=all_vertices, edges_traversed=graph.num_edges)
        )

        for iteration in range(1, self.max_iterations):
            frontier = np.flatnonzero(active_mask).astype(VERTEX_DTYPE)
            if frontier.size == 0:
                break
            subset = VertexSubset(n, frontier)
            direction = select_direction(graph, subset)
            contributions = delta / safe_degrees
            contributions[dangling] = 0.0
            sums = edge_map_pull_sum(graph, contributions, active_mask=active_mask)
            dangling_delta = delta[dangling & active_mask].sum() / n
            new_delta = self.damping * (sums + dangling_delta)
            ranks = ranks + new_delta
            active_mask = np.abs(new_delta) > self.epsilon * np.maximum(ranks, self.min_delta)
            delta = new_delta
            result.iterations.append(
                IterationRecord(
                    index=iteration,
                    direction=direction,
                    frontier=frontier,
                    edges_traversed=graph.num_edges,
                )
            )

        result.values["rank"] = ranks
        result.values["delta"] = delta
        return result
