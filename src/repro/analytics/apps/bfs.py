"""Breadth-First Search with Ligra-style direction switching."""

from __future__ import annotations

import numpy as np

from repro.analytics.base import PULL, PUSH, AccessProfile, AppResult, GraphApplication, IterationRecord, PropertySpec
from repro.analytics.frontier import VertexSubset
from repro.analytics.framework import gather_edges, select_direction
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


class BreadthFirstSearch(GraphApplication):
    """Level-synchronous BFS producing per-vertex distance and parent."""

    name = "BFS"
    dominant_direction = PULL

    def base_access_profile(self) -> AccessProfile:
        return AccessProfile(
            edge_properties=(PropertySpec("parent", 8),),
            vertex_properties=(PropertySpec("distance", 8),),
        )

    def run(self, graph: CSRGraph, root: int = 0, **params) -> AppResult:
        """Run BFS from ``root``."""
        n = graph.num_vertices
        result = AppResult(name=self.name)
        if n == 0:
            result.values["distance"] = np.empty(0, dtype=np.int64)
            result.values["parent"] = np.empty(0, dtype=np.int64)
            return result
        if not 0 <= root < n:
            raise ValueError(f"root {root} out of range")

        distance = np.full(n, -1, dtype=np.int64)
        parent = np.full(n, -1, dtype=np.int64)
        distance[root] = 0
        parent[root] = root
        frontier = np.array([root], dtype=VERTEX_DTYPE)
        level = 0

        while frontier.size:
            subset = VertexSubset(n, frontier)
            direction = select_direction(graph, subset)
            if direction == PUSH:
                sources, targets, _ = gather_edges(graph, frontier, PUSH)
                fresh = distance[targets] < 0
                new_vertices, first_index = np.unique(targets[fresh], return_index=True)
                parent[new_vertices] = sources[fresh][first_index]
            else:
                unvisited = np.flatnonzero(distance < 0).astype(VERTEX_DTYPE)
                sources, targets, _ = gather_edges(graph, unvisited, PULL)
                in_frontier = distance[sources] == level
                new_vertices, first_index = np.unique(targets[in_frontier], return_index=True)
                parent[new_vertices] = sources[in_frontier][first_index]
            level += 1
            distance[new_vertices] = level
            result.iterations.append(
                IterationRecord(
                    index=level - 1,
                    direction=direction,
                    frontier=frontier,
                    edges_traversed=int(sources.shape[0]),
                )
            )
            frontier = new_vertices.astype(VERTEX_DTYPE)

        result.values["distance"] = distance
        result.values["parent"] = parent
        return result
