"""Graph applications (Table III of the paper, plus extras).

* :class:`PageRank` (PR) — iterative rank computation, pull-based.
* :class:`PageRankDelta` (PRD) — incremental PageRank processing only
  vertices whose rank changed enough, pull/push.
* :class:`BetweennessCentrality` (BC) — Brandes-style forward/backward pass
  from a root vertex.
* :class:`SingleSourceShortestPaths` (SSSP) — Bellman-Ford, push-based.
* :class:`RadiiEstimation` (Radii) — multi-source BFS with bit-parallel
  visited masks.
* :class:`BreadthFirstSearch` (BFS) and :class:`ConnectedComponents` (CC) —
  extra applications exercising the same framework.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analytics.apps.bc import BetweennessCentrality
from repro.analytics.apps.bfs import BreadthFirstSearch
from repro.analytics.apps.cc import ConnectedComponents
from repro.analytics.apps.pagerank import PageRank
from repro.analytics.apps.pagerank_delta import PageRankDelta
from repro.analytics.apps.radii import RadiiEstimation
from repro.analytics.apps.sssp import SingleSourceShortestPaths
from repro.analytics.base import GraphApplication

#: Registry of application short names (as used in the paper's figures).
APPLICATIONS: Dict[str, Type[GraphApplication]] = {
    "BC": BetweennessCentrality,
    "SSSP": SingleSourceShortestPaths,
    "PR": PageRank,
    "PRD": PageRankDelta,
    "Radii": RadiiEstimation,
    "BFS": BreadthFirstSearch,
    "CC": ConnectedComponents,
}

#: The five applications evaluated in the paper, in presentation order.
PAPER_APPLICATIONS = ("BC", "SSSP", "PR", "PRD", "Radii")


def list_applications(paper_only: bool = False) -> List[str]:
    """Names of available applications."""
    if paper_only:
        return list(PAPER_APPLICATIONS)
    return list(APPLICATIONS)


def get_application(name: str, **kwargs) -> GraphApplication:
    """Instantiate an application by its short name (``"PR"``, ``"BC"`` ...)."""
    try:
        cls = APPLICATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {', '.join(APPLICATIONS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "APPLICATIONS",
    "PAPER_APPLICATIONS",
    "BetweennessCentrality",
    "BreadthFirstSearch",
    "ConnectedComponents",
    "PageRank",
    "PageRankDelta",
    "RadiiEstimation",
    "SingleSourceShortestPaths",
    "get_application",
    "list_applications",
]
