"""Ligra-style shared-memory graph analytics framework and applications.

The paper evaluates five Ligra applications (Table III): Betweenness
Centrality, Single-Source Shortest Paths, PageRank, PageRank-Delta and Radii
Estimation.  This subpackage reimplements the programming model they rely on:

* :class:`~repro.analytics.frontier.VertexSubset` — sparse/dense frontiers.
* :mod:`~repro.analytics.framework` — edge-map helpers for pull- and
  push-based traversal with Ligra's direction-switching heuristic.
* :mod:`~repro.analytics.apps` — the five paper applications plus BFS and
  Connected Components, each returning per-iteration execution records that
  the trace generator replays against the cache simulator.
"""

from repro.analytics.apps import (
    APPLICATIONS,
    BetweennessCentrality,
    BreadthFirstSearch,
    ConnectedComponents,
    PageRank,
    PageRankDelta,
    RadiiEstimation,
    SingleSourceShortestPaths,
    get_application,
    list_applications,
)
from repro.analytics.base import AccessProfile, AppResult, GraphApplication, IterationRecord, PropertySpec
from repro.analytics.framework import gather_edges, select_direction
from repro.analytics.frontier import VertexSubset

__all__ = [
    "APPLICATIONS",
    "AccessProfile",
    "AppResult",
    "BetweennessCentrality",
    "BreadthFirstSearch",
    "ConnectedComponents",
    "GraphApplication",
    "IterationRecord",
    "PageRank",
    "PageRankDelta",
    "PropertySpec",
    "RadiiEstimation",
    "SingleSourceShortestPaths",
    "VertexSubset",
    "gather_edges",
    "get_application",
    "list_applications",
    "select_direction",
]
