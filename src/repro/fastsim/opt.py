"""Vectorized Belady's OPT (MIN) replay over precomputed next-use arrays.

The scalar reference (:func:`repro.cache.policies.opt.simulate_opt_misses`)
walks the trace once backwards to build per-access next-use indices and then
replays forwards with a per-set ``dict`` of resident blocks, scanning it with
``max()`` on every capacity eviction.  Both halves vectorize:

* the next-use links are the mirror image of the previous-occurrence links
  the LRU engine already computes — one stable block-sort
  (:func:`repro.fastsim.stackdist.occurrence_order`) yields both directions;
* OPT keeps *no* cross-set state at all, so the batched set-parallel chunking
  of the RRIP engine applies unchanged: within a maximal trace-ordered chunk
  in which every set appears at most once, a broadcast tag compare classifies
  every access and the Belady victim ("resident block whose next use lies
  farthest in the future") is one row-wise ``argmax`` over a
  ``(num_sets, ways)`` array of next-use indices.

Victim ties can only occur between never-referenced-again blocks (finite
next-use values are distinct trace indices); evicting either leaves every
future hit/miss decision — and therefore every reported count — unchanged,
so the engine's leftmost-way tie-break is exact with respect to the scalar
reference even though the latter breaks ties in dict-insertion order.

:func:`opt_replay` dispatches to the compiled kernel
(:func:`repro.fastsim.kernels.opt_replay`) when one is available and to
:func:`numpy_opt_replay` otherwise; both are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fastsim import kernels
from repro.fastsim.rrip import _chunk_end
from repro.fastsim.stackdist import occurrence_order, previous_occurrence_indices

#: "Never referenced again" marker, matching the scalar reference.
NEVER = np.iinfo(np.int64).max


def next_use_indices(blocks: np.ndarray, occ: Optional[np.ndarray] = None) -> np.ndarray:
    """Index of the next access to the same block, :data:`NEVER` for the last.

    The forward mirror of
    :func:`repro.fastsim.stackdist.previous_occurrence_indices`, derived from
    the same stable block-sort.
    """
    n = int(blocks.shape[0])
    nxt = np.full(n, NEVER, dtype=np.int64)
    if n < 2:
        return nxt
    if occ is None:
        occ = occurrence_order(blocks)
    occ_blocks = blocks[occ]
    same = occ_blocks[1:] == occ_blocks[:-1]
    nxt[occ[:-1][same]] = occ[1:][same]
    return nxt


@dataclass(frozen=True)
class OptReplay:
    """Outcome of replaying a block stream under Belady's OPT."""

    hits: np.ndarray
    misses_per_set: np.ndarray
    ways: int

    @property
    def hit_count(self) -> int:
        """Total number of hits."""
        return int(self.hits.sum())

    @property
    def miss_count(self) -> int:
        """Total number of misses."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions (OPT never bypasses, so misses beyond capacity)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())


def resolve_chunk_next_use(
    blocks: np.ndarray, start: int, next_seen: dict
) -> np.ndarray:
    """Global next-use indices for one chunk of a stream, resolved backwards.

    Call over the stream's chunks in *reverse* order: ``next_seen`` maps each
    block to the global index of its earliest known future access (from the
    chunks already processed) and is updated in place.  ``start`` is the
    chunk's offset in the concatenated stream.  The result equals the
    corresponding slice of :func:`next_use_indices` over the whole stream,
    which is how streaming OPT stays two-pass with bounded memory: one
    reverse pass resolving next-use per chunk, one forward pass replaying.
    """
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    local = next_use_indices(blocks)
    out = local.copy()
    within = local != NEVER
    out[within] += start
    missing = np.flatnonzero(~within)
    if missing.size:
        out[missing] = np.fromiter(
            (next_seen.get(block, NEVER) for block in blocks[missing].tolist()),
            dtype=np.int64,
            count=missing.shape[0],
        )
    unique, first_index = np.unique(blocks, return_index=True)
    for block, index in zip(unique.tolist(), first_index.tolist()):
        next_seen[block] = start + index
    return out


class OptStream:
    """Resumable exact Belady replay: feed (blocks, next-use) in chunks.

    Carries tags and per-way next-use values across :meth:`feed` calls.  The
    caller supplies globally consistent next-use indices per chunk — OPT
    needs the future, so a stream is replayed in two passes: a reverse pass
    over the (spilled) chunks through :func:`resolve_chunk_next_use`, then a
    forward pass feeding this stream.  Chunked replay is then bit-identical
    to one-shot replay over the concatenation.
    """

    def __init__(
        self, num_sets: int, ways: int, use_native: Optional[bool] = None
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self._use_native = (
            kernels.available() if use_native is None else bool(use_native)
        )
        self.tags = np.full((num_sets, ways), -1, dtype=np.int64)
        self.next_values = np.zeros((num_sets, ways), dtype=np.int64)
        self.misses_per_set = np.zeros(num_sets, dtype=np.int64)
        self.hit_count = 0

    @property
    def miss_count(self) -> int:
        """Total number of misses fed so far."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions so far (OPT never bypasses)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())

    def feed(self, block_addresses: np.ndarray, next_use: np.ndarray) -> np.ndarray:
        """Replay one chunk; returns its hit mask and advances the state."""
        blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
        n = int(blocks.shape[0])
        if n == 0:
            return np.zeros(0, dtype=bool)
        hits = None
        if self._use_native:
            hits = kernels.opt_feed(
                blocks,
                np.ascontiguousarray(next_use, dtype=np.int64),
                self.num_sets,
                self.ways,
                self.tags,
                self.next_values,
                self.misses_per_set,
            )
        if hits is None:
            hits = self._numpy_feed(blocks, next_use)
        self.hit_count += int(hits.sum())
        return hits

    def _numpy_feed(self, blocks: np.ndarray, next_use: np.ndarray) -> np.ndarray:
        num_sets = self.num_sets
        tags, next_values = self.tags, self.next_values
        n = int(blocks.shape[0])
        hits = np.zeros(n, dtype=bool)
        set_ids = blocks & (num_sets - 1)
        prev = previous_occurrence_indices(set_ids)

        position = 0
        while position < n:
            end = _chunk_end(prev, position, n)
            sets = set_ids[position:end]
            chunk_blocks = blocks[position:end]
            chunk_next = next_use[position:end]

            match = tags[sets] == chunk_blocks[:, None]
            is_hit = match.any(axis=1)
            hits[position:end] = is_hit

            if is_hit.any():
                hit_sets = sets[is_hit]
                hit_ways = match[is_hit].argmax(axis=1)
                next_values[hit_sets, hit_ways] = chunk_next[is_hit]

            if not is_hit.all():
                miss = ~is_hit
                miss_sets = sets[miss]
                empty = tags[miss_sets] == -1
                has_empty = empty.any(axis=1)
                victim_way = np.empty(miss_sets.shape[0], dtype=np.int64)
                victim_way[has_empty] = empty[has_empty].argmax(axis=1)
                full_sets = miss_sets[~has_empty]
                if full_sets.size:
                    # Belady: evict the resident block whose next use is
                    # farthest.
                    victim_way[~has_empty] = next_values[full_sets].argmax(axis=1)
                tags[miss_sets, victim_way] = chunk_blocks[miss]
                next_values[miss_sets, victim_way] = chunk_next[miss]
            position = end

        self.misses_per_set += np.bincount(set_ids[~hits], minlength=num_sets)
        return hits


def numpy_opt_replay(
    block_addresses: np.ndarray,
    num_sets: int,
    ways: int,
    next_use: Optional[np.ndarray] = None,
) -> OptReplay:
    """Pure-NumPy batched Belady replay (the portable engine).

    Exact with respect to :func:`~repro.cache.policies.opt.simulate_opt_misses`:
    identical per-access hit masks and per-set miss counts.  One
    :class:`OptStream` feed over the whole stream — chunked feeds with
    globally resolved next-use are bit-identical by construction.
    """
    blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
    if next_use is None:
        next_use = next_use_indices(blocks)
    stream = OptStream(num_sets, ways, use_native=False)
    hits = stream.feed(blocks, next_use)
    return OptReplay(hits=hits, misses_per_set=stream.misses_per_set, ways=ways)


def opt_replay(block_addresses: np.ndarray, num_sets: int, ways: int) -> OptReplay:
    """Replay a block stream under Belady's OPT on a ``num_sets`` x ``ways`` cache.

    ``num_sets`` must be a power of two (set index is ``block & mask``,
    matching the scalar reference).  Dispatches to the compiled kernel
    (:mod:`repro.fastsim.kernels`) when available and to
    :func:`numpy_opt_replay` otherwise; both are exact.
    """
    blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
    next_use = next_use_indices(blocks)
    native = kernels.opt_replay(blocks, next_use, num_sets, ways)
    if native is not None:
        native_hits, misses_per_set = native
        return OptReplay(hits=native_hits, misses_per_set=misses_per_set, ways=ways)
    return numpy_opt_replay(blocks, num_sets, ways, next_use=next_use)
