"""Exact vectorized replay for SHiP-MEM (memory-region signature SHiP).

:class:`~repro.cache.policies.ship.ShipMemPolicy` is SRRIP plus one global
learning structure: the Signature History Counter Table (SHCT), keyed by the
block's memory region.  Per-set state (tags, RRPVs, per-line signature and
reused bits) batches exactly like the RRIP engine — within a maximal
trace-ordered chunk every set appears at most once, so the tag compare, the
hit promotion (RRPV 0 for every hint) and the age-until-saturated victim
search are whole-chunk array operations.

The SHCT itself is shared *across* sets, so its reads and saturating updates
must advance in trace order: a first reuse trains the line's signature up, an
eviction of a never-reused line trains it down, and every insertion reads the
incoming block's signature to pick between long (``max-1``) and distant
(``max``) re-reference insertion.  Those events are sparse relative to the
trace (misses plus first-reuse hits only) and all their inputs — victim ways,
line signatures, reused bits — are known from the batched phase, so the
engine walks just the chunk's event positions in order, exactly like the
RRIP engine walks leader-set PSEL updates.  Signatures are densified with one
``np.unique`` so the SHCT is a flat array rather than a dict (the paper's
table is unbounded, so no aliasing is introduced).

:func:`ship_replay` dispatches to the compiled kernel
(:func:`repro.fastsim.kernels.ship_replay`) when one is available and to
:func:`numpy_ship_replay` otherwise; both are exact, including the final
SHCT contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.ship import ShipMemPolicy
from repro.fastsim import kernels
from repro.fastsim.rrip import _chunk_end
from repro.fastsim.stackdist import (
    DenseIdMap,
    grow_to,
    previous_occurrence_indices,
)

#: SHCT value assumed for a signature that was never trained (weakly reused).
_UNSEEN = 1


@dataclass(frozen=True)
class ShipSpec:
    """Array-form description of one :class:`ShipMemPolicy` instance."""

    max_rrpv: int
    region_shift: int
    counter_max: int


def ship_spec(policy: ReplacementPolicy) -> Optional[ShipSpec]:
    """Snapshot a policy into a :class:`ShipSpec`, or ``None`` if ineligible.

    Restricted to the exact type :class:`ShipMemPolicy` — a subclass could
    override any hook and silently diverge.
    """
    if type(policy) is not ShipMemPolicy:
        return None
    return ShipSpec(
        max_rrpv=policy.max_rrpv,
        region_shift=policy.region_shift,
        counter_max=policy.counter_max,
    )


@dataclass(frozen=True)
class ShipReplay:
    """Outcome of replaying a block stream through one SHiP-MEM cache."""

    hits: np.ndarray
    misses_per_set: np.ndarray
    ways: int
    #: Final SHCT as ``{signature: counter}`` over every signature in the
    #: trace (untrained signatures report the unseen value, 1).
    shct: Dict[int, int]

    @property
    def hit_count(self) -> int:
        """Total number of hits."""
        return int(self.hits.sum())

    @property
    def miss_count(self) -> int:
        """Total number of misses."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions (SHiP never bypasses, so misses beyond capacity)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())


def _dense_signatures(blocks: np.ndarray, region_shift: int) -> Tuple[np.ndarray, np.ndarray]:
    """Map block addresses to dense signature ids (and the id→signature table)."""
    return np.unique(blocks >> region_shift, return_inverse=True)


class ShipStream:
    """Resumable exact SHiP-MEM replay: feed a block stream in chunks.

    Carries tags, RRPVs, per-line signature/reused bits and the global SHCT
    across :meth:`feed` calls; chunked replay is bit-identical to one replay
    over the concatenation.  Signatures are densified *incrementally* — a
    grow-only first-appearance id map replaces the one-shot engine's whole-
    trace ``np.unique``, which a stream cannot compute — and the SHCT array
    grows with the id space (label-invariant, so outcomes are unchanged).
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        spec: ShipSpec,
        use_native: Optional[bool] = None,
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.spec = spec
        self._use_native = (
            kernels.available() if use_native is None else bool(use_native)
        )
        self.tags = np.full((num_sets, ways), -1, dtype=np.int64)
        self.rrpv = np.full((num_sets, ways), spec.max_rrpv, dtype=np.int32)
        self.line_sig = np.zeros((num_sets, ways), dtype=np.int64)
        self.reused = np.zeros((num_sets, ways), dtype=np.uint8)
        self.misses_per_set = np.zeros(num_sets, dtype=np.int64)
        self._sig_ids = DenseIdMap()
        self._shct = np.empty(0, dtype=np.int64)
        self.hit_count = 0

    @property
    def miss_count(self) -> int:
        """Total number of misses fed so far."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions so far (SHiP never bypasses)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())

    @property
    def shct(self) -> Dict[int, int]:
        """Current SHCT as ``{signature: counter}`` over seen signatures."""
        return {
            int(signature): int(value)
            for signature, value in zip(
                self._sig_ids.keys_in_id_order(), self._shct.tolist()
            )
        }

    def feed(self, block_addresses: np.ndarray) -> np.ndarray:
        """Replay one chunk; returns its hit mask and advances the state."""
        blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
        n = int(blocks.shape[0])
        if n == 0:
            return np.zeros(0, dtype=bool)
        sig_ids = self._sig_ids.map(blocks >> self.spec.region_shift)
        self._shct = grow_to(self._shct, len(self._sig_ids), _UNSEEN)
        hits = None
        if self._use_native:
            hits = kernels.ship_feed(
                blocks,
                sig_ids,
                self.num_sets,
                self.ways,
                self.spec.max_rrpv,
                self.spec.counter_max,
                self.tags,
                self.rrpv,
                self.line_sig,
                self.reused,
                self._shct,
                self.misses_per_set,
            )
        if hits is None:
            hits = self._numpy_feed(blocks, sig_ids)
        self.hit_count += int(hits.sum())
        return hits

    def _numpy_feed(self, blocks: np.ndarray, sig_ids: np.ndarray) -> np.ndarray:
        num_sets = self.num_sets
        max_rrpv = self.spec.max_rrpv
        counter_max = self.spec.counter_max
        tags, rrpv, line_sig = self.tags, self.rrpv, self.line_sig
        reused = self.reused.view(bool)
        shct = self._shct
        n = int(blocks.shape[0])
        hits = np.zeros(n, dtype=bool)
        set_ids = blocks & (num_sets - 1)
        prev = previous_occurrence_indices(set_ids)

        position = 0
        while position < n:
            end = _chunk_end(prev, position, n)
            sets = set_ids[position:end]
            chunk_blocks = blocks[position:end]
            chunk_sigs = sig_ids[position:end]

            match = tags[sets] == chunk_blocks[:, None]
            is_hit = match.any(axis=1)
            hits[position:end] = is_hit

            # Batched per-set phase: promotions, victim selection, reused
            # bits.  SHCT reads/updates are deferred to the trace-order walk
            # below.
            train_up = np.empty(0, dtype=np.int64)
            train_up_pos = np.empty(0, dtype=np.int64)
            if is_hit.any():
                hit_sets = sets[is_hit]
                hit_ways = match[is_hit].argmax(axis=1)
                rrpv[hit_sets, hit_ways] = 0
                first_reuse = ~reused[hit_sets, hit_ways]
                reused[hit_sets[first_reuse], hit_ways[first_reuse]] = True
                train_up = line_sig[hit_sets[first_reuse], hit_ways[first_reuse]]
                train_up_pos = np.flatnonzero(is_hit)[first_reuse]

            miss_pos = np.empty(0, dtype=np.int64)
            train_down = np.empty(0, dtype=np.int64)
            ins_sigs = np.empty(0, dtype=np.int64)
            miss_sets = victim_way = None
            if not is_hit.all():
                miss = ~is_hit
                miss_pos = np.flatnonzero(miss)
                miss_sets = sets[miss]
                empty = tags[miss_sets] == -1
                has_empty = empty.any(axis=1)
                victim_way = np.empty(miss_sets.shape[0], dtype=np.int64)
                victim_way[has_empty] = empty[has_empty].argmax(axis=1)
                full_sets = miss_sets[~has_empty]
                if full_sets.size:
                    full_rrpvs = rrpv[full_sets]
                    full_rrpvs += (max_rrpv - full_rrpvs.max(axis=1))[:, None]
                    victim_way[~has_empty] = (full_rrpvs == max_rrpv).argmax(axis=1)
                    rrpv[full_sets] = full_rrpvs
                # A capacity eviction of a never-reused line trains its
                # signature down; -1 marks fills (no eviction, nothing to
                # train).
                victim_sig = line_sig[miss_sets, victim_way]
                victim_reused = reused[miss_sets, victim_way]
                train_down = np.where(~has_empty & ~victim_reused, victim_sig, -1)
                ins_sigs = chunk_sigs[miss]
                # State writes independent of the SHCT can land now; the
                # insertion RRPVs are filled in by the walk below.
                tags[miss_sets, victim_way] = chunk_blocks[miss]
                line_sig[miss_sets, victim_way] = ins_sigs
                reused[miss_sets, victim_way] = False

            # Trace-order SHCT walk over the chunk's sparse events:
            # first-reuse hits train up, evictions train down, insertions
            # read.
            ins_values = np.empty(ins_sigs.shape[0], dtype=np.int32)
            up_iter = iter(zip(train_up_pos.tolist(), train_up.tolist()))
            next_up = next(up_iter, None)
            for index, (pos, down_sig, ins_sig) in enumerate(
                zip(miss_pos.tolist(), train_down.tolist(), ins_sigs.tolist())
            ):
                while next_up is not None and next_up[0] < pos:
                    up_sig = next_up[1]
                    if shct[up_sig] < counter_max:
                        shct[up_sig] += 1
                    next_up = next(up_iter, None)
                if down_sig >= 0 and shct[down_sig] > 0:
                    shct[down_sig] -= 1
                ins_values[index] = max_rrpv if shct[ins_sig] == 0 else max_rrpv - 1
            while next_up is not None:
                up_sig = next_up[1]
                if shct[up_sig] < counter_max:
                    shct[up_sig] += 1
                next_up = next(up_iter, None)
            if miss_pos.size:
                rrpv[miss_sets, victim_way] = ins_values
            position = end

        self.misses_per_set += np.bincount(set_ids[~hits], minlength=num_sets)
        return hits


def numpy_ship_replay(
    block_addresses: np.ndarray, num_sets: int, ways: int, spec: ShipSpec
) -> ShipReplay:
    """Pure-NumPy batched replay (the portable engine behind :func:`ship_replay`).

    Exact with respect to the scalar policy: identical per-access hit masks,
    per-set miss counts and final SHCT contents.  One :class:`ShipStream`
    feed over the whole stream — chunked feeds of the same stream are
    bit-identical by construction.
    """
    stream = ShipStream(num_sets, ways, spec, use_native=False)
    hits = stream.feed(block_addresses)
    return ShipReplay(
        hits=hits,
        misses_per_set=stream.misses_per_set,
        ways=ways,
        shct=stream.shct,
    )


def ship_replay(
    block_addresses: np.ndarray, num_sets: int, ways: int, spec: ShipSpec
) -> ShipReplay:
    """Replay a block stream through a ``num_sets`` x ``ways`` SHiP-MEM cache.

    ``num_sets`` must be a power of two (set index is ``block & mask``,
    matching :class:`repro.cache.cache.SetAssociativeCache`).  Dispatches to
    the compiled kernel (:mod:`repro.fastsim.kernels`) when available and to
    :func:`numpy_ship_replay` otherwise; both are exact.
    """
    blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
    signatures, sig_ids = _dense_signatures(blocks, spec.region_shift)
    native = kernels.ship_replay(
        blocks,
        sig_ids.astype(np.int64),
        int(signatures.shape[0]),
        num_sets,
        ways,
        spec.max_rrpv,
        spec.counter_max,
        _UNSEEN,
    )
    if native is not None:
        native_hits, misses_per_set, shct = native
        final = {
            int(sig): int(value) for sig, value in zip(signatures.tolist(), shct.tolist())
        }
        return ShipReplay(
            hits=native_hits, misses_per_set=misses_per_set, ways=ways, shct=final
        )
    return numpy_ship_replay(blocks, num_sets, ways, spec)
