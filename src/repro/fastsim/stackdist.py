"""Vectorized exact LRU simulation via per-set stack distances.

LRU has the *stack (inclusion) property*: a W-way set holds precisely the W
most recently used distinct blocks that map to it.  An access therefore hits
if and only if its **stack distance** — the number of distinct same-set blocks
referenced since the previous access to the same block — is below the
associativity.  Computing stack distances offline turns cache simulation into
an array problem with no per-access Python loop.

For an access ``i`` of one set's subsequence, let ``p[i]`` be the position of
the previous access to the same block (``-1`` if none).  Every position
``j <= p[i]`` trivially satisfies ``p[j] < j <= p[i]``, so

    distance(i) = #{ p[i] < j < i : p[j] <= p[i] }
                = #{ j < i : p[j] <= p[i] }  -  (p[i] + 1)

and the whole problem reduces to an *online rank*: for every element, the
number of earlier elements that are ``<=`` it.  :func:`_rank_grid` computes
that rank with a bottom-up merge count — a pair ``(j, i)`` is counted exactly
once, at the unique merge level where ``j`` falls in the left and ``i`` in the
right half of sibling blocks — in ``log2(n)`` rounds of row-parallel NumPy
work.  All cache sets are processed at once: each set's subsequence is padded
to a common power-of-two row of one grid, so a level costs a handful of NumPy
calls regardless of the set count (padding lives at row tails, after every
real element, and thus never contributes to a real element's rank).  Each
level picks the cheapest exact ranking kernel for its merge width: direct
broadcast comparisons for narrow levels, sort + one flat ``searchsorted``
(pairs packed into disjoint 32-bit key ranges where possible) for the middle,
and cumulative histograms once the value span is comparable to the width.

Two structural shortcuts keep the constant factors small.  *Run
compression*: an access whose previous same-set access touched the same block
(ubiquitous in graph traces — sequential Edge-Array reads hit one 64-byte
block ``block/stride`` times in a row) is a guaranteed hit that leaves the
LRU stack untouched, so such repeats are answered directly and excluded from
the ranking problem, typically halving it.  *Shared occurrence links*: the
caller can pass precomputed previous-same-block indices
(:func:`previous_occurrence_indices`), letting a filter pipeline sort the
trace by block once and derive every level's links from it.

Eviction counts need no per-access bookkeeping either: LRU never bypasses, so
a set's occupancy grows by one per miss until it is full, giving
``evictions = max(0, misses_in_set - ways)`` per set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

_INT32_MAX = np.iinfo(np.int32).max
_UINT32_MAX = np.iinfo(np.uint32).max

#: Skew guard: fall back to per-set ranking when padding every set to the
#: busiest set's length would blow the grid up beyond this factor.
_MAX_PAD_FACTOR = 4

#: Merge widths up to this bound are ranked by direct comparison instead of
#: sort-and-binary-search (see :func:`_rank_grid`).
_DIRECT_WIDTH = 16

#: Once the value span is at most this multiple of the merge width, ranking
#: via a cumulative histogram beats binary searching.
_HISTOGRAM_SPAN_FACTOR = 16


def _rank_grid(grid: np.ndarray, span: int) -> np.ndarray:
    """Online rank of every element within its row of ``grid``.

    ``grid`` has shape ``(rows, L)`` with ``L`` a power of two and
    non-negative entries strictly below ``span - 1``; the result has the same
    shape and holds, per element, the count of earlier elements of the *same
    row* that are less than or equal to it.  Rows are ranked simultaneously:
    at merge width ``w`` the grid is viewed as pairs of sibling half-blocks
    and every right-half element is ranked against its pair's left half with
    the cheapest exact kernel for that width:

    * ``w <= _DIRECT_WIDTH`` — one broadcast comparison per left column; a
      flat searchsorted would spend ~log2(num_pairs) probes per query merely
      re-locating the query's own pair.
    * mid widths — row-wise sort of the left halves plus one flat
      ``searchsorted``, with pairs packed into disjoint key ranges (32-bit
      keys when they fit).
    * ``span <= _HISTOGRAM_SPAN_FACTOR * w`` — a cumulative histogram of the
      left keys answers all queries with one gather.
    """
    rows, length = grid.shape
    counts = np.zeros_like(grid)
    if rows == 0 or length < 2:
        return counts
    values = grid
    key_dtype = None
    width = 1
    while width < length:
        pairs = values.reshape(-1, 2 * width)
        num_pairs = pairs.shape[0]
        out = counts.reshape(-1, 2 * width)[:, width:]
        if width <= _DIRECT_WIDTH:
            left = pairs[:, :width]
            right = pairs[:, width:]
            for column in range(width):
                out += left[:, column : column + 1] <= right
        elif span <= _HISTOGRAM_SPAN_FACTOR * width:
            offsets = np.arange(num_pairs, dtype=np.int64)[:, None] * span
            histogram = np.bincount(
                (pairs[:, :width] + offsets).ravel(), minlength=num_pairs * span
            )
            cumulative = np.cumsum(histogram)
            rank = cumulative[pairs[:, width:] + offsets]
            rank -= np.arange(num_pairs, dtype=np.int64)[:, None] * width
            out += rank.astype(counts.dtype, copy=False)
        else:
            if key_dtype is None:
                max_key = (values.size // (2 * width) + 1) * span
                key_dtype = np.int32 if max_key < _INT32_MAX else np.int64
                values = values.astype(key_dtype, copy=False)
                pairs = values.reshape(-1, 2 * width)
            offsets = np.arange(num_pairs, dtype=key_dtype)[:, None] * key_dtype(span)
            left_sorted = np.sort(pairs[:, :width], axis=1) + offsets
            right = pairs[:, width:] + offsets
            rank = np.searchsorted(left_sorted.ravel(), right.ravel(), side="right")
            rank = rank.reshape(num_pairs, width) - np.arange(num_pairs, dtype=np.int64)[:, None] * width
            out += rank.astype(counts.dtype, copy=False)
        width *= 2
    return counts


def prior_leq_counts(values: np.ndarray) -> np.ndarray:
    """For each element, count earlier elements less than or equal to it.

    Equivalent to ``[sum(v <= values[i] for v in values[:i]) for i in
    range(len(values))]`` but computed in ``O(n log^2 n)`` by
    :func:`_rank_grid` on a single padded row.
    """
    n = int(values.shape[0])
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    length = 1 << (n - 1).bit_length()
    row = np.zeros(length, dtype=np.int64)
    base = int(values.min())
    row[:n] = values - base + 1
    span = int(row[:n].max()) + 2
    return _rank_grid(row.reshape(1, length), span)[0, :n]


def occurrence_order(blocks: np.ndarray) -> np.ndarray:
    """Stable order grouping equal blocks together, time-ordered within.

    One radix argsort (narrowed to 32-bit when the block range allows) whose
    result can derive the previous-occurrence links of the full stream *and*
    of any filtered substream, so a multi-level filter pipeline sorts by
    block only once.
    """
    base = int(blocks.min()) if blocks.size else 0
    sort_blocks = blocks
    if blocks.size and int(blocks.max()) - base < _UINT32_MAX:
        sort_blocks = (blocks - base).astype(np.uint32)
    return np.argsort(sort_blocks, kind="stable")


def previous_occurrence_indices(
    blocks: np.ndarray, occ: Optional[np.ndarray] = None
) -> np.ndarray:
    """Index of the previous access to the same block, ``-1`` for the first."""
    n = int(blocks.shape[0])
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    if occ is None:
        occ = occurrence_order(blocks)
    occ_blocks = blocks[occ]
    same = occ_blocks[1:] == occ_blocks[:-1]
    prev[occ[1:][same]] = occ[:-1][same]
    return prev


def substream_previous_indices(
    blocks: np.ndarray, occ: np.ndarray, member_indices: np.ndarray
) -> np.ndarray:
    """Previous-same-block links within a filtered substream.

    ``member_indices`` selects (in increasing order) the surviving accesses
    of the stream; the result is expressed in substream positions, ready to
    hand to :func:`lru_replay` for the stream ``blocks[member_indices]``.
    Restricting ``occ`` to the survivors keeps equal blocks adjacent and
    time-ordered, so the links fall out of one adjacent-equality pass — no
    new sort.
    """
    n = int(blocks.shape[0])
    m = int(member_indices.shape[0])
    if m == 0:
        return np.empty(0, dtype=np.int64)
    member = np.zeros(n, dtype=bool)
    member[member_indices] = True
    occ_members = occ[member[occ]]
    occ_blocks = blocks[occ_members]
    same = occ_blocks[1:] == occ_blocks[:-1]
    prev = np.full(n, -1, dtype=np.int64)
    prev[occ_members[1:][same]] = occ_members[:-1][same]
    sub_position = np.full(n, -1, dtype=np.int64)
    sub_position[member_indices] = np.arange(m, dtype=np.int64)
    prev_of_member = prev[member_indices]
    has_prev = prev_of_member >= 0
    return np.where(
        has_prev, sub_position[np.where(has_prev, prev_of_member, 0)], -1
    )


class DenseIdMap:
    """Grow-only mapping from raw keys to dense ids, stable across chunks.

    The one-shot engines densify unbounded key spaces (SHiP signatures,
    Leeway/Hawkeye PCs, Hawkeye block ids) with one ``np.unique`` over the
    whole trace; a resumable stream cannot see the whole trace, so ids are
    assigned in order of first appearance instead and never change.  All the
    learning structures are label-invariant, so the two assignments produce
    identical simulations.
    """

    #: Largest key eligible for the direct-lookup fast path; beyond this the
    #: table (8 bytes/slot) would dominate the stream's bounded footprint.
    DIRECT_LIMIT = 1 << 22

    def __init__(self) -> None:
        self._ids: dict = {}
        self._direct: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._ids)

    def map(self, values: np.ndarray) -> np.ndarray:
        """Dense ids for ``values``, assigning new ids to unseen keys."""
        values = np.asarray(values)
        if values.size == 0:
            return np.empty(0, dtype=np.int64)
        if self._direct is not False:
            lo, hi = int(values.min()), int(values.max())
            if 0 <= lo and hi < self.DIRECT_LIMIT:
                return self._map_direct(values, hi)
        # Keys outside the direct range: fall back to the dict permanently
        # (the dict is authoritative, so ids stay consistent either way).
        self._direct = False  # type: ignore[assignment]
        unique, inverse = np.unique(values, return_inverse=True)
        ids = self._ids
        table = np.fromiter(
            (ids.setdefault(key, len(ids)) for key in unique.tolist()),
            dtype=np.int64,
            count=unique.shape[0],
        )
        return table[inverse]

    def _map_direct(self, values: np.ndarray, hi: int) -> np.ndarray:
        """O(n) lookup through a grow-only array instead of a per-chunk sort.

        New keys still receive ids in sorted order within the chunk, exactly
        like the ``np.unique`` path, so both routes assign identical ids.
        """
        direct = self._direct
        if direct is None or direct.shape[0] <= hi:
            direct = grow_to(
                direct if direct is not None else np.empty(0, dtype=np.int64),
                max(hi + 1, 2 * (direct.shape[0] if direct is not None else 0)),
                -1,
            )
            self._direct = direct
        out = direct[values]
        missing = out < 0
        if missing.any():
            ids = self._ids
            fresh = np.unique(values[missing])
            start = len(ids)
            direct[fresh] = np.arange(start, start + fresh.shape[0], dtype=np.int64)
            for key in fresh.tolist():
                ids[key] = len(ids)
            out = direct[values]
        return out

    def keys_in_id_order(self) -> list:
        """Raw keys ordered by their dense id (dicts preserve insertion)."""
        return list(self._ids.keys())


def grow_to(array: np.ndarray, size: int, fill) -> np.ndarray:
    """Return ``array`` grown to at least ``size`` entries, padded with ``fill``."""
    if array.shape[0] >= size:
        return array
    grown = np.full(size, fill, dtype=array.dtype)
    grown[: array.shape[0]] = array
    return grown


@dataclass(frozen=True)
class LRUReplay:
    """Outcome of replaying a block-address stream through one LRU cache."""

    hits: np.ndarray
    misses_per_set: np.ndarray
    ways: int

    @property
    def hit_count(self) -> int:
        """Total number of hits."""
        return int(self.hits.sum())

    @property
    def miss_count(self) -> int:
        """Total number of misses."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total number of evictions (misses beyond each set's capacity)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())


def _stack_hits(
    prev_pos: np.ndarray,
    sets: np.ndarray,
    positions: np.ndarray,
    set_counts: np.ndarray,
    num_sets: int,
    ways: int,
) -> np.ndarray:
    """Hit mask for set-grouped accesses given within-set previous positions."""
    n = int(prev_pos.shape[0])
    max_count = int(set_counts.max()) if n else 0
    row_length = 1 << max(0, max_count - 1).bit_length() if max_count else 1
    if num_sets * row_length <= max(_MAX_PAD_FACTOR * n, 4096):
        # One grid row per set, holding prev + 1 (so pads, cold accesses and
        # the span are all known without scanning); tail padding is inert.
        slots = sets.astype(np.int64) * row_length + positions
        grid = np.zeros(num_sets * row_length, dtype=prev_pos.dtype)
        grid[slots] = prev_pos + prev_pos.dtype.type(1)
        ranks = _rank_grid(grid.reshape(num_sets, row_length), row_length + 2).ravel()[slots]
        depth = ranks - prev_pos - 1
        return (prev_pos >= 0) & (depth < ways)
    # Pathologically skewed set utilisation: rank each set on its own to
    # keep the padded footprint linear in the trace length.
    set_starts = np.concatenate(([0], np.cumsum(set_counts)))
    hits = np.zeros(n, dtype=bool)
    for set_index in range(num_sets):
        lo, hi = int(set_starts[set_index]), int(set_starts[set_index + 1])
        if hi == lo:
            continue
        p = prev_pos[lo:hi]
        depth = prior_leq_counts(p) - p - 1
        hits[lo:hi] = (p >= 0) & (depth < ways)
    return hits


class LRUStream:
    """Resumable exact LRU replay: feed a block stream in bounded chunks.

    Carries the full cache state — per-way tags plus recency stamps — across
    :meth:`feed` calls, so replaying a stream chunk by chunk produces hit
    masks and counters bit-identical to one replay over the concatenation,
    with peak memory O(chunk + num_sets * ways).

    The compiled kernel (when available) advances the persistent state
    in-line.  The NumPy stack-distance engine is a batch algorithm with no
    carried state, so the NumPy path *reconstructs* the state instead: each
    chunk is replayed behind a synthetic prefix that re-inserts every
    resident block in LRU→MRU order (at most ``num_sets * ways`` accesses,
    rebuilding the exact LRU stacks by the stack property), and the resident
    set is re-derived from the replayed stream afterwards.
    """

    def __init__(self, num_sets: int, ways: int, use_native: Optional[bool] = None) -> None:
        from repro.fastsim import kernels

        self.num_sets = num_sets
        self.ways = ways
        self._use_native = kernels.available() if use_native is None else bool(use_native)
        self.tags = np.full(num_sets * ways, -1, dtype=np.int64)
        self.stamps = np.zeros(num_sets * ways, dtype=np.int64)
        self.misses_per_set = np.zeros(num_sets, dtype=np.int64)
        self._state = np.zeros(1, dtype=np.int64)
        self.hit_count = 0

    @property
    def miss_count(self) -> int:
        """Total number of misses fed so far."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions so far (LRU never bypasses; sets only fill up)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())

    def resident_blocks_per_set(self) -> list[list[int]]:
        """Resident blocks per set in LRU→MRU order (state introspection)."""
        result = []
        for set_index in range(self.num_sets):
            row = slice(set_index * self.ways, (set_index + 1) * self.ways)
            tags, stamps = self.tags[row], self.stamps[row]
            occupied = np.flatnonzero(tags != -1)
            result.append(tags[occupied[np.argsort(stamps[occupied])]].tolist())
        return result

    def feed(self, block_addresses: np.ndarray) -> np.ndarray:
        """Replay one chunk; returns its hit mask and advances the state."""
        from repro.fastsim import kernels

        blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
        if blocks.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        hits = None
        if self._use_native:
            hits = kernels.lru_feed(
                blocks, self.num_sets, self.ways,
                self.tags, self.stamps, self.misses_per_set, self._state,
            )
        if hits is None:
            hits = self._numpy_feed(blocks)
        self.hit_count += int(hits.sum())
        return hits

    def _numpy_feed(self, blocks: np.ndarray) -> np.ndarray:
        num_sets, ways = self.num_sets, self.ways
        occupied = np.flatnonzero(self.tags != -1)
        prefix_order = np.lexsort((self.stamps[occupied], occupied // ways))
        prefix = self.tags[occupied][prefix_order]
        stream = np.concatenate([prefix, blocks]) if prefix.size else blocks
        replay = numpy_lru_replay(stream, num_sets, ways)
        hits = replay.hits[prefix.shape[0] :]
        chunk_sets = blocks & (num_sets - 1)
        self.misses_per_set += np.bincount(chunk_sets[~hits], minlength=num_sets)
        self._rebuild_residency(stream)
        return hits

    def _rebuild_residency(self, stream: np.ndarray) -> None:
        """Recompute tags/stamps: each set holds its W most recent distinct
        blocks, stamped in recency order."""
        num_sets, ways = self.num_sets, self.ways
        n = int(stream.shape[0])
        unique, reversed_first = np.unique(stream[::-1], return_index=True)
        last_pos = n - 1 - reversed_first
        sets = unique & (num_sets - 1)
        order = np.lexsort((last_pos, sets))
        counts = np.bincount(sets, minlength=num_sets)
        kept = np.minimum(counts, ways)
        ends = np.cumsum(counts)
        total = int(kept.sum())
        slot = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(kept) - kept, kept
        )
        chosen = order[np.repeat(ends - kept, kept) + slot]
        flat = np.repeat(np.arange(num_sets, dtype=np.int64) * ways, kept) + slot
        self.tags.fill(-1)
        self.stamps.fill(0)
        self.tags[flat] = unique[chosen]
        # Recency rank within the set is all that matters; keep the global
        # clock ahead of every stamp so a later chunk's ordering stays valid.
        self.stamps[flat] = slot + 1
        self._state[0] = ways + 1

    def replay_result(self) -> LRUReplay:
        """Aggregate outcome so far, shaped like a one-shot :class:`LRUReplay`
        (the per-access hit mask is not retained; chunk masks come from
        :meth:`feed`)."""
        return LRUReplay(
            hits=np.zeros(0, dtype=bool),
            misses_per_set=self.misses_per_set.copy(),
            ways=self.ways,
        )


def lru_replay(
    block_addresses: np.ndarray,
    num_sets: int,
    ways: int,
    prev_indices: Optional[np.ndarray] = None,
) -> LRUReplay:
    """Replay ``block_addresses`` through a ``num_sets`` x ``ways`` LRU cache.

    Returns the per-access hit mask (in trace order) and per-set miss counts.
    ``num_sets`` must be a power of two (the set index is ``block & mask``,
    matching :class:`repro.cache.cache.SetAssociativeCache`).

    Dispatches to the compiled kernel (:mod:`repro.fastsim.kernels`) when one
    is available and to :func:`numpy_lru_replay` otherwise; both are exact.
    """
    from repro.fastsim import kernels

    native = kernels.lru_replay(np.asarray(block_addresses, dtype=np.int64), num_sets, ways)
    if native is not None:
        hits, misses_per_set = native
        return LRUReplay(hits=hits, misses_per_set=misses_per_set, ways=ways)
    return numpy_lru_replay(block_addresses, num_sets, ways, prev_indices=prev_indices)


def numpy_lru_replay(
    block_addresses: np.ndarray,
    num_sets: int,
    ways: int,
    prev_indices: Optional[np.ndarray] = None,
) -> LRUReplay:
    """Pure-NumPy stack-distance replay (the portable engine behind
    :func:`lru_replay`).

    ``prev_indices`` optionally supplies precomputed previous-same-block
    links (:func:`previous_occurrence_indices`) to skip the internal sort.
    """
    blocks = np.asarray(block_addresses, dtype=np.int64)
    n = int(blocks.shape[0])
    if n == 0:
        return LRUReplay(
            hits=np.zeros(0, dtype=bool),
            misses_per_set=np.zeros(num_sets, dtype=np.int64),
            ways=ways,
        )

    # Positions fit 32-bit for any realistic trace; narrow dtypes halve the
    # memory traffic of both the radix argsorts and the index plumbing below.
    index_dtype = np.int32 if n < _INT32_MAX else np.int64

    set_ids = (blocks & (num_sets - 1)).astype(index_dtype)
    # Group accesses by set, preserving time order inside each group.
    sort_sets = set_ids.astype(np.uint16) if num_sets <= 1 << 16 else set_ids
    order = np.argsort(sort_sets, kind="stable")
    grouped_sets = set_ids[order]
    set_counts = np.bincount(grouped_sets, minlength=num_sets)
    set_starts = np.cumsum(np.concatenate(([0], set_counts))).astype(index_dtype)
    grouped_index = np.arange(n, dtype=index_dtype)
    within_set_pos = grouped_index - np.repeat(set_starts[:-1], set_counts)

    # Previous occurrence of each access's block, as a within-set position.
    # A block maps to exactly one set, so same-block links are same-set links.
    if prev_indices is None:
        prev_indices = previous_occurrence_indices(blocks)
    original_pos = np.empty(n, dtype=index_dtype)
    original_pos[order] = within_set_pos
    has_link = prev_indices >= 0
    prev_pos_original = np.where(
        has_link,
        original_pos[np.where(has_link, prev_indices, 0)],
        index_dtype(-1),
    )
    prev_pos = prev_pos_original[order]

    # Run compression: an access whose immediately preceding same-set access
    # touched the same block is a guaranteed hit (its block sits on top of the
    # set's LRU stack) and leaves the stack unchanged, so it can be dropped
    # from the ranking problem.  Stack distances of the surviving accesses are
    # unaffected, provided their prev pointers are rewired to each run's head.
    immediate = (prev_pos >= 0) & (prev_pos == within_set_pos - 1)
    if immediate.any():
        kept = ~immediate
        run_head = np.maximum.accumulate(np.where(kept, grouped_index, -1))
        compressed_index = np.cumsum(kept, dtype=index_dtype) - index_dtype(1)
        kept_sets = grouped_sets[kept]
        kept_counts = np.bincount(kept_sets, minlength=num_sets)
        kept_starts = np.cumsum(np.concatenate(([0], kept_counts))).astype(index_dtype)
        kept_set_starts = kept_starts[kept_sets]
        kept_positions = compressed_index[kept] - kept_set_starts
        kept_prev = prev_pos[kept]
        has_prev = kept_prev >= 0
        prev_grouped = set_starts[kept_sets] + np.where(has_prev, kept_prev, 0)
        prev_head = run_head[prev_grouped]
        kept_prev_positions = np.where(
            has_prev, compressed_index[prev_head] - kept_set_starts, index_dtype(-1)
        )
        grouped_hits = np.ones(n, dtype=bool)
        grouped_hits[kept] = _stack_hits(
            kept_prev_positions, kept_sets, kept_positions, kept_counts, num_sets, ways
        )
    else:
        grouped_hits = _stack_hits(
            prev_pos, grouped_sets, within_set_pos, set_counts, num_sets, ways
        )

    hits = np.empty(n, dtype=bool)
    hits[order] = grouped_hits
    misses_per_set = np.bincount(grouped_sets[~grouped_hits], minlength=num_sets)
    return LRUReplay(hits=hits, misses_per_set=misses_per_set, ways=ways)
