"""Fused single-pass pipeline: L1/L2 filter + LLC replay in one kernel call.

:class:`FusedPipeline` is the chunk-feedable front end to the fused kernels
of :mod:`repro.fastsim.kernels.fused`: each :meth:`~FusedPipeline.feed`
pushes a raw :class:`~repro.trace.generator.Trace` chunk through the
threaded L1/L2 filter and the policy's LLC engine in a single native call —
no keep-mask, no compacted block/hint/PC arrays, no Python-side
classification.  Statistics for all three levels come from one
``np.bincount`` over the per-access outcome vector plus the kernels'
per-set miss counters, and are bit-identical to the staged
``FilterStream`` → ``PolicyReplayStream`` pipeline for every supported
policy family and any ``REPRO_THREADS`` setting.

When the native fused kernel is unavailable (no compiler, ``REPRO_NATIVE=0``,
or an unsupported family configuration), the pipeline transparently runs the
staged NumPy engines internally — same inputs, same stats, no caller-side
branching — so the NumPy-only path stays first-class.

Belady's OPT is not fused (it needs future next-use indices, a two-pass
offline computation); :func:`fused_supported` returns ``False`` for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cache.config import HierarchyConfig
from repro.cache.hints import HINT_HIGH
from repro.cache.policies import LRUPolicy
from repro.cache.policies.opt import BeladyOptimal
from repro.cache.stats import CacheStats
from repro.fastsim import kernels
from repro.fastsim.filter import FilterStream
from repro.fastsim.hawkeye import hawkeye_spec
from repro.fastsim.kernels.fused import MAX_THREADS, FilterState, RegionTable
from repro.fastsim.leeway import leeway_spec
from repro.fastsim.pin import pin_spec
from repro.fastsim.replay import PolicyReplayStream
from repro.fastsim.rrip import rrip_spec
from repro.fastsim.ship import _UNSEEN, ship_spec
from repro.fastsim.stackdist import DenseIdMap, grow_to
from repro.trace.generator import Trace


def fused_supported(policy) -> bool:
    """Whether the fused pipeline covers this policy (natively or staged)."""
    if type(policy) is BeladyOptimal:
        return False
    if type(policy) is LRUPolicy:
        return True
    return (
        rrip_spec(policy) is not None
        or pin_spec(policy) is not None
        or ship_spec(policy) is not None
        or hawkeye_spec(policy) is not None
        or leeway_spec(policy) is not None
    )


def _family(policy) -> Optional[str]:
    if type(policy) is LRUPolicy:
        return "lru"
    if rrip_spec(policy) is not None:
        return "rrip"
    if pin_spec(policy) is not None:
        return "pin"
    if ship_spec(policy) is not None:
        return "ship"
    if hawkeye_spec(policy) is not None:
        return "hawkeye"
    if leeway_spec(policy) is not None:
        return "leeway"
    return None


def fused_native_supported(policy, hierarchy: HierarchyConfig) -> bool:
    """Whether the *native* fused kernel covers this policy configuration."""
    family = _family(policy)
    if family is None:
        return False
    if not kernels.has_capability(f"fused:{family}"):
        return False
    if family == "hawkeye":
        # The ring-buffer OPTgen needs a positive history window.
        return hawkeye_spec(policy).history_factor * hierarchy.llc.ways > 0
    return True


def effective_threads(requested: int, hierarchy: HierarchyConfig) -> int:
    """Largest power-of-two shard count consistent with every level's sets.

    The fused filter shards work by ``block & (S - 1)``; for per-set state
    to be thread-private, S must divide the set count of every simulated
    level, so S is clamped to the largest power of two not exceeding the
    request, ``MAX_THREADS``, and each level's set count.
    """
    cap = min(
        max(1, requested),
        MAX_THREADS,
        hierarchy.l1.num_sets,
        hierarchy.l2.num_sets,
        hierarchy.llc.num_sets,
    )
    shards = 1
    while shards * 2 <= cap:
        shards *= 2
    return shards


@dataclass(frozen=True)
class FusedStats:
    """Per-level statistics of one fused pipeline run."""

    l1_stats: CacheStats
    l2_stats: CacheStats
    llc_stats: CacheStats


class FusedPipeline:
    """Feed raw trace chunks; collect L1/L2/LLC stats in one pass.

    Parameters
    ----------
    hierarchy:
        Cache hierarchy (shared block size across levels is enforced by
        :class:`~repro.cache.config.HierarchyConfig`).
    policy:
        LLC replacement policy; must satisfy :func:`fused_supported`.
    classifier:
        Optional :class:`~repro.core.classification.GraspClassifier`
        providing reuse hints for the hint-driven families (GRASP, PIN-X).
    use_hints:
        When ``False``, the LLC replays hint-blind even if a classifier is
        given (matching the scalar simulator's ``use_hints=False``).
    threads:
        Filter-phase thread count; defaults to ``REPRO_THREADS``.  The
        effective count is clamped by :func:`effective_threads` and never
        affects results, only wall-clock.
    """

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        policy,
        *,
        classifier=None,
        use_hints: bool = True,
        threads: Optional[int] = None,
    ) -> None:
        if not fused_supported(policy):
            raise ValueError(
                f"policy {policy!r} has no fused pipeline; "
                "use fused_supported() before dispatching"
            )
        self.hierarchy = hierarchy
        self.policy = policy
        self.family = _family(policy)
        requested = kernels.thread_count() if threads is None else int(threads)
        self.threads = effective_threads(requested, hierarchy)
        self.native = fused_native_supported(policy, hierarchy)
        self._offset_bits = hierarchy.l1.block_offset_bits
        self._outcomes = np.zeros(5, dtype=np.int64)
        self._total = 0
        self._region_accesses: Dict[int, int] = {}
        self._region_misses: Dict[int, int] = {}
        regions = ()
        if use_hints and classifier is not None:
            regions = classifier.regions()
        self._regions = RegionTable.from_regions(tuple(regions))
        if not self.native:
            # Staged engines behind the same interface: identical statistics,
            # NumPy-only friendly (the engines themselves pick up the
            # standalone native kernels when those are available).
            self._filter = FilterStream(hierarchy, backend="vector")
            self._replay = PolicyReplayStream(policy, hierarchy.llc)
            self._use_hints = use_hints and classifier is not None
            self._classifier = classifier
            return
        llc = hierarchy.llc
        num_sets, ways = llc.num_sets, llc.ways
        self._filt = FilterState(
            hierarchy.l1.num_sets, hierarchy.l1.ways,
            hierarchy.l2.num_sets, hierarchy.l2.ways,
        )
        self._llc_misses = np.zeros(num_sets, dtype=np.int64)
        family = self.family
        if family == "lru":
            self._tags = np.full(num_sets * ways, -1, dtype=np.int64)
            self._stamps = np.zeros(num_sets * ways, dtype=np.int64)
            self._clocks = np.zeros(num_sets, dtype=np.int64)
        elif family == "rrip":
            spec = rrip_spec(policy)
            self._spec = spec
            self._tags = np.full(num_sets * ways, -1, dtype=np.int64)
            self._rrpv = np.full(num_sets * ways, spec.max_rrpv, dtype=np.int32)
            self._ins_table = np.asarray(spec.insertion_table, dtype=np.int32)
            self._promo_table = np.asarray(spec.promotion_table, dtype=np.int32)
            self._state = np.array([spec.psel_max // 2, 0], dtype=np.int64)
        elif family == "pin":
            spec = pin_spec(policy)
            self._spec = spec
            self._tags = np.full(num_sets * ways, -1, dtype=np.int64)
            self._rrpv = np.full(num_sets * ways, spec.max_rrpv, dtype=np.int32)
            self._pinned = np.zeros(num_sets * ways, dtype=np.uint8)
            self._pinned_count = np.zeros(num_sets, dtype=np.int32)
            self._bypasses = np.zeros(num_sets, dtype=np.int64)
            self._state = np.array([spec.psel_max // 2, 0], dtype=np.int64)
        elif family == "ship":
            spec = ship_spec(policy)
            self._spec = spec
            self._tags = np.full(num_sets * ways, -1, dtype=np.int64)
            self._rrpv = np.full(num_sets * ways, spec.max_rrpv, dtype=np.int32)
            self._line_sig = np.zeros(num_sets * ways, dtype=np.int64)
            self._reused = np.zeros(num_sets * ways, dtype=np.uint8)
            self._sig_ids = DenseIdMap()
            self._shct = np.empty(0, dtype=np.int64)
        elif family == "leeway":
            spec = leeway_spec(policy)
            self._spec = spec
            self._tags = np.full(num_sets * ways, -1, dtype=np.int64)
            self._pos = np.tile(np.arange(ways, dtype=np.int32), num_sets)
            self._line_sig = np.zeros(num_sets * ways, dtype=np.int64)
            self._observed = np.zeros(num_sets * ways, dtype=np.int32)
            self._pc_ids = DenseIdMap()
            self._predicted = np.empty(0, dtype=np.int64)
            self._votes = np.empty(0, dtype=np.int64)
        else:  # hawkeye
            spec = hawkeye_spec(policy)
            self._spec = spec
            self._history = spec.history_factor * ways
            num_samplers = (num_sets + spec.sample_period - 1) // spec.sample_period
            self._tags = np.full(num_sets * ways, -1, dtype=np.int64)
            self._rrpv = np.full(num_sets * ways, spec.max_rrpv, dtype=np.int32)
            self._friendly = np.zeros(num_sets * ways, dtype=np.uint8)
            self._line_pc = np.zeros(num_sets * ways, dtype=np.int64)
            self._block_ids = DenseIdMap()
            self._pc_id_map = DenseIdMap()
            self._predictor = np.empty(0, dtype=np.int32)
            self._last_access = np.empty(0, dtype=np.int64)
            self._last_pc = np.empty(0, dtype=np.int64)
            self._occupancy = np.zeros(
                max(1, num_samplers * self._history), dtype=np.int32
            )
            self._occ_head = np.zeros(max(1, num_samplers), dtype=np.int64)
            self._occ_len = np.zeros(max(1, num_samplers), dtype=np.int64)
            self._timestamps = np.zeros(max(1, num_samplers), dtype=np.int64)

    # -- feeding ----------------------------------------------------------

    def feed(self, trace: Trace) -> Optional[np.ndarray]:
        """Run one trace chunk through the pipeline.

        Returns the chunk's per-access outcome vector on the native path
        (codes in :mod:`repro.fastsim.kernels.fused`), ``None`` on the
        staged fallback.  Either way the accumulated statistics advance
        identically.
        """
        n = len(trace)
        if n == 0:
            return np.zeros(0, dtype=np.uint8) if self.native else None
        if not self.native:
            self._staged_feed(trace)
            return None
        blocks = trace.block_addresses(self._offset_bits)
        out = self._native_feed(trace, blocks)
        self._total += n
        # Index the (typically small) LLC substream once and count everything
        # from it — cheaper than a bincount over the whole chunk.
        llc_level = np.flatnonzero(out >= 2)
        llc_out = out[llc_level]
        l1_hits = int(np.count_nonzero(out == 0))
        self._outcomes[0] += l1_hits
        self._outcomes[1] += n - l1_hits - llc_level.shape[0]
        self._outcomes[2:] += np.bincount(llc_out, minlength=5)[2:]
        if len(trace.regions):
            # Pack (region, missed) into a combined bincount key instead of
            # masking the full chunk twice.
            packed = (trace.regions[llc_level].astype(np.int64) << 1) | (
                llc_out >= 3
            )
            for key, count in enumerate(np.bincount(packed)):
                if count:
                    label = key >> 1
                    self._region_accesses[label] = (
                        self._region_accesses.get(label, 0) + int(count)
                    )
                    if key & 1:
                        self._region_misses[label] = (
                            self._region_misses.get(label, 0) + int(count)
                        )
        return out

    def _native_feed(self, trace: Trace, blocks: np.ndarray) -> np.ndarray:
        llc = self.hierarchy.llc
        num_sets, ways = llc.num_sets, llc.ways
        family = self.family
        if family == "lru":
            out = kernels.fused_lru_feed(
                blocks, self.threads, self._filt, num_sets, ways,
                self._tags, self._stamps, self._clocks, self._llc_misses,
            )
        elif family == "rrip":
            spec = self._spec
            out = kernels.fused_rrip_feed(
                blocks, trace.addresses, self.threads, self._filt,
                self._regions, num_sets, ways, spec.max_rrpv,
                self._ins_table, self._promo_table, spec.epsilon,
                spec.psel_max, spec.leader_period, self._tags, self._rrpv,
                self._llc_misses, self._state,
            )
        elif family == "pin":
            spec = self._spec
            out = kernels.fused_pin_feed(
                blocks, trace.addresses, self.threads, self._filt,
                self._regions, num_sets, ways, spec.max_rrpv, spec.epsilon,
                spec.psel_max, spec.leader_period, spec.reserved_ways(ways),
                HINT_HIGH, self._tags, self._rrpv, self._pinned,
                self._pinned_count, self._llc_misses, self._bypasses,
                self._state,
            )
        elif family == "ship":
            spec = self._spec
            sig_ids = self._sig_ids.map(blocks >> spec.region_shift)
            self._shct = grow_to(self._shct, len(self._sig_ids), _UNSEEN)
            out = kernels.fused_ship_feed(
                blocks, sig_ids, self.threads, self._filt, num_sets, ways,
                spec.max_rrpv, spec.counter_max, self._tags, self._rrpv,
                self._line_sig, self._reused, self._shct, self._llc_misses,
            )
        elif family == "leeway":
            spec = self._spec
            pc_ids = self._pc_ids.map(np.asarray(trace.pcs, dtype=np.int64))
            self._predicted = grow_to(self._predicted, len(self._pc_ids), 0)
            self._votes = grow_to(self._votes, len(self._pc_ids), 0)
            out = kernels.fused_leeway_feed(
                blocks, pc_ids, self.threads, self._filt, num_sets, ways,
                spec.decay_period, self._tags, self._pos, self._line_sig,
                self._observed, self._predicted, self._votes,
                self._llc_misses,
            )
        else:  # hawkeye
            spec = self._spec
            block_ids = self._block_ids.map(blocks)
            pc_ids = self._pc_id_map.map(np.asarray(trace.pcs, dtype=np.int64))
            self._predictor = grow_to(
                self._predictor, len(self._pc_id_map), spec.midpoint
            )
            self._last_access = grow_to(self._last_access, len(self._block_ids), -1)
            self._last_pc = grow_to(self._last_pc, len(self._block_ids), 0)
            out = kernels.fused_hawkeye_feed(
                blocks, block_ids, pc_ids, self.threads, self._filt, num_sets,
                ways, spec.max_rrpv, spec.sample_period, spec.predictor_max,
                self._history, self._tags, self._rrpv, self._friendly,
                self._line_pc, self._predictor, self._last_access,
                self._last_pc, self._occupancy, self._occ_head, self._occ_len,
                self._timestamps, self._llc_misses,
            )
        if out is None:
            raise RuntimeError(
                "fused kernel disappeared mid-stream; "
                "construct a fresh FusedPipeline"
            )
        return out

    def _staged_feed(self, trace: Trace) -> None:
        keep = self._filter.feed(trace)
        addresses = trace.addresses[keep]
        blocks = addresses >> self._offset_bits
        hints = None
        if self._use_hints:
            hints = self._classifier.classify_array(addresses)
        self._replay.feed(
            blocks,
            hints=hints,
            regions=np.asarray(trace.regions)[keep],
            pcs=np.asarray(trace.pcs, dtype=np.int64)[keep],
        )

    # -- results ----------------------------------------------------------

    @property
    def total_references(self) -> int:
        """Accesses fed so far (all levels see the same reference stream)."""
        if not self.native:
            return self._filter.total_references
        return self._total

    def stats(self) -> FusedStats:
        """Aggregate per-level :class:`CacheStats` over everything fed."""
        if not self.native:
            l1, l2 = self._filter.level_stats()
            return FusedStats(l1_stats=l1, l2_stats=l2, llc_stats=self._replay.stats())
        hierarchy = self.hierarchy
        oc = self._outcomes
        l1_hits = int(oc[0])
        l1_misses = self._total - l1_hits
        l2_hits = int(oc[1])
        llc_hits = int(oc[2])
        llc_misses = int(oc[3] + oc[4])
        bypasses = int(oc[4])
        l1 = CacheStats.from_counts(
            name=hierarchy.l1.name,
            hits=l1_hits,
            misses=l1_misses,
            evictions=int(
                np.maximum(0, self._filt.l1_misses - hierarchy.l1.ways).sum()
            ),
        )
        l2 = CacheStats.from_counts(
            name=hierarchy.l2.name,
            hits=l2_hits,
            misses=llc_hits + llc_misses,
            evictions=int(
                np.maximum(0, self._filt.l2_misses - hierarchy.l2.ways).sum()
            ),
        )
        filled = self._llc_misses
        if self.family == "pin":
            filled = self._llc_misses - self._bypasses
        llc = CacheStats.from_counts(
            name=hierarchy.llc.name,
            hits=llc_hits,
            misses=llc_misses,
            evictions=int(np.maximum(0, filled - hierarchy.llc.ways).sum()),
            bypasses=bypasses,
            region_accesses=self._region_accesses or None,
            region_misses=self._region_misses or None,
        )
        return FusedStats(l1_stats=l1, l2_stats=l2, llc_stats=llc)

    def finish(self) -> FusedStats:
        """Alias of :meth:`stats`, closing the begin/feed/finish cycle."""
        return self.stats()


class MultiFusedPipeline:
    """One shared filter phase feeding N per-policy LLC replay engines.

    The fused multi-scheme route: each raw trace chunk runs through the
    threaded native L1/L2 filter exactly once
    (:func:`repro.fastsim.kernels.fused.fused_filter_feed`), and the kept
    accesses — compacted, hint-classified once — feed every policy's
    :class:`~repro.fastsim.replay.PolicyReplayStream`.  Compared with
    replaying the same N schemes one at a time, the raw trace is generated
    once instead of N times and filtered once instead of N times, with no
    filtered stream ever materialized to memory beyond the current chunk
    or to disk at all.

    Every policy must satisfy
    :func:`~repro.fastsim.replay.supports_vector_replay`; per-policy LLC
    statistics are bit-identical to running each policy alone through the
    staged (or fused single-policy) pipeline.  Without the native filter
    kernel the shared phase runs on the staged vector
    :class:`~repro.fastsim.filter.FilterStream` — same results, NumPy-only
    friendly — though the planner prefers the staged materialize-once path
    in that environment.
    """

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        policies,
        *,
        classifier=None,
        use_hints: bool = True,
        threads: Optional[int] = None,
    ) -> None:
        from repro.fastsim.replay import supports_vector_replay

        policies = list(policies)
        if not policies:
            raise ValueError("MultiFusedPipeline needs at least one policy")
        for policy in policies:
            if not supports_vector_replay(policy) or type(policy) is BeladyOptimal:
                raise ValueError(
                    f"policy {policy!r} has no vector replay engine; "
                    "use supports_vector_replay() before dispatching"
                )
        self.hierarchy = hierarchy
        self.policies = policies
        requested = kernels.thread_count() if threads is None else int(threads)
        self.threads = effective_threads(requested, hierarchy)
        self.native = kernels.has_capability("fused:filter")
        self._offset_bits = hierarchy.l1.block_offset_bits
        self._use_hints = use_hints and classifier is not None
        self._classifier = classifier
        self._replays = [
            PolicyReplayStream(policy, hierarchy.llc) for policy in policies
        ]
        if self.native:
            self._filt = FilterState(
                hierarchy.l1.num_sets, hierarchy.l1.ways,
                hierarchy.l2.num_sets, hierarchy.l2.ways,
            )
            self._l1_hits = 0
            self._l2_hits = 0
            self._total = 0
        else:
            self._filter = FilterStream(hierarchy, backend="vector")

    def feed(self, trace: Trace) -> None:
        """Filter one raw chunk once; advance every policy's replay."""
        n = len(trace)
        if n == 0:
            return
        if self.native:
            blocks = trace.block_addresses(self._offset_bits)
            out = kernels.fused_filter_feed(blocks, self.threads, self._filt)
            if out is None:
                raise RuntimeError(
                    "fused filter kernel disappeared mid-stream; "
                    "construct a fresh MultiFusedPipeline"
                )
            keep = out == 2
            kept_blocks = blocks[keep]
            l1_hits = int(np.count_nonzero(out == 0))
            self._total += n
            self._l1_hits += l1_hits
            self._l2_hits += n - l1_hits - int(kept_blocks.shape[0])
        else:
            keep = self._filter.feed(trace)
            kept_blocks = None
        addresses = trace.addresses[keep]
        if kept_blocks is None:
            kept_blocks = addresses >> self._offset_bits
        hints = None
        if self._use_hints:
            hints = self._classifier.classify_array(addresses)
        regions = np.asarray(trace.regions)[keep]
        pcs = np.asarray(trace.pcs, dtype=np.int64)[keep]
        for replay in self._replays:
            replay.feed(kept_blocks, hints=hints, regions=regions, pcs=pcs)

    # -- results ----------------------------------------------------------

    @property
    def total_references(self) -> int:
        """Accesses fed so far (all levels see the same reference stream)."""
        if self.native:
            return self._total
        return self._filter.total_references

    def upstream_hit_counts(self):
        """Aggregate ``(l1_hits, l2_hits)`` of the shared filter phase."""
        if self.native:
            return self._l1_hits, self._l2_hits
        return self._filter.upstream_hit_counts()

    def level_stats(self):
        """``(l1_stats, l2_stats)`` of the shared filter phase."""
        if not self.native:
            return self._filter.level_stats()
        hierarchy = self.hierarchy
        kept = self._total - self._l1_hits - self._l2_hits
        l1 = CacheStats.from_counts(
            name=hierarchy.l1.name,
            hits=self._l1_hits,
            misses=self._total - self._l1_hits,
            evictions=int(
                np.maximum(0, self._filt.l1_misses - hierarchy.l1.ways).sum()
            ),
        )
        l2 = CacheStats.from_counts(
            name=hierarchy.l2.name,
            hits=self._l2_hits,
            misses=kept,
            evictions=int(
                np.maximum(0, self._filt.l2_misses - hierarchy.l2.ways).sum()
            ),
        )
        return l1, l2

    def stats(self):
        """Per-policy LLC :class:`CacheStats`, in constructor policy order."""
        return [replay.stats() for replay in self._replays]


__all__ = [
    "FusedPipeline",
    "FusedStats",
    "MultiFusedPipeline",
    "effective_threads",
    "fused_native_supported",
    "fused_supported",
]
