"""Backward-compatible facade over :mod:`repro.fastsim.kernels`.

The compiled replay kernels historically lived here as one ~1.2k-line
module; they now live in the kernel registry package
(:mod:`repro.fastsim.kernels`), split into one module per engine family
with shared C steps in :mod:`~repro.fastsim.kernels.core` and the fused
threaded pipeline in :mod:`~repro.fastsim.kernels.fused`.  This module
re-exports the original API — ``available()`` plus the per-family
``*_feed`` / ``*_replay`` wrappers — so existing imports keep working;
new code should import from :mod:`repro.fastsim.kernels` and use
capability probes (:func:`~repro.fastsim.kernels.has_capability`) instead
of hard-coding function names.
"""

from __future__ import annotations

from repro.fastsim.kernels import (
    NATIVE_ENV_VAR,
    available,
    hawkeye_feed,
    hawkeye_replay,
    leeway_feed,
    leeway_replay,
    lru_feed,
    lru_replay,
    opt_feed,
    opt_replay,
    pin_feed,
    pin_replay,
    rrip_feed,
    rrip_replay,
    ship_feed,
    ship_replay,
)

__all__ = [
    "NATIVE_ENV_VAR",
    "available",
    "hawkeye_feed",
    "hawkeye_replay",
    "leeway_feed",
    "leeway_replay",
    "lru_feed",
    "lru_replay",
    "opt_feed",
    "opt_replay",
    "pin_feed",
    "pin_replay",
    "rrip_feed",
    "rrip_replay",
    "ship_feed",
    "ship_replay",
]
