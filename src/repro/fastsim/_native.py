"""Optional compiled replay kernels for every vectorized LLC engine.

The NumPy engines (:mod:`repro.fastsim.stackdist` for LRU,
:mod:`repro.fastsim.rrip` for SRRIP/BRRIP/DRRIP/GRASP, and the
:mod:`~repro.fastsim.ship` / :mod:`~repro.fastsim.hawkeye` /
:mod:`~repro.fastsim.leeway` / :mod:`~repro.fastsim.pin` /
:mod:`~repro.fastsim.opt` engines behind the remaining paper schemes) need no
toolchain and are the guaranteed fallback, but direct per-set inner loops in
C run an order of magnitude faster still.  When a C compiler is present this
module builds a tiny shared library once per interpreter configuration
(cached under the user's cache directory, written atomically so concurrent
processes cannot race) and exposes it through :mod:`ctypes`.  Learning
structures with unbounded key spaces (SHiP's SHCT, Leeway's and Hawkeye's
PC tables, OPTgen's per-block history) are densified to flat arrays by the
callers via ``np.unique`` so the kernels never need a hash table.

No third-party packages, build systems or network access are involved; when
``cc`` is missing, compilation fails, or ``REPRO_NATIVE=0`` is set, callers
transparently stay on the NumPy engine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import sysconfig
import tempfile
from typing import Optional

import numpy as np

#: Set to ``0`` to disable the compiled kernel (forces the NumPy engine).
NATIVE_ENV_VAR = "REPRO_NATIVE"

_SOURCE = r"""
#include <stdint.h>

/* Exact set-associative LRU replay: timestamp per way, linear way scan.
 * tags/stamps are caller-provided state of num_sets*ways entries; tags must
 * be initialised to -1 on the first call.  state[0] is the recency clock
 * in/out, so a stream can be replayed in chunks against persistent
 * tags/stamps with bit-identical outcomes.  Returns nothing; hits[i] in
 * {0,1} and misses_per_set accumulate the outcome. */
void lru_replay(const int64_t *blocks, int64_t n, int32_t num_sets,
                int32_t ways, int64_t *tags, int64_t *stamps,
                uint8_t *hits, int64_t *misses_per_set, int64_t *state)
{
    int64_t clock = state[0];
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        int64_t *tag = tags + set * ways;
        int64_t *stamp = stamps + set * ways;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            stamp[way] = ++clock;
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        int32_t victim = 0;
        int64_t oldest = stamp[0];
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { victim = w; break; }
            if (stamp[w] < oldest) { oldest = stamp[w]; victim = w; }
        }
        tag[victim] = block;
        stamp[victim] = ++clock;
    }
    state[0] = clock;
}

/* Exact RRIP-family replay (SRRIP / BRRIP / DRRIP / GRASP).
 *
 * Policy behaviour is parameterized in array form: ins_table / promo_table
 * hold, per 2-bit reuse hint, the insertion RRPV (negative = dynamic:
 * bimodal counter when psel_max == 0, DRRIP set duel otherwise) and the
 * hit-promotion RRPV (negative = decrement one step towards MRU).
 * tags/rrpv are caller-provided scratch of num_sets*ways entries (tags
 * initialised to -1, rrpv to max_rrpv); state is {psel, insert_count} in/out
 * so the final duel state can be compared against the scalar policies. */
void rrip_replay(const int64_t *blocks, const uint8_t *hints, int64_t n,
                 int32_t num_sets, int32_t ways, int32_t max_rrpv,
                 const int32_t *ins_table, const int32_t *promo_table,
                 int64_t epsilon, int64_t psel_max, int32_t leader_period,
                 int64_t *tags, int32_t *rrpv,
                 uint8_t *hits, int64_t *misses_per_set, int64_t *state)
{
    int64_t psel = state[0];
    int64_t insert_count = state[1];
    const int64_t mask = (int64_t)num_sets - 1;
    const int64_t midpoint = (psel_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        const int32_t hint = hints[i] & 3;
        int64_t *tag = tags + set * ways;
        int32_t *r = rrpv + set * ways;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            const int32_t promotion = promo_table[hint];
            if (promotion >= 0) r[way] = promotion;
            else if (r[way] > 0) r[way]--;
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { way = w; break; }
        }
        if (way < 0) {
            /* Standard RRIP victim search: leftmost saturated way, ageing
             * every way until one saturates. */
            for (;;) {
                for (int32_t w = 0; w < ways; w++) {
                    if (r[w] >= max_rrpv) { way = w; break; }
                }
                if (way >= 0) break;
                for (int32_t w = 0; w < ways; w++) r[w]++;
            }
        }
        int32_t insertion = ins_table[hint];
        if (insertion < 0) {
            if (psel_max <= 0) {
                /* BRRIP: every insertion consults the bimodal counter. */
                insert_count++;
                insertion = (epsilon > 0 && insert_count % epsilon == 0)
                                ? max_rrpv - 1 : max_rrpv;
            } else {
                const int64_t slot = set % leader_period;
                if (slot == 0) {            /* SRRIP leader */
                    if (psel < psel_max) psel++;
                    insertion = max_rrpv - 1;
                } else if (slot == 1) {     /* BRRIP leader */
                    if (psel > 0) psel--;
                    insert_count++;
                    insertion = (epsilon > 0 && insert_count % epsilon == 0)
                                    ? max_rrpv - 1 : max_rrpv;
                } else if (psel < midpoint) {
                    insertion = max_rrpv - 1;
                } else {
                    insert_count++;
                    insertion = (epsilon > 0 && insert_count % epsilon == 0)
                                    ? max_rrpv - 1 : max_rrpv;
                }
            }
        }
        tag[way] = block;
        r[way] = insertion;
    }
    state[0] = psel;
    state[1] = insert_count;
}

/* Exact PIN-X replay: DRRIP plus per-way pinned masks and a reserved-ways
 * cap (the paper's XMem adaptation).  Matches the bug-fixed scalar policy:
 * every non-bypassed insertion feeds the set duel, pinning assigns hit
 * priority on both the hit and insert paths, victim search ages only the
 * unpinned ways, and a full set whose every way is pinned bypasses the
 * incoming block (PIN-100 only), leaving all state — including PSEL —
 * untouched. */
void pin_replay(const int64_t *blocks, const uint8_t *hints, int64_t n,
                int32_t num_sets, int32_t ways, int32_t max_rrpv,
                int64_t epsilon, int64_t psel_max, int32_t leader_period,
                int32_t reserved_ways, int32_t hint_high,
                int64_t *tags, int32_t *rrpv, uint8_t *pinned,
                int32_t *pinned_count, uint8_t *hits, int64_t *misses_per_set,
                int64_t *bypasses_per_set, int64_t *state)
{
    int64_t psel = state[0];
    int64_t insert_count = state[1];
    const int64_t mask = (int64_t)num_sets - 1;
    const int64_t midpoint = (psel_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        const int32_t hint = hints[i] & 3;
        int64_t *tag = tags + set * ways;
        int32_t *r = rrpv + set * ways;
        uint8_t *pin = pinned + set * ways;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            if (pin[way]) continue;
            if (hint == hint_high && pinned_count[set] < reserved_ways) {
                pin[way] = 1;
                pinned_count[set]++;
            }
            r[way] = 0;
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { way = w; break; }
        }
        if (way < 0) {
            if (pinned_count[set] >= ways) { bypasses_per_set[set]++; continue; }
            for (;;) {
                for (int32_t w = 0; w < ways; w++) {
                    if (!pin[w] && r[w] >= max_rrpv) { way = w; break; }
                }
                if (way >= 0) break;
                for (int32_t w = 0; w < ways; w++) {
                    if (!pin[w]) r[w]++;
                }
            }
        }
        /* Every inserted block runs the DRRIP duel (the scalar bug fix);
         * the pinning path below then overrides the RRPV with hit priority. */
        int32_t insertion;
        const int64_t slot = set % leader_period;
        if (slot == 0) {
            if (psel < psel_max) psel++;
            insertion = max_rrpv - 1;
        } else if (slot == 1) {
            if (psel > 0) psel--;
            insert_count++;
            insertion = (epsilon > 0 && insert_count % epsilon == 0)
                            ? max_rrpv - 1 : max_rrpv;
        } else if (psel < midpoint) {
            insertion = max_rrpv - 1;
        } else {
            insert_count++;
            insertion = (epsilon > 0 && insert_count % epsilon == 0)
                            ? max_rrpv - 1 : max_rrpv;
        }
        tag[way] = block;
        if (hint == hint_high && pinned_count[set] < reserved_ways) {
            pin[way] = 1;
            pinned_count[set]++;
            r[way] = 0;
        } else {
            pin[way] = 0;
            r[way] = insertion;
        }
    }
    state[0] = psel;
    state[1] = insert_count;
}

/* Exact Belady's OPT replay over precomputed next-use indices: on a
 * capacity miss, evict the resident block whose next use lies farthest in
 * the future (ties only occur between never-used-again blocks and cannot
 * change any count).  next_vals is caller-provided scratch. */
void opt_replay(const int64_t *blocks, const int64_t *next_use, int64_t n,
                int32_t num_sets, int32_t ways, int64_t *tags,
                int64_t *next_vals, uint8_t *hits, int64_t *misses_per_set)
{
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        int64_t *tag = tags + set * ways;
        int64_t *nv = next_vals + set * ways;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            nv[way] = next_use[i];
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { way = w; break; }
        }
        if (way < 0) {
            way = 0;
            for (int32_t w = 1; w < ways; w++) {
                if (nv[w] > nv[way]) way = w;
            }
        }
        tag[way] = block;
        nv[way] = next_use[i];
    }
}

/* Exact SHiP-MEM replay: SRRIP plus the Signature History Counter Table,
 * indexed by dense region-signature ids (the caller densifies with
 * np.unique; shct is initialised to the unseen value).  A first reuse
 * trains the line's signature up, a capacity eviction of a never-reused
 * line trains it down, and every insertion reads the incoming signature to
 * pick between long and distant re-reference insertion. */
void ship_replay(const int64_t *blocks, const int64_t *sig_ids, int64_t n,
                 int32_t num_sets, int32_t ways, int32_t max_rrpv,
                 int32_t counter_max, int64_t *tags, int32_t *rrpv,
                 int64_t *line_sig, uint8_t *reused, int64_t *shct,
                 uint8_t *hits, int64_t *misses_per_set)
{
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        const int64_t sig = sig_ids[i];
        int64_t *tag = tags + set * ways;
        int32_t *r = rrpv + set * ways;
        int64_t *ls = line_sig + set * ways;
        uint8_t *ru = reused + set * ways;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            r[way] = 0;
            if (!ru[way]) {
                ru[way] = 1;
                if (shct[ls[way]] < counter_max) shct[ls[way]]++;
            }
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { way = w; break; }
        }
        if (way < 0) {
            for (;;) {
                for (int32_t w = 0; w < ways; w++) {
                    if (r[w] >= max_rrpv) { way = w; break; }
                }
                if (way >= 0) break;
                for (int32_t w = 0; w < ways; w++) r[w]++;
            }
            if (!ru[way] && shct[ls[way]] > 0) shct[ls[way]]--;
        }
        tag[way] = block;
        r[way] = (shct[sig] == 0) ? max_rrpv : max_rrpv - 1;
        ls[way] = sig;
        ru[way] = 0;
    }
}

/* Exact Leeway replay: per-set recency-stack positions (0 = MRU), per-line
 * observed live distances, and the global per-signature predictor with the
 * reuse-oriented (grow fast, shrink slowly) update.  pos is caller-
 * initialised to 0..ways-1 per set; predicted/votes are dense per-PC
 * arrays (caller densifies with np.unique). */
void leeway_replay(const int64_t *blocks, const int64_t *pc_ids, int64_t n,
                   int32_t num_sets, int32_t ways, int32_t decay_period,
                   int64_t *tags, int32_t *pos, int64_t *line_sig,
                   int32_t *observed, int64_t *predicted, int64_t *votes,
                   uint8_t *hits, int64_t *misses_per_set)
{
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        int64_t *tag = tags + set * ways;
        int32_t *p = pos + set * ways;
        int64_t *ls = line_sig + set * ways;
        int32_t *ob = observed + set * ways;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            const int32_t depth = p[way];
            if (depth > ob[way]) ob[way] = depth;
            for (int32_t w = 0; w < ways; w++) {
                if (p[w] < depth) p[w]++;
            }
            p[way] = 0;
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { way = w; break; }
        }
        if (way < 0) {
            /* Deepest predicted-dead line, else plain LRU (positions are a
             * permutation, so comparisons are tie-free). */
            int32_t lru = 0;
            int32_t best = -1;
            for (int32_t w = 0; w < ways; w++) {
                if (p[w] > p[lru]) lru = w;
                if (p[w] > predicted[ls[w]] && (best < 0 || p[w] > p[best])) best = w;
            }
            way = (best >= 0) ? best : lru;
            const int64_t sig = ls[way];
            const int64_t obs = ob[way];
            const int64_t prd = predicted[sig];
            if (obs > prd) {
                predicted[sig] = obs;
                votes[sig] = 0;
            } else if (obs < prd) {
                if (++votes[sig] >= decay_period) {
                    predicted[sig] = prd - 1;
                    votes[sig] = 0;
                }
            }
        }
        tag[way] = block;
        ls[way] = pc_ids[i];
        ob[way] = 0;
        const int32_t depth = p[way];
        for (int32_t w = 0; w < ways; w++) {
            if (p[w] < depth) p[w]++;
        }
        p[way] = 0;
    }
}

/* Hawkeye's OPTgen step for one sampled set: replicate _OptGen.access with
 * a ring-buffer occupancy window and global (dense-block-id) last-access /
 * last-PC tables — a block maps to exactly one set, so one global table
 * serves every sampler, and the scalar structure's stale-entry trimming is
 * subsumed by the start >= 0 window check. */
static void hawkeye_observe(int64_t sampler, int64_t bid, int64_t pc,
                            int32_t capacity, int64_t history,
                            int32_t *occupancy, int64_t *occ_head,
                            int64_t *occ_len, int64_t *timestamps,
                            int64_t *last_access, int64_t *last_pc,
                            int32_t *predictor, int32_t predictor_max)
{
    int32_t *occ = occupancy + sampler * history;
    const int64_t t = timestamps[sampler];
    const int64_t len = occ_len[sampler];
    const int64_t head = occ_head[sampler];
    const int64_t base = t - len;
    const int64_t last = last_access[bid];
    int64_t train_pc = -1;
    int opt_hit = 0;
    if (last >= 0) {
        const int64_t start = last - base;
        if (start >= 0) {
            train_pc = last_pc[bid];
            if (start < len) {
                int32_t max_occ = 0;
                for (int64_t k = start; k < len; k++) {
                    const int32_t v = occ[(head + k) % history];
                    if (v > max_occ) max_occ = v;
                }
                if (max_occ < capacity) {
                    opt_hit = 1;
                    for (int64_t k = start; k < len; k++) occ[(head + k) % history]++;
                }
            } else {
                opt_hit = 1;  /* same-timestamp re-access: empty interval */
            }
        }
    }
    last_access[bid] = t;
    last_pc[bid] = pc;
    if (len == history) {
        occ[head] = 0;
        occ_head[sampler] = (head + 1) % history;
    } else {
        occ[(head + len) % history] = 0;
        occ_len[sampler] = len + 1;
    }
    timestamps[sampler] = t + 1;
    if (train_pc >= 0) {
        const int32_t v = predictor[train_pc];
        if (opt_hit) {
            if (v < predictor_max) predictor[train_pc] = v + 1;
        } else if (v > 0) {
            predictor[train_pc] = v - 1;
        }
    }
}

/* Exact Hawkeye replay: sampled-set OPTgen training, the PC predictor
 * (dense pc ids, initialised to the weakly-friendly midpoint), friendly /
 * averse insertion and hit promotion, ageing of other lines on friendly
 * insertions, and detraining when an oldest friendly line is evicted. */
void hawkeye_replay(const int64_t *blocks, const int64_t *block_ids,
                    const int64_t *pc_ids, int64_t n, int32_t num_sets,
                    int32_t ways, int32_t max_rrpv, int32_t sample_period,
                    int32_t predictor_max, int64_t history, int64_t *tags,
                    int32_t *rrpv, uint8_t *friendly, int64_t *line_pc,
                    int32_t *predictor, int64_t *last_access, int64_t *last_pc,
                    int32_t *occupancy, int64_t *occ_head, int64_t *occ_len,
                    int64_t *timestamps, uint8_t *hits, int64_t *misses_per_set)
{
    const int64_t mask = (int64_t)num_sets - 1;
    const int32_t midpoint = (predictor_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        const int64_t pc = pc_ids[i];
        int64_t *tag = tags + set * ways;
        int32_t *r = rrpv + set * ways;
        uint8_t *fr = friendly + set * ways;
        int64_t *lp = line_pc + set * ways;
        const int sampled = (set % sample_period) == 0;
        const int64_t sampler = set / sample_period;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            if (sampled)
                hawkeye_observe(sampler, block_ids[i], pc, ways, history,
                                occupancy, occ_head, occ_len, timestamps,
                                last_access, last_pc, predictor, predictor_max);
            const int f = predictor[pc] >= midpoint;
            fr[way] = (uint8_t)f;
            lp[way] = pc;
            r[way] = f ? 0 : max_rrpv;
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { way = w; break; }
        }
        if (way < 0) {
            /* Prefer a cache-averse (saturated) line; otherwise evict the
             * oldest line and detrain its PC if it was friendly. */
            for (int32_t w = 0; w < ways; w++) {
                if (r[w] >= max_rrpv) { way = w; break; }
            }
            if (way < 0) {
                way = 0;
                for (int32_t w = 1; w < ways; w++) {
                    if (r[w] > r[way]) way = w;
                }
                if (fr[way] && predictor[lp[way]] > 0) predictor[lp[way]]--;
            }
        }
        if (sampled)
            hawkeye_observe(sampler, block_ids[i], pc, ways, history,
                            occupancy, occ_head, occ_len, timestamps,
                            last_access, last_pc, predictor, predictor_max);
        const int f = predictor[pc] >= midpoint;
        if (f) {
            for (int32_t w = 0; w < ways; w++) {
                if (w != way && r[w] < max_rrpv - 1) r[w]++;
            }
        }
        fr[way] = (uint8_t)f;
        lp[way] = pc;
        r[way] = f ? 0 : max_rrpv;
        tag[way] = block;
    }
}
"""

_lib: Optional[ctypes.CDLL] = None
_resolved = False


def _build_dir() -> str:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    platform_tag = sysconfig.get_platform().replace("-", "_").replace(".", "_")
    name = f"repro_fastsim_{digest}_py{sys.version_info[0]}{sys.version_info[1]}_{platform_tag}"
    # The library is loaded into the process, so the cache must not live at a
    # predictable path in a world-writable directory (another local user could
    # plant a malicious .so there).  Prefer the user's cache directory; fall
    # back to a fresh private temp directory (per-process recompile).
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    try:
        directory = os.path.join(cache_home, "repro-fastsim", name)
        os.makedirs(directory, mode=0o700, exist_ok=True)
        return directory
    except OSError:
        return tempfile.mkdtemp(prefix=name)


def _compile() -> Optional[ctypes.CDLL]:
    try:
        directory = _build_dir()
    except OSError:
        return None
    library = os.path.join(directory, "lru_replay.so")
    if not os.path.exists(library):
        try:
            source = os.path.join(directory, "lru_replay.c")
            with open(source, "w") as handle:
                handle.write(_SOURCE)
            scratch = os.path.join(directory, f"lru_replay.{os.getpid()}.so")
            subprocess.run(
                ["cc", "-O3", "-shared", "-fPIC", "-o", scratch, source],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(scratch, library)
        except (OSError, subprocess.SubprocessError):
            return None
    # Signature shorthand: pointers (P*) and scalars (i32/i64) in C argument
    # order, one row per kernel.
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_i32 = ctypes.POINTER(ctypes.c_int32)
    p_u8 = ctypes.POINTER(ctypes.c_uint8)
    i64 = ctypes.c_int64
    i32 = ctypes.c_int32
    signatures = {
        "lru_replay": [p_i64, i64, i32, i32, p_i64, p_i64, p_u8, p_i64, p_i64],
        "rrip_replay": [
            p_i64, p_u8, i64, i32, i32, i32, p_i32, p_i32, i64, i64, i32,
            p_i64, p_i32, p_u8, p_i64, p_i64,
        ],
        "pin_replay": [
            p_i64, p_u8, i64, i32, i32, i32, i64, i64, i32, i32, i32,
            p_i64, p_i32, p_u8, p_i32, p_u8, p_i64, p_i64, p_i64,
        ],
        "opt_replay": [p_i64, p_i64, i64, i32, i32, p_i64, p_i64, p_u8, p_i64],
        "ship_replay": [
            p_i64, p_i64, i64, i32, i32, i32, i32, p_i64, p_i32, p_i64, p_u8,
            p_i64, p_u8, p_i64,
        ],
        "leeway_replay": [
            p_i64, p_i64, i64, i32, i32, i32, p_i64, p_i32, p_i64, p_i32,
            p_i64, p_i64, p_u8, p_i64,
        ],
        "hawkeye_replay": [
            p_i64, p_i64, p_i64, i64, i32, i32, i32, i32, i32, i64, p_i64,
            p_i32, p_u8, p_i64, p_i32, p_i64, p_i64, p_i32, p_i64, p_i64,
            p_i64, p_u8, p_i64,
        ],
    }
    try:
        lib = ctypes.CDLL(library)
        for name, argtypes in signatures.items():
            function = getattr(lib, name)
            function.restype = None
            function.argtypes = argtypes
        return lib
    except (OSError, AttributeError):
        return None


def available() -> bool:
    """Whether the compiled kernel can be used (and is not disabled)."""
    global _lib, _resolved
    if not _resolved:
        disabled = os.environ.get(NATIVE_ENV_VAR, "").strip() == "0"
        _lib = None if disabled else _compile()
        _resolved = True
    return _lib is not None


def lru_feed(
    blocks: np.ndarray,
    num_sets: int,
    ways: int,
    tags: np.ndarray,
    stamps: np.ndarray,
    misses_per_set: np.ndarray,
    state: np.ndarray,
):
    """Run the LRU kernel over caller-owned state; ``None`` when unavailable.

    ``tags``/``stamps`` (``num_sets * ways`` int64, tags initialised to -1),
    ``misses_per_set`` (accumulating) and ``state`` (``[clock]``) persist
    across calls, so feeding a stream in chunks is bit-identical to one call
    over the concatenation.  Returns the chunk's hit mask.
    """
    if not available():
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    _lib.lru_replay(
        _as_i64(blocks),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        _as_i64(tags),
        _as_i64(stamps),
        _as_u8(hits),
        _as_i64(misses_per_set),
        _as_i64(state),
    )
    return hits.view(bool)


def lru_replay(blocks: np.ndarray, num_sets: int, ways: int):
    """Replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set)`` matching the NumPy engine exactly.
    """
    if not available():
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    stamps = np.zeros(num_sets * ways, dtype=np.int64)
    state = np.zeros(1, dtype=np.int64)
    hits = lru_feed(blocks, num_sets, ways, tags, stamps, misses_per_set, state)
    return hits, misses_per_set


def rrip_feed(
    blocks: np.ndarray,
    hints: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    ins_table: np.ndarray,
    promo_table: np.ndarray,
    epsilon: int,
    psel_max: int,
    leader_period: int,
    tags: np.ndarray,
    rrpv: np.ndarray,
    misses_per_set: np.ndarray,
    state: np.ndarray,
):
    """Run the RRIP kernel over caller-owned state; ``None`` when unavailable.

    ``tags`` (int64, -1 initial) / ``rrpv`` (int32, ``max_rrpv`` initial) /
    ``misses_per_set`` / ``state`` (``[psel, insert_count]``) persist across
    calls.  Returns the chunk's hit mask.
    """
    if not available():
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    hints = np.ascontiguousarray(hints, dtype=np.uint8)
    ins_table = np.ascontiguousarray(ins_table, dtype=np.int32)
    promo_table = np.ascontiguousarray(promo_table, dtype=np.int32)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    _lib.rrip_replay(
        _as_i64(blocks),
        _as_u8(hints),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        _as_i32(ins_table),
        _as_i32(promo_table),
        ctypes.c_int64(epsilon),
        ctypes.c_int64(psel_max),
        ctypes.c_int32(leader_period),
        _as_i64(tags),
        _as_i32(rrpv),
        _as_u8(hits),
        _as_i64(misses_per_set),
        _as_i64(state),
    )
    return hits.view(bool)


def rrip_replay(
    blocks: np.ndarray,
    hints: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    ins_table: np.ndarray,
    promo_table: np.ndarray,
    epsilon: int,
    psel_max: int,
    leader_period: int,
    psel_init: int,
):
    """RRIP-family replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, psel, insert_count)`` matching the NumPy
    engine (:func:`repro.fastsim.rrip.numpy_rrip_replay`) exactly.
    """
    if not available():
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    rrpv = np.full(num_sets * ways, max_rrpv, dtype=np.int32)
    state = np.array([psel_init, 0], dtype=np.int64)
    hits = rrip_feed(
        blocks, hints, num_sets, ways, max_rrpv, ins_table, promo_table,
        epsilon, psel_max, leader_period, tags, rrpv, misses_per_set, state,
    )
    return hits, misses_per_set, int(state[0]), int(state[1])


def _as_i64(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _as_i32(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))


def _as_u8(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8))


def pin_replay(
    blocks: np.ndarray,
    hints: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    epsilon: int,
    psel_max: int,
    leader_period: int,
    reserved_ways: int,
    hint_high: int,
    psel_init: int,
):
    """PIN-X replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, bypasses_per_set, psel, insert_count)``
    matching :func:`repro.fastsim.pin.numpy_pin_replay` exactly.
    """
    if not available():
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    bypasses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    rrpv = np.full(num_sets * ways, max_rrpv, dtype=np.int32)
    pinned = np.zeros(num_sets * ways, dtype=np.uint8)
    pinned_count = np.zeros(num_sets, dtype=np.int32)
    state = np.array([psel_init, 0], dtype=np.int64)
    hits = pin_feed(
        blocks, hints, num_sets, ways, max_rrpv, epsilon, psel_max,
        leader_period, reserved_ways, hint_high, tags, rrpv, pinned,
        pinned_count, misses_per_set, bypasses_per_set, state,
    )
    return hits, misses_per_set, bypasses_per_set, int(state[0]), int(state[1])


def pin_feed(
    blocks: np.ndarray,
    hints: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    epsilon: int,
    psel_max: int,
    leader_period: int,
    reserved_ways: int,
    hint_high: int,
    tags: np.ndarray,
    rrpv: np.ndarray,
    pinned: np.ndarray,
    pinned_count: np.ndarray,
    misses_per_set: np.ndarray,
    bypasses_per_set: np.ndarray,
    state: np.ndarray,
):
    """Run the PIN-X kernel over caller-owned state; ``None`` when unavailable.

    All array arguments after ``hint_high`` persist across calls (``state``
    is ``[psel, insert_count]``).  Returns the chunk's hit mask.
    """
    if not available():
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    hints = np.ascontiguousarray(hints, dtype=np.uint8)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    _lib.pin_replay(
        _as_i64(blocks),
        _as_u8(hints),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        ctypes.c_int64(epsilon),
        ctypes.c_int64(psel_max),
        ctypes.c_int32(leader_period),
        ctypes.c_int32(reserved_ways),
        ctypes.c_int32(hint_high),
        _as_i64(tags),
        _as_i32(rrpv),
        _as_u8(pinned),
        _as_i32(pinned_count),
        _as_u8(hits),
        _as_i64(misses_per_set),
        _as_i64(bypasses_per_set),
        _as_i64(state),
    )
    return hits.view(bool)


def opt_replay(blocks: np.ndarray, next_use: np.ndarray, num_sets: int, ways: int):
    """Belady OPT replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set)`` matching
    :func:`repro.fastsim.opt.numpy_opt_replay` exactly.
    """
    if not available():
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    next_vals = np.zeros(num_sets * ways, dtype=np.int64)
    hits = opt_feed(blocks, next_use, num_sets, ways, tags, next_vals, misses_per_set)
    return hits, misses_per_set


def opt_feed(
    blocks: np.ndarray,
    next_use: np.ndarray,
    num_sets: int,
    ways: int,
    tags: np.ndarray,
    next_vals: np.ndarray,
    misses_per_set: np.ndarray,
):
    """Run the OPT kernel over caller-owned state; ``None`` when unavailable.

    ``next_use`` must hold globally consistent next-use indices (the caller's
    two-pass precompute); ``tags``/``next_vals``/``misses_per_set`` persist
    across calls.  Returns the chunk's hit mask.
    """
    if not available():
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    next_use = np.ascontiguousarray(next_use, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    _lib.opt_replay(
        _as_i64(blocks),
        _as_i64(next_use),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        _as_i64(tags),
        _as_i64(next_vals),
        _as_u8(hits),
        _as_i64(misses_per_set),
    )
    return hits.view(bool)


def ship_replay(
    blocks: np.ndarray,
    sig_ids: np.ndarray,
    num_signatures: int,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    counter_max: int,
    unseen_value: int,
):
    """SHiP-MEM replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, shct)`` matching
    :func:`repro.fastsim.ship.numpy_ship_replay` exactly; ``shct`` is the
    final counter table indexed by dense signature id.
    """
    if not available():
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    rrpv = np.full(num_sets * ways, max_rrpv, dtype=np.int32)
    line_sig = np.zeros(num_sets * ways, dtype=np.int64)
    reused = np.zeros(num_sets * ways, dtype=np.uint8)
    shct = np.full(max(1, num_signatures), unseen_value, dtype=np.int64)
    hits = ship_feed(
        blocks, sig_ids, num_sets, ways, max_rrpv, counter_max,
        tags, rrpv, line_sig, reused, shct, misses_per_set,
    )
    return hits, misses_per_set, shct[:num_signatures]


def ship_feed(
    blocks: np.ndarray,
    sig_ids: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    counter_max: int,
    tags: np.ndarray,
    rrpv: np.ndarray,
    line_sig: np.ndarray,
    reused: np.ndarray,
    shct: np.ndarray,
    misses_per_set: np.ndarray,
):
    """Run the SHiP kernel over caller-owned state; ``None`` when unavailable.

    ``sig_ids`` must use signature ids that are stable across calls, and
    ``shct`` must cover every id in the chunk; all array arguments after
    ``counter_max`` persist across calls.  Returns the chunk's hit mask.
    """
    if not available():
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    sig_ids = np.ascontiguousarray(sig_ids, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    _lib.ship_replay(
        _as_i64(blocks),
        _as_i64(sig_ids),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        ctypes.c_int32(counter_max),
        _as_i64(tags),
        _as_i32(rrpv),
        _as_i64(line_sig),
        _as_u8(reused),
        _as_i64(shct),
        _as_u8(hits),
        _as_i64(misses_per_set),
    )
    return hits.view(bool)


def leeway_replay(
    blocks: np.ndarray,
    pc_ids: np.ndarray,
    num_signatures: int,
    num_sets: int,
    ways: int,
    decay_period: int,
):
    """Leeway replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, predicted)`` matching
    :func:`repro.fastsim.leeway.numpy_leeway_replay` exactly; ``predicted``
    is the final live-distance table indexed by dense PC id.
    """
    if not available():
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    pos = np.tile(np.arange(ways, dtype=np.int32), num_sets)
    line_sig = np.zeros(num_sets * ways, dtype=np.int64)
    observed = np.zeros(num_sets * ways, dtype=np.int32)
    predicted = np.zeros(max(1, num_signatures), dtype=np.int64)
    votes = np.zeros(max(1, num_signatures), dtype=np.int64)
    hits = leeway_feed(
        blocks, pc_ids, num_sets, ways, decay_period,
        tags, pos, line_sig, observed, predicted, votes, misses_per_set,
    )
    return hits, misses_per_set, predicted[:num_signatures]


def leeway_feed(
    blocks: np.ndarray,
    pc_ids: np.ndarray,
    num_sets: int,
    ways: int,
    decay_period: int,
    tags: np.ndarray,
    pos: np.ndarray,
    line_sig: np.ndarray,
    observed: np.ndarray,
    predicted: np.ndarray,
    votes: np.ndarray,
    misses_per_set: np.ndarray,
):
    """Run the Leeway kernel over caller-owned state; ``None`` when unavailable.

    ``pc_ids`` must use PC ids that are stable across calls, and
    ``predicted``/``votes`` must cover every id in the chunk; all array
    arguments after ``decay_period`` persist across calls.  Returns the
    chunk's hit mask.
    """
    if not available():
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    pc_ids = np.ascontiguousarray(pc_ids, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    _lib.leeway_replay(
        _as_i64(blocks),
        _as_i64(pc_ids),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(decay_period),
        _as_i64(tags),
        _as_i32(pos),
        _as_i64(line_sig),
        _as_i32(observed),
        _as_i64(predicted),
        _as_i64(votes),
        _as_u8(hits),
        _as_i64(misses_per_set),
    )
    return hits.view(bool)


def hawkeye_replay(
    blocks: np.ndarray,
    block_ids: np.ndarray,
    num_blocks: int,
    pc_ids: np.ndarray,
    num_pcs: int,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    sample_period: int,
    predictor_max: int,
    history: int,
):
    """Hawkeye replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, predictor)`` matching
    :func:`repro.fastsim.hawkeye.numpy_hawkeye_replay` exactly;
    ``predictor`` is the final counter table indexed by dense PC id.
    """
    if not available() or history <= 0:
        return None
    num_samplers = (num_sets + sample_period - 1) // sample_period
    midpoint = (predictor_max + 1) // 2
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    rrpv = np.full(num_sets * ways, max_rrpv, dtype=np.int32)
    friendly = np.zeros(num_sets * ways, dtype=np.uint8)
    line_pc = np.zeros(num_sets * ways, dtype=np.int64)
    predictor = np.full(max(1, num_pcs), midpoint, dtype=np.int32)
    last_access = np.full(max(1, num_blocks), -1, dtype=np.int64)
    last_pc = np.zeros(max(1, num_blocks), dtype=np.int64)
    occupancy = np.zeros(max(1, num_samplers * history), dtype=np.int32)
    occ_head = np.zeros(max(1, num_samplers), dtype=np.int64)
    occ_len = np.zeros(max(1, num_samplers), dtype=np.int64)
    timestamps = np.zeros(max(1, num_samplers), dtype=np.int64)
    hits = hawkeye_feed(
        blocks, block_ids, pc_ids, num_sets, ways, max_rrpv, sample_period,
        predictor_max, history, tags, rrpv, friendly, line_pc, predictor,
        last_access, last_pc, occupancy, occ_head, occ_len, timestamps,
        misses_per_set,
    )
    return hits, misses_per_set, predictor[:num_pcs]


def hawkeye_feed(
    blocks: np.ndarray,
    block_ids: np.ndarray,
    pc_ids: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    sample_period: int,
    predictor_max: int,
    history: int,
    tags: np.ndarray,
    rrpv: np.ndarray,
    friendly: np.ndarray,
    line_pc: np.ndarray,
    predictor: np.ndarray,
    last_access: np.ndarray,
    last_pc: np.ndarray,
    occupancy: np.ndarray,
    occ_head: np.ndarray,
    occ_len: np.ndarray,
    timestamps: np.ndarray,
    misses_per_set: np.ndarray,
):
    """Run the Hawkeye kernel over caller-owned state; ``None`` when unavailable.

    ``block_ids``/``pc_ids`` must use dense ids that are stable across calls
    and covered by ``last_access``/``last_pc``/``predictor``; all array
    arguments after ``history`` persist across calls.  Returns the chunk's
    hit mask.
    """
    if not available() or history <= 0:
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    block_ids = np.ascontiguousarray(block_ids, dtype=np.int64)
    pc_ids = np.ascontiguousarray(pc_ids, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    _lib.hawkeye_replay(
        _as_i64(blocks),
        _as_i64(block_ids),
        _as_i64(pc_ids),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        ctypes.c_int32(sample_period),
        ctypes.c_int32(predictor_max),
        ctypes.c_int64(history),
        _as_i64(tags),
        _as_i32(rrpv),
        _as_u8(friendly),
        _as_i64(line_pc),
        _as_i32(predictor),
        _as_i64(last_access),
        _as_i64(last_pc),
        _as_i32(occupancy),
        _as_i64(occ_head),
        _as_i64(occ_len),
        _as_i64(timestamps),
        _as_u8(hits),
        _as_i64(misses_per_set),
    )
    return hits.view(bool)
