"""Deprecated facade over :mod:`repro.fastsim.kernels`.

The compiled replay kernels historically lived here as one ~1.2k-line
module; they now live in the kernel registry package
(:mod:`repro.fastsim.kernels`), split into one module per engine family
with shared C steps in :mod:`~repro.fastsim.kernels.core` and the fused
threaded pipeline in :mod:`~repro.fastsim.kernels.fused`.  This module
re-exports the original API — ``available()`` plus the per-family
``*_feed`` / ``*_replay`` wrappers — so existing imports keep working,
but importing it now emits a :class:`DeprecationWarning` (CI promotes
repro deprecations to errors, so nothing inside the repo may import it).
Import from :mod:`repro.fastsim.kernels` instead and use capability
probes (:func:`~repro.fastsim.kernels.has_capability`) rather than
hard-coding function names.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.fastsim._native is deprecated; import repro.fastsim.kernels "
    "instead (same names, plus the capability-probe API)",
    DeprecationWarning,
    stacklevel=2,
)

from repro.fastsim.kernels import (  # noqa: E402
    NATIVE_ENV_VAR,
    available,
    hawkeye_feed,
    hawkeye_replay,
    leeway_feed,
    leeway_replay,
    lru_feed,
    lru_replay,
    opt_feed,
    opt_replay,
    pin_feed,
    pin_replay,
    rrip_feed,
    rrip_replay,
    ship_feed,
    ship_replay,
)

__all__ = [
    "NATIVE_ENV_VAR",
    "available",
    "hawkeye_feed",
    "hawkeye_replay",
    "leeway_feed",
    "leeway_replay",
    "lru_feed",
    "lru_replay",
    "opt_feed",
    "opt_replay",
    "pin_feed",
    "pin_replay",
    "rrip_feed",
    "rrip_replay",
    "ship_feed",
    "ship_replay",
]
