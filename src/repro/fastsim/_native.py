"""Optional compiled replay kernels (LRU and the RRIP family).

The NumPy engines (:mod:`repro.fastsim.stackdist` for LRU,
:mod:`repro.fastsim.rrip` for SRRIP/BRRIP/DRRIP/GRASP) need no toolchain and
are the guaranteed fallback, but direct per-set inner loops in C run an order
of magnitude faster still.  When a C compiler is present this module builds a
tiny shared library once per interpreter configuration (cached under the
user's cache directory, written atomically so concurrent processes cannot
race) and exposes it through :mod:`ctypes`.

No third-party packages, build systems or network access are involved; when
``cc`` is missing, compilation fails, or ``REPRO_NATIVE=0`` is set, callers
transparently stay on the NumPy engine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import sysconfig
import tempfile
from typing import Optional

import numpy as np

#: Set to ``0`` to disable the compiled kernel (forces the NumPy engine).
NATIVE_ENV_VAR = "REPRO_NATIVE"

_SOURCE = r"""
#include <stdint.h>

/* Exact set-associative LRU replay: timestamp per way, linear way scan.
 * tags/stamps are caller-provided scratch of num_sets*ways entries; tags
 * must be initialised to -1.  Returns nothing; hits[i] in {0,1} and
 * misses_per_set accumulate the outcome. */
void lru_replay(const int64_t *blocks, int64_t n, int32_t num_sets,
                int32_t ways, int64_t *tags, int64_t *stamps,
                uint8_t *hits, int64_t *misses_per_set)
{
    int64_t clock = 0;
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        int64_t *tag = tags + set * ways;
        int64_t *stamp = stamps + set * ways;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            stamp[way] = ++clock;
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        int32_t victim = 0;
        int64_t oldest = stamp[0];
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { victim = w; break; }
            if (stamp[w] < oldest) { oldest = stamp[w]; victim = w; }
        }
        tag[victim] = block;
        stamp[victim] = ++clock;
    }
}

/* Exact RRIP-family replay (SRRIP / BRRIP / DRRIP / GRASP).
 *
 * Policy behaviour is parameterized in array form: ins_table / promo_table
 * hold, per 2-bit reuse hint, the insertion RRPV (negative = dynamic:
 * bimodal counter when psel_max == 0, DRRIP set duel otherwise) and the
 * hit-promotion RRPV (negative = decrement one step towards MRU).
 * tags/rrpv are caller-provided scratch of num_sets*ways entries (tags
 * initialised to -1, rrpv to max_rrpv); state is {psel, insert_count} in/out
 * so the final duel state can be compared against the scalar policies. */
void rrip_replay(const int64_t *blocks, const uint8_t *hints, int64_t n,
                 int32_t num_sets, int32_t ways, int32_t max_rrpv,
                 const int32_t *ins_table, const int32_t *promo_table,
                 int64_t epsilon, int64_t psel_max, int32_t leader_period,
                 int64_t *tags, int32_t *rrpv,
                 uint8_t *hits, int64_t *misses_per_set, int64_t *state)
{
    int64_t psel = state[0];
    int64_t insert_count = state[1];
    const int64_t mask = (int64_t)num_sets - 1;
    const int64_t midpoint = (psel_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        const int32_t hint = hints[i] & 3;
        int64_t *tag = tags + set * ways;
        int32_t *r = rrpv + set * ways;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            const int32_t promotion = promo_table[hint];
            if (promotion >= 0) r[way] = promotion;
            else if (r[way] > 0) r[way]--;
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { way = w; break; }
        }
        if (way < 0) {
            /* Standard RRIP victim search: leftmost saturated way, ageing
             * every way until one saturates. */
            for (;;) {
                for (int32_t w = 0; w < ways; w++) {
                    if (r[w] >= max_rrpv) { way = w; break; }
                }
                if (way >= 0) break;
                for (int32_t w = 0; w < ways; w++) r[w]++;
            }
        }
        int32_t insertion = ins_table[hint];
        if (insertion < 0) {
            if (psel_max <= 0) {
                /* BRRIP: every insertion consults the bimodal counter. */
                insert_count++;
                insertion = (epsilon > 0 && insert_count % epsilon == 0)
                                ? max_rrpv - 1 : max_rrpv;
            } else {
                const int64_t slot = set % leader_period;
                if (slot == 0) {            /* SRRIP leader */
                    if (psel < psel_max) psel++;
                    insertion = max_rrpv - 1;
                } else if (slot == 1) {     /* BRRIP leader */
                    if (psel > 0) psel--;
                    insert_count++;
                    insertion = (epsilon > 0 && insert_count % epsilon == 0)
                                    ? max_rrpv - 1 : max_rrpv;
                } else if (psel < midpoint) {
                    insertion = max_rrpv - 1;
                } else {
                    insert_count++;
                    insertion = (epsilon > 0 && insert_count % epsilon == 0)
                                    ? max_rrpv - 1 : max_rrpv;
                }
            }
        }
        tag[way] = block;
        r[way] = insertion;
    }
    state[0] = psel;
    state[1] = insert_count;
}
"""

_lib: Optional[ctypes.CDLL] = None
_resolved = False


def _build_dir() -> str:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    platform_tag = sysconfig.get_platform().replace("-", "_").replace(".", "_")
    name = f"repro_fastsim_{digest}_py{sys.version_info[0]}{sys.version_info[1]}_{platform_tag}"
    # The library is loaded into the process, so the cache must not live at a
    # predictable path in a world-writable directory (another local user could
    # plant a malicious .so there).  Prefer the user's cache directory; fall
    # back to a fresh private temp directory (per-process recompile).
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    try:
        directory = os.path.join(cache_home, "repro-fastsim", name)
        os.makedirs(directory, mode=0o700, exist_ok=True)
        return directory
    except OSError:
        return tempfile.mkdtemp(prefix=name)


def _compile() -> Optional[ctypes.CDLL]:
    try:
        directory = _build_dir()
    except OSError:
        return None
    library = os.path.join(directory, "lru_replay.so")
    if not os.path.exists(library):
        try:
            source = os.path.join(directory, "lru_replay.c")
            with open(source, "w") as handle:
                handle.write(_SOURCE)
            scratch = os.path.join(directory, f"lru_replay.{os.getpid()}.so")
            subprocess.run(
                ["cc", "-O3", "-shared", "-fPIC", "-o", scratch, source],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(scratch, library)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(library)
        lib.lru_replay.restype = None
        lib.lru_replay.argtypes = [
            ctypes.POINTER(ctypes.c_int64),
            ctypes.c_int64,
            ctypes.c_int32,
            ctypes.c_int32,
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_uint8),
            ctypes.POINTER(ctypes.c_int64),
        ]
        lib.rrip_replay.restype = None
        lib.rrip_replay.argtypes = [
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_uint8),
            ctypes.c_int64,
            ctypes.c_int32,
            ctypes.c_int32,
            ctypes.c_int32,
            ctypes.POINTER(ctypes.c_int32),
            ctypes.POINTER(ctypes.c_int32),
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int32,
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_int32),
            ctypes.POINTER(ctypes.c_uint8),
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_int64),
        ]
        return lib
    except OSError:
        return None


def available() -> bool:
    """Whether the compiled kernel can be used (and is not disabled)."""
    global _lib, _resolved
    if not _resolved:
        disabled = os.environ.get(NATIVE_ENV_VAR, "").strip() == "0"
        _lib = None if disabled else _compile()
        _resolved = True
    return _lib is not None


def lru_replay(blocks: np.ndarray, num_sets: int, ways: int):
    """Replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set)`` matching the NumPy engine exactly.
    """
    if not available():
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    stamps = np.zeros(num_sets * ways, dtype=np.int64)
    as_i64 = lambda array: array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))  # noqa: E731
    _lib.lru_replay(
        as_i64(blocks),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        as_i64(tags),
        as_i64(stamps),
        hits.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
        as_i64(misses_per_set),
    )
    return hits.view(bool), misses_per_set


def rrip_replay(
    blocks: np.ndarray,
    hints: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    ins_table: np.ndarray,
    promo_table: np.ndarray,
    epsilon: int,
    psel_max: int,
    leader_period: int,
    psel_init: int,
):
    """RRIP-family replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, psel, insert_count)`` matching the NumPy
    engine (:func:`repro.fastsim.rrip.numpy_rrip_replay`) exactly.
    """
    if not available():
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    hints = np.ascontiguousarray(hints, dtype=np.uint8)
    ins_table = np.ascontiguousarray(ins_table, dtype=np.int32)
    promo_table = np.ascontiguousarray(promo_table, dtype=np.int32)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    rrpv = np.full(num_sets * ways, max_rrpv, dtype=np.int32)
    state = np.array([psel_init, 0], dtype=np.int64)
    as_i64 = lambda array: array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))  # noqa: E731
    as_i32 = lambda array: array.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))  # noqa: E731
    as_u8 = lambda array: array.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8))  # noqa: E731
    _lib.rrip_replay(
        as_i64(blocks),
        as_u8(hints),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        as_i32(ins_table),
        as_i32(promo_table),
        ctypes.c_int64(epsilon),
        ctypes.c_int64(psel_max),
        ctypes.c_int32(leader_period),
        as_i64(tags),
        as_i32(rrpv),
        as_u8(hits),
        as_i64(misses_per_set),
        as_i64(state),
    )
    return hits.view(bool), misses_per_set, int(state[0]), int(state[1])
