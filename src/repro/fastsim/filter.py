"""L1-D/L2 filtering of a reference stream, in both backends.

Pipeline stage 5 replays the ROI trace through the L1-D and L2 caches and
keeps only the accesses that miss both — the stream the LLC actually sees.
Both levels always use LRU (Sec. IV of the paper), so the vector backend can
use the stack-distance engine: filter L1 over the whole trace at once, then
filter L2 over the surviving subsequence.

Both backends return a :class:`FilterResult` — the keep mask plus the L1/L2
:class:`~repro.cache.stats.CacheStats` — and must agree exactly; the
``verify`` backend (:func:`run_filter`) enforces that on every call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.cache import SetAssociativeCache
from repro.cache.config import HierarchyConfig
from repro.cache.policies import LRUPolicy
from repro.cache.stats import CacheStats
from repro.fastsim import kernels
from repro.fastsim.dispatch import SCALAR, VECTOR, resolve_backend
from repro.fastsim.stackdist import (
    LRUReplay,
    LRUStream,
    lru_replay,
    occurrence_order,
    previous_occurrence_indices,
    substream_previous_indices,
)
from repro.trace import Trace


class FastSimMismatchError(AssertionError):
    """The vectorized and scalar simulators disagreed (equivalence guard)."""


@dataclass(frozen=True)
class FilterResult:
    """Outcome of running one trace through the L1-D/L2 filter levels."""

    keep: np.ndarray
    l1_stats: CacheStats
    l2_stats: CacheStats


def scalar_filter(trace: Trace, hierarchy: HierarchyConfig) -> FilterResult:
    """Reference implementation: one :meth:`access` call per reference."""
    l1 = SetAssociativeCache(hierarchy.l1, LRUPolicy())
    l2 = SetAssociativeCache(hierarchy.l2, LRUPolicy())
    keep = np.zeros(len(trace), dtype=bool)
    l1_access, l2_access = l1.access, l2.access
    for index, address in enumerate(trace.addresses.tolist()):
        if l1_access(address):
            continue
        if l2_access(address):
            continue
        keep[index] = True
    return FilterResult(keep=keep, l1_stats=l1.stats, l2_stats=l2.stats)


def _level_stats(name: str, replay: LRUReplay) -> CacheStats:
    return CacheStats.from_counts(
        name=name,
        hits=replay.hit_count,
        misses=replay.miss_count,
        evictions=replay.evictions,
    )


def vector_filter(trace: Trace, hierarchy: HierarchyConfig) -> FilterResult:
    """Vectorized implementation: per-set batched replay of both levels.

    Trace-adjacent accesses to one block (the bulk of a graph trace: a
    64-byte block serves several consecutive Edge-Array reads) are collapsed
    to their run head before anything is sorted — they are L1 hits that leave
    the LRU stack untouched, so only run heads enter the replay machinery.
    The surviving stream is then sorted by block once
    (:func:`occurrence_order`); both the L1 replay and the L2 replay of the
    L1-missing substream derive their previous-same-block links from that
    single sort.
    """
    n = len(trace)
    keep = np.zeros(n, dtype=bool)
    if n == 0:
        return FilterResult(
            keep=keep,
            l1_stats=CacheStats(name=hierarchy.l1.name),
            l2_stats=CacheStats(name=hierarchy.l2.name),
        )
    blocks = trace.block_addresses(hierarchy.l1.block_offset_bits)
    run_head = np.empty(n, dtype=bool)
    run_head[0] = True
    np.not_equal(blocks[1:], blocks[:-1], out=run_head[1:])
    head_indices = np.flatnonzero(run_head)
    head_blocks = blocks[head_indices]

    # The block sort (and the previous-occurrence links derived from it) only
    # feeds the NumPy stack-distance engine; the compiled kernel tracks
    # recency in-line and needs neither.
    occ = None if kernels.available() else occurrence_order(head_blocks)
    l1_replay = lru_replay(
        head_blocks,
        hierarchy.l1.num_sets,
        hierarchy.l1.ways,
        prev_indices=None if occ is None else previous_occurrence_indices(head_blocks, occ),
    )
    collapsed_hits = n - int(head_indices.shape[0])
    l1_stats = CacheStats.from_counts(
        name=hierarchy.l1.name,
        hits=collapsed_hits + l1_replay.hit_count,
        misses=l1_replay.miss_count,
        evictions=l1_replay.evictions,
    )

    miss_heads = np.flatnonzero(~l1_replay.hits)
    l2_replay = lru_replay(
        head_blocks[miss_heads],
        hierarchy.l2.num_sets,
        hierarchy.l2.ways,
        prev_indices=None
        if occ is None
        else substream_previous_indices(head_blocks, occ, miss_heads),
    )
    keep[head_indices[miss_heads[~l2_replay.hits]]] = True
    return FilterResult(
        keep=keep,
        l1_stats=l1_stats,
        l2_stats=_level_stats(hierarchy.l2.name, l2_replay),
    )


def assert_stats_equal(scalar: CacheStats, vector: CacheStats, context: str) -> None:
    """Equivalence guard: raise unless two stat blocks carry identical counts."""
    fields = ("accesses", "hits", "misses", "evictions", "bypasses")
    for field_name in fields:
        left, right = getattr(scalar, field_name), getattr(vector, field_name)
        if left != right:
            raise FastSimMismatchError(
                f"{context}: scalar and vector backends disagree on "
                f"{scalar.name} {field_name}: {left} != {right}"
            )
    if scalar.region_accesses != vector.region_accesses:
        raise FastSimMismatchError(f"{context}: region access breakdowns differ")
    if scalar.region_misses != vector.region_misses:
        raise FastSimMismatchError(f"{context}: region miss breakdowns differ")
    for field_name in ("stream_accesses", "stream_hits", "stream_misses", "stream_bypasses"):
        left = getattr(scalar, field_name, {})
        right = getattr(vector, field_name, {})
        if left != right:
            raise FastSimMismatchError(
                f"{context}: scalar and vector backends disagree on "
                f"{scalar.name} {field_name}: {left} != {right}"
            )


class FilterStream:
    """Resumable L1-D/L2 filter: feed a trace in chunks, collect LLC accesses.

    The streaming counterpart of :func:`run_filter` with the same backend
    semantics — ``vector`` carries two :class:`~repro.fastsim.stackdist.LRUStream`
    states (L1, then L2 over the L1-missing substream), ``scalar`` keeps the
    two reference :class:`~repro.cache.SetAssociativeCache` objects alive
    across chunks, and ``verify`` runs both and raises
    :class:`FastSimMismatchError` on any keep-mask difference per chunk (and
    any stats difference at :meth:`finish`).  Chunked filtering is
    bit-identical to one-shot filtering of the concatenated trace; peak
    memory is O(chunk + cache state).
    """

    def __init__(self, hierarchy: HierarchyConfig, backend: str = None) -> None:
        self.hierarchy = hierarchy
        self.mode = resolve_backend(backend)
        self.total_references = 0
        if self.mode != SCALAR:
            self._l1 = LRUStream(hierarchy.l1.num_sets, hierarchy.l1.ways)
            self._l2 = LRUStream(hierarchy.l2.num_sets, hierarchy.l2.ways)
        if self.mode != VECTOR:
            self._scalar_l1 = SetAssociativeCache(hierarchy.l1, LRUPolicy())
            self._scalar_l2 = SetAssociativeCache(hierarchy.l2, LRUPolicy())

    def feed(self, trace: Trace) -> np.ndarray:
        """Filter one chunk; returns the keep mask of LLC-bound accesses."""
        self.total_references += len(trace)
        keep = None
        if self.mode != SCALAR:
            blocks = trace.block_addresses(self.hierarchy.l1.block_offset_bits)
            l1_hits = self._l1.feed(blocks)
            miss_indices = np.flatnonzero(~l1_hits)
            l2_hits = self._l2.feed(blocks[miss_indices])
            keep = np.zeros(len(trace), dtype=bool)
            keep[miss_indices[~l2_hits]] = True
        if self.mode != VECTOR:
            scalar_keep = np.zeros(len(trace), dtype=bool)
            l1_access, l2_access = self._scalar_l1.access, self._scalar_l2.access
            for index, address in enumerate(trace.addresses.tolist()):
                if l1_access(address):
                    continue
                if l2_access(address):
                    continue
                scalar_keep[index] = True
            if keep is None:
                keep = scalar_keep
            elif not np.array_equal(scalar_keep, keep):
                raise FastSimMismatchError(
                    "streaming L1/L2 filter: keep masks differ between backends"
                )
        return keep

    def upstream_hit_counts(self) -> Tuple[int, int]:
        """Cumulative (L1 hits, L2 hits) so far, without cross-checking."""
        if self.mode != SCALAR:
            return self._l1.hit_count, self._l2.hit_count
        return self._scalar_l1.stats.hits, self._scalar_l2.stats.hits

    def level_stats(self) -> Tuple[CacheStats, CacheStats]:
        """L1/L2 statistics accumulated so far (verify mode cross-checks)."""
        if self.mode != SCALAR:
            l1 = CacheStats.from_counts(
                name=self.hierarchy.l1.name,
                hits=self._l1.hit_count,
                misses=self._l1.miss_count,
                evictions=self._l1.evictions,
            )
            l2 = CacheStats.from_counts(
                name=self.hierarchy.l2.name,
                hits=self._l2.hit_count,
                misses=self._l2.miss_count,
                evictions=self._l2.evictions,
            )
            if self.mode != VECTOR:
                assert_stats_equal(self._scalar_l1.stats, l1, "streaming L1/L2 filter")
                assert_stats_equal(self._scalar_l2.stats, l2, "streaming L1/L2 filter")
            return l1, l2
        return self._scalar_l1.stats, self._scalar_l2.stats

    def finish(self) -> Tuple[CacheStats, CacheStats]:
        """Alias of :meth:`level_stats`, closing the begin/feed/finish cycle."""
        return self.level_stats()


def run_filter(trace: Trace, hierarchy: HierarchyConfig, backend: str = None) -> FilterResult:
    """Filter a trace with the selected backend (``verify`` runs both)."""
    mode = resolve_backend(backend)
    if mode == SCALAR:
        return scalar_filter(trace, hierarchy)
    if mode == VECTOR:
        return vector_filter(trace, hierarchy)
    scalar = scalar_filter(trace, hierarchy)
    vector = vector_filter(trace, hierarchy)
    if not np.array_equal(scalar.keep, vector.keep):
        raise FastSimMismatchError("L1/L2 filter: keep masks differ between backends")
    assert_stats_equal(scalar.l1_stats, vector.l1_stats, "L1/L2 filter")
    assert_stats_equal(scalar.l2_stats, vector.l2_stats, "L1/L2 filter")
    return vector
