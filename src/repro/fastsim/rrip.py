"""Exact vectorized replay for the RRIP family (SRRIP, BRRIP, DRRIP, GRASP).

Unlike LRU, RRIP-family policies have no stack property: hit/miss outcomes
depend on mutable per-way RRPV counters, on BRRIP's global bimodal insertion
counter and on DRRIP's set-dueling PSEL counter.  The engine here still
eliminates the per-access Python policy dispatch by keeping the whole
simulator state in NumPy arrays — one ``(num_sets, ways)`` tag array and one
``(num_sets, ways)`` RRPV array — and replaying the trace in *batched
set-parallel sweeps*:

1. The trace is cut into maximal trace-ordered chunks in which every cache
   set appears at most once (``_chunk_end`` finds each boundary from the
   previous-same-set links in amortized O(n)).  Within such a chunk no access
   depends on another access's per-set state, so the whole chunk is one batch
   of vectorized work: a single broadcast tag compare classifies every access,
   hit promotions and insertions are scatter writes, and victim selection
   (age-until-saturated + leftmost-max) is two array reductions per chunk.
2. The only state shared *across* sets — DRRIP's saturating PSEL counter and
   the bimodal insertion counter — is advanced in trace order inside the
   chunk: PSEL is walked over the chunk's (sparse) leader-set misses and every
   follower reads the value after the latest earlier leader update via one
   ``searchsorted``; bimodal counter values fall out of a cumulative sum.

The policy-specific rules are not hard-coded: each policy publishes its
insertion and hit-promotion behaviour in array form
(:meth:`~repro.cache.policies.rrip._RRIPBase.hint_insertion_table` /
``hint_promotion_table``), and :func:`rrip_spec` snapshots those tables plus
the duel parameters into an :class:`RRIPSpec`.  Only the four exact policy
types are eligible — a subclass could override any hook and silently diverge,
so :func:`rrip_spec` returns ``None`` for anything else and the caller falls
back to the scalar simulator.

:func:`rrip_replay` dispatches to the compiled kernel
(:func:`repro.fastsim.kernels.rrip_replay`) when one is available and to
:func:`numpy_rrip_replay` otherwise; both are exact, including the final
PSEL / bimodal-counter state, which the equivalence tests compare against
the scalar policies.

Chunk width — and with it the NumPy engine's batch parallelism — is bounded
by the number of LLC sets, which the scaled-down default geometry caps at
16.  The NumPy engine is therefore the exactness/portability fallback; the
compiled kernel is the throughput path and the one
``benchmarks/bench_rrip_throughput.py`` holds to the >=5x bar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.core.grasp import GraspPolicy
from repro.fastsim import kernels
from repro.fastsim.stackdist import previous_occurrence_indices


@dataclass(frozen=True)
class RRIPSpec:
    """Array-form description of one RRIP-family policy instance.

    ``insertion_table`` / ``promotion_table`` are hint-indexed (4 entries);
    negative insertion entries mean "dynamic" (bimodal counter when
    ``psel_max == 0``, set duel otherwise) and negative promotion entries
    mean "decrement towards MRU".
    """

    max_rrpv: int
    insertion_table: Tuple[int, int, int, int]
    promotion_table: Tuple[int, int, int, int]
    #: Bimodal insertion period (0 when the policy never inserts bimodally).
    epsilon: int = 0
    #: PSEL saturation value; 0 disables set dueling (SRRIP/BRRIP).
    psel_max: int = 0
    #: One SRRIP leader and one BRRIP leader per ``leader_period`` sets.
    leader_period: int = 0

    @property
    def dueling(self) -> bool:
        """Whether the policy runs a DRRIP-style set duel."""
        return self.psel_max > 0


def rrip_spec(policy: ReplacementPolicy) -> Optional[RRIPSpec]:
    """Snapshot a policy into an :class:`RRIPSpec`, or ``None`` if ineligible.

    Restricted to the exact types :class:`SRRIPPolicy`, :class:`BRRIPPolicy`,
    :class:`DRRIPPolicy` and :class:`GraspPolicy` — subclasses (SHiP, Hawkeye,
    pinning, the GRASP ablations) override hooks the tables cannot express.
    """
    kind = type(policy)
    if kind is SRRIPPolicy:
        epsilon, psel_max, leader_period = 0, 0, 0
    elif kind is BRRIPPolicy:
        epsilon, psel_max, leader_period = policy.epsilon, 0, 0
    elif kind is DRRIPPolicy or kind is GraspPolicy:
        epsilon = policy.epsilon
        psel_max = policy.psel_max
        leader_period = policy.LEADER_PERIOD
    else:
        return None
    return RRIPSpec(
        max_rrpv=policy.max_rrpv,
        insertion_table=tuple(policy.hint_insertion_table()),
        promotion_table=tuple(policy.hint_promotion_table()),
        epsilon=epsilon,
        psel_max=psel_max,
        leader_period=leader_period,
    )


@dataclass(frozen=True)
class RRIPReplay:
    """Outcome of replaying a block stream through one RRIP-family cache."""

    hits: np.ndarray
    misses_per_set: np.ndarray
    ways: int
    #: Final PSEL value (``None`` for non-dueling policies).
    psel: Optional[int]
    #: Final bimodal insertion count (0 for SRRIP).
    insert_count: int

    @property
    def hit_count(self) -> int:
        """Total number of hits."""
        return int(self.hits.sum())

    @property
    def miss_count(self) -> int:
        """Total number of misses."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions (RRIP never bypasses, so misses beyond capacity)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())


def _hint_array(hints: Optional[np.ndarray], n: int) -> np.ndarray:
    """Normalise an optional hint stream to ``n`` 2-bit values."""
    if hints is None:
        return np.zeros(n, dtype=np.int64)
    values = np.asarray(hints, dtype=np.int64) & 3
    if values.shape[0] != n:
        raise ValueError(f"hint stream length {values.shape[0]} != trace length {n}")
    return values


def _chunk_end(prev: np.ndarray, start: int, n: int) -> int:
    """First index past ``start`` whose set already appeared in the chunk.

    ``prev`` holds previous-same-set links; index ``i`` conflicts with the
    chunk ``[start, i)`` exactly when ``prev[i] >= start``.  Scanned in
    doubling windows so the total cost over all chunks stays linear.
    """
    lo = start + 1
    width = 64
    while lo < n:
        hi = min(n, lo + width)
        conflict = prev[lo:hi] >= start
        if conflict.any():
            return lo + int(conflict.argmax())
        lo = hi
        width *= 2
    return n


def _dynamic_insertions(
    miss_sets: np.ndarray, spec: RRIPSpec, psel: int, insert_count: int
) -> Tuple[np.ndarray, int, int]:
    """Insertion RRPVs for one chunk's dynamic misses, in trace order.

    Advances (and returns) the global PSEL and bimodal counters exactly as
    the scalar policies do: leader-set misses steer PSEL saturating by one,
    follower misses read the value left by the latest earlier leader update,
    and every bimodal insertion increments the shared counter whose value
    modulo ``epsilon`` picks the insertion position.
    """
    m = int(miss_sets.shape[0])
    max_rrpv = spec.max_rrpv
    values = np.full(m, max_rrpv - 1, dtype=np.int32)
    if not spec.dueling:
        bimodal = np.ones(m, dtype=bool)
    else:
        slot = miss_sets % spec.leader_period
        srrip_leader = slot == 0
        brrip_leader = slot == 1
        follower = ~(srrip_leader | brrip_leader)
        leader_positions = np.flatnonzero(~follower)
        # Saturating PSEL walk over the (sparse) leader misses of the chunk.
        psel_after = np.empty(leader_positions.shape[0] + 1, dtype=np.int64)
        psel_after[0] = psel
        for index, position in enumerate(leader_positions.tolist()):
            if srrip_leader[position]:
                if psel < spec.psel_max:
                    psel += 1
            elif psel > 0:
                psel -= 1
            psel_after[index + 1] = psel
        # A follower reads PSEL after the latest earlier leader update.
        follower_positions = np.flatnonzero(follower)
        reads = psel_after[np.searchsorted(leader_positions, follower_positions, side="left")]
        midpoint = (spec.psel_max + 1) // 2
        bimodal = brrip_leader.copy()
        bimodal[follower_positions] = reads >= midpoint
    counters = insert_count + np.cumsum(bimodal)
    bimodal_positions = np.flatnonzero(bimodal)
    values[bimodal_positions] = np.where(
        counters[bimodal_positions] % spec.epsilon == 0, max_rrpv - 1, max_rrpv
    )
    insert_count += int(bimodal_positions.shape[0])
    return values, psel, insert_count


class RRIPStream:
    """Resumable exact RRIP-family replay: feed a block stream in chunks.

    Carries the whole simulator state — tag and RRPV matrices plus the
    global PSEL / bimodal counters — across :meth:`feed` calls, so chunked
    replay is bit-identical to one replay over the concatenation.  The
    compiled kernel (when available) advances the state arrays in place; the
    NumPy path runs the batched set-parallel sweeps against the same arrays.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        spec: RRIPSpec,
        use_native: Optional[bool] = None,
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.spec = spec
        self._use_native = (
            kernels.available() if use_native is None else bool(use_native)
        )
        self.tags = np.full((num_sets, ways), -1, dtype=np.int64)
        self.rrpv = np.full((num_sets, ways), spec.max_rrpv, dtype=np.int32)
        self.misses_per_set = np.zeros(num_sets, dtype=np.int64)
        self._state = np.array([spec.psel_max // 2, 0], dtype=np.int64)
        self.hit_count = 0

    @property
    def psel(self) -> Optional[int]:
        """Current PSEL value (``None`` for non-dueling policies)."""
        return int(self._state[0]) if self.spec.dueling else None

    @property
    def insert_count(self) -> int:
        """Current bimodal insertion count."""
        return int(self._state[1])

    @property
    def miss_count(self) -> int:
        """Total number of misses fed so far."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions so far (RRIP never bypasses)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())

    def feed(
        self, block_addresses: np.ndarray, hints: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Replay one chunk; returns its hit mask and advances the state."""
        blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
        n = int(blocks.shape[0])
        hint_values = _hint_array(hints, n)
        if n == 0:
            return np.zeros(0, dtype=bool)
        hits = None
        if self._use_native:
            hits = kernels.rrip_feed(
                blocks,
                hint_values.astype(np.uint8),
                self.num_sets,
                self.ways,
                self.spec.max_rrpv,
                np.asarray(self.spec.insertion_table, dtype=np.int32),
                np.asarray(self.spec.promotion_table, dtype=np.int32),
                self.spec.epsilon,
                self.spec.psel_max,
                self.spec.leader_period,
                self.tags,
                self.rrpv,
                self.misses_per_set,
                self._state,
            )
        if hits is None:
            hits = self._numpy_feed(blocks, hint_values)
        self.hit_count += int(hits.sum())
        return hits

    def _numpy_feed(self, blocks: np.ndarray, hint_values: np.ndarray) -> np.ndarray:
        spec = self.spec
        num_sets = self.num_sets
        tags, rrpv = self.tags, self.rrpv
        psel = int(self._state[0])
        insert_count = int(self._state[1])
        n = int(blocks.shape[0])
        hits = np.zeros(n, dtype=bool)
        set_ids = blocks & (num_sets - 1)
        insertion_table = np.asarray(spec.insertion_table, dtype=np.int32)
        promotion_table = np.asarray(spec.promotion_table, dtype=np.int32)
        prev = previous_occurrence_indices(set_ids)

        position = 0
        while position < n:
            end = _chunk_end(prev, position, n)
            sets = set_ids[position:end]
            chunk_blocks = blocks[position:end]
            chunk_hints = hint_values[position:end]

            match = tags[sets] == chunk_blocks[:, None]
            is_hit = match.any(axis=1)
            hits[position:end] = is_hit

            if is_hit.any():
                hit_sets = sets[is_hit]
                hit_ways = match[is_hit].argmax(axis=1)
                promotion = promotion_table[chunk_hints[is_hit]]
                current = rrpv[hit_sets, hit_ways]
                rrpv[hit_sets, hit_ways] = np.where(
                    promotion >= 0, promotion, np.maximum(current - 1, 0)
                )

            if not is_hit.all():
                miss = ~is_hit
                miss_sets = sets[miss]
                # Fills take the leftmost empty way without ageing; victim
                # search (age every way until one saturates, take the
                # leftmost) only runs on full sets, like the scalar cache.
                empty = tags[miss_sets] == -1
                has_empty = empty.any(axis=1)
                victim_way = np.empty(miss_sets.shape[0], dtype=np.int64)
                victim_way[has_empty] = empty[has_empty].argmax(axis=1)
                full_sets = miss_sets[~has_empty]
                if full_sets.size:
                    full_rrpvs = rrpv[full_sets]
                    full_rrpvs += (spec.max_rrpv - full_rrpvs.max(axis=1))[:, None]
                    victim_way[~has_empty] = (full_rrpvs == spec.max_rrpv).argmax(axis=1)
                    rrpv[full_sets] = full_rrpvs
                insertion = insertion_table[chunk_hints[miss]]
                dynamic = insertion < 0
                if dynamic.any():
                    dynamic_values, psel, insert_count = _dynamic_insertions(
                        miss_sets[dynamic], spec, psel, insert_count
                    )
                    insertion[dynamic] = dynamic_values
                tags[miss_sets, victim_way] = chunk_blocks[miss]
                rrpv[miss_sets, victim_way] = insertion
            position = end

        self.misses_per_set += np.bincount(set_ids[~hits], minlength=num_sets)
        self._state[0] = psel
        self._state[1] = insert_count
        return hits


def numpy_rrip_replay(
    block_addresses: np.ndarray,
    hints: Optional[np.ndarray],
    num_sets: int,
    ways: int,
    spec: RRIPSpec,
) -> RRIPReplay:
    """Pure-NumPy batched replay (the portable engine behind :func:`rrip_replay`).

    Exact with respect to the scalar policies: identical per-access hit masks,
    per-set miss counts, way contents and final PSEL/bimodal state.  One
    :class:`RRIPStream` feed over the whole stream — chunked feeds of the
    same stream are bit-identical by construction.
    """
    stream = RRIPStream(num_sets, ways, spec, use_native=False)
    hits = stream.feed(block_addresses, hints)
    return RRIPReplay(
        hits=hits,
        misses_per_set=stream.misses_per_set,
        ways=ways,
        psel=stream.psel,
        insert_count=stream.insert_count,
    )


def rrip_replay(
    block_addresses: np.ndarray,
    hints: Optional[np.ndarray],
    num_sets: int,
    ways: int,
    spec: RRIPSpec,
) -> RRIPReplay:
    """Replay a block stream through a ``num_sets`` x ``ways`` RRIP cache.

    ``num_sets`` must be a power of two (set index is ``block & mask``,
    matching :class:`repro.cache.cache.SetAssociativeCache`).  Dispatches to
    the compiled kernel (:mod:`repro.fastsim.kernels`) when available and to
    :func:`numpy_rrip_replay` otherwise; both are exact.
    """
    blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
    n = int(blocks.shape[0])
    hint_values = _hint_array(hints, n)
    native = kernels.rrip_replay(
        blocks,
        hint_values.astype(np.uint8),
        num_sets,
        ways,
        spec.max_rrpv,
        np.asarray(spec.insertion_table, dtype=np.int32),
        np.asarray(spec.promotion_table, dtype=np.int32),
        spec.epsilon,
        spec.psel_max,
        spec.leader_period,
        spec.psel_max // 2,
    )
    if native is not None:
        native_hits, misses_per_set, psel, insert_count = native
        return RRIPReplay(
            hits=native_hits,
            misses_per_set=misses_per_set,
            ways=ways,
            psel=psel if spec.dueling else None,
            insert_count=insert_count,
        )
    return numpy_rrip_replay(blocks, hint_values, num_sets, ways, spec)
