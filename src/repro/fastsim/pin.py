"""Exact vectorized replay for the XMem-style pinning policy (PIN-X).

:class:`~repro.cache.policies.pin.PinningPolicy` is DRRIP plus three per-set
extensions: a boolean pinned mask, a reserved-capacity cap on how many ways
may be pinned, and a BYPASS outcome when an insertion finds every way of a
full set pinned (possible only under PIN-100).  All of that state is per-set,
so the batched set-parallel chunking of the RRIP engine applies unchanged —
the pinned mask simply layers on top:

* hit promotions set RRPV 0 exactly like DRRIP, but skip already-pinned ways
  (their RRPV is pinned at 0 anyway) and may newly pin a High-Reuse line when
  reserved capacity remains;
* victim search runs age-until-saturated / leftmost-saturated over the
  *unpinned* ways only;
* every non-bypassed insertion feeds DRRIP's set duel (leader-set PSEL
  updates and the shared bimodal counter) via the same trace-order walk the
  RRIP engine uses (:func:`repro.fastsim.rrip._dynamic_insertions`), and
  pinned insertions then override the duel RRPV with hit priority —
  mirroring the bug-fixed scalar policy, where pinning no longer short-
  circuits the duel;
* bypassed accesses are counted (misses that evict nothing and insert
  nothing) and leave every piece of state untouched, including PSEL.

:func:`pin_replay` dispatches to the compiled kernel
(:func:`repro.fastsim.kernels.pin_replay`) when one is available and to
:func:`numpy_pin_replay` otherwise; both are exact, including the final
PSEL / bimodal-counter state and the per-set pinned populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cache.hints import HINT_HIGH
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.pin import PinningPolicy
from repro.fastsim import kernels
from repro.fastsim.rrip import (
    RRIPSpec,
    _chunk_end,
    _dynamic_insertions,
    _hint_array,
)
from repro.fastsim.stackdist import previous_occurrence_indices


@dataclass(frozen=True)
class PinSpec:
    """Array-form description of one :class:`PinningPolicy` instance."""

    max_rrpv: int
    reserved_fraction: float
    epsilon: int
    psel_max: int
    leader_period: int

    def reserved_ways(self, ways: int) -> int:
        """Ways pinnable per set, with the scalar policy's exact rounding."""
        return max(1, int(round(ways * self.reserved_fraction)))

    def duel_spec(self) -> RRIPSpec:
        """The underlying DRRIP duel, for :func:`_dynamic_insertions`."""
        return RRIPSpec(
            max_rrpv=self.max_rrpv,
            insertion_table=(-1, -1, -1, -1),
            promotion_table=(0, 0, 0, 0),
            epsilon=self.epsilon,
            psel_max=self.psel_max,
            leader_period=self.leader_period,
        )


def pin_spec(policy: ReplacementPolicy) -> Optional[PinSpec]:
    """Snapshot a policy into a :class:`PinSpec`, or ``None`` if ineligible.

    Restricted to the exact type :class:`PinningPolicy` — a subclass could
    override any hook and silently diverge.
    """
    if type(policy) is not PinningPolicy:
        return None
    return PinSpec(
        max_rrpv=policy.max_rrpv,
        reserved_fraction=policy.reserved_fraction,
        epsilon=policy.epsilon,
        psel_max=policy.psel_max,
        leader_period=policy.LEADER_PERIOD,
    )


@dataclass(frozen=True)
class PinReplay:
    """Outcome of replaying a block stream through one PIN-X cache."""

    hits: np.ndarray
    misses_per_set: np.ndarray
    bypasses_per_set: np.ndarray
    ways: int
    psel: int
    insert_count: int

    @property
    def hit_count(self) -> int:
        """Total number of hits."""
        return int(self.hits.sum())

    @property
    def miss_count(self) -> int:
        """Total number of misses (bypassed accesses included)."""
        return int(self.misses_per_set.sum())

    @property
    def bypass_count(self) -> int:
        """Total number of bypassed insertions."""
        return int(self.bypasses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions: non-bypassed misses beyond each set's capacity."""
        filled = self.misses_per_set - self.bypasses_per_set
        return int(np.maximum(0, filled - self.ways).sum())


class PinStream:
    """Resumable exact PIN-X replay: feed a block/hint stream in chunks.

    Carries tags, RRPVs, the pinned masks and populations, and the global
    PSEL / bimodal counters across :meth:`feed` calls; chunked replay is
    bit-identical to one replay over the concatenation.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        spec: PinSpec,
        use_native: Optional[bool] = None,
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.spec = spec
        self._use_native = (
            kernels.available() if use_native is None else bool(use_native)
        )
        self.tags = np.full((num_sets, ways), -1, dtype=np.int64)
        self.rrpv = np.full((num_sets, ways), spec.max_rrpv, dtype=np.int32)
        self.pinned = np.zeros((num_sets, ways), dtype=np.uint8)
        self.pinned_count = np.zeros(num_sets, dtype=np.int32)
        self.misses_per_set = np.zeros(num_sets, dtype=np.int64)
        self.bypasses_per_set = np.zeros(num_sets, dtype=np.int64)
        self._state = np.array([spec.psel_max // 2, 0], dtype=np.int64)
        self.hit_count = 0

    @property
    def psel(self) -> int:
        """Current PSEL value."""
        return int(self._state[0])

    @property
    def insert_count(self) -> int:
        """Current bimodal insertion count."""
        return int(self._state[1])

    @property
    def miss_count(self) -> int:
        """Total misses fed so far (bypassed accesses included)."""
        return int(self.misses_per_set.sum())

    @property
    def bypass_count(self) -> int:
        """Total bypassed insertions so far."""
        return int(self.bypasses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions so far: non-bypassed misses beyond capacity."""
        filled = self.misses_per_set - self.bypasses_per_set
        return int(np.maximum(0, filled - self.ways).sum())

    def feed(
        self, block_addresses: np.ndarray, hints: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Replay one chunk; returns its hit mask and advances the state."""
        blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
        n = int(blocks.shape[0])
        hint_values = _hint_array(hints, n)
        if n == 0:
            return np.zeros(0, dtype=bool)
        hits = None
        if self._use_native:
            hits = kernels.pin_feed(
                blocks,
                hint_values.astype(np.uint8),
                self.num_sets,
                self.ways,
                self.spec.max_rrpv,
                self.spec.epsilon,
                self.spec.psel_max,
                self.spec.leader_period,
                self.spec.reserved_ways(self.ways),
                HINT_HIGH,
                self.tags,
                self.rrpv,
                self.pinned,
                self.pinned_count,
                self.misses_per_set,
                self.bypasses_per_set,
                self._state,
            )
        if hits is None:
            hits = self._numpy_feed(blocks, hint_values)
        self.hit_count += int(hits.sum())
        return hits

    def _numpy_feed(self, blocks: np.ndarray, hint_values: np.ndarray) -> np.ndarray:
        spec = self.spec
        num_sets, ways = self.num_sets, self.ways
        max_rrpv = spec.max_rrpv
        duel = spec.duel_spec()
        reserved = spec.reserved_ways(ways)
        tags, rrpv = self.tags, self.rrpv
        pinned = self.pinned.view(bool)
        pinned_count = self.pinned_count
        psel = int(self._state[0])
        insert_count = int(self._state[1])
        n = int(blocks.shape[0])
        hits = np.zeros(n, dtype=bool)
        set_ids = blocks & (num_sets - 1)
        prev = previous_occurrence_indices(set_ids)

        position = 0
        while position < n:
            end = _chunk_end(prev, position, n)
            sets = set_ids[position:end]
            chunk_blocks = blocks[position:end]
            chunk_hints = hint_values[position:end]

            match = tags[sets] == chunk_blocks[:, None]
            is_hit = match.any(axis=1)
            hits[position:end] = is_hit

            if is_hit.any():
                hit_sets = sets[is_hit]
                hit_ways = match[is_hit].argmax(axis=1)
                already = pinned[hit_sets, hit_ways]
                # Both the pin-on-hit path and DRRIP's hit promotion assign
                # hit priority; only already-pinned lines are left untouched.
                rrpv[hit_sets[~already], hit_ways[~already]] = 0
                pin_now = (
                    ~already
                    & (chunk_hints[is_hit] == HINT_HIGH)
                    & (pinned_count[hit_sets] < reserved)
                )
                if pin_now.any():
                    pinned[hit_sets[pin_now], hit_ways[pin_now]] = True
                    pinned_count[hit_sets[pin_now]] += 1

            if not is_hit.all():
                miss = ~is_hit
                miss_sets = sets[miss]
                miss_hints = chunk_hints[miss]
                empty = tags[miss_sets] == -1
                has_empty = empty.any(axis=1)
                # A full set whose every way is pinned declines the insertion.
                bypass = ~has_empty & (pinned_count[miss_sets] >= ways)
                if bypass.any():
                    self.bypasses_per_set += np.bincount(
                        miss_sets[bypass], minlength=num_sets
                    )
                insert = ~bypass
                victim_way = np.empty(miss_sets.shape[0], dtype=np.int64)
                victim_way[has_empty] = empty[has_empty].argmax(axis=1)
                full = ~has_empty & insert
                full_sets = miss_sets[full]
                if full_sets.size:
                    full_rrpvs = rrpv[full_sets]
                    full_pinned = pinned[full_sets]
                    # Age only the unpinned ways until one saturates, then
                    # take the leftmost saturated unpinned way — the scalar
                    # loop in PinningPolicy.choose_victim collapsed into two
                    # reductions.
                    unpinned_max = np.where(full_pinned, -1, full_rrpvs).max(axis=1)
                    full_rrpvs = full_rrpvs + np.where(
                        full_pinned, 0, (max_rrpv - unpinned_max)[:, None]
                    ).astype(np.int32)
                    victim_way[full] = (
                        (full_rrpvs == max_rrpv) & ~full_pinned
                    ).argmax(axis=1)
                    rrpv[full_sets] = full_rrpvs
                if insert.any():
                    ins_sets = miss_sets[insert]
                    ins_hints = miss_hints[insert]
                    ins_ways = victim_way[insert]
                    # Every non-bypassed insertion feeds the DRRIP duel (the
                    # scalar bug fix), pinned or not.
                    values, psel, insert_count = _dynamic_insertions(
                        ins_sets, duel, psel, insert_count
                    )
                    pin_ins = (ins_hints == HINT_HIGH) & (pinned_count[ins_sets] < reserved)
                    values[pin_ins] = 0
                    tags[ins_sets, ins_ways] = chunk_blocks[miss][insert]
                    rrpv[ins_sets, ins_ways] = values
                    pinned[ins_sets, ins_ways] = pin_ins
                    if pin_ins.any():
                        pinned_count[ins_sets[pin_ins]] += 1
            position = end

        self.misses_per_set += np.bincount(set_ids[~hits], minlength=num_sets)
        self._state[0] = psel
        self._state[1] = insert_count
        return hits


def numpy_pin_replay(
    block_addresses: np.ndarray,
    hints: Optional[np.ndarray],
    num_sets: int,
    ways: int,
    spec: PinSpec,
) -> PinReplay:
    """Pure-NumPy batched replay (the portable engine behind :func:`pin_replay`).

    Exact with respect to the (bug-fixed) scalar policy: identical per-access
    hit masks, per-set miss/bypass counts, pinned populations and final
    PSEL/bimodal state.  One :class:`PinStream` feed over the whole stream —
    chunked feeds of the same stream are bit-identical by construction.
    """
    stream = PinStream(num_sets, ways, spec, use_native=False)
    hits = stream.feed(block_addresses, hints)
    return PinReplay(
        hits=hits,
        misses_per_set=stream.misses_per_set,
        bypasses_per_set=stream.bypasses_per_set,
        ways=ways,
        psel=stream.psel,
        insert_count=stream.insert_count,
    )


def pin_replay(
    block_addresses: np.ndarray,
    hints: Optional[np.ndarray],
    num_sets: int,
    ways: int,
    spec: PinSpec,
) -> PinReplay:
    """Replay a block stream through a ``num_sets`` x ``ways`` PIN-X cache.

    ``num_sets`` must be a power of two (set index is ``block & mask``,
    matching :class:`repro.cache.cache.SetAssociativeCache`).  Dispatches to
    the compiled kernel (:mod:`repro.fastsim.kernels`) when available and to
    :func:`numpy_pin_replay` otherwise; both are exact.
    """
    blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
    n = int(blocks.shape[0])
    hint_values = _hint_array(hints, n)
    native = kernels.pin_replay(
        blocks,
        hint_values.astype(np.uint8),
        num_sets,
        ways,
        spec.max_rrpv,
        spec.epsilon,
        spec.psel_max,
        spec.leader_period,
        spec.reserved_ways(ways),
        HINT_HIGH,
        spec.psel_max // 2,
    )
    if native is not None:
        native_hits, misses_per_set, bypasses_per_set, psel, insert_count = native
        return PinReplay(
            hits=native_hits,
            misses_per_set=misses_per_set,
            bypasses_per_set=bypasses_per_set,
            ways=ways,
            psel=psel,
            insert_count=insert_count,
        )
    return numpy_pin_replay(blocks, hint_values, num_sets, ways, spec)
