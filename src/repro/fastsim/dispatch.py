"""Backend selection for the cache-simulation fast path.

Three backends exist:

``vector``
    The NumPy stack-distance engine (:mod:`repro.fastsim.stackdist`).  The
    default.
``scalar``
    The original per-access reference simulator
    (:class:`repro.cache.cache.SetAssociativeCache`).
``verify``
    Equivalence-guard mode: run both paths and raise
    :class:`repro.fastsim.filter.FastSimMismatchError` unless every
    hit/miss/eviction count is identical, then return the vector result.

Resolution order for any simulation call: the explicit ``backend=`` argument,
else the process-wide default installed with :func:`set_default_backend`,
else the ``REPRO_SIM_BACKEND`` environment variable, else ``vector``.
"""

from __future__ import annotations

import os
from typing import Optional

SCALAR = "scalar"
VECTOR = "vector"
VERIFY = "verify"
BACKENDS = (SCALAR, VECTOR, VERIFY)

#: Environment variable overriding the default backend.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

_default_backend: Optional[str] = None


def _validate(name: str, source: Optional[str] = None) -> str:
    if name not in BACKENDS:
        origin = f" (from {source})" if source else ""
        raise ValueError(
            f"unknown simulation backend {name!r}{origin}; expected one of {BACKENDS}"
        )
    return name


def set_default_backend(name: Optional[str]) -> None:
    """Install a process-wide default backend (``None`` restores env/default).

    Accepts the same spellings as ``REPRO_SIM_BACKEND``: surrounding
    whitespace and case are normalized before validation.
    """
    global _default_backend
    _default_backend = (
        _validate(name.strip().lower()) if name is not None else None
    )


def default_backend() -> str:
    """The backend used when a call does not specify one."""
    if _default_backend is not None:
        return _default_backend
    env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if env:
        return _validate(env, source=BACKEND_ENV_VAR)
    return VECTOR


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve an optional per-call backend to a concrete backend name."""
    if backend is None:
        return default_backend()
    return _validate(backend)
