"""Capability-driven execution planning for the simulation pipeline.

Every simulation entry point in :mod:`repro.experiments.runner` used to
hand-roll its own routing — backend resolution, fused-vs-staged, streaming,
partition and fallback decisions scattered across ten call sites.  This
module collapses that sprawl into one explainable layer:

``EngineCapabilities``
    One declarative record per engine family (vector/stream/fused and
    co-run support, the kernel capability the native fused route needs,
    plus the family's known fallbacks in prose).  The table below is the
    single place a new engine announces what it can do.
``SimRequest``
    Everything a routing decision depends on: the scheme(s) and live
    policy object(s), the requested backend, the pipeline stage (one-shot
    replay, ROI, streaming, co-run), the consumer count (how many distinct
    schemes share one filtered stream), the partition, the thread count
    and the memo/kernel environment.  Requests are cheap to build — no
    workload needs to exist.
``ExecutionPlan``
    The planner's explicit answer: the route, engine family, kernel tier
    and backend that will run, whether a verify dual-run is attached, and
    *every* fallback reason collected on the way there.  Plans are
    JSON-serializable (sweep run manifests embed them) and
    self-explaining (``repro plan explain`` prints them).
``RoutePlanner``
    The decision procedure.  The fused-route consumer-count rule, the
    co-run PIN fallback, the verify-mode dual-run and the NumPy
    degradation logic each live exactly once, here.

The runner imports its engines *through this module* (see the re-exports
at the bottom): a CI lint leg enforces that ``experiments/runner.py``
never imports an engine module directly, so routing cannot silently
re-sprawl into the call sites.

Plans never change results — every route is bit-identical by construction
(the route-matrix suite in ``tests/test_route_matrix.py`` pins this), so
planning decisions are free to chase wall-clock only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cache.config import HierarchyConfig
from repro.cache.partition import WayPartition
from repro.cache.policies.opt import BeladyOptimal
from repro.fastsim import kernels
from repro.fastsim.corun import CorunReplayStream, supports_vector_corun
from repro.fastsim.dispatch import SCALAR, VECTOR, VERIFY, resolve_backend
from repro.fastsim.filter import FilterStream, assert_stats_equal, run_filter
from repro.fastsim.hawkeye import hawkeye_spec
from repro.fastsim.opt import OptStream, resolve_chunk_next_use
from repro.fastsim.pipeline import (
    FusedPipeline,
    MultiFusedPipeline,
    _family,
    fused_native_supported,
)
from repro.fastsim.replay import (
    PolicyReplayStream,
    supports_vector_replay,
    vector_opt_replay,
    vector_policy_replay,
)

# ---------------------------------------------------------------------------
# capability table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EngineCapabilities:
    """What one engine family can do, and which kernels it needs for it.

    ``fused_kernel`` names the registry capability
    (:func:`repro.fastsim.kernels.has_capability`) the native single-pass
    route requires; ``None`` means the family has no fused kernel.
    ``fallbacks`` documents the family's known degradations in prose —
    the planner quotes them verbatim in plan explanations.
    """

    family: str
    vector_replay: bool
    streaming: bool
    fused_kernel: Optional[str]
    corun_partitioned: bool
    corun_shared: bool
    fallbacks: Tuple[str, ...] = ()


#: Declarative capability records, one per engine family.  ``scalar`` is the
#: pseudo-family of policies without an array-form spec (the GRASP ablation
#: subclasses): the reference simulator covers them on every route.
ENGINE_CAPABILITIES: Dict[str, EngineCapabilities] = {
    "lru": EngineCapabilities(
        family="lru", vector_replay=True, streaming=True,
        fused_kernel="fused:lru", corun_partitioned=True, corun_shared=True,
    ),
    "rrip": EngineCapabilities(
        family="rrip", vector_replay=True, streaming=True,
        fused_kernel="fused:rrip", corun_partitioned=True, corun_shared=True,
    ),
    "pin": EngineCapabilities(
        family="pin", vector_replay=True, streaming=True,
        fused_kernel="fused:pin", corun_partitioned=True, corun_shared=False,
        fallbacks=(
            "unpartitioned co-run (K>=2) falls back to the scalar reference: "
            "per-stream bypass attribution needs per-stream engines, which "
            "only a way partition provides",
        ),
    ),
    "ship": EngineCapabilities(
        family="ship", vector_replay=True, streaming=True,
        fused_kernel="fused:ship", corun_partitioned=True, corun_shared=True,
    ),
    "hawkeye": EngineCapabilities(
        family="hawkeye", vector_replay=True, streaming=True,
        fused_kernel="fused:hawkeye", corun_partitioned=True, corun_shared=True,
        fallbacks=(
            "a zero-length OPTgen history window (history_factor * ways == 0) "
            "disables the native kernels; the NumPy engine runs instead",
        ),
    ),
    "leeway": EngineCapabilities(
        family="leeway", vector_replay=True, streaming=True,
        fused_kernel="fused:leeway", corun_partitioned=True, corun_shared=True,
    ),
    "opt": EngineCapabilities(
        family="opt", vector_replay=True, streaming=True,
        fused_kernel=None, corun_partitioned=False, corun_shared=False,
        fallbacks=(
            "OPT needs future next-use indices: streaming resolves them in a "
            "two-pass reverse sweep over a disk spill",
            "OPT is offline and has no co-run analogue",
        ),
    ),
    "scalar": EngineCapabilities(
        family="scalar", vector_replay=False, streaming=True,
        fused_kernel=None, corun_partitioned=True, corun_shared=True,
        fallbacks=(
            "policies without an exact array-form spec (the GRASP ablation "
            "subclasses) replay through the per-access reference simulator "
            "on every backend",
        ),
    ),
}


def capabilities_for(policy) -> EngineCapabilities:
    """The capability record governing one live policy object."""
    if type(policy) is BeladyOptimal:
        return ENGINE_CAPABILITIES["opt"]
    family = _family(policy)
    if family is None or not supports_vector_replay(policy):
        return ENGINE_CAPABILITIES["scalar"]
    return ENGINE_CAPABILITIES[family]


# ---------------------------------------------------------------------------
# request / plan
# ---------------------------------------------------------------------------

#: Pipeline stages a request can name.
STAGE_ONESHOT = "oneshot"     # replay of an already-materialized LLC trace
STAGE_ROI = "roi"             # ROI simulation from the raw reference stream
STAGE_STREAMING = "streaming"  # full-execution streaming simulation
STAGE_CORUN = "corun"         # multi-programmed shared-LLC replay

#: Route names an :class:`ExecutionPlan` can carry.
ROUTE_VECTOR = "vector"            # staged vector replay (batched engines)
ROUTE_SCALAR = "scalar"            # per-access reference simulator
ROUTE_FUSED = "fused"              # single-pass native filter+LLC pipeline
ROUTE_FUSED_MULTI = "fused-multi"  # one filter phase, N policy replays
ROUTE_OPT_VECTOR = "opt-vector"    # batched next-use OPT engine
ROUTE_OPT_TWO_PASS = "opt-two-pass"  # streaming OPT: spill + reverse resolve
ROUTE_OPT_SCALAR = "opt-scalar"    # offline reference OPT loop
ROUTE_CORUN_VECTOR = "corun-vector"
ROUTE_CORUN_SCALAR = "corun-scalar"
ROUTE_CORUN_DELEGATE = "corun-delegate-single"  # K=1 unpartitioned co-run

#: Kernel tiers a plan can name.
KERNEL_NATIVE_FUSED = "native-fused"  # one C call per chunk, threaded filter
KERNEL_NATIVE = "native"              # per-family compiled replay kernels
KERNEL_NUMPY = "numpy"                # batched NumPy engines
KERNEL_PYTHON = "python"              # per-access reference simulator


@dataclass(frozen=True)
class SimRequest:
    """Everything one routing decision depends on.

    ``schemes``/``policies`` are aligned; single-scheme requests carry one
    entry.  ``consumers`` is the number of *distinct* schemes that will
    replay the same filtered stream (the fused-route consumer-count rule);
    it defaults to ``len(set(schemes))``.  The ``have_*`` flags describe
    the memo environment (a persisted chunk store / materialized trace
    makes replaying it cheaper than regenerating the raw stream).
    ``native_override`` pins kernel availability for testing; ``None``
    probes the live registry.
    """

    schemes: Tuple[str, ...]
    policies: Tuple[Any, ...] = ()
    backend: Optional[str] = None
    stage: str = STAGE_ONESHOT
    consumers: Optional[int] = None
    hierarchy: Optional[HierarchyConfig] = None
    partition: Optional[WayPartition] = None
    num_streams: int = 1
    threads: Optional[int] = None
    use_hints: bool = True
    have_memo: bool = False
    have_chunk_store: bool = False
    have_trace_cache: bool = False
    native_override: Optional[bool] = None

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError("a SimRequest names at least one scheme")
        if self.policies and len(self.policies) != len(self.schemes):
            raise ValueError(
                f"{len(self.schemes)} scheme(s) but {len(self.policies)} "
                "policy object(s)"
            )

    @property
    def scheme(self) -> str:
        return self.schemes[0]

    @property
    def policy(self):
        return self.policies[0] if self.policies else None

    def consumer_count(self) -> int:
        if self.consumers is not None:
            return self.consumers
        return len(set(self.schemes))

    def native_available(self) -> bool:
        if self.native_override is not None:
            return self.native_override
        return kernels.available()

    def has_kernel(self, capability: str) -> bool:
        if self.native_override is False:
            return False
        if self.native_override is True and kernels.available() is False:
            # An override can only *disable* kernels; it cannot conjure a
            # compiler into a NumPy-only environment.
            return False
        return kernels.has_capability(capability)


@dataclass(frozen=True)
class ExecutionPlan:
    """The planner's explicit, serializable routing decision."""

    route: str
    stage: str
    scheme: str
    engine: str
    kernel: str
    backend: str
    verify: bool = False
    fallbacks: Tuple[str, ...] = ()
    schemes: Tuple[str, ...] = ()
    threads: int = 1

    def to_json(self) -> Dict[str, Any]:
        """Manifest-ready form (plain JSON types only)."""
        return {
            "route": self.route,
            "stage": self.stage,
            "scheme": self.scheme,
            "schemes": list(self.schemes or (self.scheme,)),
            "engine": self.engine,
            "kernel": self.kernel,
            "backend": self.backend,
            "verify": self.verify,
            "threads": self.threads,
            "fallbacks": list(self.fallbacks),
        }

    def explain(self) -> str:
        """Human-readable account of the decision, one fact per line."""
        lines = [
            f"scheme   : {', '.join(self.schemes or (self.scheme,))}",
            f"stage    : {self.stage}",
            f"route    : {self.route}",
            f"engine   : {self.engine}",
            f"kernel   : {self.kernel}",
            f"backend  : {self.backend}"
            + (" (dual-run: vector + scalar cross-check)" if self.verify else ""),
        ]
        if self.threads > 1:
            lines.append(f"threads  : {self.threads}")
        if self.fallbacks:
            lines.append("because  :")
            lines.extend(f"  - {reason}" for reason in self.fallbacks)
        else:
            lines.append("because  : preferred route; no fallbacks applied")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------


class RoutePlanner:
    """Map a :class:`SimRequest` to an explicit :class:`ExecutionPlan`.

    Stateless; one module-level instance (:data:`PLANNER`) serves every
    call site.  All methods collect fallback reasons instead of silently
    branching, so a plan always says *why* it is not the fastest route.
    """

    def plan(self, request: SimRequest) -> ExecutionPlan:
        mode = resolve_backend(request.backend)
        if request.stage == STAGE_CORUN:
            return self._plan_corun(request, mode)
        if self._is_opt(request):
            return self._plan_opt(request, mode)
        if len(request.schemes) > 1 and request.stage in (STAGE_ROI, STAGE_STREAMING):
            return self._plan_multi(request, mode)
        return self._plan_single(request, mode)

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _is_opt(request: SimRequest) -> bool:
        if request.policies:
            return type(request.policy) is BeladyOptimal
        return request.scheme == "OPT"

    @staticmethod
    def _engine_name(policy) -> str:
        family = _family(policy)
        if family is not None and supports_vector_replay(policy):
            return family
        return "scalar"

    def _vector_kernel(self, request: SimRequest, policy) -> str:
        """Kernel tier of the staged vector engines for this policy."""
        if not request.native_available():
            return KERNEL_NUMPY
        if (
            _family(policy) == "hawkeye"
            and request.hierarchy is not None
            and hawkeye_spec(policy).history_factor * request.hierarchy.llc.ways <= 0
        ):
            return KERNEL_NUMPY
        return KERNEL_NATIVE

    def _effective_threads(self, request: SimRequest) -> int:
        from repro.fastsim.pipeline import effective_threads

        requested = kernels.thread_count() if request.threads is None else request.threads
        if request.hierarchy is None:
            return max(1, requested)
        return effective_threads(requested, request.hierarchy)

    # -- single-policy plans ----------------------------------------------

    def _plan_single(self, request: SimRequest, mode: str) -> ExecutionPlan:
        policy = request.policy
        fallbacks = []
        caps = capabilities_for(policy)
        engine = self._engine_name(policy)

        if mode == SCALAR:
            fallbacks.append("backend=scalar requested: reference simulator")
            return self._scalar_plan(request, mode, engine="scalar", fallbacks=fallbacks)
        if not caps.vector_replay:
            fallbacks.extend(caps.fallbacks)
            return self._scalar_plan(request, mode, engine="scalar", fallbacks=fallbacks)

        verify = mode == VERIFY
        if verify:
            fallbacks.append(
                "backend=verify: vector route runs with a scalar dual-run cross-check"
            )

        # Fused single-pass route: ROI / streaming stages under the pure
        # vector backend, when the native fused kernel covers the policy
        # and replaying an already-persisted stream would not be cheaper.
        if request.stage in (STAGE_ROI, STAGE_STREAMING) and mode == VECTOR:
            fused_ok, fused_reasons = self._fused_eligible(request, policy)
            if fused_ok:
                return ExecutionPlan(
                    route=ROUTE_FUSED,
                    stage=request.stage,
                    scheme=request.scheme,
                    engine=engine,
                    kernel=KERNEL_NATIVE_FUSED,
                    backend=mode,
                    fallbacks=tuple(fallbacks),
                    schemes=request.schemes,
                    threads=self._effective_threads(request),
                )
            fallbacks.extend(fused_reasons)
        elif request.stage in (STAGE_ROI, STAGE_STREAMING) and verify:
            fallbacks.append(
                "fused route skipped: verify needs the staged scalar stream alongside"
            )

        return ExecutionPlan(
            route=ROUTE_VECTOR,
            stage=request.stage,
            scheme=request.scheme,
            engine=engine,
            kernel=self._vector_kernel(request, policy),
            backend=mode,
            verify=verify,
            fallbacks=tuple(fallbacks),
            schemes=request.schemes,
        )

    def _fused_eligible(self, request: SimRequest, policy) -> Tuple[bool, Tuple[str, ...]]:
        """Whether the fused single-pass route applies; reasons when not."""
        reasons = []
        caps = capabilities_for(policy)
        if caps.fused_kernel is None:
            reasons.append(f"engine family {caps.family!r} has no fused kernel")
            return False, tuple(reasons)
        native = (
            request.native_override
            if request.native_override is not None
            else (
                request.hierarchy is not None
                and fused_native_supported(policy, request.hierarchy)
            )
        )
        if not native:
            if not request.has_kernel(caps.fused_kernel):
                reasons.append(
                    f"fused kernel {caps.fused_kernel!r} unavailable "
                    "(no compiler, REPRO_NATIVE=0, or unsupported configuration): "
                    "staged NumPy engines run instead"
                )
            else:
                reasons.extend(caps.fallbacks)
            return False, tuple(reasons)
        if request.stage == STAGE_ROI:
            if request.consumer_count() > 1:
                reasons.append(
                    f"{request.consumer_count()} consumers share this workload: "
                    "the staged path materializes the filtered ROI trace once "
                    "for all of them"
                )
                return False, tuple(reasons)
            if request.have_trace_cache:
                reasons.append(
                    "filtered ROI trace already cached: replaying it beats "
                    "regenerating the raw stream"
                )
                return False, tuple(reasons)
        if request.stage == STAGE_STREAMING:
            if request.have_chunk_store:
                reasons.append(
                    "persisted chunk store already on disk: replaying it beats "
                    "regenerating the trace"
                )
                return False, tuple(reasons)
            if request.consumer_count() > 1 and request.have_memo:
                reasons.append(
                    f"{request.consumer_count()} consumers share this stream and a "
                    "disk memo is active: the staged path materializes the "
                    "filtered stream once for all of them"
                )
                return False, tuple(reasons)
        return True, ()

    def _scalar_plan(
        self, request: SimRequest, mode: str, engine: str, fallbacks
    ) -> ExecutionPlan:
        return ExecutionPlan(
            route=ROUTE_SCALAR,
            stage=request.stage,
            scheme=request.scheme,
            engine=engine,
            kernel=KERNEL_PYTHON,
            backend=mode,
            fallbacks=tuple(fallbacks),
            schemes=request.schemes,
        )

    # -- OPT plans --------------------------------------------------------

    def _plan_opt(self, request: SimRequest, mode: str) -> ExecutionPlan:
        caps = ENGINE_CAPABILITIES["opt"]
        fallbacks = []
        streaming = request.stage == STAGE_STREAMING
        if mode == SCALAR:
            fallbacks.append("backend=scalar requested: offline reference OPT loop")
            if streaming:
                fallbacks.append(
                    "the offline reference is one-shot: the filtered stream is "
                    "materialized in memory"
                )
            return ExecutionPlan(
                route=ROUTE_OPT_SCALAR,
                stage=request.stage,
                scheme=request.scheme,
                engine="opt",
                kernel=KERNEL_PYTHON,
                backend=mode,
                fallbacks=tuple(fallbacks),
                schemes=request.schemes,
            )
        verify = mode == VERIFY
        if verify:
            fallbacks.append(
                "backend=verify: OPT dual-run materializes the stream for the "
                "offline reference cross-check"
            )
        if streaming:
            fallbacks.append(caps.fallbacks[0])
        kernel = KERNEL_NATIVE if request.native_available() else KERNEL_NUMPY
        return ExecutionPlan(
            route=ROUTE_OPT_TWO_PASS if streaming else ROUTE_OPT_VECTOR,
            stage=request.stage,
            scheme=request.scheme,
            engine="opt",
            kernel=kernel,
            backend=mode,
            verify=verify,
            fallbacks=tuple(fallbacks),
            schemes=request.schemes,
        )

    # -- multi-scheme (shared-stream) plans --------------------------------

    def _plan_multi(self, request: SimRequest, mode: str) -> ExecutionPlan:
        """Consumer-count rule: N>1 schemes replaying one filtered stream.

        The preferred route is ``fused-multi``: one (natively threaded)
        filter phase feeds every scheme's replay engine, so the raw trace
        is generated and filtered exactly once with nothing materialized.
        It needs the ``fused:filter`` kernel and a vector engine for every
        scheme; otherwise the staged materialize-once path runs as before.
        """
        fallbacks = []
        if mode == VECTOR and request.policies:
            ok, reasons = self._multi_eligible(request)
            if ok:
                return ExecutionPlan(
                    route=ROUTE_FUSED_MULTI,
                    stage=request.stage,
                    scheme="+".join(dict.fromkeys(request.schemes)),
                    engine="multi",
                    kernel=KERNEL_NATIVE_FUSED,
                    backend=mode,
                    fallbacks=(),
                    schemes=request.schemes,
                    threads=self._effective_threads(request),
                )
            fallbacks.extend(reasons)
        elif mode != VECTOR:
            fallbacks.append(
                f"backend={mode}: the fused multi-scheme route only runs under "
                "the pure vector backend"
            )
        fallbacks.append(
            f"{request.consumer_count()} consumers share one stream: the staged "
            "path materializes the filtered trace once and replays each scheme "
            "from it"
        )
        return ExecutionPlan(
            route=ROUTE_VECTOR if mode != SCALAR else ROUTE_SCALAR,
            stage=request.stage,
            scheme="+".join(dict.fromkeys(request.schemes)),
            engine="staged",
            kernel=(
                KERNEL_PYTHON
                if mode == SCALAR
                else (KERNEL_NATIVE if request.native_available() else KERNEL_NUMPY)
            ),
            backend=mode,
            verify=mode == VERIFY,
            fallbacks=tuple(fallbacks),
            schemes=request.schemes,
        )

    def _multi_eligible(self, request: SimRequest) -> Tuple[bool, Tuple[str, ...]]:
        reasons = []
        if not request.has_kernel("fused:filter"):
            reasons.append(
                "fused filter kernel unavailable (no compiler or REPRO_NATIVE=0): "
                "the shared filter phase would not beat the staged path"
            )
            return False, tuple(reasons)
        for scheme, policy in zip(request.schemes, request.policies):
            if type(policy) is BeladyOptimal:
                reasons.append(
                    f"scheme {scheme!r} is offline OPT: it cannot join a "
                    "single-pass multi-scheme replay"
                )
                return False, tuple(reasons)
            if not supports_vector_replay(policy):
                reasons.append(
                    f"scheme {scheme!r} has no vector engine (ablation subclass): "
                    "it needs the scalar reference, so the shared pass is off"
                )
                return False, tuple(reasons)
        if request.stage == STAGE_ROI and request.have_trace_cache:
            reasons.append(
                "filtered ROI trace already cached: replaying it beats "
                "regenerating the raw stream"
            )
            return False, tuple(reasons)
        if request.stage == STAGE_STREAMING and request.have_chunk_store:
            reasons.append(
                "persisted chunk store already on disk: replaying it beats "
                "regenerating the trace"
            )
            return False, tuple(reasons)
        return True, ()

    # -- co-run plans ------------------------------------------------------

    def _plan_corun(self, request: SimRequest, mode: str) -> ExecutionPlan:
        policy = request.policy
        if self._is_opt(request):
            raise ValueError("OPT is offline and has no co-run analogue")
        fallbacks = []
        if request.num_streams == 1 and request.partition is None:
            fallbacks.append(
                "degenerate co-run (one stream, no partition): delegates to the "
                "single-app streaming path and its memo entries"
            )
            return ExecutionPlan(
                route=ROUTE_CORUN_DELEGATE,
                stage=request.stage,
                scheme=request.scheme,
                engine=self._engine_name(policy),
                kernel=self._vector_kernel(request, policy) if mode != SCALAR else KERNEL_PYTHON,
                backend=mode,
                verify=mode == VERIFY,
                fallbacks=tuple(fallbacks),
                schemes=request.schemes,
            )
        caps = capabilities_for(policy)
        verify = mode == VERIFY
        if mode != SCALAR and supports_vector_corun(policy, request.partition):
            if verify:
                fallbacks.append(
                    "backend=verify: vector co-run runs with a scalar dual-run "
                    "cross-check of every per-stream counter"
                )
            return ExecutionPlan(
                route=ROUTE_CORUN_VECTOR,
                stage=request.stage,
                scheme=request.scheme,
                engine=self._engine_name(policy),
                kernel=self._vector_kernel(request, policy),
                backend=mode,
                verify=verify,
                fallbacks=tuple(fallbacks),
                schemes=request.schemes,
            )
        if mode == SCALAR:
            fallbacks.append("backend=scalar requested: reference simulator")
        elif not caps.vector_replay:
            fallbacks.extend(caps.fallbacks)
        elif request.partition is None and caps.family == "pin":
            fallbacks.extend(ENGINE_CAPABILITIES["pin"].fallbacks)
        return ExecutionPlan(
            route=ROUTE_CORUN_SCALAR,
            stage=request.stage,
            scheme=request.scheme,
            engine="scalar",
            kernel=KERNEL_PYTHON,
            backend=mode,
            fallbacks=tuple(fallbacks),
            schemes=request.schemes,
        )


#: Shared stateless planner instance.
PLANNER = RoutePlanner()


def plan_request(request: SimRequest) -> ExecutionPlan:
    """Convenience wrapper over :data:`PLANNER`."""
    return PLANNER.plan(request)


# ---------------------------------------------------------------------------
# execution surface
# ---------------------------------------------------------------------------
# The runner executes plans through the symbols below instead of importing
# engine modules itself (enforced by the CI route-guard lint).  Keeping the
# execution surface next to the planner means a new route lands in one
# module: declare its capability, plan it, export what runs it.

__all__ = [
    "ENGINE_CAPABILITIES",
    "EngineCapabilities",
    "ExecutionPlan",
    "KERNEL_NATIVE",
    "KERNEL_NATIVE_FUSED",
    "KERNEL_NUMPY",
    "KERNEL_PYTHON",
    "PLANNER",
    "ROUTE_CORUN_DELEGATE",
    "ROUTE_CORUN_SCALAR",
    "ROUTE_CORUN_VECTOR",
    "ROUTE_FUSED",
    "ROUTE_FUSED_MULTI",
    "ROUTE_OPT_SCALAR",
    "ROUTE_OPT_TWO_PASS",
    "ROUTE_OPT_VECTOR",
    "ROUTE_SCALAR",
    "ROUTE_VECTOR",
    "RoutePlanner",
    "STAGE_CORUN",
    "STAGE_ONESHOT",
    "STAGE_ROI",
    "STAGE_STREAMING",
    "SimRequest",
    "capabilities_for",
    "plan_request",
    # execution surface re-exports
    "CorunReplayStream",
    "FilterStream",
    "FusedPipeline",
    "MultiFusedPipeline",
    "OptStream",
    "PolicyReplayStream",
    "assert_stats_equal",
    "resolve_chunk_next_use",
    "run_filter",
    "supports_vector_corun",
    "supports_vector_replay",
    "vector_opt_replay",
    "vector_policy_replay",
]
