"""Vectorized LLC replay for the LRU scheme.

Only LRU has the stack property the fast engine relies on; stateful schemes
(RRIP variants, GRASP, Hawkeye, Leeway, pinning) must go through the scalar
simulator.  :func:`supports_vector_replay` is the dispatch predicate used by
:func:`repro.experiments.runner.simulate_llc_policy`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.policies import LRUPolicy
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.fastsim.stackdist import lru_replay


def supports_vector_replay(policy: ReplacementPolicy) -> bool:
    """Whether the fast engine reproduces this policy exactly.

    Restricted to :class:`LRUPolicy` itself — a subclass could override any
    hook and silently diverge, so it falls back to the scalar simulator.
    """
    return type(policy) is LRUPolicy


def vector_lru_replay(
    block_addresses: np.ndarray,
    llc_config: CacheConfig,
    regions: Optional[np.ndarray] = None,
) -> CacheStats:
    """Replay an LLC-bound block stream under LRU and return its statistics.

    ``regions`` (when given) produces the same per-region access/miss
    breakdown the scalar simulator records for Fig. 2, computed with
    ``np.bincount`` instead of per-access dictionary updates.
    """
    replay = lru_replay(block_addresses, llc_config.num_sets, llc_config.ways)
    region_accesses = region_misses = None
    if regions is not None and len(regions):
        labels = np.asarray(regions, dtype=np.int64)
        access_counts = np.bincount(labels)
        miss_counts = np.bincount(labels[~replay.hits], minlength=access_counts.shape[0])
        region_accesses = {
            region: int(count) for region, count in enumerate(access_counts) if count
        }
        region_misses = {
            region: int(count) for region, count in enumerate(miss_counts) if count
        }
    return CacheStats.from_counts(
        name=llc_config.name,
        hits=replay.hit_count,
        misses=replay.miss_count,
        evictions=replay.evictions,
        region_accesses=region_accesses,
        region_misses=region_misses,
    )
