"""Vectorized LLC replay dispatch for the schemes the fast engines cover.

Two exact engines exist: the stack-distance engine for plain LRU
(:mod:`repro.fastsim.stackdist`) and the batched RRIP-family engine for
SRRIP/BRRIP/DRRIP/GRASP (:mod:`repro.fastsim.rrip`).  Stateful schemes the
engines cannot express (Hawkeye, Leeway, SHiP-MEM, pinning, the GRASP
ablation variants) go through the scalar simulator.
:func:`supports_vector_replay` is the dispatch predicate used by
:func:`repro.experiments.runner.simulate_llc_policy`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.policies import LRUPolicy
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.fastsim.rrip import rrip_replay, rrip_spec
from repro.fastsim.stackdist import lru_replay


def supports_vector_replay(policy: ReplacementPolicy) -> bool:
    """Whether a fast engine reproduces this policy exactly.

    Restricted to exact policy types — :class:`LRUPolicy` plus the four
    RRIP-family policies :func:`repro.fastsim.rrip.rrip_spec` recognises
    (:class:`~repro.cache.policies.rrip.SRRIPPolicy`,
    :class:`~repro.cache.policies.rrip.BRRIPPolicy`,
    :class:`~repro.cache.policies.rrip.DRRIPPolicy`,
    :class:`~repro.core.grasp.GraspPolicy`).  A subclass could override any
    hook and silently diverge, so it falls back to the scalar simulator.
    """
    return type(policy) is LRUPolicy or rrip_spec(policy) is not None


def _region_breakdown(hits: np.ndarray, regions: Optional[np.ndarray]):
    """Per-region access/miss counts (Fig. 2) from a replay's hit mask."""
    if regions is None or not len(regions):
        return None, None
    labels = np.asarray(regions, dtype=np.int64)
    access_counts = np.bincount(labels)
    miss_counts = np.bincount(labels[~hits], minlength=access_counts.shape[0])
    region_accesses = {
        region: int(count) for region, count in enumerate(access_counts) if count
    }
    region_misses = {
        region: int(count) for region, count in enumerate(miss_counts) if count
    }
    return region_accesses, region_misses


def vector_lru_replay(
    block_addresses: np.ndarray,
    llc_config: CacheConfig,
    regions: Optional[np.ndarray] = None,
) -> CacheStats:
    """Replay an LLC-bound block stream under LRU and return its statistics.

    ``regions`` (when given) produces the same per-region access/miss
    breakdown the scalar simulator records for Fig. 2, computed with
    ``np.bincount`` instead of per-access dictionary updates.
    """
    replay = lru_replay(block_addresses, llc_config.num_sets, llc_config.ways)
    region_accesses, region_misses = _region_breakdown(replay.hits, regions)
    return CacheStats.from_counts(
        name=llc_config.name,
        hits=replay.hit_count,
        misses=replay.miss_count,
        evictions=replay.evictions,
        region_accesses=region_accesses,
        region_misses=region_misses,
    )


def vector_policy_replay(
    policy: ReplacementPolicy,
    block_addresses: np.ndarray,
    llc_config: CacheConfig,
    hints: Optional[np.ndarray] = None,
    regions: Optional[np.ndarray] = None,
) -> CacheStats:
    """Replay an LLC trace under any policy :func:`supports_vector_replay` accepts.

    ``hints`` is the 2-bit GRASP reuse-hint stream aligned with
    ``block_addresses`` (``None`` replays hint-blind, like the scalar
    simulator with ``use_hints=False``); only GRASP's tables consult it.
    """
    if type(policy) is LRUPolicy:
        return vector_lru_replay(block_addresses, llc_config, regions=regions)
    spec = rrip_spec(policy)
    if spec is None:
        raise ValueError(
            f"policy {policy!r} has no vectorized replay engine; "
            "use supports_vector_replay() before dispatching"
        )
    replay = rrip_replay(
        block_addresses, hints, llc_config.num_sets, llc_config.ways, spec
    )
    region_accesses, region_misses = _region_breakdown(replay.hits, regions)
    return CacheStats.from_counts(
        name=llc_config.name,
        hits=replay.hit_count,
        misses=replay.miss_count,
        evictions=replay.evictions,
        region_accesses=region_accesses,
        region_misses=region_misses,
    )
