"""Vectorized LLC replay dispatch for the schemes the fast engines cover.

Every replacement scheme of the paper's evaluation has an exact fast engine:
the stack-distance engine for plain LRU (:mod:`repro.fastsim.stackdist`), the
batched RRIP-family engine for SRRIP/BRRIP/DRRIP/GRASP
(:mod:`repro.fastsim.rrip`), and the PR 4 engines for SHiP-MEM
(:mod:`repro.fastsim.ship`), Hawkeye (:mod:`repro.fastsim.hawkeye`), Leeway
(:mod:`repro.fastsim.leeway`), the PIN-X pinning configurations
(:mod:`repro.fastsim.pin`) and Belady's OPT (:mod:`repro.fastsim.opt`).
Only the GRASP ablation variants — subclasses that override hooks the array
specs cannot express — remain scalar-only.
:func:`supports_vector_replay` is the dispatch predicate used by
:func:`repro.experiments.runner.simulate_llc_policy`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.policies import LRUPolicy
from repro.cache.policies.opt import BeladyOptimal
from repro.cache.stats import CacheStats
from repro.fastsim.hawkeye import HawkeyeStream, hawkeye_replay, hawkeye_spec
from repro.fastsim.leeway import LeewayStream, leeway_replay, leeway_spec
from repro.fastsim.opt import opt_replay
from repro.fastsim.pin import PinStream, pin_replay, pin_spec
from repro.fastsim.rrip import RRIPStream, rrip_replay, rrip_spec
from repro.fastsim.ship import ShipStream, ship_replay, ship_spec
from repro.fastsim.stackdist import LRUStream, lru_replay


def supports_vector_replay(policy) -> bool:
    """Whether a fast engine reproduces this policy exactly.

    Restricted to exact policy types — :class:`LRUPolicy`, the four
    RRIP-family policies :func:`repro.fastsim.rrip.rrip_spec` recognises
    (SRRIP/BRRIP/DRRIP/GRASP), :class:`~repro.cache.policies.ship.ShipMemPolicy`,
    :class:`~repro.cache.policies.hawkeye.HawkeyePolicy`,
    :class:`~repro.cache.policies.leeway.LeewayPolicy`,
    :class:`~repro.cache.policies.pin.PinningPolicy` and the offline
    :class:`~repro.cache.policies.opt.BeladyOptimal` wrapper.  A subclass
    could override any hook and silently diverge, so anything else falls
    back to the scalar simulator.
    """
    if type(policy) in (LRUPolicy, BeladyOptimal):
        return True
    return (
        rrip_spec(policy) is not None
        or ship_spec(policy) is not None
        or hawkeye_spec(policy) is not None
        or leeway_spec(policy) is not None
        or pin_spec(policy) is not None
    )


def _region_breakdown(hits: np.ndarray, regions: Optional[np.ndarray]):
    """Per-region access/miss counts (Fig. 2) from a replay's hit mask."""
    if regions is None or not len(regions):
        return None, None
    labels = np.asarray(regions, dtype=np.int64)
    access_counts = np.bincount(labels)
    miss_counts = np.bincount(labels[~hits], minlength=access_counts.shape[0])
    region_accesses = {
        region: int(count) for region, count in enumerate(access_counts) if count
    }
    region_misses = {
        region: int(count) for region, count in enumerate(miss_counts) if count
    }
    return region_accesses, region_misses


def vector_lru_replay(
    block_addresses: np.ndarray,
    llc_config: CacheConfig,
    regions: Optional[np.ndarray] = None,
) -> CacheStats:
    """Replay an LLC-bound block stream under LRU and return its statistics.

    ``regions`` (when given) produces the same per-region access/miss
    breakdown the scalar simulator records for Fig. 2, computed with
    ``np.bincount`` instead of per-access dictionary updates.
    """
    replay = lru_replay(block_addresses, llc_config.num_sets, llc_config.ways)
    region_accesses, region_misses = _region_breakdown(replay.hits, regions)
    return CacheStats.from_counts(
        name=llc_config.name,
        hits=replay.hit_count,
        misses=replay.miss_count,
        evictions=replay.evictions,
        region_accesses=region_accesses,
        region_misses=region_misses,
    )


def vector_opt_replay(
    block_addresses: np.ndarray, llc_config: CacheConfig
) -> CacheStats:
    """Belady's OPT statistics for an LLC trace via the vectorized engine.

    Mirrors :func:`repro.cache.policies.opt.simulate_opt_misses` (including
    the ``-OPT`` stats name); the scalar reference records no per-region
    breakdown, so neither does this path.
    """
    replay = opt_replay(block_addresses, llc_config.num_sets, llc_config.ways)
    return CacheStats.from_counts(
        name=f"{llc_config.name}-OPT",
        hits=replay.hit_count,
        misses=replay.miss_count,
        evictions=replay.evictions,
    )


class PolicyReplayStream:
    """Resumable LLC replay under any policy :func:`supports_vector_replay`
    accepts, except the offline :class:`BeladyOptimal` (streaming OPT is a
    two-pass pipeline — see
    :func:`repro.experiments.runner.simulate_opt_streaming`).

    The streaming counterpart of :func:`vector_policy_replay`: feed aligned
    (blocks, hints, regions, pcs) chunks, then read :meth:`stats`.  Chunked
    replay is bit-identical to the one-shot call on the concatenation,
    including the final policy state, which is exposed via the underlying
    ``engine`` attribute (an ``*Stream`` object carrying PSEL, SHCT,
    predictor tables, pinned populations, ...).
    """

    def __init__(self, policy, llc_config: CacheConfig, use_native=None) -> None:
        if type(policy) is BeladyOptimal:
            raise ValueError(
                "BeladyOptimal has no online stream; use simulate_opt_streaming"
            )
        self.llc_config = llc_config
        num_sets, ways = llc_config.num_sets, llc_config.ways
        self._kind = None
        if type(policy) is LRUPolicy:
            self._kind = "lru"
            self.engine = LRUStream(num_sets, ways, use_native=use_native)
        else:
            spec = rrip_spec(policy)
            if spec is not None:
                self._kind = "rrip"
                self.engine = RRIPStream(num_sets, ways, spec, use_native=use_native)
            elif pin_spec(policy) is not None:
                self._kind = "pin"
                self.engine = PinStream(
                    num_sets, ways, pin_spec(policy), use_native=use_native
                )
            elif ship_spec(policy) is not None:
                self._kind = "ship"
                self.engine = ShipStream(
                    num_sets, ways, ship_spec(policy), use_native=use_native
                )
            elif hawkeye_spec(policy) is not None:
                self._kind = "hawkeye"
                self.engine = HawkeyeStream(
                    num_sets, ways, hawkeye_spec(policy), use_native=use_native
                )
            elif leeway_spec(policy) is not None:
                self._kind = "leeway"
                self.engine = LeewayStream(
                    num_sets, ways, leeway_spec(policy), use_native=use_native
                )
            else:
                raise ValueError(
                    f"policy {policy!r} has no vectorized replay engine; "
                    "use supports_vector_replay() before dispatching"
                )
        self._region_accesses: dict = {}
        self._region_misses: dict = {}

    def feed(
        self,
        block_addresses: np.ndarray,
        hints: Optional[np.ndarray] = None,
        regions: Optional[np.ndarray] = None,
        pcs: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Replay one chunk; returns its hit mask and advances the state."""
        if self._kind == "lru":
            hits = self.engine.feed(block_addresses)
        elif self._kind in ("rrip", "pin"):
            hits = self.engine.feed(block_addresses, hints)
        elif self._kind == "ship":
            hits = self.engine.feed(block_addresses)
        else:
            hits = self.engine.feed(block_addresses, pcs)
        region_accesses, region_misses = _region_breakdown(hits, regions)
        if region_accesses is not None:
            for region, count in region_accesses.items():
                self._region_accesses[region] = (
                    self._region_accesses.get(region, 0) + count
                )
            for region, count in region_misses.items():
                self._region_misses[region] = self._region_misses.get(region, 0) + count
        return hits

    def stats(self) -> CacheStats:
        """Aggregate :class:`CacheStats` over everything fed so far."""
        bypasses = self.engine.bypass_count if self._kind == "pin" else 0
        return CacheStats.from_counts(
            name=self.llc_config.name,
            hits=self.engine.hit_count,
            misses=self.engine.miss_count,
            evictions=self.engine.evictions,
            bypasses=bypasses,
            region_accesses=self._region_accesses or None,
            region_misses=self._region_misses or None,
        )

    def finish(self) -> CacheStats:
        """Alias of :meth:`stats`, closing the begin/feed/finish cycle."""
        return self.stats()


def vector_policy_replay(
    policy,
    block_addresses: np.ndarray,
    llc_config: CacheConfig,
    hints: Optional[np.ndarray] = None,
    regions: Optional[np.ndarray] = None,
    pcs: Optional[np.ndarray] = None,
) -> CacheStats:
    """Replay an LLC trace under any policy :func:`supports_vector_replay` accepts.

    ``hints`` is the 2-bit GRASP reuse-hint stream aligned with
    ``block_addresses`` (``None`` replays hint-blind, like the scalar
    simulator with ``use_hints=False``); GRASP's tables and PIN's pinning
    decisions consult it.  ``pcs`` is the synthetic program-counter stream
    the PC-indexed schemes (Hawkeye, Leeway) train on (``None`` replays with
    a constant PC, like the scalar simulator's default).
    """
    if type(policy) is LRUPolicy:
        return vector_lru_replay(block_addresses, llc_config, regions=regions)
    if type(policy) is BeladyOptimal:
        return vector_opt_replay(block_addresses, llc_config)
    num_sets, ways = llc_config.num_sets, llc_config.ways
    bypasses = 0
    spec = rrip_spec(policy)
    if spec is not None:
        replay = rrip_replay(block_addresses, hints, num_sets, ways, spec)
    else:
        pspec = pin_spec(policy)
        sspec = ship_spec(policy)
        hspec = hawkeye_spec(policy)
        lspec = leeway_spec(policy)
        if pspec is not None:
            replay = pin_replay(block_addresses, hints, num_sets, ways, pspec)
            bypasses = replay.bypass_count
        elif sspec is not None:
            replay = ship_replay(block_addresses, num_sets, ways, sspec)
        elif hspec is not None:
            replay = hawkeye_replay(block_addresses, pcs, num_sets, ways, hspec)
        elif lspec is not None:
            replay = leeway_replay(block_addresses, pcs, num_sets, ways, lspec)
        else:
            raise ValueError(
                f"policy {policy!r} has no vectorized replay engine; "
                "use supports_vector_replay() before dispatching"
            )
    region_accesses, region_misses = _region_breakdown(replay.hits, regions)
    return CacheStats.from_counts(
        name=llc_config.name,
        hits=replay.hit_count,
        misses=replay.miss_count,
        evictions=replay.evictions,
        bypasses=bypasses,
        region_accesses=region_accesses,
        region_misses=region_misses,
    )
