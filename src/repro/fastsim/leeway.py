"""Exact vectorized replay for Leeway (live-distance dead-block prediction).

:class:`~repro.cache.policies.leeway.LeewayPolicy` keeps a true LRU recency
stack per set plus per-line observed live distances, and one global
per-signature (PC) predictor updated on evictions with reuse-oriented bias.
The per-set state vectorizes with the RRIP engine's chunking: recency stacks
become a ``(num_sets, ways)`` *position* matrix (0 = MRU), so within a chunk
— where every set appears at most once — all hit bookkeeping (observed
live-distance maxima, move-to-MRU rotations) is batched array arithmetic.

The predictor is global: a victim's eviction may update the very signature a
later miss in another set consults, so victim selection and prediction
updates advance in trace order over the chunk's *misses only* (hits never
touch the predictor — the batched phase handles them entirely).  Victim
choice per miss is two array reductions on the set's position row: the
deepest predicted-dead line, else plain LRU.  PC signatures are densified
with one ``np.unique`` so the predictor is flat arrays rather than dicts.

:func:`leeway_replay` dispatches to the compiled kernel
(:func:`repro.fastsim.kernels.leeway_replay`) when one is available and to
:func:`numpy_leeway_replay` otherwise; both are exact, including the final
predicted live distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.leeway import LeewayPolicy
from repro.fastsim import kernels
from repro.fastsim.rrip import _chunk_end
from repro.fastsim.stackdist import (
    DenseIdMap,
    grow_to,
    previous_occurrence_indices,
)


@dataclass(frozen=True)
class LeewaySpec:
    """Array-form description of one :class:`LeewayPolicy` instance."""

    decay_period: int


def leeway_spec(policy: ReplacementPolicy) -> Optional[LeewaySpec]:
    """Snapshot a policy into a :class:`LeewaySpec`, or ``None`` if ineligible.

    Restricted to the exact type :class:`LeewayPolicy` — a subclass could
    override any hook and silently diverge.
    """
    if type(policy) is not LeewayPolicy:
        return None
    return LeewaySpec(decay_period=policy.decay_period)


@dataclass(frozen=True)
class LeewayReplay:
    """Outcome of replaying a block stream through one Leeway cache."""

    hits: np.ndarray
    misses_per_set: np.ndarray
    ways: int
    #: Final predicted live distance per PC signature (only trained PCs;
    #: untrained signatures predict 0, like the scalar policy).
    predicted_live_distances: Dict[int, int]

    @property
    def hit_count(self) -> int:
        """Total number of hits."""
        return int(self.hits.sum())

    @property
    def miss_count(self) -> int:
        """Total number of misses."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions (Leeway never bypasses, so misses beyond capacity)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())


def _pc_array(pcs: Optional[np.ndarray], n: int) -> np.ndarray:
    """Normalise an optional PC stream to ``n`` values (0 when absent)."""
    if pcs is None:
        return np.zeros(n, dtype=np.int64)
    values = np.asarray(pcs, dtype=np.int64)
    if values.shape[0] != n:
        raise ValueError(f"pc stream length {values.shape[0]} != trace length {n}")
    return values


class LeewayStream:
    """Resumable exact Leeway replay: feed a block/PC stream in chunks.

    Carries tags, recency positions, observed live distances, per-line
    signatures and the global per-PC predictor across :meth:`feed` calls;
    chunked replay is bit-identical to one replay over the concatenation.
    PCs are densified incrementally (grow-only first-appearance ids), and
    the predictor/vote arrays grow with the id space.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        spec: LeewaySpec,
        use_native: Optional[bool] = None,
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.spec = spec
        self._use_native = (
            kernels.available() if use_native is None else bool(use_native)
        )
        self.tags = np.full((num_sets, ways), -1, dtype=np.int64)
        # positions[s, w] is way w's depth in set s's recency stack (0 = MRU);
        # each row is a permutation of 0..ways-1, mirroring the scalar
        # policy's bind-time stack [0, 1, ..., ways-1].  int32 to match the
        # compiled kernel; the NumPy path shares the array.
        self.positions = np.tile(np.arange(ways, dtype=np.int32), (num_sets, 1))
        self.observed = np.zeros((num_sets, ways), dtype=np.int32)
        # Line signatures as dense PC ids; the initial value is never
        # consulted (victim search only runs on full sets, whose lines were
        # all inserted).
        self.line_sig = np.zeros((num_sets, ways), dtype=np.int64)
        self.misses_per_set = np.zeros(num_sets, dtype=np.int64)
        self._pc_ids = DenseIdMap()
        self._predicted = np.empty(0, dtype=np.int64)
        self._votes = np.empty(0, dtype=np.int64)
        self.hit_count = 0

    @property
    def miss_count(self) -> int:
        """Total number of misses fed so far."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions so far (Leeway never bypasses)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())

    @property
    def predicted_live_distances(self) -> Dict[int, int]:
        """Current predictor as ``{pc: live distance}`` over trained PCs."""
        return {
            int(pc): int(value)
            for pc, value in zip(
                self._pc_ids.keys_in_id_order(), self._predicted.tolist()
            )
            if value
        }

    def feed(
        self, block_addresses: np.ndarray, pcs: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Replay one chunk; returns its hit mask and advances the state."""
        blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
        n = int(blocks.shape[0])
        pc_values = _pc_array(pcs, n)
        if n == 0:
            return np.zeros(0, dtype=bool)
        pc_ids = self._pc_ids.map(pc_values)
        self._predicted = grow_to(self._predicted, len(self._pc_ids), 0)
        self._votes = grow_to(self._votes, len(self._pc_ids), 0)
        hits = None
        if self._use_native:
            hits = kernels.leeway_feed(
                blocks,
                pc_ids,
                self.num_sets,
                self.ways,
                self.spec.decay_period,
                self.tags,
                self.positions,
                self.line_sig,
                self.observed,
                self._predicted,
                self._votes,
                self.misses_per_set,
            )
        if hits is None:
            hits = self._numpy_feed(blocks, pc_ids)
        self.hit_count += int(hits.sum())
        return hits

    def _numpy_feed(self, blocks: np.ndarray, pc_ids: np.ndarray) -> np.ndarray:
        num_sets = self.num_sets
        decay_period = self.spec.decay_period
        tags, positions = self.tags, self.positions
        observed, line_sig = self.observed, self.line_sig
        predicted, votes = self._predicted, self._votes
        n = int(blocks.shape[0])
        hits = np.zeros(n, dtype=bool)
        set_ids = blocks & (num_sets - 1)
        prev = previous_occurrence_indices(set_ids)

        position = 0
        while position < n:
            end = _chunk_end(prev, position, n)
            sets = set_ids[position:end]
            chunk_blocks = blocks[position:end]
            chunk_pcs = pc_ids[position:end]

            match = tags[sets] == chunk_blocks[:, None]
            is_hit = match.any(axis=1)
            hits[position:end] = is_hit

            if is_hit.any():
                # Batched hit phase (hits never touch the global predictor):
                # record live-distance maxima, then rotate each hit line to
                # MRU.
                hit_sets = sets[is_hit]
                hit_ways = match[is_hit].argmax(axis=1)
                rows = positions[hit_sets]
                depth = rows[np.arange(rows.shape[0]), hit_ways]
                observed[hit_sets, hit_ways] = np.maximum(
                    observed[hit_sets, hit_ways], depth
                )
                rows += rows < depth[:, None]
                rows[np.arange(rows.shape[0]), hit_ways] = 0
                positions[hit_sets] = rows

            if not is_hit.all():
                # Trace-order miss walk: victim selection reads the predictor
                # that earlier evictions (possibly in other sets) just
                # updated.
                miss = ~is_hit
                for pos_in_chunk in np.flatnonzero(miss).tolist():
                    set_index = int(sets[pos_in_chunk])
                    tag_row = tags[set_index]
                    empty = np.flatnonzero(tag_row == -1)
                    if empty.size:
                        way = int(empty[0])
                    else:
                        pos_row = positions[set_index]
                        sig_row = line_sig[set_index]
                        dead = pos_row > predicted[sig_row]
                        if dead.any():
                            # Deepest predicted-dead line == first dead line
                            # on the scalar LRU-to-MRU walk (positions are
                            # unique).
                            way = int(np.where(dead, pos_row, -1).argmax())
                        else:
                            way = int(pos_row.argmax())
                        # Eviction: reuse-oriented predictor update (grow
                        # fast, shrink only after decay_period consecutive
                        # votes).
                        signature = int(sig_row[way])
                        observation = int(observed[set_index, way])
                        prediction = int(predicted[signature])
                        if observation > prediction:
                            predicted[signature] = observation
                            votes[signature] = 0
                        elif observation < prediction:
                            votes[signature] += 1
                            if votes[signature] >= decay_period:
                                predicted[signature] = prediction - 1
                                votes[signature] = 0
                    tag_row[way] = chunk_blocks[pos_in_chunk]
                    line_sig[set_index, way] = chunk_pcs[pos_in_chunk]
                    observed[set_index, way] = 0
                    pos_row = positions[set_index]
                    pos_row += pos_row < pos_row[way]
                    pos_row[way] = 0
            position = end

        self.misses_per_set += np.bincount(set_ids[~hits], minlength=num_sets)
        return hits


def numpy_leeway_replay(
    block_addresses: np.ndarray,
    pcs: Optional[np.ndarray],
    num_sets: int,
    ways: int,
    spec: LeewaySpec,
) -> LeewayReplay:
    """Pure-NumPy batched replay (the portable engine behind :func:`leeway_replay`).

    Exact with respect to the scalar policy: identical per-access hit masks,
    per-set miss counts, victim choices and final predictor state.  One
    :class:`LeewayStream` feed over the whole stream — chunked feeds of the
    same stream are bit-identical by construction.
    """
    stream = LeewayStream(num_sets, ways, spec, use_native=False)
    hits = stream.feed(block_addresses, pcs)
    return LeewayReplay(
        hits=hits,
        misses_per_set=stream.misses_per_set,
        ways=ways,
        predicted_live_distances=stream.predicted_live_distances,
    )


def leeway_replay(
    block_addresses: np.ndarray,
    pcs: Optional[np.ndarray],
    num_sets: int,
    ways: int,
    spec: LeewaySpec,
) -> LeewayReplay:
    """Replay a block stream through a ``num_sets`` x ``ways`` Leeway cache.

    ``num_sets`` must be a power of two (set index is ``block & mask``,
    matching :class:`repro.cache.cache.SetAssociativeCache`).  Dispatches to
    the compiled kernel (:mod:`repro.fastsim.kernels`) when available and to
    :func:`numpy_leeway_replay` otherwise; both are exact.
    """
    blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
    n = int(blocks.shape[0])
    pc_values = _pc_array(pcs, n)
    unique_pcs, pc_ids = np.unique(pc_values, return_inverse=True)
    native = kernels.leeway_replay(
        blocks,
        pc_ids.astype(np.int64),
        int(unique_pcs.shape[0]),
        num_sets,
        ways,
        spec.decay_period,
    )
    if native is not None:
        native_hits, misses_per_set, predicted = native
        final = {
            int(unique_pcs[index]): int(value)
            for index, value in enumerate(predicted.tolist())
            if value
        }
        return LeewayReplay(
            hits=native_hits,
            misses_per_set=misses_per_set,
            ways=ways,
            predicted_live_distances=final,
        )
    return numpy_leeway_replay(blocks, pc_values, num_sets, ways, spec)
