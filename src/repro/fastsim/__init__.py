"""NumPy-vectorized fast path for the trace-driven cache simulation.

The scalar simulator (:mod:`repro.cache.cache`) replays one access at a time
through Python-level policy objects.  That is the reference implementation —
easy to audit against the paper, but it costs microseconds per access.  This
package reimplements the hot stages of the pipeline as batched computations
over whole traces:

``stackdist``
    The LRU engine.  Exploits the LRU *stack property*: a W-way set hits an
    access exactly when fewer than W distinct blocks of the same set were
    touched since the previous access to the same block.  Stack distances are
    computed for a whole trace at once with a vectorized merge-count, so no
    per-access Python loop remains.
``rrip``
    The RRIP-family engine (SRRIP, BRRIP, DRRIP and GRASP with per-access
    reuse hints) — the policies behind every headline result of the paper.
    Keeps the whole simulator state (tags, RRPV counters, the set-dueling
    PSEL counter) in NumPy arrays and replays the trace in batched
    set-parallel sweeps, reproducing the scalar policies bit-exactly
    including the global duel state.
``_native``
    Optional accelerator: tiny C kernels compiled on demand (plain ``cc``,
    no third-party packages) for both engines, an order of magnitude faster
    than NumPy.  ``lru_replay``/``rrip_replay`` dispatch to them
    automatically; set ``REPRO_NATIVE=0`` or remove the compiler and
    everything transparently stays on NumPy.
``filter``
    The L1-D/L2 filter of pipeline stage 5 (both levels are always LRU, see
    Sec. IV of the paper), with a scalar reference path and an equivalence
    guard used by the ``verify`` backend.
``replay``
    Vectorized LLC replay dispatch for stage 6 — LRU plus the RRIP family,
    including the per-region statistics breakdown of Fig. 2.
    :func:`supports_vector_replay` is the predicate deciding which policies
    qualify (exact policy types only; subclasses fall back to scalar).
``dispatch``
    Backend selection: ``vector`` (default), ``scalar`` (reference) or
    ``verify`` (run both, assert identical counts).  The process-wide default
    can be overridden with the ``REPRO_SIM_BACKEND`` environment variable or
    per-call/per-config.

Policies the engines cannot express (Hawkeye, Leeway, SHiP-MEM, pinning and
the GRASP ablation variants) always use the scalar simulator regardless of
the selected backend.
"""

from repro.fastsim.dispatch import (
    BACKEND_ENV_VAR,
    BACKENDS,
    SCALAR,
    VECTOR,
    VERIFY,
    default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.fastsim.filter import (
    FastSimMismatchError,
    FilterResult,
    run_filter,
    scalar_filter,
    vector_filter,
)
from repro.fastsim.replay import (
    supports_vector_replay,
    vector_lru_replay,
    vector_policy_replay,
)
from repro.fastsim.rrip import (
    RRIPReplay,
    RRIPSpec,
    numpy_rrip_replay,
    rrip_replay,
    rrip_spec,
)
from repro.fastsim.stackdist import (
    LRUReplay,
    lru_replay,
    numpy_lru_replay,
    occurrence_order,
    previous_occurrence_indices,
    prior_leq_counts,
    substream_previous_indices,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "SCALAR",
    "VECTOR",
    "VERIFY",
    "FastSimMismatchError",
    "FilterResult",
    "LRUReplay",
    "RRIPReplay",
    "RRIPSpec",
    "default_backend",
    "lru_replay",
    "numpy_lru_replay",
    "numpy_rrip_replay",
    "occurrence_order",
    "previous_occurrence_indices",
    "prior_leq_counts",
    "resolve_backend",
    "rrip_replay",
    "rrip_spec",
    "run_filter",
    "scalar_filter",
    "set_default_backend",
    "substream_previous_indices",
    "supports_vector_replay",
    "vector_filter",
    "vector_lru_replay",
    "vector_policy_replay",
]
