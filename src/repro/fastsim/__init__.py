"""NumPy-vectorized fast path for the trace-driven cache simulation.

The scalar simulator (:mod:`repro.cache.cache`) replays one access at a time
through Python-level policy objects.  That is the reference implementation —
easy to audit against the paper, but it costs microseconds per access.  This
package reimplements the hot stages of the pipeline as batched computations
over whole traces:

``stackdist``
    The LRU engine.  Exploits the LRU *stack property*: a W-way set hits an
    access exactly when fewer than W distinct blocks of the same set were
    touched since the previous access to the same block.  Stack distances are
    computed for a whole trace at once with a vectorized merge-count, so no
    per-access Python loop remains.
``rrip``
    The RRIP-family engine (SRRIP, BRRIP, DRRIP and GRASP with per-access
    reuse hints) — the policies behind every headline result of the paper.
    Keeps the whole simulator state (tags, RRPV counters, the set-dueling
    PSEL counter) in NumPy arrays and replays the trace in batched
    set-parallel sweeps, reproducing the scalar policies bit-exactly
    including the global duel state.
``ship`` / ``hawkeye`` / ``leeway`` / ``pin`` / ``opt``
    The remaining schemes of the paper's comparison matrix (Figs. 5-11):
    SHiP-MEM, Hawkeye, Leeway, the PIN-X pinning configurations (including
    BYPASS when a set is fully pinned) and Belady's OPT.  Per-set state
    (tags, RRPVs, pinned masks, recency positions, next-use values) batches
    under the same set-parallel chunking as ``rrip``; globally shared
    learning state (SHiP's SHCT, Leeway's and Hawkeye's PC predictors) is
    advanced in exact trace order over each chunk's sparse events, the same
    way the RRIP engine walks PSEL updates.
``kernels``
    Optional accelerator: tiny C kernels compiled on demand (plain ``cc``,
    no third-party packages) for every engine, an order of magnitude faster
    than NumPy.  Kernels live in a registry package — one module per engine
    family, a shared ``register_kernel``/capability-probe API, and a single
    lazily-compiled translation unit (nothing compiles at import time).  The
    ``*_replay`` dispatchers use them automatically; set ``REPRO_NATIVE=0``
    or remove the compiler and everything transparently stays on NumPy.
    (:mod:`repro.fastsim._native` is a *deprecated* facade for old imports —
    it emits a :class:`DeprecationWarning`; import the registry instead.)
``pipeline``
    The fused single-pass pipeline: L1/L2 filtering and the LLC replay of
    one policy run in a single native call per trace chunk, threaded across
    set-group shards (``REPRO_THREADS``), bit-identical to the staged
    engines at any thread count.  :class:`MultiFusedPipeline` is the
    multi-scheme variant: one shared filter phase feeding N policies'
    replay engines.
``plan``
    Capability-driven execution planning: :class:`~repro.fastsim.plan.RoutePlanner`
    maps a :class:`~repro.fastsim.plan.SimRequest` to an explicit, serializable
    :class:`~repro.fastsim.plan.ExecutionPlan` naming the route, engine,
    kernel tier, backend and every fallback reason.  The experiment runner
    routes all simulation through plans, and imports its engines through
    this module's execution-surface re-exports.
``filter``
    The L1-D/L2 filter of pipeline stage 5 (both levels are always LRU, see
    Sec. IV of the paper), with a scalar reference path and an equivalence
    guard used by the ``verify`` backend.
``replay``
    Vectorized LLC replay dispatch for stage 6 — every scheme of the paper's
    matrix, including the per-region statistics breakdown of Fig. 2.
    :func:`supports_vector_replay` is the predicate deciding which policies
    qualify (exact policy types only; subclasses fall back to scalar).
``dispatch``
    Backend selection: ``vector`` (default), ``scalar`` (reference) or
    ``verify`` (run both, assert identical counts).  The process-wide default
    can be overridden with the ``REPRO_SIM_BACKEND`` environment variable or
    per-call/per-config.

Only the GRASP ablation variants (RRIP+Hints, insertion-only GRASP) still
use the scalar simulator regardless of the selected backend — they subclass
DRRIP/GRASP and override hooks the array-form specs cannot express.
"""

from repro.fastsim.corun import CorunReplayStream, supports_vector_corun
from repro.fastsim.dispatch import (
    BACKEND_ENV_VAR,
    BACKENDS,
    SCALAR,
    VECTOR,
    VERIFY,
    default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.fastsim.filter import (
    FastSimMismatchError,
    FilterResult,
    FilterStream,
    run_filter,
    scalar_filter,
    vector_filter,
)
from repro.fastsim.hawkeye import (
    HawkeyeReplay,
    HawkeyeSpec,
    HawkeyeStream,
    hawkeye_replay,
    hawkeye_spec,
    numpy_hawkeye_replay,
)
from repro.fastsim.leeway import (
    LeewayReplay,
    LeewaySpec,
    LeewayStream,
    leeway_replay,
    leeway_spec,
    numpy_leeway_replay,
)
from repro.fastsim.opt import (
    OptReplay,
    OptStream,
    next_use_indices,
    numpy_opt_replay,
    opt_replay,
    resolve_chunk_next_use,
)
from repro.fastsim.pin import (
    PinReplay,
    PinSpec,
    PinStream,
    numpy_pin_replay,
    pin_replay,
    pin_spec,
)
from repro.fastsim.pipeline import (
    FusedPipeline,
    FusedStats,
    MultiFusedPipeline,
    effective_threads,
    fused_native_supported,
    fused_supported,
)
from repro.fastsim.plan import (
    ENGINE_CAPABILITIES,
    EngineCapabilities,
    ExecutionPlan,
    PLANNER,
    RoutePlanner,
    SimRequest,
    capabilities_for,
    plan_request,
)
from repro.fastsim.replay import (
    PolicyReplayStream,
    supports_vector_replay,
    vector_lru_replay,
    vector_opt_replay,
    vector_policy_replay,
)
from repro.fastsim.rrip import (
    RRIPReplay,
    RRIPSpec,
    RRIPStream,
    numpy_rrip_replay,
    rrip_replay,
    rrip_spec,
)
from repro.fastsim.ship import (
    ShipReplay,
    ShipSpec,
    ShipStream,
    numpy_ship_replay,
    ship_replay,
    ship_spec,
)
from repro.fastsim.stackdist import (
    DenseIdMap,
    LRUReplay,
    LRUStream,
    lru_replay,
    numpy_lru_replay,
    occurrence_order,
    previous_occurrence_indices,
    prior_leq_counts,
    substream_previous_indices,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "CorunReplayStream",
    "ENGINE_CAPABILITIES",
    "EngineCapabilities",
    "ExecutionPlan",
    "PLANNER",
    "RoutePlanner",
    "SCALAR",
    "SimRequest",
    "VECTOR",
    "VERIFY",
    "DenseIdMap",
    "FastSimMismatchError",
    "FilterResult",
    "FilterStream",
    "FusedPipeline",
    "FusedStats",
    "MultiFusedPipeline",
    "HawkeyeReplay",
    "HawkeyeSpec",
    "HawkeyeStream",
    "LRUReplay",
    "LRUStream",
    "LeewayReplay",
    "LeewaySpec",
    "LeewayStream",
    "OptReplay",
    "OptStream",
    "PinReplay",
    "PinSpec",
    "PinStream",
    "PolicyReplayStream",
    "RRIPReplay",
    "RRIPSpec",
    "RRIPStream",
    "ShipReplay",
    "ShipSpec",
    "ShipStream",
    "capabilities_for",
    "default_backend",
    "effective_threads",
    "fused_native_supported",
    "fused_supported",
    "hawkeye_replay",
    "hawkeye_spec",
    "leeway_replay",
    "leeway_spec",
    "lru_replay",
    "next_use_indices",
    "numpy_hawkeye_replay",
    "numpy_leeway_replay",
    "numpy_lru_replay",
    "numpy_opt_replay",
    "numpy_pin_replay",
    "numpy_rrip_replay",
    "numpy_ship_replay",
    "occurrence_order",
    "opt_replay",
    "pin_replay",
    "pin_spec",
    "plan_request",
    "previous_occurrence_indices",
    "prior_leq_counts",
    "resolve_chunk_next_use",
    "resolve_backend",
    "rrip_replay",
    "rrip_spec",
    "run_filter",
    "scalar_filter",
    "set_default_backend",
    "ship_replay",
    "ship_spec",
    "substream_previous_indices",
    "supports_vector_corun",
    "supports_vector_replay",
    "vector_filter",
    "vector_lru_replay",
    "vector_opt_replay",
    "vector_policy_replay",
]
