"""NumPy-vectorized fast path for the trace-driven cache simulation.

The scalar simulator (:mod:`repro.cache.cache`) replays one access at a time
through Python-level policy objects.  That is the reference implementation —
easy to audit against the paper, but it costs microseconds per access.  This
package reimplements the two LRU-only stages of the pipeline as batched NumPy
computations over whole traces:

``stackdist``
    The core engine.  Exploits the LRU *stack property*: a W-way set hits an
    access exactly when fewer than W distinct blocks of the same set were
    touched since the previous access to the same block.  Stack distances are
    computed for a whole trace at once with a vectorized merge-count, so no
    per-access Python loop remains.
``_native``
    Optional accelerator: a tiny C kernel compiled on demand (plain ``cc``,
    no third-party packages) that replays LRU with per-set timestamps an
    order of magnitude faster than the NumPy engine.  ``lru_replay``
    dispatches to it automatically; set ``REPRO_NATIVE=0`` or remove the
    compiler and everything transparently stays on NumPy.
``filter``
    The L1-D/L2 filter of pipeline stage 5 (both levels are always LRU, see
    Sec. IV of the paper), with a scalar reference path and an equivalence
    guard used by the ``verify`` backend.
``replay``
    Vectorized LLC replay for the LRU scheme (Fig. 11 / Table VII baselines),
    including the per-region statistics breakdown of Fig. 2.
``dispatch``
    Backend selection: ``vector`` (default), ``scalar`` (reference) or
    ``verify`` (run both, assert identical counts).  The process-wide default
    can be overridden with the ``REPRO_SIM_BACKEND`` environment variable or
    per-call/per-config.

Policies other than LRU (RRIP, GRASP, Hawkeye, ...) carry per-access state
that has no closed-form batched equivalent; those always use the scalar
simulator regardless of the selected backend.
"""

from repro.fastsim.dispatch import (
    BACKEND_ENV_VAR,
    BACKENDS,
    SCALAR,
    VECTOR,
    VERIFY,
    default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.fastsim.filter import (
    FastSimMismatchError,
    FilterResult,
    run_filter,
    scalar_filter,
    vector_filter,
)
from repro.fastsim.replay import supports_vector_replay, vector_lru_replay
from repro.fastsim.stackdist import (
    LRUReplay,
    lru_replay,
    numpy_lru_replay,
    occurrence_order,
    previous_occurrence_indices,
    prior_leq_counts,
    substream_previous_indices,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "SCALAR",
    "VECTOR",
    "VERIFY",
    "FastSimMismatchError",
    "FilterResult",
    "LRUReplay",
    "default_backend",
    "lru_replay",
    "numpy_lru_replay",
    "occurrence_order",
    "previous_occurrence_indices",
    "prior_leq_counts",
    "resolve_backend",
    "run_filter",
    "scalar_filter",
    "set_default_backend",
    "substream_previous_indices",
    "supports_vector_replay",
    "vector_filter",
    "vector_lru_replay",
]
