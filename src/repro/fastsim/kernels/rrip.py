"""RRIP engine-family kernel (SRRIP / BRRIP / DRRIP / GRASP)."""

from __future__ import annotations

import ctypes

import numpy as np

from repro.fastsim.kernels import registry
from repro.fastsim.kernels.registry import (
    KernelSpec,
    as_i32,
    as_i64,
    as_u8,
    i32,
    i64,
    p_i32,
    p_i64,
    p_u8,
    register_kernel,
)

_SOURCE = r"""
/* One RRIP-family access against a single set: returns 1 on hit, 0 on miss
 * (after inserting).  Policy behaviour is parameterized in array form:
 * ins_table / promo_table hold, per 2-bit reuse hint, the insertion RRPV
 * (negative = dynamic: bimodal counter when psel_max == 0, DRRIP set duel
 * otherwise) and the hit-promotion RRPV (negative = decrement one step
 * towards MRU).  tag/r point at the set's ways; psel/insert_count at the
 * shared duel state. */
static inline int rrip_step(int64_t block, int32_t hint, int64_t set,
                            int32_t ways, int32_t max_rrpv,
                            const int32_t *ins_table,
                            const int32_t *promo_table, int64_t epsilon,
                            int64_t psel_max, int32_t leader_period,
                            int64_t midpoint, int64_t *tag, int32_t *r,
                            int64_t *miss_ctr, int64_t *psel,
                            int64_t *insert_count)
{
    int32_t way = -1;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == block) { way = w; break; }
    }
    if (way >= 0) {
        const int32_t promotion = promo_table[hint];
        if (promotion >= 0) r[way] = promotion;
        else if (r[way] > 0) r[way]--;
        return 1;
    }
    (*miss_ctr)++;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == -1) { way = w; break; }
    }
    if (way < 0) {
        /* Standard RRIP victim search: leftmost saturated way, ageing
         * every way until one saturates. */
        for (;;) {
            for (int32_t w = 0; w < ways; w++) {
                if (r[w] >= max_rrpv) { way = w; break; }
            }
            if (way >= 0) break;
            for (int32_t w = 0; w < ways; w++) r[w]++;
        }
    }
    int32_t insertion = ins_table[hint];
    if (insertion < 0) {
        if (psel_max <= 0) {
            /* BRRIP: every insertion consults the bimodal counter. */
            (*insert_count)++;
            insertion = (epsilon > 0 && *insert_count % epsilon == 0)
                            ? max_rrpv - 1 : max_rrpv;
        } else {
            const int64_t slot = set % leader_period;
            if (slot == 0) {            /* SRRIP leader */
                if (*psel < psel_max) (*psel)++;
                insertion = max_rrpv - 1;
            } else if (slot == 1) {     /* BRRIP leader */
                if (*psel > 0) (*psel)--;
                (*insert_count)++;
                insertion = (epsilon > 0 && *insert_count % epsilon == 0)
                                ? max_rrpv - 1 : max_rrpv;
            } else if (*psel < midpoint) {
                insertion = max_rrpv - 1;
            } else {
                (*insert_count)++;
                insertion = (epsilon > 0 && *insert_count % epsilon == 0)
                                ? max_rrpv - 1 : max_rrpv;
            }
        }
    }
    tag[way] = block;
    r[way] = insertion;
    return 0;
}

/* Exact RRIP-family replay over rrip_step.  tags/rrpv are caller-provided
 * scratch of num_sets*ways entries (tags initialised to -1, rrpv to
 * max_rrpv); state is {psel, insert_count} in/out so the final duel state
 * can be compared against the scalar policies. */
void rrip_replay(const int64_t *blocks, const uint8_t *hints, int64_t n,
                 int32_t num_sets, int32_t ways, int32_t max_rrpv,
                 const int32_t *ins_table, const int32_t *promo_table,
                 int64_t epsilon, int64_t psel_max, int32_t leader_period,
                 int64_t *tags, int32_t *rrpv,
                 uint8_t *hits, int64_t *misses_per_set, int64_t *state)
{
    int64_t psel = state[0];
    int64_t insert_count = state[1];
    const int64_t mask = (int64_t)num_sets - 1;
    const int64_t midpoint = (psel_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        hits[i] = (uint8_t)rrip_step(block, hints[i] & 3, set, ways, max_rrpv,
                                     ins_table, promo_table, epsilon, psel_max,
                                     leader_period, midpoint, tags + set * ways,
                                     rrpv + set * ways, misses_per_set + set,
                                     &psel, &insert_count);
    }
    state[0] = psel;
    state[1] = insert_count;
}
"""

register_kernel(
    KernelSpec(
        name="rrip",
        source=_SOURCE,
        functions={
            "rrip_replay": [
                p_i64, p_u8, i64, i32, i32, i32, p_i32, p_i32, i64, i64, i32,
                p_i64, p_i32, p_u8, p_i64, p_i64,
            ],
        },
        capabilities=("replay:rrip",),
    )
)


def rrip_feed(
    blocks: np.ndarray,
    hints: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    ins_table: np.ndarray,
    promo_table: np.ndarray,
    epsilon: int,
    psel_max: int,
    leader_period: int,
    tags: np.ndarray,
    rrpv: np.ndarray,
    misses_per_set: np.ndarray,
    state: np.ndarray,
):
    """Run the RRIP kernel over caller-owned state; ``None`` when unavailable.

    ``tags`` (int64, -1 initial) / ``rrpv`` (int32, ``max_rrpv`` initial) /
    ``misses_per_set`` / ``state`` (``[psel, insert_count]``) persist across
    calls.  Returns the chunk's hit mask.
    """
    kernel = registry.lookup("rrip_replay")
    if kernel is None:
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    hints = np.ascontiguousarray(hints, dtype=np.uint8)
    ins_table = np.ascontiguousarray(ins_table, dtype=np.int32)
    promo_table = np.ascontiguousarray(promo_table, dtype=np.int32)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    kernel(
        as_i64(blocks),
        as_u8(hints),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        as_i32(ins_table),
        as_i32(promo_table),
        ctypes.c_int64(epsilon),
        ctypes.c_int64(psel_max),
        ctypes.c_int32(leader_period),
        as_i64(tags),
        as_i32(rrpv),
        as_u8(hits),
        as_i64(misses_per_set),
        as_i64(state),
    )
    return hits.view(bool)


def rrip_replay(
    blocks: np.ndarray,
    hints: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    ins_table: np.ndarray,
    promo_table: np.ndarray,
    epsilon: int,
    psel_max: int,
    leader_period: int,
    psel_init: int,
):
    """RRIP-family replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, psel, insert_count)`` matching the NumPy
    engine (:func:`repro.fastsim.rrip.numpy_rrip_replay`) exactly.
    """
    if registry.lookup("rrip_replay") is None:
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    rrpv = np.full(num_sets * ways, max_rrpv, dtype=np.int32)
    state = np.array([psel_init, 0], dtype=np.int64)
    hits = rrip_feed(
        blocks, hints, num_sets, ways, max_rrpv, ins_table, promo_table,
        epsilon, psel_max, leader_period, tags, rrpv, misses_per_set, state,
    )
    return hits, misses_per_set, int(state[0]), int(state[1])
