"""Hawkeye engine-family kernel (sampled OPTgen + PC predictor replay)."""

from __future__ import annotations

import ctypes

import numpy as np

from repro.fastsim.kernels import registry
from repro.fastsim.kernels.registry import (
    KernelSpec,
    as_i32,
    as_i64,
    as_u8,
    i32,
    i64,
    p_i32,
    p_i64,
    p_u8,
    register_kernel,
)

_SOURCE = r"""
/* Hawkeye's OPTgen step for one sampled set: replicate _OptGen.access with
 * a ring-buffer occupancy window and global (dense-block-id) last-access /
 * last-PC tables — a block maps to exactly one set, so one global table
 * serves every sampler, and the scalar structure's stale-entry trimming is
 * subsumed by the start >= 0 window check. */
static void hawkeye_observe(int64_t sampler, int64_t bid, int64_t pc,
                            int32_t capacity, int64_t history,
                            int32_t *occupancy, int64_t *occ_head,
                            int64_t *occ_len, int64_t *timestamps,
                            int64_t *last_access, int64_t *last_pc,
                            int32_t *predictor, int32_t predictor_max)
{
    int32_t *occ = occupancy + sampler * history;
    const int64_t t = timestamps[sampler];
    const int64_t len = occ_len[sampler];
    const int64_t head = occ_head[sampler];
    const int64_t base = t - len;
    const int64_t last = last_access[bid];
    int64_t train_pc = -1;
    int opt_hit = 0;
    if (last >= 0) {
        const int64_t start = last - base;
        if (start >= 0) {
            train_pc = last_pc[bid];
            if (start < len) {
                int32_t max_occ = 0;
                for (int64_t k = start; k < len; k++) {
                    const int32_t v = occ[(head + k) % history];
                    if (v > max_occ) max_occ = v;
                }
                if (max_occ < capacity) {
                    opt_hit = 1;
                    for (int64_t k = start; k < len; k++) occ[(head + k) % history]++;
                }
            } else {
                opt_hit = 1;  /* same-timestamp re-access: empty interval */
            }
        }
    }
    last_access[bid] = t;
    last_pc[bid] = pc;
    if (len == history) {
        occ[head] = 0;
        occ_head[sampler] = (head + 1) % history;
    } else {
        occ[(head + len) % history] = 0;
        occ_len[sampler] = len + 1;
    }
    timestamps[sampler] = t + 1;
    if (train_pc >= 0) {
        const int32_t v = predictor[train_pc];
        if (opt_hit) {
            if (v < predictor_max) predictor[train_pc] = v + 1;
        } else if (v > 0) {
            predictor[train_pc] = v - 1;
        }
    }
}

/* One Hawkeye access against a single set: returns 1 on hit, 0 on miss
 * (after inserting).  Sampled-set OPTgen training, the PC predictor (dense
 * pc ids, initialised to the weakly-friendly midpoint), friendly / averse
 * insertion and hit promotion, ageing of other lines on friendly
 * insertions, and detraining when an oldest friendly line is evicted. */
static inline int hawkeye_step(int64_t block, int64_t bid, int64_t pc,
                               int64_t set, int32_t ways, int32_t max_rrpv,
                               int32_t sample_period, int32_t predictor_max,
                               int32_t midpoint, int64_t history, int64_t *tag,
                               int32_t *r, uint8_t *fr, int64_t *lp,
                               int32_t *predictor, int64_t *last_access,
                               int64_t *last_pc, int32_t *occupancy,
                               int64_t *occ_head, int64_t *occ_len,
                               int64_t *timestamps, int64_t *miss_ctr)
{
    const int sampled = (set % sample_period) == 0;
    const int64_t sampler = set / sample_period;
    int32_t way = -1;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == block) { way = w; break; }
    }
    if (way >= 0) {
        if (sampled)
            hawkeye_observe(sampler, bid, pc, ways, history,
                            occupancy, occ_head, occ_len, timestamps,
                            last_access, last_pc, predictor, predictor_max);
        const int f = predictor[pc] >= midpoint;
        fr[way] = (uint8_t)f;
        lp[way] = pc;
        r[way] = f ? 0 : max_rrpv;
        return 1;
    }
    (*miss_ctr)++;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == -1) { way = w; break; }
    }
    if (way < 0) {
        /* Prefer a cache-averse (saturated) line; otherwise evict the
         * oldest line and detrain its PC if it was friendly. */
        for (int32_t w = 0; w < ways; w++) {
            if (r[w] >= max_rrpv) { way = w; break; }
        }
        if (way < 0) {
            way = 0;
            for (int32_t w = 1; w < ways; w++) {
                if (r[w] > r[way]) way = w;
            }
            if (fr[way] && predictor[lp[way]] > 0) predictor[lp[way]]--;
        }
    }
    if (sampled)
        hawkeye_observe(sampler, bid, pc, ways, history,
                        occupancy, occ_head, occ_len, timestamps,
                        last_access, last_pc, predictor, predictor_max);
    const int f = predictor[pc] >= midpoint;
    if (f) {
        for (int32_t w = 0; w < ways; w++) {
            if (w != way && r[w] < max_rrpv - 1) r[w]++;
        }
    }
    fr[way] = (uint8_t)f;
    lp[way] = pc;
    r[way] = f ? 0 : max_rrpv;
    tag[way] = block;
    return 0;
}

/* Exact Hawkeye replay over hawkeye_step. */
void hawkeye_replay(const int64_t *blocks, const int64_t *block_ids,
                    const int64_t *pc_ids, int64_t n, int32_t num_sets,
                    int32_t ways, int32_t max_rrpv, int32_t sample_period,
                    int32_t predictor_max, int64_t history, int64_t *tags,
                    int32_t *rrpv, uint8_t *friendly, int64_t *line_pc,
                    int32_t *predictor, int64_t *last_access, int64_t *last_pc,
                    int32_t *occupancy, int64_t *occ_head, int64_t *occ_len,
                    int64_t *timestamps, uint8_t *hits, int64_t *misses_per_set)
{
    const int64_t mask = (int64_t)num_sets - 1;
    const int32_t midpoint = (predictor_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        hits[i] = (uint8_t)hawkeye_step(
            block, block_ids[i], pc_ids[i], set, ways, max_rrpv, sample_period,
            predictor_max, midpoint, history, tags + set * ways,
            rrpv + set * ways, friendly + set * ways, line_pc + set * ways,
            predictor, last_access, last_pc, occupancy, occ_head, occ_len,
            timestamps, misses_per_set + set);
    }
}
"""

register_kernel(
    KernelSpec(
        name="hawkeye",
        source=_SOURCE,
        functions={
            "hawkeye_replay": [
                p_i64, p_i64, p_i64, i64, i32, i32, i32, i32, i32, i64, p_i64,
                p_i32, p_u8, p_i64, p_i32, p_i64, p_i64, p_i32, p_i64, p_i64,
                p_i64, p_u8, p_i64,
            ],
        },
        capabilities=("replay:hawkeye",),
    )
)


def hawkeye_feed(
    blocks: np.ndarray,
    block_ids: np.ndarray,
    pc_ids: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    sample_period: int,
    predictor_max: int,
    history: int,
    tags: np.ndarray,
    rrpv: np.ndarray,
    friendly: np.ndarray,
    line_pc: np.ndarray,
    predictor: np.ndarray,
    last_access: np.ndarray,
    last_pc: np.ndarray,
    occupancy: np.ndarray,
    occ_head: np.ndarray,
    occ_len: np.ndarray,
    timestamps: np.ndarray,
    misses_per_set: np.ndarray,
):
    """Run the Hawkeye kernel over caller-owned state; ``None`` when unavailable.

    ``block_ids``/``pc_ids`` must use dense ids that are stable across calls
    and covered by ``last_access``/``last_pc``/``predictor``; all array
    arguments after ``history`` persist across calls.  Returns the chunk's
    hit mask.
    """
    kernel = registry.lookup("hawkeye_replay")
    if kernel is None or history <= 0:
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    block_ids = np.ascontiguousarray(block_ids, dtype=np.int64)
    pc_ids = np.ascontiguousarray(pc_ids, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    kernel(
        as_i64(blocks),
        as_i64(block_ids),
        as_i64(pc_ids),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        ctypes.c_int32(sample_period),
        ctypes.c_int32(predictor_max),
        ctypes.c_int64(history),
        as_i64(tags),
        as_i32(rrpv),
        as_u8(friendly),
        as_i64(line_pc),
        as_i32(predictor),
        as_i64(last_access),
        as_i64(last_pc),
        as_i32(occupancy),
        as_i64(occ_head),
        as_i64(occ_len),
        as_i64(timestamps),
        as_u8(hits),
        as_i64(misses_per_set),
    )
    return hits.view(bool)


def hawkeye_replay(
    blocks: np.ndarray,
    block_ids: np.ndarray,
    num_blocks: int,
    pc_ids: np.ndarray,
    num_pcs: int,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    sample_period: int,
    predictor_max: int,
    history: int,
):
    """Hawkeye replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, predictor)`` matching
    :func:`repro.fastsim.hawkeye.numpy_hawkeye_replay` exactly;
    ``predictor`` is the final counter table indexed by dense PC id.
    """
    if registry.lookup("hawkeye_replay") is None or history <= 0:
        return None
    num_samplers = (num_sets + sample_period - 1) // sample_period
    midpoint = (predictor_max + 1) // 2
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    rrpv = np.full(num_sets * ways, max_rrpv, dtype=np.int32)
    friendly = np.zeros(num_sets * ways, dtype=np.uint8)
    line_pc = np.zeros(num_sets * ways, dtype=np.int64)
    predictor = np.full(max(1, num_pcs), midpoint, dtype=np.int32)
    last_access = np.full(max(1, num_blocks), -1, dtype=np.int64)
    last_pc = np.zeros(max(1, num_blocks), dtype=np.int64)
    occupancy = np.zeros(max(1, num_samplers * history), dtype=np.int32)
    occ_head = np.zeros(max(1, num_samplers), dtype=np.int64)
    occ_len = np.zeros(max(1, num_samplers), dtype=np.int64)
    timestamps = np.zeros(max(1, num_samplers), dtype=np.int64)
    hits = hawkeye_feed(
        blocks, block_ids, pc_ids, num_sets, ways, max_rrpv, sample_period,
        predictor_max, history, tags, rrpv, friendly, line_pc, predictor,
        last_access, last_pc, occupancy, occ_head, occ_len, timestamps,
        misses_per_set,
    )
    return hits, misses_per_set, predictor[:num_pcs]
