"""Kernel registry: lazy, capability-probed native compilation.

Engine-family modules (``kernels/lru.py``, ``kernels/rrip.py``, ...) each
declare a :class:`KernelSpec` — a C source fragment, the symbols it exports
with their ctypes signatures, and the capability names it provides — and
register it with :func:`register_kernel` at import time.  Registration is
pure bookkeeping: **nothing is compiled until the first kernel lookup**, so
``import repro`` (and ``import repro.fastsim``) stays cheap even on hosts
with a C toolchain.

On first use the registry concatenates every registered fragment, in
registration order, into one translation unit and compiles it with the
system C compiler into a single shared object cached under the user cache
directory.  The cache key hashes the *composed source, the compiler flags
and the compiler itself*, so editing a fragment, changing flags, or
switching compilers forces a rebuild instead of silently loading a stale
kernel.  Failure at any point (no compiler, sandboxed exec, bad flags)
degrades to "no native kernels": :func:`lookup` returns ``None`` and every
engine falls back to its NumPy path.

Environment knobs:

``REPRO_NATIVE=0``
    Disable native kernels entirely (never compile, never load).
``REPRO_CC``
    C compiler executable (default ``cc``).  Pointing it at a missing or
    broken binary exercises the NumPy degradation path.
``REPRO_THREADS``
    Worker-thread count for the fused pipeline's filter phase
    (:func:`thread_count`); unset or ``1`` means single-threaded.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

#: Set to ``0`` to disable the native kernels entirely.
NATIVE_ENV_VAR = "REPRO_NATIVE"

#: C compiler used to build the kernel library (default ``cc``).
CC_ENV_VAR = "REPRO_CC"

#: Thread count for the fused pipeline's sharded filter phase.
THREADS_ENV_VAR = "REPRO_THREADS"

#: Base compiler flags; ``-pthread`` is appended when a threaded spec is in
#: the build (see :func:`_compose`).
BASE_CFLAGS: Tuple[str, ...] = ("-O3", "-shared", "-fPIC")

_HEADER = "#include <stdint.h>\n#include <stddef.h>\n"

# ctypes signature atoms used by KernelSpec.functions.
p_i64 = ctypes.POINTER(ctypes.c_int64)
p_i32 = ctypes.POINTER(ctypes.c_int32)
p_u8 = ctypes.POINTER(ctypes.c_uint8)
i64 = ctypes.c_int64
i32 = ctypes.c_int32


@dataclass(frozen=True)
class KernelSpec:
    """One engine family's native fragment.

    name:
        Unique registry key (e.g. ``"rrip"``).
    source:
        C fragment appended to the composed translation unit.  Fragments may
        reference ``static`` helpers from fragments registered *earlier*.
    functions:
        Exported symbol -> ctypes argtype list.  All kernels return void.
    capabilities:
        Names answerable through :func:`has_capability` (e.g.
        ``"replay:rrip"``, ``"fused:rrip"``).
    threaded:
        Fragment needs pthreads.  Threaded fragments are compiled with
        ``-pthread`` and dropped from a fallback single-thread build if the
        threaded build fails, so a toolchain without pthread support still
        gets the per-stage kernels.
    """

    name: str
    source: str
    functions: Dict[str, List[object]] = field(default_factory=dict)
    capabilities: Tuple[str, ...] = ()
    threaded: bool = False


_SPECS: "Dict[str, KernelSpec]" = {}

# Lazy resolution state: None = not attempted yet.
_RESOLVED: Optional[bool] = None
_LIB: Optional[ctypes.CDLL] = None
_FUNCTIONS: Dict[str, object] = {}
_CAPABILITIES: FrozenSet[str] = frozenset()


def register_kernel(spec: KernelSpec) -> None:
    """Register a family's kernel fragment (no compilation happens here)."""
    if spec.name in _SPECS:
        raise ValueError(f"kernel spec {spec.name!r} registered twice")
    if _RESOLVED is not None:
        raise RuntimeError(
            f"kernel spec {spec.name!r} registered after the library was resolved; "
            "call repro.fastsim.kernels.registry.reset() first"
        )
    _SPECS[spec.name] = spec


def registered() -> Tuple[str, ...]:
    """Names of all registered specs, in registration order."""
    return tuple(_SPECS)


def reset() -> None:
    """Forget any resolved library so the next lookup re-resolves (tests)."""
    global _RESOLVED, _LIB, _FUNCTIONS, _CAPABILITIES
    _RESOLVED = None
    _LIB = None
    _FUNCTIONS = {}
    _CAPABILITIES = frozenset()


def resolved() -> bool:
    """Whether resolution (compile/load) has been *attempted* yet."""
    return _RESOLVED is not None


def _compiler() -> str:
    return os.environ.get(CC_ENV_VAR, "").strip() or "cc"


def _compose(specs: Sequence[KernelSpec]) -> Tuple[str, Tuple[str, ...]]:
    """Concatenate fragments into one translation unit plus its flags."""
    flags = BASE_CFLAGS + (("-pthread",) if any(s.threaded for s in specs) else ())
    parts = [_HEADER]
    for spec in specs:
        parts.append(f"/* ---- kernel fragment: {spec.name} ---- */\n")
        parts.append(spec.source)
    return "".join(parts), flags


def build_key(source: str, flags: Sequence[str], compiler: str) -> str:
    """Cache key for a compiled artifact: source + flags + compiler."""
    blob = "\x00".join([compiler, " ".join(flags), source]).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _build_dir(key: str) -> Path:
    name = f"repro_fastsim_{key}_py{sys.version_info[0]}{sys.version_info[1]}_{sys.platform}"
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    target = root / "repro-fastsim" / name
    try:
        target.mkdir(parents=True, exist_ok=True)
        target.chmod(0o700)
        return target
    except OSError:
        fallback = Path(tempfile.gettempdir()) / name
        fallback.mkdir(parents=True, exist_ok=True)
        return fallback


def _compile(source: str, flags: Sequence[str], compiler: str) -> Optional[Path]:
    """Compile the composed source, returning the cached ``.so`` path."""
    directory = _build_dir(build_key(source, flags, compiler))
    artifact = directory / "kernels.so"
    if artifact.exists():
        return artifact
    source_path = directory / "kernels.c"
    source_path.write_text(source)
    scratch = directory / f"kernels.{os.getpid()}.tmp.so"
    cmd = [compiler, *flags, "-o", str(scratch), str(source_path)]
    try:
        proc = subprocess.run(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0 or not scratch.exists():
        return None
    os.replace(scratch, artifact)  # atomic under concurrent builders
    return artifact


def _bind(lib: ctypes.CDLL, specs: Sequence[KernelSpec]) -> Optional[Dict[str, object]]:
    functions: Dict[str, object] = {}
    for spec in specs:
        for symbol, argtypes in spec.functions.items():
            try:
                fn = getattr(lib, symbol)
            except AttributeError:
                return None
            fn.argtypes = argtypes
            fn.restype = None
            functions[symbol] = fn
    return functions


def _try_build(specs: Sequence[KernelSpec]) -> Optional[Tuple[ctypes.CDLL, Dict[str, object]]]:
    if not specs:
        return None
    source, flags = _compose(specs)
    artifact = _compile(source, flags, _compiler())
    if artifact is None:
        return None
    try:
        lib = ctypes.CDLL(str(artifact))
    except OSError:
        return None
    functions = _bind(lib, specs)
    if functions is None:
        return None
    return lib, functions


def _resolve() -> bool:
    global _RESOLVED, _LIB, _FUNCTIONS, _CAPABILITIES
    if _RESOLVED is not None:
        return _RESOLVED
    if os.environ.get(NATIVE_ENV_VAR, "").strip() == "0" or not _SPECS:
        _RESOLVED = False
        return False
    specs = list(_SPECS.values())
    built = _try_build(specs)
    if built is None and any(s.threaded for s in specs):
        # pthread-less toolchain: retry without the threaded fragments so
        # the per-stage kernels still work.
        specs = [s for s in specs if not s.threaded]
        built = _try_build(specs)
    if built is None:
        _RESOLVED = False
        return False
    _LIB, _FUNCTIONS = built
    _CAPABILITIES = frozenset(cap for s in specs for cap in s.capabilities)
    _RESOLVED = True
    return True


def available() -> bool:
    """Whether the native kernel library is usable (compiles on first call)."""
    return _resolve()


def lookup(symbol: str):
    """The bound native function for ``symbol``, or ``None`` if unavailable."""
    if not _resolve():
        return None
    return _FUNCTIONS.get(symbol)


def capabilities() -> FrozenSet[str]:
    """Capability names provided by the resolved library (empty if none)."""
    _resolve()
    return _CAPABILITIES


def has_capability(name: str) -> bool:
    """Whether the resolved native library provides ``name``."""
    return name in capabilities()


def thread_count() -> int:
    """Requested fused-pipeline thread count (``REPRO_THREADS``, min 1)."""
    raw = os.environ.get(THREADS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{THREADS_ENV_VAR} must be an integer, got {raw!r}") from None
    return max(1, value)


# ---------------------------------------------------------------------------
# ctypes argument helpers shared by the family wrapper modules.


def as_i64(array) -> "ctypes.POINTER":
    return array.ctypes.data_as(p_i64)


def as_i32(array) -> "ctypes.POINTER":
    return array.ctypes.data_as(p_i32)


def as_u8(array) -> "ctypes.POINTER":
    return array.ctypes.data_as(p_u8)


__all__ = [
    "BASE_CFLAGS",
    "CC_ENV_VAR",
    "KernelSpec",
    "NATIVE_ENV_VAR",
    "THREADS_ENV_VAR",
    "available",
    "build_key",
    "capabilities",
    "has_capability",
    "lookup",
    "register_kernel",
    "registered",
    "reset",
    "resolved",
    "thread_count",
    "as_i64",
    "as_i32",
    "as_u8",
    "p_i64",
    "p_i32",
    "p_u8",
    "i64",
    "i32",
]
