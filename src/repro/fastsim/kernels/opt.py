"""Belady-OPT engine-family kernel (precomputed next-use replay)."""

from __future__ import annotations

import ctypes

import numpy as np

from repro.fastsim.kernels import registry
from repro.fastsim.kernels.registry import (
    KernelSpec,
    as_i64,
    as_u8,
    i32,
    i64,
    p_i64,
    p_u8,
    register_kernel,
)

_SOURCE = r"""
/* Exact Belady's OPT replay over precomputed next-use indices: on a
 * capacity miss, evict the resident block whose next use lies farthest in
 * the future (ties only occur between never-used-again blocks and cannot
 * change any count).  next_vals is caller-provided scratch. */
void opt_replay(const int64_t *blocks, const int64_t *next_use, int64_t n,
                int32_t num_sets, int32_t ways, int64_t *tags,
                int64_t *next_vals, uint8_t *hits, int64_t *misses_per_set)
{
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        int64_t *tag = tags + set * ways;
        int64_t *nv = next_vals + set * ways;
        int32_t way = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == block) { way = w; break; }
        }
        if (way >= 0) {
            hits[i] = 1;
            nv[way] = next_use[i];
            continue;
        }
        hits[i] = 0;
        misses_per_set[set]++;
        for (int32_t w = 0; w < ways; w++) {
            if (tag[w] == -1) { way = w; break; }
        }
        if (way < 0) {
            way = 0;
            for (int32_t w = 1; w < ways; w++) {
                if (nv[w] > nv[way]) way = w;
            }
        }
        tag[way] = block;
        nv[way] = next_use[i];
    }
}
"""

register_kernel(
    KernelSpec(
        name="opt",
        source=_SOURCE,
        functions={
            "opt_replay": [p_i64, p_i64, i64, i32, i32, p_i64, p_i64, p_u8, p_i64],
        },
        capabilities=("replay:opt",),
    )
)


def opt_feed(
    blocks: np.ndarray,
    next_use: np.ndarray,
    num_sets: int,
    ways: int,
    tags: np.ndarray,
    next_vals: np.ndarray,
    misses_per_set: np.ndarray,
):
    """Run the OPT kernel over caller-owned state; ``None`` when unavailable.

    ``next_use`` must hold globally consistent next-use indices (the caller's
    two-pass precompute); ``tags``/``next_vals``/``misses_per_set`` persist
    across calls.  Returns the chunk's hit mask.
    """
    kernel = registry.lookup("opt_replay")
    if kernel is None:
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    next_use = np.ascontiguousarray(next_use, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    kernel(
        as_i64(blocks),
        as_i64(next_use),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        as_i64(tags),
        as_i64(next_vals),
        as_u8(hits),
        as_i64(misses_per_set),
    )
    return hits.view(bool)


def opt_replay(blocks: np.ndarray, next_use: np.ndarray, num_sets: int, ways: int):
    """Belady OPT replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set)`` matching
    :func:`repro.fastsim.opt.numpy_opt_replay` exactly.
    """
    if registry.lookup("opt_replay") is None:
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    next_vals = np.zeros(num_sets * ways, dtype=np.int64)
    hits = opt_feed(blocks, next_use, num_sets, ways, tags, next_vals, misses_per_set)
    return hits, misses_per_set
