"""PIN-X engine-family kernel (DRRIP + pinned ways, the XMem adaptation)."""

from __future__ import annotations

import ctypes

import numpy as np

from repro.fastsim.kernels import registry
from repro.fastsim.kernels.registry import (
    KernelSpec,
    as_i32,
    as_i64,
    as_u8,
    i32,
    i64,
    p_i32,
    p_i64,
    p_u8,
    register_kernel,
)

_SOURCE = r"""
/* One PIN-X access against a single set: returns 1 on hit, 0 on miss (after
 * inserting), 2 on bypass.  Matches the bug-fixed scalar policy: every
 * non-bypassed insertion feeds the set duel, pinning assigns hit priority
 * on both the hit and insert paths, victim search ages only the unpinned
 * ways, and a full set whose every way is pinned bypasses the incoming
 * block (PIN-100 only), leaving all state — including PSEL — untouched. */
static inline int pin_step(int64_t block, int32_t hint, int64_t set,
                           int32_t ways, int32_t max_rrpv, int64_t epsilon,
                           int64_t psel_max, int32_t leader_period,
                           int64_t midpoint, int32_t reserved_ways,
                           int32_t hint_high, int64_t *tag, int32_t *r,
                           uint8_t *pin, int32_t *pin_ctr, int64_t *miss_ctr,
                           int64_t *bypass_ctr, int64_t *psel,
                           int64_t *insert_count)
{
    int32_t way = -1;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == block) { way = w; break; }
    }
    if (way >= 0) {
        if (pin[way]) return 1;
        if (hint == hint_high && *pin_ctr < reserved_ways) {
            pin[way] = 1;
            (*pin_ctr)++;
        }
        r[way] = 0;
        return 1;
    }
    (*miss_ctr)++;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == -1) { way = w; break; }
    }
    if (way < 0) {
        if (*pin_ctr >= ways) { (*bypass_ctr)++; return 2; }
        for (;;) {
            for (int32_t w = 0; w < ways; w++) {
                if (!pin[w] && r[w] >= max_rrpv) { way = w; break; }
            }
            if (way >= 0) break;
            for (int32_t w = 0; w < ways; w++) {
                if (!pin[w]) r[w]++;
            }
        }
    }
    /* Every inserted block runs the DRRIP duel (the scalar bug fix); the
     * pinning path below then overrides the RRPV with hit priority. */
    int32_t insertion;
    const int64_t slot = set % leader_period;
    if (slot == 0) {
        if (*psel < psel_max) (*psel)++;
        insertion = max_rrpv - 1;
    } else if (slot == 1) {
        if (*psel > 0) (*psel)--;
        (*insert_count)++;
        insertion = (epsilon > 0 && *insert_count % epsilon == 0)
                        ? max_rrpv - 1 : max_rrpv;
    } else if (*psel < midpoint) {
        insertion = max_rrpv - 1;
    } else {
        (*insert_count)++;
        insertion = (epsilon > 0 && *insert_count % epsilon == 0)
                        ? max_rrpv - 1 : max_rrpv;
    }
    tag[way] = block;
    if (hint == hint_high && *pin_ctr < reserved_ways) {
        pin[way] = 1;
        (*pin_ctr)++;
        r[way] = 0;
    } else {
        pin[way] = 0;
        r[way] = insertion;
    }
    return 0;
}

/* Exact PIN-X replay over pin_step; bypasses are counted in both
 * misses_per_set and bypasses_per_set, exactly like the scalar policy. */
void pin_replay(const int64_t *blocks, const uint8_t *hints, int64_t n,
                int32_t num_sets, int32_t ways, int32_t max_rrpv,
                int64_t epsilon, int64_t psel_max, int32_t leader_period,
                int32_t reserved_ways, int32_t hint_high,
                int64_t *tags, int32_t *rrpv, uint8_t *pinned,
                int32_t *pinned_count, uint8_t *hits, int64_t *misses_per_set,
                int64_t *bypasses_per_set, int64_t *state)
{
    int64_t psel = state[0];
    int64_t insert_count = state[1];
    const int64_t mask = (int64_t)num_sets - 1;
    const int64_t midpoint = (psel_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        const int code = pin_step(block, hints[i] & 3, set, ways, max_rrpv,
                                  epsilon, psel_max, leader_period, midpoint,
                                  reserved_ways, hint_high, tags + set * ways,
                                  rrpv + set * ways, pinned + set * ways,
                                  pinned_count + set, misses_per_set + set,
                                  bypasses_per_set + set, &psel, &insert_count);
        hits[i] = (uint8_t)(code == 1);
    }
    state[0] = psel;
    state[1] = insert_count;
}
"""

register_kernel(
    KernelSpec(
        name="pin",
        source=_SOURCE,
        functions={
            "pin_replay": [
                p_i64, p_u8, i64, i32, i32, i32, i64, i64, i32, i32, i32,
                p_i64, p_i32, p_u8, p_i32, p_u8, p_i64, p_i64, p_i64,
            ],
        },
        capabilities=("replay:pin",),
    )
)


def pin_feed(
    blocks: np.ndarray,
    hints: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    epsilon: int,
    psel_max: int,
    leader_period: int,
    reserved_ways: int,
    hint_high: int,
    tags: np.ndarray,
    rrpv: np.ndarray,
    pinned: np.ndarray,
    pinned_count: np.ndarray,
    misses_per_set: np.ndarray,
    bypasses_per_set: np.ndarray,
    state: np.ndarray,
):
    """Run the PIN-X kernel over caller-owned state; ``None`` when unavailable.

    All array arguments after ``hint_high`` persist across calls (``state``
    is ``[psel, insert_count]``).  Returns the chunk's hit mask.
    """
    kernel = registry.lookup("pin_replay")
    if kernel is None:
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    hints = np.ascontiguousarray(hints, dtype=np.uint8)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    kernel(
        as_i64(blocks),
        as_u8(hints),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        ctypes.c_int64(epsilon),
        ctypes.c_int64(psel_max),
        ctypes.c_int32(leader_period),
        ctypes.c_int32(reserved_ways),
        ctypes.c_int32(hint_high),
        as_i64(tags),
        as_i32(rrpv),
        as_u8(pinned),
        as_i32(pinned_count),
        as_u8(hits),
        as_i64(misses_per_set),
        as_i64(bypasses_per_set),
        as_i64(state),
    )
    return hits.view(bool)


def pin_replay(
    blocks: np.ndarray,
    hints: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    epsilon: int,
    psel_max: int,
    leader_period: int,
    reserved_ways: int,
    hint_high: int,
    psel_init: int,
):
    """PIN-X replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, bypasses_per_set, psel, insert_count)``
    matching :func:`repro.fastsim.pin.numpy_pin_replay` exactly.
    """
    if registry.lookup("pin_replay") is None:
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    bypasses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    rrpv = np.full(num_sets * ways, max_rrpv, dtype=np.int32)
    pinned = np.zeros(num_sets * ways, dtype=np.uint8)
    pinned_count = np.zeros(num_sets, dtype=np.int32)
    state = np.array([psel_init, 0], dtype=np.int64)
    hits = pin_feed(
        blocks, hints, num_sets, ways, max_rrpv, epsilon, psel_max,
        leader_period, reserved_ways, hint_high, tags, rrpv, pinned,
        pinned_count, misses_per_set, bypasses_per_set, state,
    )
    return hits, misses_per_set, bypasses_per_set, int(state[0]), int(state[1])
