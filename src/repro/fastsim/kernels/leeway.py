"""Leeway engine-family kernel (live-distance predictor replay)."""

from __future__ import annotations

import ctypes

import numpy as np

from repro.fastsim.kernels import registry
from repro.fastsim.kernels.registry import (
    KernelSpec,
    as_i32,
    as_i64,
    as_u8,
    i32,
    i64,
    p_i32,
    p_i64,
    p_u8,
    register_kernel,
)

_SOURCE = r"""
/* One Leeway access against a single set: returns 1 on hit, 0 on miss
 * (after inserting).  p holds the set's recency-stack positions (0 = MRU, a
 * permutation of 0..ways-1), ob the per-line observed live distances, and
 * predicted/votes the global per-signature predictor with the
 * reuse-oriented (grow fast, shrink slowly) update. */
static inline int leeway_step(int64_t block, int64_t pc, int32_t ways,
                              int32_t decay_period, int64_t *tag, int32_t *p,
                              int64_t *ls, int32_t *ob, int64_t *predicted,
                              int64_t *votes, int64_t *miss_ctr)
{
    int32_t way = -1;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == block) { way = w; break; }
    }
    if (way >= 0) {
        const int32_t depth = p[way];
        if (depth > ob[way]) ob[way] = depth;
        for (int32_t w = 0; w < ways; w++) {
            if (p[w] < depth) p[w]++;
        }
        p[way] = 0;
        return 1;
    }
    (*miss_ctr)++;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == -1) { way = w; break; }
    }
    if (way < 0) {
        /* Deepest predicted-dead line, else plain LRU (positions are a
         * permutation, so comparisons are tie-free). */
        int32_t lru = 0;
        int32_t best = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (p[w] > p[lru]) lru = w;
            if (p[w] > predicted[ls[w]] && (best < 0 || p[w] > p[best])) best = w;
        }
        way = (best >= 0) ? best : lru;
        const int64_t sig = ls[way];
        const int64_t obs = ob[way];
        const int64_t prd = predicted[sig];
        if (obs > prd) {
            predicted[sig] = obs;
            votes[sig] = 0;
        } else if (obs < prd) {
            if (++votes[sig] >= decay_period) {
                predicted[sig] = prd - 1;
                votes[sig] = 0;
            }
        }
    }
    tag[way] = block;
    ls[way] = pc;
    ob[way] = 0;
    const int32_t depth = p[way];
    for (int32_t w = 0; w < ways; w++) {
        if (p[w] < depth) p[w]++;
    }
    p[way] = 0;
    return 0;
}

/* Exact Leeway replay over leeway_step.  pos is caller-initialised to
 * 0..ways-1 per set; predicted/votes are dense per-PC arrays (caller
 * densifies with np.unique). */
void leeway_replay(const int64_t *blocks, const int64_t *pc_ids, int64_t n,
                   int32_t num_sets, int32_t ways, int32_t decay_period,
                   int64_t *tags, int32_t *pos, int64_t *line_sig,
                   int32_t *observed, int64_t *predicted, int64_t *votes,
                   uint8_t *hits, int64_t *misses_per_set)
{
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        hits[i] = (uint8_t)leeway_step(block, pc_ids[i], ways, decay_period,
                                       tags + set * ways, pos + set * ways,
                                       line_sig + set * ways,
                                       observed + set * ways, predicted, votes,
                                       misses_per_set + set);
    }
}
"""

register_kernel(
    KernelSpec(
        name="leeway",
        source=_SOURCE,
        functions={
            "leeway_replay": [
                p_i64, p_i64, i64, i32, i32, i32, p_i64, p_i32, p_i64, p_i32,
                p_i64, p_i64, p_u8, p_i64,
            ],
        },
        capabilities=("replay:leeway",),
    )
)


def leeway_feed(
    blocks: np.ndarray,
    pc_ids: np.ndarray,
    num_sets: int,
    ways: int,
    decay_period: int,
    tags: np.ndarray,
    pos: np.ndarray,
    line_sig: np.ndarray,
    observed: np.ndarray,
    predicted: np.ndarray,
    votes: np.ndarray,
    misses_per_set: np.ndarray,
):
    """Run the Leeway kernel over caller-owned state; ``None`` when unavailable.

    ``pc_ids`` must use PC ids that are stable across calls, and
    ``predicted``/``votes`` must cover every id in the chunk; all array
    arguments after ``decay_period`` persist across calls.  Returns the
    chunk's hit mask.
    """
    kernel = registry.lookup("leeway_replay")
    if kernel is None:
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    pc_ids = np.ascontiguousarray(pc_ids, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    kernel(
        as_i64(blocks),
        as_i64(pc_ids),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(decay_period),
        as_i64(tags),
        as_i32(pos),
        as_i64(line_sig),
        as_i32(observed),
        as_i64(predicted),
        as_i64(votes),
        as_u8(hits),
        as_i64(misses_per_set),
    )
    return hits.view(bool)


def leeway_replay(
    blocks: np.ndarray,
    pc_ids: np.ndarray,
    num_signatures: int,
    num_sets: int,
    ways: int,
    decay_period: int,
):
    """Leeway replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, predicted)`` matching
    :func:`repro.fastsim.leeway.numpy_leeway_replay` exactly; ``predicted``
    is the final live-distance table indexed by dense PC id.
    """
    if registry.lookup("leeway_replay") is None:
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    pos = np.tile(np.arange(ways, dtype=np.int32), num_sets)
    line_sig = np.zeros(num_sets * ways, dtype=np.int64)
    observed = np.zeros(num_sets * ways, dtype=np.int32)
    predicted = np.zeros(max(1, num_signatures), dtype=np.int64)
    votes = np.zeros(max(1, num_signatures), dtype=np.int64)
    hits = leeway_feed(
        blocks, pc_ids, num_sets, ways, decay_period,
        tags, pos, line_sig, observed, predicted, votes, misses_per_set,
    )
    return hits, misses_per_set, predicted[:num_signatures]
