"""LRU engine-family kernel: exact set-associative LRU replay."""

from __future__ import annotations

import ctypes

import numpy as np

from repro.fastsim.kernels import registry
from repro.fastsim.kernels.registry import (
    KernelSpec,
    as_i64,
    as_u8,
    i32,
    i64,
    p_i64,
    p_u8,
    register_kernel,
)

_SOURCE = r"""
/* Exact set-associative LRU replay: timestamp per way, linear way scan.
 * tags/stamps are caller-provided state of num_sets*ways entries; tags must
 * be initialised to -1 on the first call.  state[0] is the recency clock
 * in/out, so a stream can be replayed in chunks against persistent
 * tags/stamps with bit-identical outcomes.  Returns nothing; hits[i] in
 * {0,1} and misses_per_set accumulate the outcome. */
void lru_replay(const int64_t *blocks, int64_t n, int32_t num_sets,
                int32_t ways, int64_t *tags, int64_t *stamps,
                uint8_t *hits, int64_t *misses_per_set, int64_t *state)
{
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        hits[i] = (uint8_t)lru_step(block, ways, tags + set * ways,
                                    stamps + set * ways, misses_per_set + set,
                                    state);
    }
}
"""

register_kernel(
    KernelSpec(
        name="lru",
        source=_SOURCE,
        functions={
            "lru_replay": [p_i64, i64, i32, i32, p_i64, p_i64, p_u8, p_i64, p_i64],
        },
        capabilities=("replay:lru",),
    )
)


def lru_feed(
    blocks: np.ndarray,
    num_sets: int,
    ways: int,
    tags: np.ndarray,
    stamps: np.ndarray,
    misses_per_set: np.ndarray,
    state: np.ndarray,
):
    """Run the LRU kernel over caller-owned state; ``None`` when unavailable.

    ``tags``/``stamps`` (``num_sets * ways`` int64, tags initialised to -1),
    ``misses_per_set`` (accumulating) and ``state`` (``[clock]``) persist
    across calls, so feeding a stream in chunks is bit-identical to one call
    over the concatenation.  Returns the chunk's hit mask.
    """
    kernel = registry.lookup("lru_replay")
    if kernel is None:
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    kernel(
        as_i64(blocks),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        as_i64(tags),
        as_i64(stamps),
        as_u8(hits),
        as_i64(misses_per_set),
        as_i64(state),
    )
    return hits.view(bool)


def lru_replay(blocks: np.ndarray, num_sets: int, ways: int):
    """Replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set)`` matching the NumPy engine exactly.
    """
    if registry.lookup("lru_replay") is None:
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    stamps = np.zeros(num_sets * ways, dtype=np.int64)
    state = np.zeros(1, dtype=np.int64)
    hits = lru_feed(blocks, num_sets, ways, tags, stamps, misses_per_set, state)
    return hits, misses_per_set
