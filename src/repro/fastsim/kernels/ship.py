"""SHiP-MEM engine-family kernel (SRRIP + signature history counter table)."""

from __future__ import annotations

import ctypes

import numpy as np

from repro.fastsim.kernels import registry
from repro.fastsim.kernels.registry import (
    KernelSpec,
    as_i32,
    as_i64,
    as_u8,
    i32,
    i64,
    p_i32,
    p_i64,
    p_u8,
    register_kernel,
)

_SOURCE = r"""
/* One SHiP-MEM access against a single set: returns 1 on hit, 0 on miss
 * (after inserting).  A first reuse trains the line's signature up, a
 * capacity eviction of a never-reused line trains it down, and every
 * insertion reads the incoming signature to pick between long and distant
 * re-reference insertion.  sig is a dense signature id; shct must cover it. */
static inline int ship_step(int64_t block, int64_t sig, int32_t ways,
                            int32_t max_rrpv, int32_t counter_max,
                            int64_t *tag, int32_t *r, int64_t *ls,
                            uint8_t *ru, int64_t *shct, int64_t *miss_ctr)
{
    int32_t way = -1;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == block) { way = w; break; }
    }
    if (way >= 0) {
        r[way] = 0;
        if (!ru[way]) {
            ru[way] = 1;
            if (shct[ls[way]] < counter_max) shct[ls[way]]++;
        }
        return 1;
    }
    (*miss_ctr)++;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == -1) { way = w; break; }
    }
    if (way < 0) {
        for (;;) {
            for (int32_t w = 0; w < ways; w++) {
                if (r[w] >= max_rrpv) { way = w; break; }
            }
            if (way >= 0) break;
            for (int32_t w = 0; w < ways; w++) r[w]++;
        }
        if (!ru[way] && shct[ls[way]] > 0) shct[ls[way]]--;
    }
    tag[way] = block;
    r[way] = (shct[sig] == 0) ? max_rrpv : max_rrpv - 1;
    ls[way] = sig;
    ru[way] = 0;
    return 0;
}

/* Exact SHiP-MEM replay over ship_step (the caller densifies signatures;
 * shct is initialised to the unseen value). */
void ship_replay(const int64_t *blocks, const int64_t *sig_ids, int64_t n,
                 int32_t num_sets, int32_t ways, int32_t max_rrpv,
                 int32_t counter_max, int64_t *tags, int32_t *rrpv,
                 int64_t *line_sig, uint8_t *reused, int64_t *shct,
                 uint8_t *hits, int64_t *misses_per_set)
{
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        hits[i] = (uint8_t)ship_step(block, sig_ids[i], ways, max_rrpv,
                                     counter_max, tags + set * ways,
                                     rrpv + set * ways, line_sig + set * ways,
                                     reused + set * ways, shct,
                                     misses_per_set + set);
    }
}
"""

register_kernel(
    KernelSpec(
        name="ship",
        source=_SOURCE,
        functions={
            "ship_replay": [
                p_i64, p_i64, i64, i32, i32, i32, i32, p_i64, p_i32, p_i64,
                p_u8, p_i64, p_u8, p_i64,
            ],
        },
        capabilities=("replay:ship",),
    )
)


def ship_feed(
    blocks: np.ndarray,
    sig_ids: np.ndarray,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    counter_max: int,
    tags: np.ndarray,
    rrpv: np.ndarray,
    line_sig: np.ndarray,
    reused: np.ndarray,
    shct: np.ndarray,
    misses_per_set: np.ndarray,
):
    """Run the SHiP kernel over caller-owned state; ``None`` when unavailable.

    ``sig_ids`` must use signature ids that are stable across calls, and
    ``shct`` must cover every id in the chunk; all array arguments after
    ``counter_max`` persist across calls.  Returns the chunk's hit mask.
    """
    kernel = registry.lookup("ship_replay")
    if kernel is None:
        return None
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    sig_ids = np.ascontiguousarray(sig_ids, dtype=np.int64)
    n = int(blocks.shape[0])
    hits = np.empty(n, dtype=np.uint8)
    kernel(
        as_i64(blocks),
        as_i64(sig_ids),
        ctypes.c_int64(n),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        ctypes.c_int32(counter_max),
        as_i64(tags),
        as_i32(rrpv),
        as_i64(line_sig),
        as_u8(reused),
        as_i64(shct),
        as_u8(hits),
        as_i64(misses_per_set),
    )
    return hits.view(bool)


def ship_replay(
    blocks: np.ndarray,
    sig_ids: np.ndarray,
    num_signatures: int,
    num_sets: int,
    ways: int,
    max_rrpv: int,
    counter_max: int,
    unseen_value: int,
):
    """SHiP-MEM replay through the compiled kernel; ``None`` when unavailable.

    Returns ``(hits, misses_per_set, shct)`` matching
    :func:`repro.fastsim.ship.numpy_ship_replay` exactly; ``shct`` is the
    final counter table indexed by dense signature id.
    """
    if registry.lookup("ship_replay") is None:
        return None
    misses_per_set = np.zeros(num_sets, dtype=np.int64)
    tags = np.full(num_sets * ways, -1, dtype=np.int64)
    rrpv = np.full(num_sets * ways, max_rrpv, dtype=np.int32)
    line_sig = np.zeros(num_sets * ways, dtype=np.int64)
    reused = np.zeros(num_sets * ways, dtype=np.uint8)
    shct = np.full(max(1, num_signatures), unseen_value, dtype=np.int64)
    hits = ship_feed(
        blocks, sig_ids, num_sets, ways, max_rrpv, counter_max,
        tags, rrpv, line_sig, reused, shct, misses_per_set,
    )
    return hits, misses_per_set, shct[:num_signatures]
