"""Native kernel registry and engine-family kernel modules.

Importing this package registers every engine family's
:class:`~repro.fastsim.kernels.registry.KernelSpec` (registration is pure
bookkeeping — see :mod:`repro.fastsim.kernels.registry`; nothing compiles
until the first lookup).  Import order matters: ``core`` defines the shared
``static inline`` C steps, the family fragments build on them, and ``fused``
(last) stitches family steps into the single-pass threaded pipeline.
"""

from __future__ import annotations

from repro.fastsim.kernels.registry import (
    BASE_CFLAGS,
    CC_ENV_VAR,
    KernelSpec,
    NATIVE_ENV_VAR,
    THREADS_ENV_VAR,
    available,
    build_key,
    capabilities,
    has_capability,
    lookup,
    register_kernel,
    registered,
    reset,
    resolved,
    thread_count,
)

from repro.fastsim.kernels import core as _core  # noqa: F401  (registers "core")
from repro.fastsim.kernels.lru import lru_feed, lru_replay
from repro.fastsim.kernels.rrip import rrip_feed, rrip_replay
from repro.fastsim.kernels.pin import pin_feed, pin_replay
from repro.fastsim.kernels.opt import opt_feed, opt_replay
from repro.fastsim.kernels.ship import ship_feed, ship_replay
from repro.fastsim.kernels.leeway import leeway_feed, leeway_replay
from repro.fastsim.kernels.hawkeye import hawkeye_feed, hawkeye_replay
from repro.fastsim.kernels.fused import (
    FilterState,
    RegionTable,
    fused_filter_feed,
    fused_hawkeye_feed,
    fused_leeway_feed,
    fused_lru_feed,
    fused_pin_feed,
    fused_rrip_feed,
    fused_ship_feed,
)

__all__ = [
    "BASE_CFLAGS",
    "CC_ENV_VAR",
    "FilterState",
    "KernelSpec",
    "NATIVE_ENV_VAR",
    "RegionTable",
    "THREADS_ENV_VAR",
    "available",
    "build_key",
    "capabilities",
    "fused_filter_feed",
    "fused_hawkeye_feed",
    "fused_leeway_feed",
    "fused_lru_feed",
    "fused_pin_feed",
    "fused_rrip_feed",
    "fused_ship_feed",
    "has_capability",
    "hawkeye_feed",
    "hawkeye_replay",
    "leeway_feed",
    "leeway_replay",
    "lookup",
    "lru_feed",
    "lru_replay",
    "opt_feed",
    "opt_replay",
    "pin_feed",
    "pin_replay",
    "register_kernel",
    "registered",
    "reset",
    "resolved",
    "rrip_feed",
    "rrip_replay",
    "ship_feed",
    "ship_replay",
    "thread_count",
]
