"""Fused single-pass pipeline kernels: threaded L1/L2 filter + LLC replay.

One C call per trace chunk replaces the staged vector pipeline's
filter → compact → classify → replay sequence.  The call runs two phases
over a shared per-access ``outcome`` vector (uint8):

* **Filter phase** (threaded): every access is pushed through the L1 and L2
  LRU filters.  Work is sharded by ``block & (nthreads - 1)``; because the
  shard count is a power of two dividing every level's set count, each
  cache set — at L1, L2 *and* the LLC — is owned by exactly one thread, so
  threads touch disjoint state and disjoint ``outcome`` slots without
  locks.  Each thread collapses runs of its own last block (a repeat of a
  thread's previous block is a guaranteed L1 MRU hit), mirroring the staged
  path's run-head collapse.  L1/L2 recency uses per-set clocks, which makes
  hit/miss outcomes independent of the thread count (stamp order within a
  set depends only on that set's access subsequence).
* **LLC phase** (serial, trace order): accesses the filter marked as kept
  run through the engine family's ``*_step`` transition — the same C code
  the standalone kernels loop over — including GRASP hint classification in
  C for the hint-driven families.  Serial order keeps duel/predictor state
  (PSEL, SHCT, OPTgen) bit-identical to the staged engines.

Outcome codes: 0 = L1 hit, 1 = L2 hit, 2 = LLC hit (and the filter phase's
"kept" placeholder), 3 = LLC miss, 4 = LLC bypass (PIN-X only).  All stats
derive from ``np.bincount`` over this vector plus the per-set miss
counters; no intermediate compacted arrays are ever materialized.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.fastsim.kernels import registry
from repro.fastsim.kernels.registry import (
    KernelSpec,
    as_i32,
    as_i64,
    as_u8,
    i32,
    i64,
    p_i32,
    p_i64,
    p_u8,
    register_kernel,
)

#: Outcome codes written by the fused kernels.
OUT_L1_HIT = 0
OUT_L2_HIT = 1
OUT_LLC_HIT = 2
OUT_LLC_MISS = 3
OUT_LLC_BYPASS = 4

#: Hard clamp on the filter phase's thread fan-out (stack-allocated tasks).
MAX_THREADS = 64

_SOURCE = r"""
#include <pthread.h>

#define FUSED_MAX_THREADS 64

typedef struct {
    const int64_t *blocks;
    int64_t n;
    int64_t shard_mask;
    int64_t tid;
    int64_t l1_mask, l2_mask;
    int32_t l1_ways, l2_ways;
    int64_t *l1_tags, *l1_stamps, *l1_clocks, *l1_miss;
    int64_t *l2_tags, *l2_stamps, *l2_clocks, *l2_miss;
    uint8_t *out;
} fused_filter_task;

static void fused_filter_range(fused_filter_task *t)
{
    int64_t last_block = -1;
    for (int64_t i = 0; i < t->n; i++) {
        const int64_t block = t->blocks[i];
        if ((block & t->shard_mask) != t->tid) continue;
        if (block == last_block) { t->out[i] = 0; continue; }
        last_block = block;
        const int64_t s1 = block & t->l1_mask;
        if (lru_step(block, t->l1_ways, t->l1_tags + s1 * t->l1_ways,
                     t->l1_stamps + s1 * t->l1_ways, t->l1_miss + s1,
                     t->l1_clocks + s1)) { t->out[i] = 0; continue; }
        const int64_t s2 = block & t->l2_mask;
        if (lru_step(block, t->l2_ways, t->l2_tags + s2 * t->l2_ways,
                     t->l2_stamps + s2 * t->l2_ways, t->l2_miss + s2,
                     t->l2_clocks + s2)) { t->out[i] = 1; continue; }
        t->out[i] = 2;
    }
}

static void *fused_filter_thread(void *arg)
{
    fused_filter_range((fused_filter_task *)arg);
    return NULL;
}

/* Run the filter phase over nthreads set-group shards.  The caller
 * guarantees nthreads is a power of two dividing l1_sets and l2_sets (and
 * the LLC set count).  pthread_create failure is tolerated: the failed
 * shard simply runs on the calling thread after the others are joined. */
static void fused_filter(const int64_t *blocks, int64_t n, int32_t nthreads,
                         int32_t l1_sets, int32_t l1_ways, int64_t *l1_tags,
                         int64_t *l1_stamps, int64_t *l1_clocks,
                         int64_t *l1_miss, int32_t l2_sets, int32_t l2_ways,
                         int64_t *l2_tags, int64_t *l2_stamps,
                         int64_t *l2_clocks, int64_t *l2_miss, uint8_t *out)
{
    if (nthreads < 1) nthreads = 1;
    if (nthreads > FUSED_MAX_THREADS) nthreads = FUSED_MAX_THREADS;
    fused_filter_task tasks[FUSED_MAX_THREADS];
    for (int32_t t = 0; t < nthreads; t++) {
        fused_filter_task *task = &tasks[t];
        task->blocks = blocks;
        task->n = n;
        task->shard_mask = (int64_t)nthreads - 1;
        task->tid = t;
        task->l1_mask = (int64_t)l1_sets - 1;
        task->l2_mask = (int64_t)l2_sets - 1;
        task->l1_ways = l1_ways;
        task->l2_ways = l2_ways;
        task->l1_tags = l1_tags;
        task->l1_stamps = l1_stamps;
        task->l1_clocks = l1_clocks;
        task->l1_miss = l1_miss;
        task->l2_tags = l2_tags;
        task->l2_stamps = l2_stamps;
        task->l2_clocks = l2_clocks;
        task->l2_miss = l2_miss;
        task->out = out;
    }
    if (nthreads == 1) {
        fused_filter_range(&tasks[0]);
        return;
    }
    pthread_t threads[FUSED_MAX_THREADS];
    uint8_t started[FUSED_MAX_THREADS];
    for (int32_t t = 1; t < nthreads; t++) {
        started[t] = pthread_create(&threads[t], NULL, fused_filter_thread,
                                    &tasks[t]) == 0;
    }
    fused_filter_range(&tasks[0]);
    for (int32_t t = 1; t < nthreads; t++) {
        if (started[t]) pthread_join(threads[t], NULL);
        else fused_filter_range(&tasks[t]);
    }
}

#define FUSED_FILTER_ARGS                                                    \
    const int64_t *blocks, int64_t n, int32_t nthreads, int32_t l1_sets,     \
    int32_t l1_ways, int64_t *l1_tags, int64_t *l1_stamps,                   \
    int64_t *l1_clocks, int64_t *l1_miss, int32_t l2_sets, int32_t l2_ways,  \
    int64_t *l2_tags, int64_t *l2_stamps, int64_t *l2_clocks,                \
    int64_t *l2_miss

#define FUSED_RUN_FILTER()                                                   \
    fused_filter(blocks, n, nthreads, l1_sets, l1_ways, l1_tags, l1_stamps,  \
                 l1_clocks, l1_miss, l2_sets, l2_ways, l2_tags, l2_stamps,   \
                 l2_clocks, l2_miss, out)

/* Filter-only entry: run the threaded L1/L2 phase and stop, leaving the
 * "kept" placeholder (2) on every LLC-bound access.  Lets one filter pass
 * feed any number of per-policy LLC engines (the fused multi-scheme route)
 * without duplicating the filter work or materializing a filtered trace. */
void fused_filter_only(FUSED_FILTER_ARGS, uint8_t *out)
{
    FUSED_RUN_FILTER();
}

/* Fused LRU pipeline: per-set LLC recency clocks (outcome-equivalent to the
 * staged engine's global clock; see kernels/core.py). */
void fused_lru(FUSED_FILTER_ARGS, int32_t num_sets, int32_t ways,
               int64_t *tags, int64_t *stamps, int64_t *clocks,
               int64_t *misses_per_set, uint8_t *out)
{
    FUSED_RUN_FILTER();
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        if (out[i] != 2) continue;
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        out[i] = lru_step(block, ways, tags + set * ways, stamps + set * ways,
                          misses_per_set + set, clocks + set) ? 2 : 3;
    }
}

/* Fused RRIP-family pipeline (SRRIP / BRRIP / DRRIP / GRASP): reuse hints
 * are classified in C from byte addresses against the ABR region table. */
void fused_rrip(FUSED_FILTER_ARGS, const int64_t *addrs,
                const int64_t *reg_lo, const int64_t *reg_hi,
                const int32_t *reg_hint, int32_t n_regions, int32_t num_sets,
                int32_t ways, int32_t max_rrpv, const int32_t *ins_table,
                const int32_t *promo_table, int64_t epsilon, int64_t psel_max,
                int32_t leader_period, int64_t *tags, int32_t *rrpv,
                int64_t *misses_per_set, int64_t *state, uint8_t *out)
{
    FUSED_RUN_FILTER();
    int64_t psel = state[0];
    int64_t insert_count = state[1];
    const int64_t mask = (int64_t)num_sets - 1;
    const int64_t midpoint = (psel_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        if (out[i] != 2) continue;
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        const int32_t hint =
            grasp_classify(addrs[i], reg_lo, reg_hi, reg_hint, n_regions) & 3;
        out[i] = rrip_step(block, hint, set, ways, max_rrpv, ins_table,
                           promo_table, epsilon, psel_max, leader_period,
                           midpoint, tags + set * ways, rrpv + set * ways,
                           misses_per_set + set, &psel, &insert_count)
                     ? 2 : 3;
    }
    state[0] = psel;
    state[1] = insert_count;
}

/* Fused PIN-X pipeline: DRRIP + pinned ways, hints classified in C. */
void fused_pin(FUSED_FILTER_ARGS, const int64_t *addrs,
               const int64_t *reg_lo, const int64_t *reg_hi,
               const int32_t *reg_hint, int32_t n_regions, int32_t num_sets,
               int32_t ways, int32_t max_rrpv, int64_t epsilon,
               int64_t psel_max, int32_t leader_period, int32_t reserved_ways,
               int32_t hint_high, int64_t *tags, int32_t *rrpv,
               uint8_t *pinned, int32_t *pinned_count, int64_t *misses_per_set,
               int64_t *bypasses_per_set, int64_t *state, uint8_t *out)
{
    FUSED_RUN_FILTER();
    int64_t psel = state[0];
    int64_t insert_count = state[1];
    const int64_t mask = (int64_t)num_sets - 1;
    const int64_t midpoint = (psel_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        if (out[i] != 2) continue;
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        const int32_t hint =
            grasp_classify(addrs[i], reg_lo, reg_hi, reg_hint, n_regions) & 3;
        const int code = pin_step(block, hint, set, ways, max_rrpv, epsilon,
                                  psel_max, leader_period, midpoint,
                                  reserved_ways, hint_high, tags + set * ways,
                                  rrpv + set * ways, pinned + set * ways,
                                  pinned_count + set, misses_per_set + set,
                                  bypasses_per_set + set, &psel,
                                  &insert_count);
        out[i] = code == 1 ? 2 : (code == 2 ? 4 : 3);
    }
    state[0] = psel;
    state[1] = insert_count;
}

/* Fused SHiP-MEM pipeline: sig_ids are dense per-access signature ids. */
void fused_ship(FUSED_FILTER_ARGS, const int64_t *sig_ids, int32_t num_sets,
                int32_t ways, int32_t max_rrpv, int32_t counter_max,
                int64_t *tags, int32_t *rrpv, int64_t *line_sig,
                uint8_t *reused, int64_t *shct, int64_t *misses_per_set,
                uint8_t *out)
{
    FUSED_RUN_FILTER();
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        if (out[i] != 2) continue;
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        out[i] = ship_step(block, sig_ids[i], ways, max_rrpv, counter_max,
                           tags + set * ways, rrpv + set * ways,
                           line_sig + set * ways, reused + set * ways, shct,
                           misses_per_set + set) ? 2 : 3;
    }
}

/* Fused Leeway pipeline: pc_ids are dense per-access PC ids. */
void fused_leeway(FUSED_FILTER_ARGS, const int64_t *pc_ids, int32_t num_sets,
                  int32_t ways, int32_t decay_period, int64_t *tags,
                  int32_t *pos, int64_t *line_sig, int32_t *observed,
                  int64_t *predicted, int64_t *votes, int64_t *misses_per_set,
                  uint8_t *out)
{
    FUSED_RUN_FILTER();
    const int64_t mask = (int64_t)num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        if (out[i] != 2) continue;
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        out[i] = leeway_step(block, pc_ids[i], ways, decay_period,
                             tags + set * ways, pos + set * ways,
                             line_sig + set * ways, observed + set * ways,
                             predicted, votes, misses_per_set + set) ? 2 : 3;
    }
}

/* Fused Hawkeye pipeline: block_ids/pc_ids are dense per-access ids. */
void fused_hawkeye(FUSED_FILTER_ARGS, const int64_t *block_ids,
                   const int64_t *pc_ids, int32_t num_sets, int32_t ways,
                   int32_t max_rrpv, int32_t sample_period,
                   int32_t predictor_max, int64_t history, int64_t *tags,
                   int32_t *rrpv, uint8_t *friendly, int64_t *line_pc,
                   int32_t *predictor, int64_t *last_access, int64_t *last_pc,
                   int32_t *occupancy, int64_t *occ_head, int64_t *occ_len,
                   int64_t *timestamps, int64_t *misses_per_set, uint8_t *out)
{
    FUSED_RUN_FILTER();
    const int64_t mask = (int64_t)num_sets - 1;
    const int32_t midpoint = (predictor_max + 1) / 2;
    for (int64_t i = 0; i < n; i++) {
        if (out[i] != 2) continue;
        const int64_t block = blocks[i];
        const int64_t set = block & mask;
        out[i] = hawkeye_step(block, block_ids[i], pc_ids[i], set, ways,
                              max_rrpv, sample_period, predictor_max, midpoint,
                              history, tags + set * ways, rrpv + set * ways,
                              friendly + set * ways, line_pc + set * ways,
                              predictor, last_access, last_pc, occupancy,
                              occ_head, occ_len, timestamps,
                              misses_per_set + set) ? 2 : 3;
    }
}
"""

# Filter-phase argtypes shared by every fused entry (FUSED_FILTER_ARGS).
_FILTER_ARGTYPES = [
    p_i64, i64, i32,
    i32, i32, p_i64, p_i64, p_i64, p_i64,
    i32, i32, p_i64, p_i64, p_i64, p_i64,
]

register_kernel(
    KernelSpec(
        name="fused",
        source=_SOURCE,
        functions={
            "fused_filter_only": _FILTER_ARGTYPES + [p_u8],
            "fused_lru": _FILTER_ARGTYPES + [i32, i32, p_i64, p_i64, p_i64, p_i64, p_u8],
            "fused_rrip": _FILTER_ARGTYPES + [
                p_i64, p_i64, p_i64, p_i32, i32,
                i32, i32, i32, p_i32, p_i32, i64, i64, i32,
                p_i64, p_i32, p_i64, p_i64, p_u8,
            ],
            "fused_pin": _FILTER_ARGTYPES + [
                p_i64, p_i64, p_i64, p_i32, i32,
                i32, i32, i32, i64, i64, i32, i32, i32,
                p_i64, p_i32, p_u8, p_i32, p_i64, p_i64, p_i64, p_u8,
            ],
            "fused_ship": _FILTER_ARGTYPES + [
                p_i64, i32, i32, i32, i32,
                p_i64, p_i32, p_i64, p_u8, p_i64, p_i64, p_u8,
            ],
            "fused_leeway": _FILTER_ARGTYPES + [
                p_i64, i32, i32, i32,
                p_i64, p_i32, p_i64, p_i32, p_i64, p_i64, p_i64, p_u8,
            ],
            "fused_hawkeye": _FILTER_ARGTYPES + [
                p_i64, p_i64, i32, i32, i32, i32, i32, i64,
                p_i64, p_i32, p_u8, p_i64, p_i32, p_i64, p_i64, p_i32,
                p_i64, p_i64, p_i64, p_i64, p_u8,
            ],
        },
        capabilities=(
            "fused",
            "fused:filter",
            "fused:lru",
            "fused:rrip",
            "fused:pin",
            "fused:ship",
            "fused:leeway",
            "fused:hawkeye",
        ),
        threaded=True,
    )
)


@dataclass
class FilterState:
    """Persistent L1/L2 filter state for one fused pipeline instance."""

    l1_sets: int
    l1_ways: int
    l2_sets: int
    l2_ways: int
    l1_tags: np.ndarray = field(init=False)
    l1_stamps: np.ndarray = field(init=False)
    l1_clocks: np.ndarray = field(init=False)
    l1_misses: np.ndarray = field(init=False)
    l2_tags: np.ndarray = field(init=False)
    l2_stamps: np.ndarray = field(init=False)
    l2_clocks: np.ndarray = field(init=False)
    l2_misses: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.l1_tags = np.full(self.l1_sets * self.l1_ways, -1, dtype=np.int64)
        self.l1_stamps = np.zeros(self.l1_sets * self.l1_ways, dtype=np.int64)
        self.l1_clocks = np.zeros(self.l1_sets, dtype=np.int64)
        self.l1_misses = np.zeros(self.l1_sets, dtype=np.int64)
        self.l2_tags = np.full(self.l2_sets * self.l2_ways, -1, dtype=np.int64)
        self.l2_stamps = np.zeros(self.l2_sets * self.l2_ways, dtype=np.int64)
        self.l2_clocks = np.zeros(self.l2_sets, dtype=np.int64)
        self.l2_misses = np.zeros(self.l2_sets, dtype=np.int64)


@dataclass(frozen=True)
class RegionTable:
    """GRASP ABR regions in array form for the in-kernel classifier."""

    lo: np.ndarray
    hi: np.ndarray
    hint: np.ndarray

    @classmethod
    def empty(cls) -> "RegionTable":
        return cls(
            lo=np.zeros(0, dtype=np.int64),
            hi=np.zeros(0, dtype=np.int64),
            hint=np.zeros(0, dtype=np.int32),
        )

    @classmethod
    def from_regions(cls, regions: Tuple[Tuple[int, int, int], ...]) -> "RegionTable":
        if not regions:
            return cls.empty()
        lo, hi, hint = zip(*regions)
        return cls(
            lo=np.asarray(lo, dtype=np.int64),
            hi=np.asarray(hi, dtype=np.int64),
            hint=np.asarray(hint, dtype=np.int32),
        )

    def __len__(self) -> int:
        return int(self.lo.shape[0])


def _filter_args(blocks: np.ndarray, n: int, nthreads: int, filt: FilterState):
    return [
        as_i64(blocks),
        ctypes.c_int64(n),
        ctypes.c_int32(nthreads),
        ctypes.c_int32(filt.l1_sets),
        ctypes.c_int32(filt.l1_ways),
        as_i64(filt.l1_tags),
        as_i64(filt.l1_stamps),
        as_i64(filt.l1_clocks),
        as_i64(filt.l1_misses),
        ctypes.c_int32(filt.l2_sets),
        ctypes.c_int32(filt.l2_ways),
        as_i64(filt.l2_tags),
        as_i64(filt.l2_stamps),
        as_i64(filt.l2_clocks),
        as_i64(filt.l2_misses),
    ]


def _prep(blocks, out_n):
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    out = np.empty(out_n, dtype=np.uint8)
    return blocks, out


def fused_filter_feed(blocks, nthreads, filt):
    """Threaded L1/L2 filter phase over one chunk; ``None`` when unavailable.

    Returns the per-access outcome vector with the LLC phase left unrun:
    0 = L1 hit, 1 = L2 hit, 2 = kept (LLC-bound).
    """
    kernel = registry.lookup("fused_filter_only")
    if kernel is None:
        return None
    blocks, out = _prep(blocks, len(blocks))
    kernel(*_filter_args(blocks, len(blocks), nthreads, filt), as_u8(out))
    return out


def fused_lru_feed(blocks, nthreads, filt, num_sets, ways, tags, stamps,
                   clocks, misses_per_set):
    """Fused LRU pipeline over one chunk; ``None`` when unavailable."""
    kernel = registry.lookup("fused_lru")
    if kernel is None:
        return None
    blocks, out = _prep(blocks, len(blocks))
    kernel(
        *_filter_args(blocks, len(blocks), nthreads, filt),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        as_i64(tags),
        as_i64(stamps),
        as_i64(clocks),
        as_i64(misses_per_set),
        as_u8(out),
    )
    return out


def fused_rrip_feed(blocks, addrs, nthreads, filt, regions, num_sets, ways,
                    max_rrpv, ins_table, promo_table, epsilon, psel_max,
                    leader_period, tags, rrpv, misses_per_set, state):
    """Fused RRIP-family pipeline over one chunk; ``None`` when unavailable."""
    kernel = registry.lookup("fused_rrip")
    if kernel is None:
        return None
    blocks, out = _prep(blocks, len(blocks))
    addrs = np.ascontiguousarray(addrs, dtype=np.int64)
    kernel(
        *_filter_args(blocks, len(blocks), nthreads, filt),
        as_i64(addrs),
        as_i64(regions.lo),
        as_i64(regions.hi),
        as_i32(regions.hint),
        ctypes.c_int32(len(regions)),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        as_i32(ins_table),
        as_i32(promo_table),
        ctypes.c_int64(epsilon),
        ctypes.c_int64(psel_max),
        ctypes.c_int32(leader_period),
        as_i64(tags),
        as_i32(rrpv),
        as_i64(misses_per_set),
        as_i64(state),
        as_u8(out),
    )
    return out


def fused_pin_feed(blocks, addrs, nthreads, filt, regions, num_sets, ways,
                   max_rrpv, epsilon, psel_max, leader_period, reserved_ways,
                   hint_high, tags, rrpv, pinned, pinned_count,
                   misses_per_set, bypasses_per_set, state):
    """Fused PIN-X pipeline over one chunk; ``None`` when unavailable."""
    kernel = registry.lookup("fused_pin")
    if kernel is None:
        return None
    blocks, out = _prep(blocks, len(blocks))
    addrs = np.ascontiguousarray(addrs, dtype=np.int64)
    kernel(
        *_filter_args(blocks, len(blocks), nthreads, filt),
        as_i64(addrs),
        as_i64(regions.lo),
        as_i64(regions.hi),
        as_i32(regions.hint),
        ctypes.c_int32(len(regions)),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        ctypes.c_int64(epsilon),
        ctypes.c_int64(psel_max),
        ctypes.c_int32(leader_period),
        ctypes.c_int32(reserved_ways),
        ctypes.c_int32(hint_high),
        as_i64(tags),
        as_i32(rrpv),
        as_u8(pinned),
        as_i32(pinned_count),
        as_i64(misses_per_set),
        as_i64(bypasses_per_set),
        as_i64(state),
        as_u8(out),
    )
    return out


def fused_ship_feed(blocks, sig_ids, nthreads, filt, num_sets, ways, max_rrpv,
                    counter_max, tags, rrpv, line_sig, reused, shct,
                    misses_per_set):
    """Fused SHiP-MEM pipeline over one chunk; ``None`` when unavailable."""
    kernel = registry.lookup("fused_ship")
    if kernel is None:
        return None
    blocks, out = _prep(blocks, len(blocks))
    sig_ids = np.ascontiguousarray(sig_ids, dtype=np.int64)
    kernel(
        *_filter_args(blocks, len(blocks), nthreads, filt),
        as_i64(sig_ids),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        ctypes.c_int32(counter_max),
        as_i64(tags),
        as_i32(rrpv),
        as_i64(line_sig),
        as_u8(reused),
        as_i64(shct),
        as_i64(misses_per_set),
        as_u8(out),
    )
    return out


def fused_leeway_feed(blocks, pc_ids, nthreads, filt, num_sets, ways,
                      decay_period, tags, pos, line_sig, observed, predicted,
                      votes, misses_per_set):
    """Fused Leeway pipeline over one chunk; ``None`` when unavailable."""
    kernel = registry.lookup("fused_leeway")
    if kernel is None:
        return None
    blocks, out = _prep(blocks, len(blocks))
    pc_ids = np.ascontiguousarray(pc_ids, dtype=np.int64)
    kernel(
        *_filter_args(blocks, len(blocks), nthreads, filt),
        as_i64(pc_ids),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(decay_period),
        as_i64(tags),
        as_i32(pos),
        as_i64(line_sig),
        as_i32(observed),
        as_i64(predicted),
        as_i64(votes),
        as_i64(misses_per_set),
        as_u8(out),
    )
    return out


def fused_hawkeye_feed(blocks, block_ids, pc_ids, nthreads, filt, num_sets,
                       ways, max_rrpv, sample_period, predictor_max, history,
                       tags, rrpv, friendly, line_pc, predictor, last_access,
                       last_pc, occupancy, occ_head, occ_len, timestamps,
                       misses_per_set):
    """Fused Hawkeye pipeline over one chunk; ``None`` when unavailable."""
    kernel = registry.lookup("fused_hawkeye")
    if kernel is None or history <= 0:
        return None
    blocks, out = _prep(blocks, len(blocks))
    block_ids = np.ascontiguousarray(block_ids, dtype=np.int64)
    pc_ids = np.ascontiguousarray(pc_ids, dtype=np.int64)
    kernel(
        *_filter_args(blocks, len(blocks), nthreads, filt),
        as_i64(block_ids),
        as_i64(pc_ids),
        ctypes.c_int32(num_sets),
        ctypes.c_int32(ways),
        ctypes.c_int32(max_rrpv),
        ctypes.c_int32(sample_period),
        ctypes.c_int32(predictor_max),
        ctypes.c_int64(history),
        as_i64(tags),
        as_i32(rrpv),
        as_u8(friendly),
        as_i64(line_pc),
        as_i32(predictor),
        as_i64(last_access),
        as_i64(last_pc),
        as_i32(occupancy),
        as_i64(occ_head),
        as_i64(occ_len),
        as_i64(timestamps),
        as_i64(misses_per_set),
        as_u8(out),
    )
    return out
