"""Shared C helpers used by every engine-family fragment.

``lru_step`` is the single-access set-associative LRU transition used by the
standalone LRU kernel (with a global recency clock) *and* by the fused
pipeline's L1/L2 filter and LLC-LRU stages (with per-set clocks).  Victim
choice compares stamps only within one set, so a global and a per-set clock
produce identical hit/miss/eviction outcomes — the per-set form additionally
makes outcomes independent of how accesses are interleaved across sets,
which is what lets the fused filter shard sets across threads.

``grasp_classify`` is the C mirror of
:meth:`repro.core.classification.GraspClassifier.classify`: no regions maps
to ``HINT_DEFAULT`` (0), the first containing ``[lo, hi)`` region wins, and
everything else is ``HINT_LOW`` (3).
"""

from __future__ import annotations

from repro.fastsim.kernels.registry import KernelSpec, register_kernel

_SOURCE = r"""
/* One LRU access against a single set: returns 1 on hit, 0 on miss (after
 * inserting).  tag/stamp point at the set's ways; miss_ctr at the set's
 * miss counter; clock at the recency clock (global or per-set). */
static inline int lru_step(int64_t block, int32_t ways, int64_t *tag,
                           int64_t *stamp, int64_t *miss_ctr, int64_t *clock)
{
    int32_t way = -1;
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == block) { way = w; break; }
    }
    if (way >= 0) {
        stamp[way] = ++(*clock);
        return 1;
    }
    (*miss_ctr)++;
    int32_t victim = 0;
    int64_t oldest = stamp[0];
    for (int32_t w = 0; w < ways; w++) {
        if (tag[w] == -1) { victim = w; break; }
        if (stamp[w] < oldest) { oldest = stamp[w]; victim = w; }
    }
    tag[victim] = block;
    stamp[victim] = ++(*clock);
    return 0;
}

/* GraspClassifier.classify: 0 (DEFAULT) without regions, first matching
 * [lo, hi) region's hint, else 3 (LOW). */
static inline int32_t grasp_classify(int64_t addr, const int64_t *lo,
                                     const int64_t *hi, const int32_t *hint,
                                     int32_t n_regions)
{
    if (n_regions <= 0) return 0;
    for (int32_t k = 0; k < n_regions; k++) {
        if (addr >= lo[k] && addr < hi[k]) return hint[k];
    }
    return 3;
}
"""

register_kernel(KernelSpec(name="core", source=_SOURCE))
