"""Exact vectorized replay for Hawkeye (OPTgen-trained PC prediction).

:class:`~repro.cache.policies.hawkeye.HawkeyePolicy` couples every cache set
through one global PC predictor: accesses to sampled sets train it via the
per-set OPTgen reconstruction, every hit and insertion reads it, and
evictions of friendly lines detrain it.  What *does* batch under the RRIP
engine's chunking (every set at most once per chunk) is everything keyed by
per-set state alone:

* the broadcast tag compare classifying the whole chunk's hits;
* empty-way discovery and the victim way itself — Hawkeye's victim choice
  (leftmost saturated line, else the oldest line) reads only RRPVs, which a
  chunk's other accesses cannot touch;
* the tag scatter writes for the chunk's insertions.

The predictor reads (insertion/hit RRPVs depend on the PC's current
friendliness), detrains and OPTgen updates are then applied in exact trace
order by a walk over the chunk — the same pattern the RRIP engine uses for
PSEL, with a heavier per-event body.  The walk reuses the scalar policy's
:class:`~repro.cache.policies.hawkeye._OptGen` so the reconstruction cannot
drift from the reference; the compiled kernel reimplements it with dense
block/PC ids and ring-buffer occupancy vectors and is the throughput path
(the NumPy engine is the exactness/portability fallback, as for RRIP).

:func:`hawkeye_replay` dispatches to the compiled kernel
(:func:`repro.fastsim.kernels.hawkeye_replay`) when one is available and to
:func:`numpy_hawkeye_replay` otherwise; both are exact, including the final
predictor contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.hawkeye import HawkeyePolicy, _OptGen
from repro.fastsim import kernels
from repro.fastsim.leeway import _pc_array
from repro.fastsim.rrip import _chunk_end
from repro.fastsim.stackdist import (
    DenseIdMap,
    grow_to,
    previous_occurrence_indices,
)


@dataclass(frozen=True)
class HawkeyeSpec:
    """Array-form description of one :class:`HawkeyePolicy` instance."""

    max_rrpv: int
    sample_period: int
    predictor_max: int
    history_factor: int

    @property
    def midpoint(self) -> int:
        """Predictor threshold at and above which a PC is cache-friendly."""
        return (self.predictor_max + 1) // 2


def hawkeye_spec(policy: ReplacementPolicy) -> Optional[HawkeyeSpec]:
    """Snapshot a policy into a :class:`HawkeyeSpec`, or ``None`` if ineligible.

    Restricted to the exact type :class:`HawkeyePolicy` — a subclass could
    override any hook and silently diverge.
    """
    if type(policy) is not HawkeyePolicy:
        return None
    return HawkeyeSpec(
        max_rrpv=policy.max_rrpv,
        sample_period=policy.sample_period,
        predictor_max=policy.predictor_max,
        history_factor=policy.history_factor,
    )


@dataclass(frozen=True)
class HawkeyeReplay:
    """Outcome of replaying a block stream through one Hawkeye cache."""

    hits: np.ndarray
    misses_per_set: np.ndarray
    ways: int
    #: Final PC predictor as ``{pc: counter}``, restricted to counters away
    #: from the weakly-friendly midpoint (absent PCs predict the midpoint,
    #: matching the scalar policy's default).
    predictor: Dict[int, int]

    @property
    def hit_count(self) -> int:
        """Total number of hits."""
        return int(self.hits.sum())

    @property
    def miss_count(self) -> int:
        """Total number of misses."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions (Hawkeye never bypasses, so misses beyond capacity)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())


class HawkeyeStream:
    """Resumable exact Hawkeye replay: feed a block/PC stream in chunks.

    Carries tags, RRPVs, per-line friendliness/PCs, the global PC predictor
    and every sampled set's OPTgen reconstruction across :meth:`feed` calls;
    chunked replay is bit-identical to one replay over the concatenation.

    The two backends keep different state representations (the NumPy path
    reuses the scalar policy's :class:`_OptGen` objects, the compiled kernel
    dense ring buffers with grow-only block/PC id maps), so the backend is
    fixed at construction.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        spec: HawkeyeSpec,
        use_native: Optional[bool] = None,
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.spec = spec
        self._history = spec.history_factor * ways
        if use_native is None:
            use_native = kernels.available() and self._history > 0
        self._use_native = bool(use_native)
        self.misses_per_set = np.zeros(num_sets, dtype=np.int64)
        self.hit_count = 0
        if self._use_native:
            num_samplers = (num_sets + spec.sample_period - 1) // spec.sample_period
            self.tags = np.full(num_sets * ways, -1, dtype=np.int64)
            self.rrpv = np.full(num_sets * ways, spec.max_rrpv, dtype=np.int32)
            self._friendly = np.zeros(num_sets * ways, dtype=np.uint8)
            self._line_pc = np.zeros(num_sets * ways, dtype=np.int64)
            self._block_ids = DenseIdMap()
            self._pc_id_map = DenseIdMap()
            self._predictor = np.empty(0, dtype=np.int32)
            self._last_access = np.empty(0, dtype=np.int64)
            self._last_pc = np.empty(0, dtype=np.int64)
            self._occupancy = np.zeros(
                max(1, num_samplers * self._history), dtype=np.int32
            )
            self._occ_head = np.zeros(max(1, num_samplers), dtype=np.int64)
            self._occ_len = np.zeros(max(1, num_samplers), dtype=np.int64)
            self._timestamps = np.zeros(max(1, num_samplers), dtype=np.int64)
        else:
            self.tags = np.full((num_sets, ways), -1, dtype=np.int64)
            self.rrpv = np.full((num_sets, ways), spec.max_rrpv, dtype=np.int64)
            self._friendly = [[False] * ways for _ in range(num_sets)]
            self._line_pc = [[0] * ways for _ in range(num_sets)]
            self._predictor_dict: Dict[int, int] = {}
            self._samplers: Dict[int, _OptGen] = {}

    @property
    def miss_count(self) -> int:
        """Total number of misses fed so far."""
        return int(self.misses_per_set.sum())

    @property
    def evictions(self) -> int:
        """Total evictions so far (Hawkeye never bypasses)."""
        return int(np.maximum(0, self.misses_per_set - self.ways).sum())

    @property
    def predictor(self) -> Dict[int, int]:
        """Current PC predictor, restricted to counters off the midpoint."""
        midpoint = self.spec.midpoint
        if self._use_native:
            return {
                int(pc): int(value)
                for pc, value in zip(
                    self._pc_id_map.keys_in_id_order(), self._predictor.tolist()
                )
                if value != midpoint
            }
        return {
            pc: value
            for pc, value in self._predictor_dict.items()
            if value != midpoint
        }

    def feed(
        self, block_addresses: np.ndarray, pcs: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Replay one chunk; returns its hit mask and advances the state."""
        blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
        n = int(blocks.shape[0])
        pc_values = _pc_array(pcs, n)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if self._use_native:
            hits = self._native_feed(blocks, pc_values)
        else:
            hits = self._numpy_feed(blocks, pc_values)
        self.hit_count += int(hits.sum())
        return hits

    def _native_feed(self, blocks: np.ndarray, pc_values: np.ndarray) -> np.ndarray:
        spec = self.spec
        block_ids = self._block_ids.map(blocks)
        pc_ids = self._pc_id_map.map(pc_values)
        self._predictor = grow_to(
            self._predictor, len(self._pc_id_map), spec.midpoint
        )
        self._last_access = grow_to(self._last_access, len(self._block_ids), -1)
        self._last_pc = grow_to(self._last_pc, len(self._block_ids), 0)
        hits = kernels.hawkeye_feed(
            blocks,
            block_ids,
            pc_ids,
            self.num_sets,
            self.ways,
            spec.max_rrpv,
            spec.sample_period,
            spec.predictor_max,
            self._history,
            self.tags,
            self.rrpv,
            self._friendly,
            self._line_pc,
            self._predictor,
            self._last_access,
            self._last_pc,
            self._occupancy,
            self._occ_head,
            self._occ_len,
            self._timestamps,
            self.misses_per_set,
        )
        if hits is None:
            raise RuntimeError(
                "compiled Hawkeye kernel disappeared mid-stream; "
                "construct HawkeyeStream with use_native=False"
            )
        return hits

    def _numpy_feed(self, blocks: np.ndarray, pc_values: np.ndarray) -> np.ndarray:
        spec = self.spec
        num_sets, ways = self.num_sets, self.ways
        max_rrpv = spec.max_rrpv
        sample_period = spec.sample_period
        predictor_max = spec.predictor_max
        midpoint = spec.midpoint
        history = self._history
        predictor = self._predictor_dict
        samplers = self._samplers
        tags, rrpv = self.tags, self.rrpv
        friendly, line_pc = self._friendly, self._line_pc
        n = int(blocks.shape[0])
        hits = np.zeros(n, dtype=bool)
        set_ids = blocks & (num_sets - 1)
        prev = previous_occurrence_indices(set_ids)

        def train(pc: int, positive: bool) -> None:
            value = predictor.get(pc, midpoint)
            predictor[pc] = (
                min(predictor_max, value + 1) if positive else max(0, value - 1)
            )

        def observe(set_index: int, block: int, pc: int) -> None:
            sampler = samplers.get(set_index)
            if sampler is None:
                sampler = _OptGen(ways, history)
                samplers[set_index] = sampler
            training_pc, opt_hit = sampler.access(block, pc)
            if training_pc is not None:
                train(training_pc, opt_hit)

        position = 0
        while position < n:
            end = _chunk_end(prev, position, n)
            sets = set_ids[position:end]
            chunk_blocks = blocks[position:end]

            match = tags[sets] == chunk_blocks[:, None]
            is_hit = match.any(axis=1)
            hits[position:end] = is_hit
            hit_way = match.argmax(axis=1)
            # Victim preselection is predictor-independent (RRPVs only) and a
            # chunk's other accesses cannot touch this set's RRPVs, so it
            # batches; the no-saturated-line fallback must detrain during the
            # walk below.
            empty = tags[sets] == -1
            has_empty = empty.any(axis=1)
            empty_way = empty.argmax(axis=1)
            saturated = rrpv[sets] >= max_rrpv
            has_saturated = saturated.any(axis=1)
            saturated_way = saturated.argmax(axis=1)
            oldest_way = rrpv[sets].argmax(axis=1)

            sets_list = sets.tolist()
            blocks_list = chunk_blocks.tolist()
            pcs_list = pc_values[position:end].tolist()
            for k, (set_index, block, pc) in enumerate(
                zip(sets_list, blocks_list, pcs_list)
            ):
                sampled = set_index % sample_period == 0
                if is_hit[k]:
                    way = int(hit_way[k])
                    if sampled:
                        observe(set_index, block, pc)
                    is_friendly = predictor.get(pc, midpoint) >= midpoint
                    friendly[set_index][way] = is_friendly
                    line_pc[set_index][way] = pc
                    rrpv[set_index, way] = 0 if is_friendly else max_rrpv
                    continue
                if has_empty[k]:
                    way = int(empty_way[k])
                elif has_saturated[k]:
                    way = int(saturated_way[k])
                else:
                    way = int(oldest_way[k])
                    if friendly[set_index][way]:
                        train(line_pc[set_index][way], positive=False)
                if sampled:
                    observe(set_index, block, pc)
                is_friendly = predictor.get(pc, midpoint) >= midpoint
                if is_friendly:
                    # Age everyone else so older friendly lines eventually
                    # age out.
                    row = rrpv[set_index]
                    ageable = row < max_rrpv - 1
                    ageable[way] = False
                    row[ageable] += 1
                friendly[set_index][way] = is_friendly
                line_pc[set_index][way] = pc
                rrpv[set_index, way] = 0 if is_friendly else max_rrpv
                tags[set_index, way] = block
            position = end

        self.misses_per_set += np.bincount(set_ids[~hits], minlength=num_sets)
        return hits


def numpy_hawkeye_replay(
    block_addresses: np.ndarray,
    pcs: Optional[np.ndarray],
    num_sets: int,
    ways: int,
    spec: HawkeyeSpec,
) -> HawkeyeReplay:
    """Batched-classification replay (the portable engine).

    Exact with respect to the scalar policy: identical per-access hit masks,
    per-set miss counts, predictor trainings and OPTgen decisions.  One
    :class:`HawkeyeStream` feed over the whole stream — chunked feeds of the
    same stream are bit-identical by construction.
    """
    stream = HawkeyeStream(num_sets, ways, spec, use_native=False)
    hits = stream.feed(block_addresses, pcs)
    return HawkeyeReplay(
        hits=hits,
        misses_per_set=stream.misses_per_set,
        ways=ways,
        predictor=stream.predictor,
    )


def hawkeye_replay(
    block_addresses: np.ndarray,
    pcs: Optional[np.ndarray],
    num_sets: int,
    ways: int,
    spec: HawkeyeSpec,
) -> HawkeyeReplay:
    """Replay a block stream through a ``num_sets`` x ``ways`` Hawkeye cache.

    ``num_sets`` must be a power of two (set index is ``block & mask``,
    matching :class:`repro.cache.cache.SetAssociativeCache`).  Dispatches to
    the compiled kernel (:mod:`repro.fastsim.kernels`) when available and to
    :func:`numpy_hawkeye_replay` otherwise; both are exact.
    """
    blocks = np.ascontiguousarray(block_addresses, dtype=np.int64)
    n = int(blocks.shape[0])
    pc_values = _pc_array(pcs, n)
    unique_blocks, block_ids = np.unique(blocks, return_inverse=True)
    unique_pcs, pc_ids = np.unique(pc_values, return_inverse=True)
    native = kernels.hawkeye_replay(
        blocks,
        block_ids.astype(np.int64),
        int(unique_blocks.shape[0]),
        pc_ids.astype(np.int64),
        int(unique_pcs.shape[0]),
        num_sets,
        ways,
        spec.max_rrpv,
        spec.sample_period,
        spec.predictor_max,
        spec.history_factor * ways,
    )
    if native is not None:
        native_hits, misses_per_set, predictor_values = native
        midpoint = spec.midpoint
        predictor = {
            int(unique_pcs[index]): int(value)
            for index, value in enumerate(predictor_values.tolist())
            if value != midpoint
        }
        return HawkeyeReplay(
            hits=native_hits,
            misses_per_set=misses_per_set,
            ways=ways,
            predictor=predictor,
        )
    return numpy_hawkeye_replay(blocks, pc_values, num_sets, ways, spec)
