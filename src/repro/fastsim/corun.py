"""Vectorized co-run LLC replay with per-stream attribution.

:class:`CorunReplayStream` is the fast-path counterpart of replaying an
interleaved (stream-tagged) access stream through a partitioned
:class:`~repro.cache.cache.SetAssociativeCache`:

* **Unpartitioned** (``partition=None``): every stream contends for the whole
  LLC under one shared policy instance, so the merged stream is replayed
  through a single :class:`~repro.fastsim.replay.PolicyReplayStream` and the
  per-stream hit/miss attribution is recovered from the hit mask with
  ``np.bincount`` over the ``stream_ids`` column.
* **Way-partitioned**: a stream confined to ``c`` contiguous ways of every
  set behaves bit-identically to the same policy bound to a standalone
  ``c``-way cache with the same number of sets (all the engine specs —
  RRIP/PIN/SHiP/Hawkeye/Leeway — are geometry-independent), so each stream
  gets its own per-partition replay engine and the merged chunk is
  scatter/gathered by stream.  This is exactly the semantics of the scalar
  :class:`~repro.cache.partition.PartitionedPolicy`, which the ``verify``
  backend checks against.

:func:`supports_vector_corun` is the dispatch predicate.  One genuine gap:
an *unpartitioned* PIN-X co-run cannot attribute bypasses per stream from
the shared hit mask (a bypass is indistinguishable from an ordinary miss in
the mask), so that one configuration falls back to the scalar simulator.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.partition import WayPartition
from repro.cache.policies.opt import BeladyOptimal
from repro.cache.stats import CacheStats
from repro.fastsim.pin import pin_spec
from repro.fastsim.replay import PolicyReplayStream, supports_vector_replay


def supports_vector_corun(policy, partition: Optional[WayPartition] = None) -> bool:
    """Whether the vectorized co-run path reproduces this configuration exactly.

    Everything :func:`~repro.fastsim.replay.supports_vector_replay` accepts
    qualifies, except the offline :class:`BeladyOptimal` (no online stream)
    and the unpartitioned PIN-X configurations (per-stream bypass attribution
    needs per-stream engines, which only a partition provides).
    """
    if type(policy) is BeladyOptimal or not supports_vector_replay(policy):
        return False
    if partition is None and pin_spec(policy) is not None:
        return False
    return True


class CorunReplayStream:
    """Resumable stream-tagged LLC replay with per-stream attribution.

    Feed aligned ``(block_addresses, stream_ids, hints, regions, pcs)``
    chunks — e.g. from :class:`~repro.trace.interleave.InterleavedTraceStream`
    — then read :meth:`stats`; the result carries per-stream counters that
    sum exactly to the aggregates (``CacheStats.validate`` is enforced).
    Chunked replay is bit-identical to one-shot replay of the concatenation.

    Parameters
    ----------
    policy:
        Template policy; consulted only for its array-form spec.  Must pass
        :func:`supports_vector_corun` for the given partition.
    llc_config:
        Geometry of the shared LLC.
    num_streams:
        Number of co-running streams (stream ids are ``0..num_streams-1``).
    partition:
        Optional :class:`~repro.cache.partition.WayPartition` with one share
        per stream; ``None`` replays the free-for-all contention regime.
    """

    def __init__(
        self,
        policy,
        llc_config: CacheConfig,
        num_streams: int,
        partition: Optional[WayPartition] = None,
        use_native=None,
    ) -> None:
        if num_streams < 1:
            raise ValueError("num_streams must be at least 1")
        if not supports_vector_corun(policy, partition):
            raise ValueError(
                f"policy {policy!r} has no vectorized co-run engine for "
                f"partition={partition}; use supports_vector_corun() before dispatching"
            )
        if partition is not None:
            partition.validate_ways(llc_config.ways)
            if partition.num_streams != num_streams:
                raise ValueError(
                    f"partition {partition} provisions {partition.num_streams} "
                    f"streams but the co-run has {num_streams}"
                )
        self.llc_config = llc_config
        self.num_streams = num_streams
        self.partition = partition
        self._stream_hits: Dict[int, int] = {}
        self._stream_misses: Dict[int, int] = {}
        if partition is None:
            self._engines = [PolicyReplayStream(policy, llc_config, use_native=use_native)]
        else:
            self._engines = []
            for ways in partition.counts:
                sub_config = CacheConfig(
                    size_bytes=llc_config.num_sets * ways * llc_config.block_bytes,
                    ways=ways,
                    block_bytes=llc_config.block_bytes,
                    name=llc_config.name,
                )
                self._engines.append(
                    PolicyReplayStream(policy, sub_config, use_native=use_native)
                )

    def feed(
        self,
        block_addresses: np.ndarray,
        stream_ids: np.ndarray,
        hints: Optional[np.ndarray] = None,
        regions: Optional[np.ndarray] = None,
        pcs: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Replay one merged chunk; returns its hit mask in access order."""
        if len(block_addresses) != len(stream_ids):
            raise ValueError("block_addresses and stream_ids must be parallel")
        if not len(block_addresses):
            return np.zeros(0, dtype=bool)
        streams = np.asarray(stream_ids, dtype=np.int64)
        if self.partition is None:
            hits = self._engines[0].feed(block_addresses, hints, regions, pcs)
        else:
            hits = np.zeros(len(block_addresses), dtype=bool)
            for stream, engine in enumerate(self._engines):
                mask = streams == stream
                if not mask.any():
                    continue
                hits[mask] = engine.feed(
                    block_addresses[mask],
                    hints[mask] if hints is not None else None,
                    regions[mask] if regions is not None else None,
                    pcs[mask] if pcs is not None else None,
                )
        counts = np.bincount(streams, minlength=self.num_streams)
        hit_counts = np.bincount(streams[hits], minlength=self.num_streams)
        for stream in range(self.num_streams):
            accesses = int(counts[stream])
            if not accesses:
                continue
            stream_hits = int(hit_counts[stream])
            self._stream_hits[stream] = self._stream_hits.get(stream, 0) + stream_hits
            self._stream_misses[stream] = (
                self._stream_misses.get(stream, 0) + accesses - stream_hits
            )
        return hits

    def stats(self) -> CacheStats:
        """Aggregate + per-stream :class:`CacheStats` over everything fed."""
        per_engine = [engine.stats() for engine in self._engines]
        if self.partition is None:
            aggregate = per_engine[0]
            stream_bypasses = None  # PIN is excluded unpartitioned; no bypasses.
        else:
            aggregate = per_engine[0]
            for sub in per_engine[1:]:
                aggregate = aggregate.merge(sub)
            aggregate.name = self.llc_config.name
            stream_bypasses = {
                stream: sub.bypasses
                for stream, sub in enumerate(per_engine)
                if sub.bypasses
            }
        stats = CacheStats.from_counts(
            name=self.llc_config.name,
            hits=aggregate.hits,
            misses=aggregate.misses,
            evictions=aggregate.evictions,
            bypasses=aggregate.bypasses,
            region_accesses=aggregate.region_accesses or None,
            region_misses=aggregate.region_misses or None,
            stream_hits=self._stream_hits,
            stream_misses=self._stream_misses,
            stream_bypasses=stream_bypasses,
        )
        return stats.validate()

    def finish(self) -> CacheStats:
        """Alias of :meth:`stats`, closing the begin/feed/finish cycle."""
        return self.stats()
