"""Reordering-cost model for the software-only study (Fig. 10a).

Fig. 10a reports *net* speed-up: application time with reordering, plus the
time spent reordering, relative to the un-reordered baseline.  The real
measurement ran on a 40-thread server; here the application time comes from
the timing model over the simulated trace, and the reordering time is modelled
from each technique's abstract operation count (``ReorderResult.operations``)
at a fixed cost per operation.  The constants only need to preserve the
paper's qualitative result: skew-aware techniques amortise their cost on long
runs, Gorder's cost is orders of magnitude larger and never amortises.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReorderCostModel:
    """Converts reordering operation counts into model cycles.

    Parameters
    ----------
    cycles_per_operation:
        Cost of one abstract reordering operation, in the same cycle units as
        :class:`repro.perf.timing.TimingModel`.
    parallel_threads:
        Reordering implementations are parallel (the paper divides Gorder's
        single-threaded runtime by the machine's 40 threads for fairness);
        the operation count is divided by this factor.
    """

    cycles_per_operation: float = 12.0
    parallel_threads: int = 1

    def __post_init__(self) -> None:
        if self.cycles_per_operation <= 0:
            raise ValueError("cycles_per_operation must be positive")
        if self.parallel_threads < 1:
            raise ValueError("parallel_threads must be at least 1")

    def reorder_cycles(self, operations: float) -> float:
        """Model cycles spent reordering."""
        if operations < 0:
            raise ValueError("operations must be non-negative")
        return operations * self.cycles_per_operation / self.parallel_threads

    def net_speedup_percent(
        self,
        baseline_application_cycles: float,
        reordered_application_cycles: float,
        reorder_operations: float,
    ) -> float:
        """Net speed-up including the reordering cost (the Fig. 10a metric)."""
        total = reordered_application_cycles + self.reorder_cycles(reorder_operations)
        if total <= 0:
            raise ValueError("total cycles must be positive")
        return (baseline_application_cycles / total - 1.0) * 100.0
