"""Analytical performance models.

The paper reports application speed-up from a cycle-accurate simulator; this
reproduction converts the cache simulator's hit/miss counts into cycles with
a simple latency model (:mod:`repro.perf.timing`) and models the cost of
vertex reordering from operation counts (:mod:`repro.perf.reorder_cost`) so
that Fig. 10a's net-speed-up comparison can be regenerated.
:mod:`repro.perf.throughput` measures the simulator itself (wall-clock
accesses per second), backing the fastsim benchmark.
"""

from repro.perf.reorder_cost import ReorderCostModel
from repro.perf.throughput import ThroughputResult, measure_throughput
from repro.perf.timing import LevelCounts, TimingModel

__all__ = [
    "LevelCounts",
    "ReorderCostModel",
    "ThroughputResult",
    "TimingModel",
    "measure_throughput",
]
