"""Wall-clock throughput measurement for the simulation fast path.

Used by ``benchmarks/bench_fastsim_throughput.py`` to report simulated
accesses per second for each backend and the vector-over-scalar speed-up.
Timing uses ``time.perf_counter`` and best-of-``repeats`` to damp scheduler
noise; these numbers describe the *simulator's* speed, not the modelled
hardware (that is :mod:`repro.perf.timing`'s job).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ThroughputResult:
    """Best observed wall-clock time for a workload of ``accesses`` references."""

    label: str
    accesses: int
    seconds: float

    @property
    def accesses_per_second(self) -> float:
        """Simulated references per second (0 when nothing was timed)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.accesses / self.seconds

    def speedup_over(self, baseline: "ThroughputResult") -> float:
        """How many times faster this run was than ``baseline``."""
        if self.seconds <= 0.0:
            return float("inf")
        return baseline.seconds / self.seconds


def measure_throughput(
    fn: Callable[[], object],
    accesses: int,
    label: str = "run",
    repeats: int = 3,
) -> ThroughputResult:
    """Time ``fn`` ``repeats`` times and keep the best run."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return ThroughputResult(label=label, accesses=accesses, seconds=best)
