"""Cycle model converting cache-level hit counts into execution time.

Graph analytics is memory-bound (Sec. I of the paper), so execution time is
modelled as the sum of the latency of every memory reference plus a small
per-access core overhead.  The default latencies follow the paper's Table VI
(4-cycle L1, 6-cycle L2, 10-cycle LLC bank plus NoC, 50 ns ≈ 130-cycle
memory at 2.66 GHz).  Absolute cycle counts are not meaningful — only the
*relative* change between two policies is used, which is how every speed-up
figure in the paper is reported.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LevelCounts:
    """How many references were satisfied at each level of the hierarchy."""

    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    memory_accesses: int = 0

    @property
    def total_accesses(self) -> int:
        """Total memory references."""
        return self.l1_hits + self.l2_hits + self.llc_hits + self.memory_accesses

    def with_llc_outcome(self, llc_hits: int, llc_misses: int) -> "LevelCounts":
        """Return a copy with the LLC hit/miss split replaced.

        Used when the same L1/L2 filter trace is replayed under several LLC
        policies: only the LLC-level split changes between policies.
        """
        return LevelCounts(
            l1_hits=self.l1_hits,
            l2_hits=self.l2_hits,
            llc_hits=llc_hits,
            memory_accesses=llc_misses,
        )


@dataclass(frozen=True)
class TimingModel:
    """Latency parameters of the modelled system (cycles)."""

    core_overhead: float = 1.5
    l1_latency: float = 4.0
    l2_latency: float = 10.0
    llc_latency: float = 30.0
    memory_latency: float = 130.0

    def cycles(self, counts: LevelCounts) -> float:
        """Execution cycles for the given per-level hit counts."""
        return (
            counts.total_accesses * self.core_overhead
            + counts.l1_hits * self.l1_latency
            + counts.l2_hits * self.l2_latency
            + counts.llc_hits * self.llc_latency
            + counts.memory_accesses * self.memory_latency
        )

    @staticmethod
    def speedup_percent(baseline_cycles: float, cycles: float) -> float:
        """Per-cent speed-up of ``cycles`` relative to ``baseline_cycles``.

        Positive values mean faster than the baseline, as in the paper's
        figures; negative values are slowdowns.
        """
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return (baseline_cycles / cycles - 1.0) * 100.0

    @staticmethod
    def miss_reduction_percent(baseline_misses: int, misses: int) -> float:
        """Per-cent of baseline misses eliminated (Fig. 5 / Fig. 11 metric)."""
        if baseline_misses <= 0:
            return 0.0
        return (1.0 - misses / baseline_misses) * 100.0
