"""Deterministic interleaving of per-application LLC access streams.

Multi-programmed (co-run) simulation replays N single-application access
streams through one shared LLC.  :class:`InterleavedTraceStream` merges the
per-app chunk streams into a single stream-tagged access sequence under one
of three arrival schedules:

``round_robin``
    Each live stream contributes a fixed quantum of ``quantum`` accesses per
    turn, in stream order — the classic lockstep co-run model.
``poisson``
    Turn order and burst lengths are drawn from a seeded generator: a
    uniformly random live stream runs for ``1 + Poisson(quantum - 1)``
    accesses.  Models asynchronous cores with exponentially distributed
    scheduling jitter while staying bit-reproducible per seed.
``phase``
    Each live stream contributes one whole source *chunk* per round.  Since
    the single-app generators chunk at iteration-aligned boundaries, this
    aligns the co-runners' algorithmic phases (all apps start an iteration
    together), the adversarial case for hot-region pinning.

Every merged access carries a ``stream_id``, and (by default) block addresses
are remapped with a per-stream offset of ``1 << STREAM_ADDRESS_BITS`` so
co-runners never falsely share cache blocks: applications simulated from
independently generated traces would otherwise collide in the low address
range.  Stream 0's addresses are unchanged, so a 1-stream interleave is
bit-identical to the underlying single-app stream.

The merge order depends only on the schedule parameters and the source
lengths — never on the output chunk size — so replaying the merged stream
through any chunk-oblivious engine gives the same result for every
``chunk_accesses``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

#: Bit position of the per-stream address-space offset.  Block addresses from
#: stream ``k`` are offset by ``k << STREAM_ADDRESS_BITS``; real block
#: addresses are far below 2**48 blocks, and the offset stays comfortably
#: inside int64 for any realistic stream count.
STREAM_ADDRESS_BITS = 48

#: The supported arrival schedules, in CLI order.
SCHEDULES = ("round_robin", "poisson", "phase")


@dataclass
class InterleavedChunk:
    """One chunk of the merged co-run access stream (parallel arrays)."""

    block_addresses: np.ndarray
    pcs: np.ndarray
    regions: np.ndarray
    hints: np.ndarray
    stream_ids: np.ndarray

    def __len__(self) -> int:
        return int(self.block_addresses.shape[0])


class _StreamCursor:
    """Read position over one source's chunk iterator."""

    __slots__ = ("source", "chunk", "offset", "exhausted")

    def __init__(self, source: Iterable) -> None:
        self.source = iter(source)
        self.chunk = None
        self.offset = 0
        self.exhausted = False

    def _advance(self) -> bool:
        """Load the next non-empty chunk; return False when the source ends."""
        while self.chunk is None or self.offset >= len(self.chunk.block_addresses):
            try:
                self.chunk = next(self.source)
            except StopIteration:
                self.exhausted = True
                self.chunk = None
                return False
            self.offset = 0
        return True

    @property
    def live(self) -> bool:
        if self.exhausted:
            return False
        return self._advance()

    def take(self, n: int) -> List[tuple]:
        """Up to ``n`` accesses as ``(blocks, pcs, regions, hints)`` slices.

        May return fewer than ``n`` (possibly zero) pieces when the source
        runs out; pieces cross chunk boundaries so a quantum is never
        truncated early.
        """
        pieces = []
        remaining = n
        while remaining > 0 and self._advance():
            chunk = self.chunk
            stop = min(self.offset + remaining, len(chunk.block_addresses))
            pieces.append(
                (
                    chunk.block_addresses[self.offset:stop],
                    chunk.pcs[self.offset:stop],
                    chunk.regions[self.offset:stop],
                    chunk.hints[self.offset:stop],
                )
            )
            remaining -= stop - self.offset
            self.offset = stop
        return pieces

    def take_chunk(self) -> List[tuple]:
        """The remainder of the current source chunk (one ``phase`` turn)."""
        if not self._advance():
            return []
        chunk = self.chunk
        piece = (
            chunk.block_addresses[self.offset:],
            chunk.pcs[self.offset:],
            chunk.regions[self.offset:],
            chunk.hints[self.offset:],
        )
        self.offset = len(chunk.block_addresses)
        return [piece]


class InterleavedTraceStream:
    """Merge N per-app chunk streams into one stream-tagged access stream.

    Parameters
    ----------
    sources:
        One iterable of chunk-like objects per co-running application.  A
        chunk is anything exposing parallel ``block_addresses`` / ``pcs`` /
        ``regions`` / ``hints`` arrays (e.g. the runner's per-chunk LLC
        traces).  Sources are consumed lazily, so the merge streams with
        bounded memory regardless of total trace length.
    schedule:
        One of :data:`SCHEDULES`.
    quantum:
        Accesses per turn (``round_robin``) or mean burst length
        (``poisson``); ignored by ``phase``.
    seed:
        Seed for the ``poisson`` schedule's generator; ignored otherwise.
    remap:
        Offset each stream's block addresses by
        ``stream_id << STREAM_ADDRESS_BITS`` so co-runners never share
        blocks.  Stream 0 is never changed.
    chunk_accesses:
        Target accesses per yielded :class:`InterleavedChunk`.
    """

    def __init__(
        self,
        sources: Sequence[Iterable],
        schedule: str = "round_robin",
        quantum: int = 64,
        seed: int = 0,
        remap: bool = True,
        chunk_accesses: int = 1 << 16,
    ) -> None:
        if not sources:
            raise ValueError("at least one source stream is required")
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; expected one of {', '.join(SCHEDULES)}"
            )
        if quantum < 1:
            raise ValueError("quantum must be at least 1")
        if chunk_accesses < 1:
            raise ValueError("chunk_accesses must be at least 1")
        self.num_streams = len(sources)
        self.schedule = schedule
        self.quantum = quantum
        self.seed = seed
        self.remap = remap
        self.chunk_accesses = chunk_accesses
        self._cursors = [_StreamCursor(source) for source in sources]
        self._rng: Optional[np.random.Generator] = None
        if schedule == "poisson":
            self._rng = np.random.Generator(np.random.PCG64(seed))

    # -- scheduling -------------------------------------------------------------

    def _turns(self) -> Iterator[tuple]:
        """Yield ``(stream_id, pieces)`` merge turns until every source ends."""
        cursors = self._cursors
        if self.schedule == "poisson":
            rng = self._rng
            while True:
                live = [k for k, cursor in enumerate(cursors) if cursor.live]
                if not live:
                    return
                stream = live[int(rng.integers(len(live)))]
                length = 1 + int(rng.poisson(self.quantum - 1)) if self.quantum > 1 else 1
                pieces = cursors[stream].take(length)
                if pieces:
                    yield stream, pieces
            # not reached
        take_whole_chunk = self.schedule == "phase"
        while True:
            any_live = False
            for stream, cursor in enumerate(cursors):
                if not cursor.live:
                    continue
                pieces = cursor.take_chunk() if take_whole_chunk else cursor.take(self.quantum)
                if pieces:
                    any_live = True
                    yield stream, pieces
            if not any_live:
                return

    # -- iteration --------------------------------------------------------------

    def __iter__(self) -> Iterator[InterleavedChunk]:
        pending: List[tuple] = []  # (stream_id, blocks, pcs, regions, hints)
        pending_len = 0
        for stream, pieces in self._turns():
            for blocks, pcs, regions, hints in pieces:
                if self.remap and stream:
                    blocks = blocks.astype(np.int64, copy=True)
                    blocks += np.int64(stream) << STREAM_ADDRESS_BITS
                pending.append((stream, blocks, pcs, regions, hints))
                pending_len += len(blocks)
            while pending_len >= self.chunk_accesses:
                chunk, pending, pending_len = self._emit(pending, pending_len)
                yield chunk
        if pending_len:
            chunk, pending, pending_len = self._emit(pending, pending_len)
            yield chunk

    def _emit(self, pending: List[tuple], pending_len: int):
        """Concatenate up to ``chunk_accesses`` pending accesses into a chunk."""
        take = min(pending_len, self.chunk_accesses)
        used: List[tuple] = []
        size = 0
        rest = list(pending)
        while size < take:
            stream, blocks, pcs, regions, hints = rest.pop(0)
            room = take - size
            if len(blocks) > room:
                used.append((stream, blocks[:room], pcs[:room], regions[:room], hints[:room]))
                rest.insert(0, (stream, blocks[room:], pcs[room:], regions[room:], hints[room:]))
                size = take
            else:
                used.append((stream, blocks, pcs, regions, hints))
                size += len(blocks)
        chunk = InterleavedChunk(
            block_addresses=np.concatenate([piece[1] for piece in used]),
            pcs=np.concatenate([piece[2] for piece in used]),
            regions=np.concatenate([piece[3] for piece in used]),
            hints=np.concatenate([piece[4] for piece in used]),
            stream_ids=np.concatenate(
                [np.full(len(piece[1]), piece[0], dtype=np.int64) for piece in used]
            ),
        )
        return chunk, rest, pending_len - take
