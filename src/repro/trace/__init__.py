"""Memory-layout modelling and LLC access-trace generation.

The paper's hardware evaluation is trace-driven: one region-of-interest
iteration (the one with the most active vertices) is simulated in detail.
This subpackage reproduces that pipeline in two steps:

* :class:`~repro.trace.layout.MemoryLayout` places the CSR Vertex and Edge
  arrays and every Property Array in a virtual address space, mirroring how
  a graph framework would allocate them, and exposes the Property-Array
  bounds the application writes into GRASP's Address Bound Registers.
* :func:`~repro.trace.generator.generate_iteration_trace` replays the memory
  reference stream of one pull or push iteration of an application over that
  layout, producing the address/PC/region arrays the cache simulator and the
  Fig. 2 access-breakdown analysis consume.
"""

from repro.trace.generator import (
    Trace,
    TraceChunk,
    generate_execution_trace,
    generate_iteration_trace,
    iter_execution_trace,
    iter_iteration_trace_chunks,
    iter_trace_slices,
    iteration_trace_length,
    remap_address_space,
)
from repro.trace.interleave import (
    SCHEDULES,
    STREAM_ADDRESS_BITS,
    InterleavedChunk,
    InterleavedTraceStream,
)
from repro.trace.layout import (
    PC_EDGE_LOAD,
    PC_PROPERTY_GATHER,
    PC_PROPERTY_UPDATE,
    PC_VERTEX_LOAD,
    REGION_EDGE,
    REGION_NAMES,
    REGION_PROPERTY,
    REGION_VERTEX,
    MemoryLayout,
)

__all__ = [
    "InterleavedChunk",
    "InterleavedTraceStream",
    "MemoryLayout",
    "PC_EDGE_LOAD",
    "PC_PROPERTY_GATHER",
    "PC_PROPERTY_UPDATE",
    "PC_VERTEX_LOAD",
    "REGION_EDGE",
    "REGION_NAMES",
    "REGION_PROPERTY",
    "REGION_VERTEX",
    "SCHEDULES",
    "STREAM_ADDRESS_BITS",
    "Trace",
    "TraceChunk",
    "generate_execution_trace",
    "generate_iteration_trace",
    "iter_execution_trace",
    "iter_iteration_trace_chunks",
    "iter_trace_slices",
    "iteration_trace_length",
    "remap_address_space",
]
