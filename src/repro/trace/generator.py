"""Generation of the memory-reference stream for one traversal iteration.

The generated stream follows the access structure of Sec. II-C of the paper:
for every processed vertex the kernel reads its Vertex-Array entry, walks the
corresponding slice of the Edge Array, and for every edge reads the
neighbour's entry in each Property Array; after the edges it updates the
vertex's own per-vertex properties.  Pull iterations walk the in-edges of all
vertices (Ligra's dense mode); push iterations walk the out-edges of the
active frontier only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analytics.base import PULL, PUSH
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.trace.layout import (
    PC_EDGE_LOAD,
    PC_PROPERTY_GATHER,
    PC_PROPERTY_UPDATE,
    PC_VERTEX_LOAD,
    REGION_EDGE,
    REGION_PROPERTY,
    REGION_VERTEX,
    MemoryLayout,
)


@dataclass
class Trace:
    """A memory-reference stream: parallel address / PC / region arrays."""

    addresses: np.ndarray
    pcs: np.ndarray
    regions: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.addresses) == len(self.pcs) == len(self.regions)):
            raise ValueError("trace arrays must be parallel")

    def __len__(self) -> int:
        return int(self.addresses.shape[0])

    @property
    def num_accesses(self) -> int:
        """Number of memory references in the trace."""
        return len(self)

    def block_addresses(self, block_offset_bits: int) -> np.ndarray:
        """Block-aligned addresses of every reference (used by the fast path)."""
        return self.addresses >> block_offset_bits

    def property_fraction(self) -> float:
        """Fraction of references that target a Property Array (Fig. 2)."""
        if len(self) == 0:
            return 0.0
        return float((self.regions == REGION_PROPERTY).mean())

    def concatenate(self, other: "Trace") -> "Trace":
        """Append another trace (used to trace several iterations back to back)."""
        return Trace(
            addresses=np.concatenate([self.addresses, other.addresses]),
            pcs=np.concatenate([self.pcs, other.pcs]),
            regions=np.concatenate([self.regions, other.regions]),
        )


def _edge_slice_for(graph: CSRGraph, vertices: np.ndarray, direction: str):
    """Edge indices and neighbour IDs for the given vertices, in traversal order."""
    if direction == PULL:
        index, adjacency = graph.in_index, graph.in_sources
    else:
        index, adjacency = graph.out_index, graph.out_targets
    starts = index[vertices]
    counts = (index[vertices + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=VERTEX_DTYPE), counts
    offsets = np.concatenate(([0], np.cumsum(counts)))
    edge_indices = np.repeat(starts - offsets[:-1], counts) + np.arange(total)
    neighbours = adjacency[edge_indices]
    return edge_indices, neighbours, counts


def generate_iteration_trace(
    graph: CSRGraph,
    layout: MemoryLayout,
    direction: str,
    frontier: Optional[np.ndarray] = None,
) -> Trace:
    """Generate the reference stream of one traversal iteration.

    Parameters
    ----------
    graph:
        The (reordered) graph being traversed.
    layout:
        Memory layout providing array base addresses; its access profile
        determines how many Property Arrays are read per edge.
    direction:
        ``"pull"`` (dense: every vertex gathers over its in-edges) or
        ``"push"`` (sparse: frontier vertices scatter over their out-edges).
    frontier:
        Active vertices for push iterations; ignored for pull iterations
        (Ligra's dense mode scans all destinations).
    """
    if direction not in (PULL, PUSH):
        raise ValueError(f"unknown direction {direction!r}")
    n = graph.num_vertices
    if direction == PULL or frontier is None:
        vertices = np.arange(n, dtype=VERTEX_DTYPE)
    else:
        vertices = np.asarray(frontier, dtype=VERTEX_DTYPE)
    if vertices.size == 0 or n == 0:
        empty = np.empty(0, dtype=np.int64)
        return Trace(empty, empty.astype(np.int16), empty.astype(np.int8))

    edge_indices, neighbours, counts = _edge_slice_for(graph, vertices, direction)
    num_edges = int(edge_indices.shape[0])
    edge_property_count = len(layout.edge_property_arrays)
    vertex_property_count = len(layout.vertex_property_arrays)
    stride = 1 + edge_property_count

    # Inner per-edge stream: Edge-Array read followed by one read per
    # edge-indexed Property Array, all indexed by the neighbour vertex.
    inner_addresses = np.empty(num_edges * stride, dtype=np.int64)
    inner_pcs = np.empty(num_edges * stride, dtype=np.int16)
    inner_regions = np.empty(num_edges * stride, dtype=np.int8)
    inner_addresses[0::stride] = layout.edge_addresses(edge_indices)
    inner_pcs[0::stride] = PC_EDGE_LOAD
    inner_regions[0::stride] = REGION_EDGE
    for array_index in range(edge_property_count):
        inner_addresses[array_index + 1 :: stride] = layout.edge_property_addresses(
            array_index, neighbours
        )
        inner_pcs[array_index + 1 :: stride] = PC_PROPERTY_GATHER
        inner_regions[array_index + 1 :: stride] = REGION_PROPERTY

    # Per-vertex accesses: the Vertex-Array read before the edge slice and the
    # per-vertex property updates after it.
    per_vertex_after = vertex_property_count
    edge_offsets = np.concatenate(([0], np.cumsum(counts))) * stride

    insert_positions = np.concatenate(
        [edge_offsets[:-1]] + [edge_offsets[1:]] * per_vertex_after if per_vertex_after else [edge_offsets[:-1]]
    )
    vertex_addresses = [layout.vertex_index_addresses(vertices)]
    vertex_pcs = [np.full(vertices.shape, PC_VERTEX_LOAD, dtype=np.int16)]
    vertex_regions = [np.full(vertices.shape, REGION_VERTEX, dtype=np.int8)]
    for array_index in range(vertex_property_count):
        vertex_addresses.append(layout.vertex_property_addresses(array_index, vertices))
        vertex_pcs.append(np.full(vertices.shape, PC_PROPERTY_UPDATE, dtype=np.int16))
        vertex_regions.append(np.full(vertices.shape, REGION_PROPERTY, dtype=np.int8))

    insert_values = np.concatenate(vertex_addresses)
    insert_pcs = np.concatenate(vertex_pcs)
    insert_regions = np.concatenate(vertex_regions)

    addresses = np.insert(inner_addresses, insert_positions, insert_values)
    pcs = np.insert(inner_pcs, insert_positions, insert_pcs)
    regions = np.insert(inner_regions, insert_positions, insert_regions)
    return Trace(addresses=addresses, pcs=pcs, regions=regions)
