"""Generation of the memory-reference stream of graph-traversal executions.

The generated stream follows the access structure of Sec. II-C of the paper:
for every processed vertex the kernel reads its Vertex-Array entry, walks the
corresponding slice of the Edge Array, and for every edge reads the
neighbour's entry in each Property Array; after the edges it updates the
vertex's own per-vertex properties.  Pull iterations walk the in-edges of all
vertices (Ligra's dense mode); push iterations walk the out-edges of the
active frontier only.

Two granularities are exposed:

* :func:`generate_iteration_trace` materializes one iteration's stream as a
  single :class:`Trace` (the original ROI pipeline).
* :func:`iter_execution_trace` streams a *full* application execution —
  every iteration's direction and frontier from an
  :class:`~repro.analytics.base.AppResult` — as a sequence of
  :class:`TraceChunk` pieces whose sizes are bounded by an access budget.
  Because the stream is a per-vertex concatenation of independent records,
  cutting it at vertex boundaries is exact: concatenating the chunks
  reproduces the one-shot trace bit for bit, while peak memory stays
  O(chunk) instead of O(execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.analytics.base import PULL, PUSH, IterationRecord
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.trace.layout import (
    PC_EDGE_LOAD,
    PC_PROPERTY_GATHER,
    PC_PROPERTY_UPDATE,
    PC_VERTEX_LOAD,
    REGION_EDGE,
    REGION_PROPERTY,
    REGION_VERTEX,
    MemoryLayout,
)


@dataclass
class Trace:
    """A memory-reference stream: parallel address / PC / region arrays."""

    addresses: np.ndarray
    pcs: np.ndarray
    regions: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.addresses) == len(self.pcs) == len(self.regions)):
            raise ValueError("trace arrays must be parallel")

    def __len__(self) -> int:
        return int(self.addresses.shape[0])

    @property
    def num_accesses(self) -> int:
        """Number of memory references in the trace."""
        return len(self)

    def block_addresses(self, block_offset_bits: int) -> np.ndarray:
        """Block-aligned addresses of every reference (used by the fast path)."""
        return self.addresses >> block_offset_bits

    def property_fraction(self) -> float:
        """Fraction of references that target a Property Array (Fig. 2)."""
        if len(self) == 0:
            return 0.0
        return float((self.regions == REGION_PROPERTY).mean())

    def concatenate(self, other: "Trace") -> "Trace":
        """Append another trace (used to trace several iterations back to back)."""
        return Trace(
            addresses=np.concatenate([self.addresses, other.addresses]),
            pcs=np.concatenate([self.pcs, other.pcs]),
            regions=np.concatenate([self.regions, other.regions]),
        )


def remap_address_space(trace: Trace, offset: int) -> Trace:
    """Shift a trace's byte addresses by a constant per-stream offset.

    Co-run simulation gives each application a disjoint address space so
    independently generated traces never falsely share cache blocks; PCs and
    region labels are deliberately left alone (co-runners executing the same
    binary *should* alias in PC-indexed predictors).  ``offset=0`` returns
    the trace unchanged.
    """
    if offset == 0:
        return trace
    return Trace(
        addresses=trace.addresses + np.int64(offset),
        pcs=trace.pcs,
        regions=trace.regions,
    )


def iter_trace_slices(trace: Trace, max_accesses: int) -> Iterator[Trace]:
    """Yield a trace as zero-copy views of at most ``max_accesses`` each.

    Feeding every slice through a streaming engine in order is equivalent to
    feeding the whole trace at once; an empty trace yields nothing.
    """
    if max_accesses <= 0:
        raise ValueError("max_accesses must be positive")
    for start in range(0, len(trace), max_accesses):
        stop = start + max_accesses
        yield Trace(
            addresses=trace.addresses[start:stop],
            pcs=trace.pcs[start:stop],
            regions=trace.regions[start:stop],
        )


def _edge_slice_for(graph: CSRGraph, vertices: np.ndarray, direction: str):
    """Edge indices and neighbour IDs for the given vertices, in traversal order."""
    if direction == PULL:
        index, adjacency = graph.in_index, graph.in_sources
    else:
        index, adjacency = graph.out_index, graph.out_targets
    starts = index[vertices]
    counts = (index[vertices + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=VERTEX_DTYPE), counts
    offsets = np.concatenate(([0], np.cumsum(counts)))
    edge_indices = np.repeat(starts - offsets[:-1], counts) + np.arange(total)
    neighbours = adjacency[edge_indices]
    return edge_indices, neighbours, counts


def _iteration_vertices(
    graph: CSRGraph, direction: str, frontier: Optional[np.ndarray]
) -> np.ndarray:
    """Vertices an iteration processes, in traversal order."""
    if direction not in (PULL, PUSH):
        raise ValueError(f"unknown direction {direction!r}")
    if direction == PULL or frontier is None:
        return np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
    return np.asarray(frontier, dtype=VERTEX_DTYPE)


def _empty_trace() -> Trace:
    empty = np.empty(0, dtype=np.int64)
    return Trace(empty, empty.astype(np.int16), empty.astype(np.int8))


def generate_iteration_trace(
    graph: CSRGraph,
    layout: MemoryLayout,
    direction: str,
    frontier: Optional[np.ndarray] = None,
    vertices: Optional[np.ndarray] = None,
) -> Trace:
    """Generate the reference stream of one traversal iteration.

    Parameters
    ----------
    graph:
        The (reordered) graph being traversed.
    layout:
        Memory layout providing array base addresses; its access profile
        determines how many Property Arrays are read per edge.
    direction:
        ``"pull"`` (dense: every vertex gathers over its in-edges) or
        ``"push"`` (sparse: frontier vertices scatter over their out-edges).
    frontier:
        Active vertices for push iterations; ignored for pull iterations
        (Ligra's dense mode scans all destinations).
    vertices:
        Explicit vertex list overriding the ``direction``/``frontier``
        selection — the streaming chunker uses this to generate an exact
        contiguous slice of the iteration's stream.
    """
    if vertices is None:
        vertices = _iteration_vertices(graph, direction, frontier)
    else:
        if direction not in (PULL, PUSH):
            raise ValueError(f"unknown direction {direction!r}")
        vertices = np.asarray(vertices, dtype=VERTEX_DTYPE)
    if vertices.size == 0 or graph.num_vertices == 0:
        return _empty_trace()

    edge_indices, neighbours, counts = _edge_slice_for(graph, vertices, direction)
    num_edges = int(edge_indices.shape[0])
    num_vertices = int(vertices.shape[0])
    edge_property_count = len(layout.edge_property_arrays)
    vertex_property_count = len(layout.vertex_property_arrays)
    stride = 1 + edge_property_count
    per_vertex = 1 + vertex_property_count

    # Output layout per vertex v (Sec. II-C): [Vertex-Array load][per edge:
    # Edge-Array read + one read per edge-indexed Property Array][per-vertex
    # property updates].  All destination indices are computed once and used
    # to scatter into the three parallel output arrays, replacing the former
    # triple np.insert (each a full O(n) copy with its own position argsort)
    # whose stable tie-break also emitted every equal-offset Vertex-Array
    # load *before* the preceding vertex's updates.
    edge_offsets = np.concatenate(([0], np.cumsum(counts))) * stride
    out_starts = edge_offsets[:-1] + per_vertex * np.arange(num_vertices, dtype=np.int64)
    total = num_vertices * per_vertex + num_edges * stride

    addresses = np.empty(total, dtype=np.int64)
    pcs = np.empty(total, dtype=np.int16)
    regions = np.empty(total, dtype=np.int8)

    # Vertex-Array load, first access of each vertex record.
    addresses[out_starts] = layout.vertex_index_addresses(vertices)
    pcs[out_starts] = PC_VERTEX_LOAD
    regions[out_starts] = REGION_VERTEX

    # Edge slice: destination = within-iteration edge position shifted by the
    # enclosing vertex's record start (one permutation, shared by the edge
    # reads and every edge-property gather via the stride pattern).
    if num_edges:
        scaled_counts = (counts * stride).astype(np.int64)
        shift = out_starts + 1 - edge_offsets[:-1]
        edge_dest = np.repeat(shift, scaled_counts) + np.arange(
            num_edges * stride, dtype=np.int64
        )
        edge_read_dest = edge_dest[0::stride]
        addresses[edge_read_dest] = layout.edge_addresses(edge_indices)
        pcs[edge_read_dest] = PC_EDGE_LOAD
        regions[edge_read_dest] = REGION_EDGE
        for array_index in range(edge_property_count):
            gather_dest = edge_dest[array_index + 1 :: stride]
            addresses[gather_dest] = layout.edge_property_addresses(
                array_index, neighbours
            )
            pcs[gather_dest] = PC_PROPERTY_GATHER
            regions[gather_dest] = REGION_PROPERTY

    # Per-vertex property updates, after the vertex's own edge slice — and
    # therefore *before* the next vertex's Vertex-Array load, also when the
    # vertex has zero edges.
    update_base = out_starts + 1 + (counts * stride)
    for array_index in range(vertex_property_count):
        update_dest = update_base + array_index
        addresses[update_dest] = layout.vertex_property_addresses(array_index, vertices)
        pcs[update_dest] = PC_PROPERTY_UPDATE
        regions[update_dest] = REGION_PROPERTY

    return Trace(addresses=addresses, pcs=pcs, regions=regions)


# ---------------------------------------------------------------------------
# streaming (chunked) generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceChunk:
    """One bounded piece of an execution's reference stream.

    ``iteration`` and ``direction`` identify the application iteration the
    chunk belongs to; ``start`` is the chunk's offset in the concatenated
    execution stream, so consumers can reconstruct global access indices
    without materializing the stream.
    """

    trace: Trace
    iteration: int
    direction: str
    start: int

    def __len__(self) -> int:
        return len(self.trace)


def iteration_trace_length(
    graph: CSRGraph,
    layout: MemoryLayout,
    direction: str,
    frontier: Optional[np.ndarray] = None,
) -> int:
    """Length of an iteration's stream, without generating it."""
    vertices = _iteration_vertices(graph, direction, frontier)
    if vertices.size == 0 or graph.num_vertices == 0:
        return 0
    index = graph.in_index if direction == PULL else graph.out_index
    degrees = (index[vertices + 1] - index[vertices]).astype(np.int64)
    stride = 1 + len(layout.edge_property_arrays)
    per_vertex = 1 + len(layout.vertex_property_arrays)
    return int(degrees.sum() * stride + vertices.shape[0] * per_vertex)


def iter_iteration_trace_chunks(
    graph: CSRGraph,
    layout: MemoryLayout,
    direction: str,
    frontier: Optional[np.ndarray] = None,
    max_accesses: Optional[int] = None,
) -> Iterator[Trace]:
    """Yield one iteration's stream as access-bounded :class:`Trace` pieces.

    Chunks are cut at vertex-record boundaries, so their concatenation is
    bit-identical to the one-shot :func:`generate_iteration_trace` output.
    Every chunk holds at most ``max_accesses`` references unless a single
    vertex's record alone exceeds the budget (a chunk always advances by at
    least one vertex).  ``max_accesses=None`` yields the whole iteration as
    one chunk.
    """
    vertices = _iteration_vertices(graph, direction, frontier)
    if vertices.size == 0 or graph.num_vertices == 0:
        return
    if max_accesses is None:
        yield generate_iteration_trace(graph, layout, direction, vertices=vertices)
        return
    if max_accesses <= 0:
        raise ValueError("max_accesses must be positive")
    index = graph.in_index if direction == PULL else graph.out_index
    degrees = (index[vertices + 1] - index[vertices]).astype(np.int64)
    stride = 1 + len(layout.edge_property_arrays)
    per_vertex = 1 + len(layout.vertex_property_arrays)
    cumulative = np.cumsum(degrees * stride + per_vertex)
    start = 0
    consumed = 0
    num_vertices = int(vertices.shape[0])
    while start < num_vertices:
        end = int(np.searchsorted(cumulative, consumed + max_accesses, side="right"))
        if end <= start:
            end = start + 1
        yield generate_iteration_trace(
            graph, layout, direction, vertices=vertices[start:end]
        )
        consumed = int(cumulative[end - 1])
        start = end


def iter_execution_trace(
    graph: CSRGraph,
    layout: MemoryLayout,
    iterations: Sequence[IterationRecord],
    max_chunk_accesses: Optional[int] = None,
) -> Iterator[TraceChunk]:
    """Stream a full application execution as bounded :class:`TraceChunk` pieces.

    Every iteration of ``iterations`` (usually
    :attr:`~repro.analytics.base.AppResult.iterations`) contributes its own
    direction and frontier, so multi-iteration effects — warmup, push/pull
    direction switches, frontier evolution — appear in the stream exactly as
    the application executed them.  Concatenating the chunks' traces equals
    :func:`generate_execution_trace` bit for bit; peak memory is bounded by
    ``max_chunk_accesses`` (plus one vertex record), independent of the
    execution's total length.
    """
    start = 0
    for record in iterations:
        for trace in iter_iteration_trace_chunks(
            graph,
            layout,
            record.direction,
            frontier=record.frontier,
            max_accesses=max_chunk_accesses,
        ):
            if len(trace) == 0:
                continue
            yield TraceChunk(
                trace=trace,
                iteration=record.index,
                direction=record.direction,
                start=start,
            )
            start += len(trace)


def generate_execution_trace(
    graph: CSRGraph,
    layout: MemoryLayout,
    iterations: Sequence[IterationRecord],
) -> Trace:
    """One-shot reference stream of a full execution (all iterations).

    The materialized counterpart of :func:`iter_execution_trace`, used by the
    equivalence tests and small workloads; large executions should stream.
    """
    chunks = [
        generate_iteration_trace(
            graph, layout, record.direction, frontier=record.frontier
        )
        for record in iterations
    ]
    chunks = [chunk for chunk in chunks if len(chunk)]
    if not chunks:
        return _empty_trace()
    return Trace(
        addresses=np.concatenate([chunk.addresses for chunk in chunks]),
        pcs=np.concatenate([chunk.pcs for chunk in chunks]),
        regions=np.concatenate([chunk.regions for chunk in chunks]),
    )
