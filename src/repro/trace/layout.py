"""Virtual-memory layout of the graph data structures.

The layout mirrors a CSR-based graph framework's allocations (Sec. II-B of
the paper): a Vertex Array of indices, an Edge Array of neighbour IDs and one
or more Property Arrays holding per-vertex state.  Each array is placed on
its own page-aligned extent so the Property-Array bounds can be handed to
GRASP's Address Bound Registers exactly as the instrumented Ligra
applications do in the paper (Sec. IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analytics.base import AccessProfile
from repro.graph.csr import CSRGraph

#: Memory-region labels attached to every traced access (Fig. 2 breakdown).
REGION_VERTEX = 0
REGION_EDGE = 1
REGION_PROPERTY = 2
REGION_OTHER = 3

REGION_NAMES = {
    REGION_VERTEX: "vertex-array",
    REGION_EDGE: "edge-array",
    REGION_PROPERTY: "property-array",
    REGION_OTHER: "other",
}

#: Synthetic program-counter values.  Graph kernels touch hot and cold
#: vertices from the *same* loads, so a single PC covers all Property-Array
#: gathers — the very fact that defeats PC-correlated predictors (Sec. II-F).
PC_VERTEX_LOAD = 0x400
PC_EDGE_LOAD = 0x404
PC_PROPERTY_GATHER = 0x408
PC_PROPERTY_UPDATE = 0x40C

#: Page size used to align array bases.
PAGE_BYTES = 4096

#: Bytes per Vertex-Array (offsets) and Edge-Array (neighbour IDs) entry.
VERTEX_ENTRY_BYTES = 8
EDGE_ENTRY_BYTES = 8


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class ArrayExtent:
    """One allocated array: ``[base, base + size_bytes)``."""

    name: str
    base: int
    element_bytes: int
    num_elements: int

    @property
    def size_bytes(self) -> int:
        """Total size of the array."""
        return self.element_bytes * self.num_elements

    @property
    def end(self) -> int:
        """One past the last byte of the array."""
        return self.base + self.size_bytes

    def addresses(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised element-index → byte-address translation."""
        return self.base + np.asarray(indices, dtype=np.int64) * self.element_bytes


class MemoryLayout:
    """Address-space layout for one (graph, access-profile) pair.

    Parameters
    ----------
    graph:
        The (already reordered) graph being processed.
    profile:
        The application's access profile; one Property Array extent is
        allocated per edge-indexed property plus one per vertex-indexed
        property.
    base_address:
        Where the first array is placed.
    """

    def __init__(self, graph: CSRGraph, profile: AccessProfile, base_address: int = 0x10_0000) -> None:
        self.graph = graph
        self.profile = profile
        n, m = graph.num_vertices, graph.num_edges
        cursor = base_address

        def place(name: str, element_bytes: int, num_elements: int) -> ArrayExtent:
            nonlocal cursor
            extent = ArrayExtent(name, cursor, element_bytes, num_elements)
            cursor = _align_up(extent.end, PAGE_BYTES)
            return extent

        self.vertex_array = place("vertex-index", VERTEX_ENTRY_BYTES, n + 1)
        self.edge_array = place("edge-array", EDGE_ENTRY_BYTES, max(1, m))
        self.edge_property_arrays: List[ArrayExtent] = [
            place(spec.name, spec.element_bytes, n) for spec in profile.edge_properties
        ]
        self.vertex_property_arrays: List[ArrayExtent] = [
            place(spec.name, spec.element_bytes, n) for spec in profile.vertex_properties
        ]
        self.end_address = cursor

    # -- GRASP interface --------------------------------------------------------

    def property_array_bounds(self) -> List[Tuple[int, int]]:
        """Bounds of the reuse-rich Property Arrays, for ABR configuration.

        Only the arrays indexed by the *neighbour* vertex on each edge (the
        irregular, reuse-carrying accesses) are registered — these are the
        arrays the paper instruments (at most two per application).
        """
        return [(extent.base, extent.end) for extent in self.edge_property_arrays]

    # -- address helpers --------------------------------------------------------

    def vertex_index_addresses(self, vertices: np.ndarray) -> np.ndarray:
        """Addresses of Vertex-Array entries for the given vertices."""
        return self.vertex_array.addresses(vertices)

    def edge_addresses(self, edge_indices: np.ndarray) -> np.ndarray:
        """Addresses of Edge-Array entries for the given edge indices."""
        return self.edge_array.addresses(edge_indices)

    def edge_property_addresses(self, array_index: int, vertices: np.ndarray) -> np.ndarray:
        """Addresses of the ``array_index``-th edge-indexed Property Array."""
        return self.edge_property_arrays[array_index].addresses(vertices)

    def vertex_property_addresses(self, array_index: int, vertices: np.ndarray) -> np.ndarray:
        """Addresses of the ``array_index``-th vertex-indexed Property Array."""
        return self.vertex_property_arrays[array_index].addresses(vertices)

    def region_of(self, addresses: np.ndarray) -> np.ndarray:
        """Classify byte addresses into layout regions (for analysis only)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        regions = np.full(addresses.shape, REGION_OTHER, dtype=np.int8)
        regions[(addresses >= self.vertex_array.base) & (addresses < self.vertex_array.end)] = REGION_VERTEX
        regions[(addresses >= self.edge_array.base) & (addresses < self.edge_array.end)] = REGION_EDGE
        for extent in (*self.edge_property_arrays, *self.vertex_property_arrays):
            regions[(addresses >= extent.base) & (addresses < extent.end)] = REGION_PROPERTY
        return regions

    def describe(self) -> Dict[str, Tuple[int, int]]:
        """Mapping of array name to (base, end) — used by reports and tests."""
        layout = {
            self.vertex_array.name: (self.vertex_array.base, self.vertex_array.end),
            self.edge_array.name: (self.edge_array.base, self.edge_array.end),
        }
        for extent in (*self.edge_property_arrays, *self.vertex_property_arrays):
            layout[extent.name] = (extent.base, extent.end)
        return layout

    @property
    def total_footprint_bytes(self) -> int:
        """Total bytes spanned by all arrays (including alignment padding)."""
        return self.end_address - self.vertex_array.base
