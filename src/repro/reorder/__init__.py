"""Vertex-reordering techniques (Sec. II-E and IV-B of the paper).

Skew-aware reordering segregates hot (high-degree) vertices into a contiguous
region at the low end of the vertex-ID space, which GRASP's Address Bound
Register interface then exploits.  This subpackage implements the four
techniques the paper evaluates plus an identity baseline:

* :class:`IdentityReordering` — no reordering (the "Original" baseline).
* :class:`SortReordering` — full descending-degree sort.
* :class:`HubSortReordering` — sort only the hot vertices; preserve the
  relative order of cold vertices (HubSort, Zhang et al.).
* :class:`DBGReordering` — Degree-Based Grouping (Faldu et al., IISWC'19):
  coarse degree groups, original order preserved within each group.
* :class:`GorderReordering` — a windowed greedy approximation of Gorder
  (Wei et al., SIGMOD'16), the expensive structure-aware technique.
"""

from repro.reorder.base import ReorderingTechnique, ReorderResult, get_technique, list_techniques
from repro.reorder.dbg import DBGReordering
from repro.reorder.gorder import GorderReordering
from repro.reorder.hubsort import HubSortReordering
from repro.reorder.identity import IdentityReordering
from repro.reorder.sort import SortReordering

__all__ = [
    "DBGReordering",
    "GorderReordering",
    "HubSortReordering",
    "IdentityReordering",
    "ReorderResult",
    "ReorderingTechnique",
    "SortReordering",
    "get_technique",
    "list_techniques",
]
