"""Common interface for vertex-reordering techniques."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Type

import numpy as np

from repro.graph.csr import CSRGraph, VERTEX_DTYPE


def select_degrees(graph: CSRGraph, degree_source: str) -> np.ndarray:
    """Return the degree array a reordering technique should rank by.

    ``degree_source`` is one of ``"out"``, ``"in"`` or ``"total"``.  Pull-based
    applications reuse Property Array elements proportionally to *out*-degree
    and push-based applications proportionally to *in*-degree (Sec. II-C), so
    experiments pick the source matching the traversal direction.
    """
    if degree_source == "out":
        return graph.out_degrees
    if degree_source == "in":
        return graph.in_degrees
    if degree_source == "total":
        return graph.out_degrees + graph.in_degrees
    raise ValueError(f"unknown degree_source {degree_source!r}; use 'out', 'in' or 'total'")


@dataclass
class ReorderResult:
    """Outcome of applying a reordering technique to a graph.

    Attributes
    ----------
    graph:
        The relabelled graph (vertex ``v`` of the original graph is vertex
        ``permutation[v]`` in this graph).
    permutation:
        ``new_id[old_id]`` mapping.
    technique:
        Name of the technique that produced the ordering.
    operations:
        Abstract operation count of the reordering pass, consumed by the
        reordering cost model (Fig. 10a).
    """

    graph: CSRGraph
    permutation: np.ndarray
    technique: str
    operations: float

    @property
    def inverse_permutation(self) -> np.ndarray:
        """``old_id[new_id]`` mapping (the order in which old IDs are laid out)."""
        inverse = np.empty_like(self.permutation)
        inverse[self.permutation] = np.arange(self.permutation.shape[0], dtype=VERTEX_DTYPE)
        return inverse


class ReorderingTechnique(abc.ABC):
    """Base class for vertex-reordering techniques.

    Subclasses implement :meth:`compute_permutation`; :meth:`apply` relabels
    the graph and attaches an operation count for the cost model.
    """

    #: Short name used in experiment configs and reports.
    name: str = "base"
    #: Whether the technique guarantees hot vertices occupy a contiguous
    #: low-ID prefix (required for GRASP's region classification to be exact).
    segregates_hot_vertices: bool = True

    def __init__(self, degree_source: str = "out") -> None:
        self.degree_source = degree_source

    @abc.abstractmethod
    def compute_permutation(self, graph: CSRGraph) -> np.ndarray:
        """Return the ``new_id[old_id]`` permutation for ``graph``."""

    def estimated_operations(self, graph: CSRGraph) -> float:
        """Abstract operation count of one reordering pass.

        The default models a linear pass over vertices and the edge relabel;
        subclasses override to reflect their own complexity.
        """
        return float(graph.num_vertices + 2 * graph.num_edges)

    def apply(self, graph: CSRGraph) -> ReorderResult:
        """Relabel ``graph`` according to this technique."""
        permutation = self.compute_permutation(graph)
        relabelled = graph.relabel(permutation, name=graph.name)
        return ReorderResult(
            graph=relabelled,
            permutation=permutation,
            technique=self.name,
            operations=self.estimated_operations(graph),
        )

    @staticmethod
    def permutation_from_order(order: np.ndarray) -> np.ndarray:
        """Convert an ordering (``order[i]`` = old ID placed at position ``i``)
        into a ``new_id[old_id]`` permutation."""
        order = np.asarray(order, dtype=VERTEX_DTYPE)
        permutation = np.empty_like(order)
        permutation[order] = np.arange(order.shape[0], dtype=VERTEX_DTYPE)
        return permutation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(degree_source={self.degree_source!r})"


_TECHNIQUES: Dict[str, Type[ReorderingTechnique]] = {}


def register_technique(cls: Type[ReorderingTechnique]) -> Type[ReorderingTechnique]:
    """Class decorator adding a technique to the global registry."""
    _TECHNIQUES[cls.name] = cls
    return cls


def list_techniques() -> List[str]:
    """Names of all registered reordering techniques."""
    return sorted(_TECHNIQUES)


def get_technique(name: str, degree_source: str = "out", **kwargs) -> ReorderingTechnique:
    """Instantiate a registered technique by name."""
    try:
        cls = _TECHNIQUES[name]
    except KeyError:
        raise KeyError(
            f"unknown reordering technique {name!r}; available: {', '.join(list_techniques())}"
        ) from None
    return cls(degree_source=degree_source, **kwargs)
