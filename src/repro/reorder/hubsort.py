"""HubSort (Zhang et al., "Making Caches Work for Graph Analytics")."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.reorder.base import ReorderingTechnique, register_technique, select_degrees


@register_technique
class HubSortReordering(ReorderingTechnique):
    """Sort only the hot vertices; cold vertices keep their relative order.

    Hot vertices (degree >= average) are assigned the contiguous low ID range
    ``[0, num_hot)`` in descending-degree order; the remaining vertices fill
    ``[num_hot, n)`` preserving the original order, which retains part of the
    community structure for the cold majority.
    """

    name = "hubsort"
    segregates_hot_vertices = True

    def compute_permutation(self, graph: CSRGraph) -> np.ndarray:
        degrees = select_degrees(graph, self.degree_source)
        threshold = degrees.mean() if degrees.size else 0.0
        hot = np.flatnonzero(degrees >= threshold)
        cold = np.flatnonzero(degrees < threshold)
        hot_sorted = hot[np.argsort(-degrees[hot], kind="stable")]
        order = np.concatenate([hot_sorted, cold])
        return self.permutation_from_order(order)

    def estimated_operations(self, graph: CSRGraph) -> float:
        degrees = select_degrees(graph, self.degree_source)
        num_hot = max(2, int((degrees >= degrees.mean()).sum())) if degrees.size else 2
        # Partition pass over all vertices, sort over the hot subset, relabel.
        return float(graph.num_vertices + num_hot * np.log2(num_hot) + 2 * graph.num_edges)
