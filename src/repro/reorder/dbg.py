"""Degree-Based Grouping (Faldu et al., IISWC 2019) — the paper's DBG."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.reorder.base import ReorderingTechnique, register_technique, select_degrees


@register_technique
class DBGReordering(ReorderingTechnique):
    """Coarse degree grouping that avoids sorting entirely.

    Vertices are partitioned into a small number of groups whose boundaries
    are geometric multiples of the average degree.  Groups are laid out from
    hottest to coldest, and the *original* vertex order is preserved inside
    every group — this is what lets DBG retain community structure while
    still packing hot vertices into a contiguous low-ID region.

    Parameters
    ----------
    num_groups:
        Number of degree groups (the DBG paper uses 8).
    degree_source:
        Which degree distribution to group by (``"out"``, ``"in"``, ``"total"``).
    """

    name = "dbg"
    segregates_hot_vertices = True

    def __init__(self, degree_source: str = "out", num_groups: int = 8) -> None:
        super().__init__(degree_source=degree_source)
        if num_groups < 2:
            raise ValueError("DBG needs at least two degree groups")
        self.num_groups = num_groups

    def group_thresholds(self, average_degree: float) -> np.ndarray:
        """Lower degree bound of every group, hottest group first.

        With ``num_groups = 8`` and average degree ``d`` the thresholds are
        ``[64d, 32d, 16d, 8d, 4d, 2d, d, 0]`` — the hottest group holds
        vertices with degree >= 64d and the coldest holds degree < d, so the
        hot/cold boundary of the paper (average degree) coincides with a
        group boundary.
        """
        exponents = np.arange(self.num_groups - 2, -2, -1, dtype=np.float64)
        thresholds = average_degree * np.power(2.0, exponents)
        thresholds[-1] = 0.0
        return thresholds

    def compute_permutation(self, graph: CSRGraph) -> np.ndarray:
        degrees = select_degrees(graph, self.degree_source)
        average = degrees.mean() if degrees.size else 0.0
        thresholds = self.group_thresholds(float(average))
        # group_of[v] = index of the first (hottest) group whose threshold the
        # vertex meets.  np.searchsorted needs an ascending array, so flip.
        ascending = thresholds[::-1]
        group_from_cold = np.searchsorted(ascending, degrees, side="right") - 1
        group_of = (self.num_groups - 1) - group_from_cold
        # Stable sort by group index keeps the original order inside a group.
        order = np.argsort(group_of, kind="stable")
        return self.permutation_from_order(order)

    def estimated_operations(self, graph: CSRGraph) -> float:
        # Two linear passes over the vertices (grouping + placement) and the
        # edge relabel; no sorting.
        return float(2 * graph.num_vertices + 2 * graph.num_edges)
