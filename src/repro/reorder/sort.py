"""Full degree sort (the paper's "Sort" technique)."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.reorder.base import ReorderingTechnique, register_technique, select_degrees


@register_technique
class SortReordering(ReorderingTechnique):
    """Sort all vertices by descending degree.

    The hottest vertex becomes vertex 0, giving perfect segregation of hot
    vertices but completely destroying any community structure present in the
    original ordering — the trade-off the DBG paper highlights.
    """

    name = "sort"
    segregates_hot_vertices = True

    def compute_permutation(self, graph: CSRGraph) -> np.ndarray:
        degrees = select_degrees(graph, self.degree_source)
        # Stable sort so equal-degree vertices keep their original order.
        order = np.argsort(-degrees, kind="stable")
        return self.permutation_from_order(order)

    def estimated_operations(self, graph: CSRGraph) -> float:
        n = max(2, graph.num_vertices)
        # Comparison sort over all vertices plus the edge-array relabel pass.
        return float(n * np.log2(n) + 2 * graph.num_edges)
