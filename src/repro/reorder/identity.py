"""Identity (no-op) reordering — the paper's "Original ordering" baseline."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.reorder.base import ReorderingTechnique, register_technique


@register_technique
class IdentityReordering(ReorderingTechnique):
    """Keep the original vertex order.

    Hot vertices are *not* segregated, so GRASP's region classification is
    only approximate on identity-ordered graphs; the paper always pairs GRASP
    with a skew-aware technique.
    """

    name = "identity"
    segregates_hot_vertices = False

    def compute_permutation(self, graph: CSRGraph) -> np.ndarray:
        return np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)

    def estimated_operations(self, graph: CSRGraph) -> float:
        return 0.0
