"""A windowed greedy approximation of Gorder (Wei et al., SIGMOD 2016).

Gorder places vertices so that vertices accessed together (sharing in-
neighbours or directly connected) end up within a sliding window ``w`` of
each other.  The published algorithm maintains a priority queue of candidate
vertices scored against the last ``w`` placed vertices.  This module
implements that greedy loop with a simplified score (direct adjacency to the
window plus shared in-neighbour count through a sampled neighbourhood), which
retains both the qualitative behaviour — excellent locality, very expensive
to compute — and the asymptotic cost ``O(n · w · d̄)`` that makes Gorder
impractical as an online optimization (Fig. 10a).

Gorder does not, by itself, segregate hot vertices; the paper makes it
GRASP-compatible by running DBG on top of the Gorder ordering
(Sec. V-C), which :class:`GorderReordering` exposes via ``dbg_refinement``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.reorder.base import ReorderingTechnique, register_technique, select_degrees
from repro.reorder.dbg import DBGReordering


@register_technique
class GorderReordering(ReorderingTechnique):
    """Greedy window-based ordering maximizing neighbourhood affinity.

    Parameters
    ----------
    window:
        Sliding-window size (the Gorder paper uses 5).
    dbg_refinement:
        Apply DBG on top of the Gorder ordering so hot vertices end up in a
        contiguous prefix, as the paper does when combining Gorder with GRASP.
    degree_source:
        Degree used for tie-breaking and for the DBG refinement.
    """

    name = "gorder"

    def __init__(
        self,
        degree_source: str = "out",
        window: int = 5,
        dbg_refinement: bool = False,
    ) -> None:
        super().__init__(degree_source=degree_source)
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self.dbg_refinement = dbg_refinement

    @property
    def segregates_hot_vertices(self) -> bool:  # type: ignore[override]
        return self.dbg_refinement

    def compute_permutation(self, graph: CSRGraph) -> np.ndarray:
        order = self._greedy_order(graph)
        permutation = self.permutation_from_order(order)
        if self.dbg_refinement:
            reordered = graph.relabel(permutation)
            refinement = DBGReordering(degree_source=self.degree_source).compute_permutation(
                reordered
            )
            permutation = refinement[permutation]
        return permutation

    def _greedy_order(self, graph: CSRGraph) -> np.ndarray:
        n = graph.num_vertices
        if n == 0:
            return np.empty(0, dtype=VERTEX_DTYPE)
        degrees = select_degrees(graph, self.degree_source)
        placed = np.zeros(n, dtype=bool)
        # score[v] = affinity of unplaced vertex v to the current window.
        score = np.zeros(n, dtype=np.int64)
        order = np.empty(n, dtype=VERTEX_DTYPE)
        window: list[int] = []

        # Start from the highest-degree vertex, as the Gorder implementation does.
        current = int(np.argmax(degrees))
        for position in range(n):
            order[position] = current
            placed[current] = True

            # The new window member contributes affinity to its neighbours.
            for neighbor in np.concatenate(
                (graph.out_neighbors(current), graph.in_neighbors(current))
            ):
                if not placed[neighbor]:
                    score[neighbor] += 1

            window.append(current)
            if len(window) > self.window:
                expired = window.pop(0)
                for neighbor in np.concatenate(
                    (graph.out_neighbors(expired), graph.in_neighbors(expired))
                ):
                    if not placed[neighbor]:
                        score[neighbor] -= 1

            if position == n - 1:
                break
            # Pick the unplaced vertex with the best affinity; break ties by
            # degree so hubs are placed early, as the reference code does.
            combined = np.where(placed, -np.inf, score * float(n + 1) + degrees)
            best = int(np.argmax(combined))
            if score[best] <= 0:
                # No unplaced vertex touches the window: restart from the
                # highest-degree unplaced vertex (a new "community seed").
                remaining = np.flatnonzero(~placed)
                best = int(remaining[np.argmax(degrees[remaining])])
            current = best
        return order

    def estimated_operations(self, graph: CSRGraph) -> float:
        # Every placement updates priority-queue scores for the 2-hop
        # neighbourhood of the window (the dominant cost in the reference
        # implementation), hence the d̄² term that makes Gorder orders of
        # magnitude more expensive than the skew-aware techniques.
        n = graph.num_vertices
        d_avg = max(1.0, graph.average_degree)
        return float(n * self.window * d_avg * d_avg * 2.0 + 2 * graph.num_edges)
