"""Cache geometry configuration.

The paper's simulated system (Table VI) uses 32 KB L1-D, 256 KB L2 and a
16 MB 16-way LLC.  The Python reproduction scales every level down by the
same factor as the graph datasets (DESIGN.md Sec. 5) so that the ratio of
hot-vertex footprint to LLC capacity — the quantity GRASP's benefit depends
on — is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes
    ----------
    size_bytes:
        Total capacity in bytes.
    ways:
        Associativity.
    block_bytes:
        Cache block (line) size; 64 bytes throughout, as in the paper.
    name:
        Label used in statistics ("L1D", "L2", "LLC").
    """

    size_bytes: int
    ways: int
    block_bytes: int = 64
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.block_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        if not _is_power_of_two(self.block_bytes):
            raise ValueError("block_bytes must be a power of two")
        if self.size_bytes % (self.ways * self.block_bytes) != 0:
            raise ValueError(
                "size_bytes must be divisible by ways * block_bytes "
                f"({self.size_bytes} % {self.ways * self.block_bytes} != 0)"
            )
        if not _is_power_of_two(self.num_sets):
            raise ValueError("number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * self.block_bytes)

    @property
    def num_blocks(self) -> int:
        """Total number of cache blocks."""
        return self.size_bytes // self.block_bytes

    @property
    def block_offset_bits(self) -> int:
        """Number of address bits covered by the block offset."""
        return self.block_bytes.bit_length() - 1

    def block_address(self, address: int) -> int:
        """Return the block-aligned address (address without the offset bits)."""
        return address >> self.block_offset_bits

    def set_index(self, block_address: int) -> int:
        """Map a block address to its set index."""
        return block_address & (self.num_sets - 1)

    def scaled(self, factor: float, name: str | None = None) -> "CacheConfig":
        """Return a copy scaled to ``size_bytes * factor`` (rounded to a valid size)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        set_bytes = self.ways * self.block_bytes
        target_sets = max(1, int(round(self.num_sets * factor)))
        # Round to the nearest power of two so the index function stays a mask.
        rounded_sets = 1 << max(0, int(round(math.log2(target_sets))))
        return CacheConfig(
            size_bytes=rounded_sets * set_bytes,
            ways=self.ways,
            block_bytes=self.block_bytes,
            name=name or self.name,
        )


@dataclass(frozen=True)
class HierarchyConfig:
    """Three-level hierarchy configuration (L1-D, L2, LLC).

    The defaults scale the paper's Table VI configuration (32 KB L1-D,
    256 KB L2, 16 MB 16-way LLC) down to 1 KB / 4 KB / 16 KB, keeping the
    associativities and the relative ordering of the levels.  The LLC is
    deliberately a few times smaller than the scaled Property Arrays of the
    registry datasets so the "hot footprint exceeds the LLC" thrashing regime
    of the paper is preserved (DESIGN.md Sec. 5).
    """

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=1 * 1024, ways=4, name="L1D")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=4 * 1024, ways=8, name="L2")
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=16 * 1024, ways=16, name="LLC")
    )

    def __post_init__(self) -> None:
        if not (self.l1.size_bytes <= self.l2.size_bytes <= self.llc.size_bytes):
            raise ValueError("hierarchy must be inclusive-capacity ordered: L1 <= L2 <= LLC")
        if len({self.l1.block_bytes, self.l2.block_bytes, self.llc.block_bytes}) != 1:
            raise ValueError("all levels must share one block size")

    @property
    def block_bytes(self) -> int:
        """Common block size of the hierarchy."""
        return self.llc.block_bytes

    def with_llc_size(self, size_bytes: int) -> "HierarchyConfig":
        """Return a copy with a different LLC capacity (used for Table VII)."""
        return HierarchyConfig(
            l1=self.l1,
            l2=self.l2,
            llc=CacheConfig(
                size_bytes=size_bytes,
                ways=self.llc.ways,
                block_bytes=self.llc.block_bytes,
                name=self.llc.name,
            ),
        )


#: Default scaled hierarchy used by experiments and benchmarks.
DEFAULT_HIERARCHY = HierarchyConfig()
