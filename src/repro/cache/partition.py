"""Way partitioning for multi-programmed shared-LLC simulation.

A :class:`WayPartition` assigns every co-running stream a contiguous,
disjoint range of ways in each set — the way-partitioning QoS mechanism
real LLCs expose (e.g. Intel CAT).  :class:`PartitionedPolicy` is the single
implementation of partitioned replacement semantics: it clones the wrapped
policy once per stream and confines each clone to that stream's ways, so

* victim selection never leaves the requester's partition (no eviction can
  cross a partition boundary, by construction);
* RRPV ageing, recency stacks and pinned-way bookkeeping are scoped to the
  partition (one application's PIN-X pinning cannot saturate another's
  ways);
* learning state — DRRIP's PSEL duel, BRRIP's bimodal counter, SHiP's SHCT,
  Hawkeye's PC predictor and OPTgen samplers, Leeway's live-distance table —
  is per stream, exactly as if each application ran alone in a cache of its
  partition's associativity.

That last property is what makes the scalar and vector co-run paths provably
equivalent: a stream confined to ``c`` contiguous ways of every set behaves
bit-identically to the same policy bound to a standalone ``c``-way cache with
the same number of sets, so the vectorized engines replay each stream through
an independent per-stream engine (:mod:`repro.fastsim.corun`) while the
scalar reference uses this wrapper — and ``verify`` asserts they agree.

``partition=None`` everywhere reproduces today's single-policy behaviour
exactly: streams share one policy instance and contend freely.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Tuple

from repro.cache.policies.base import BYPASS, ReplacementPolicy


@dataclass(frozen=True)
class WayPartition:
    """Per-stream way counts, assigned as contiguous ranges in stream order.

    ``counts[k]`` ways belong to stream ``k``; stream 0 owns ways
    ``[0, counts[0])``, stream 1 the next ``counts[1]`` ways, and so on.
    The counts must cover the cache's associativity exactly — validated
    against the geometry at bind time via :meth:`validate_ways`.
    """

    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("a way partition needs at least one stream")
        if any(int(count) != count or count < 1 for count in self.counts):
            raise ValueError(
                f"every partition share must be a positive way count, got {self.counts}"
            )
        object.__setattr__(self, "counts", tuple(int(count) for count in self.counts))

    @classmethod
    def parse(cls, spec: str) -> "WayPartition":
        """Parse the CLI form ``"8:8"`` (colon-separated per-stream way counts)."""
        parts = [part.strip() for part in str(spec).split(":")]
        try:
            counts = tuple(int(part) for part in parts if part != "")
        except ValueError:
            raise ValueError(
                f"invalid way-partition spec {spec!r}; expected colon-separated "
                'way counts like "8:8"'
            ) from None
        if len(counts) != len(parts):
            raise ValueError(f"invalid way-partition spec {spec!r}: empty share")
        return cls(counts)

    @property
    def num_streams(self) -> int:
        """Number of co-running streams the partition provisions."""
        return len(self.counts)

    @property
    def total_ways(self) -> int:
        """Sum of all shares (must equal the cache's associativity)."""
        return sum(self.counts)

    def validate_ways(self, ways: int) -> None:
        """Raise unless the shares cover a ``ways``-way set exactly."""
        if self.total_ways != ways:
            raise ValueError(
                f"way partition {self} covers {self.total_ways} ways, "
                f"but the cache has {ways}"
            )

    def bounds(self, stream: int) -> Tuple[int, int]:
        """Half-open way range ``[lo, hi)`` owned by ``stream``."""
        if not 0 <= stream < len(self.counts):
            raise IndexError(
                f"stream {stream} out of range for a {len(self.counts)}-stream partition"
            )
        lo = sum(self.counts[:stream])
        return lo, lo + self.counts[stream]

    def allowed(self, stream: int) -> range:
        """Ways ``stream`` may allocate into (its victim-search domain)."""
        lo, hi = self.bounds(stream)
        return range(lo, hi)

    def owner_of(self, way: int) -> int:
        """Stream owning ``way`` (the inverse of :meth:`allowed`)."""
        remaining = way
        for stream, count in enumerate(self.counts):
            if remaining < count:
                return stream
            remaining -= count
        raise IndexError(f"way {way} beyond the partition's {self.total_ways} ways")

    def __str__(self) -> str:
        return ":".join(str(count) for count in self.counts)


class PartitionedPolicy(ReplacementPolicy):
    """Way-partitioned composite over per-stream clones of one policy.

    Wraps a freshly created template policy; :meth:`bind` deep-copies it once
    per stream and binds each clone to ``(num_sets, counts[k])``.  Hook calls
    are routed to the requesting stream's clone with the way index translated
    into the partition-local coordinate space, so every clone behaves exactly
    as if it ran alone in a cache of its partition's associativity.
    """

    supports_partition = True

    def __init__(self, template: ReplacementPolicy, partition: WayPartition) -> None:
        super().__init__()
        if isinstance(template, PartitionedPolicy):
            raise ValueError("cannot partition an already-partitioned policy")
        self.template = template
        self.partition = partition
        self.name = f"{template.name}@{partition}"
        self._subs: List[ReplacementPolicy] = []
        self._lo: List[int] = []

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        if partition is not None and partition != self.partition:
            raise ValueError(
                f"bound partition {partition} disagrees with the wrapper's "
                f"{self.partition}"
            )
        self.partition.validate_ways(ways)
        self.num_sets = num_sets
        self.ways = ways
        self._lo = [self.partition.bounds(k)[0] for k in range(self.partition.num_streams)]
        self._subs = []
        for count in self.partition.counts:
            sub = copy.deepcopy(self.template)
            sub.bind(num_sets, count)
            self._subs.append(sub)

    def sub_policy(self, stream: int) -> ReplacementPolicy:
        """The per-stream clone (tests inspect its predictor/pinning state)."""
        return self._subs[stream]

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        self._subs[stream].on_hit(
            set_index, way - self._lo[stream], block_address, pc, hint
        )

    def choose_victim(
        self, set_index: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> int:
        local = self._subs[stream].choose_victim(set_index, block_address, pc, hint)
        if local == BYPASS:
            return BYPASS
        return local + self._lo[stream]

    def on_insert(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        self._subs[stream].on_insert(
            set_index, way - self._lo[stream], block_address, pc, hint
        )

    def on_evict(self, set_index: int, way: int, block_address: int) -> None:
        # Victims are always chosen inside the requester's partition, so the
        # way's owner *is* the stream whose clone must observe the eviction.
        stream = self.partition.owner_of(way)
        self._subs[stream].on_evict(set_index, way - self._lo[stream], block_address)

    def reset(self) -> None:
        if self.num_sets:
            self.bind(self.num_sets, self.ways)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionedPolicy({self.template!r}, {self.partition})"
