"""A single set-associative cache driven by a pluggable replacement policy."""

from __future__ import annotations

from typing import Optional

from repro.cache.config import CacheConfig
from repro.cache.policies.base import BYPASS, ReplacementPolicy
from repro.cache.stats import CacheStats


class SetAssociativeCache:
    """Set-associative cache with pluggable replacement.

    The cache owns the tag array and the statistics; all replacement state
    lives inside the policy object.  Addresses are byte addresses; the cache
    reduces them to block addresses before consulting tags or the policy.
    """

    __slots__ = ("config", "policy", "stats", "_tags", "_num_sets", "_ways", "_offset_bits", "_set_mask")

    def __init__(self, config: CacheConfig, policy: ReplacementPolicy) -> None:
        self.config = config
        self.policy = policy
        self.stats = CacheStats(name=config.name)
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._offset_bits = config.block_offset_bits
        self._set_mask = self._num_sets - 1
        policy.bind(self._num_sets, self._ways)
        # -1 marks an invalid way.
        self._tags = [[-1] * self._ways for _ in range(self._num_sets)]

    # -- queries ---------------------------------------------------------------

    def contains(self, address: int) -> bool:
        """Whether the block holding ``address`` is currently resident."""
        block = address >> self._offset_bits
        return block in self._tags[block & self._set_mask]

    def resident_blocks(self) -> list[int]:
        """All resident block addresses (order unspecified); used by tests."""
        return [tag for ways in self._tags for tag in ways if tag != -1]

    # -- the access path ---------------------------------------------------------

    def access(self, address: int, pc: int = 0, hint: int = 0, region: Optional[int] = None) -> bool:
        """Perform one access; return ``True`` on a hit.

        ``pc`` is the (synthetic) program counter of the instruction making
        the access, ``hint`` the 2-bit GRASP reuse hint and ``region`` an
        optional label used only for statistics breakdowns (Fig. 2).
        """
        block = address >> self._offset_bits
        return self.access_block(block, pc, hint, region)

    def access_block(self, block: int, pc: int = 0, hint: int = 0, region: Optional[int] = None) -> bool:
        """Same as :meth:`access` but takes an already block-aligned address."""
        set_index = block & self._set_mask
        tags = self._tags[set_index]
        policy = self.policy
        try:
            way = tags.index(block)
        except ValueError:
            way = -1

        if way >= 0:
            self.stats.record(True, region)
            policy.on_hit(set_index, way, block, pc, hint)
            return True

        self.stats.record(False, region)
        try:
            way = tags.index(-1)
        except ValueError:
            way = policy.choose_victim(set_index, block, pc, hint)
            if way == BYPASS:
                self.stats.bypasses += 1
                return False
            policy.on_evict(set_index, way, tags[way])
            self.stats.evictions += 1
        tags[way] = block
        policy.on_insert(set_index, way, block, pc, hint)
        return False

    def reset(self) -> None:
        """Invalidate all blocks and clear statistics and policy state."""
        self._tags = [[-1] * self._ways for _ in range(self._num_sets)]
        self.stats = CacheStats(name=self.config.name)
        self.policy.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self.config.name}: {self.config.size_bytes} B, "
            f"{self._ways}-way, policy={self.policy.name})"
        )
