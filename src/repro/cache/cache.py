"""A single set-associative cache driven by a pluggable replacement policy."""

from __future__ import annotations

from typing import Optional

from repro.cache.config import CacheConfig
from repro.cache.policies.base import BYPASS, ReplacementPolicy
from repro.cache.stats import CacheStats


class SetAssociativeCache:
    """Set-associative cache with pluggable replacement.

    The cache owns the tag array and the statistics; all replacement state
    lives inside the policy object.  Addresses are byte addresses; the cache
    reduces them to block addresses before consulting tags or the policy.

    Multi-programmed (co-run) operation: pass ``track_streams=True`` to
    attribute every access to the ``stream`` given to :meth:`access` /
    :meth:`access_block`, and optionally a
    :class:`~repro.cache.partition.WayPartition` to confine each stream to
    its own contiguous ways.  A partition implies stream tracking; a policy
    that does not support partitioning natively is wrapped in
    :class:`~repro.cache.partition.PartitionedPolicy` automatically.  With
    neither, the access path is unchanged from single-programmed operation —
    policies are called with the legacy five-argument hook form, so external
    policy subclasses written before stream identity keep working.
    """

    __slots__ = (
        "config", "policy", "stats", "_tags", "_num_sets", "_ways",
        "_offset_bits", "_set_mask", "_partition", "_track_streams",
    )

    def __init__(
        self,
        config: CacheConfig,
        policy: ReplacementPolicy,
        partition=None,
        track_streams: bool = False,
    ) -> None:
        self.config = config
        self._partition = partition
        self._track_streams = track_streams or partition is not None
        if partition is not None:
            partition.validate_ways(config.ways)
            if not policy.supports_partition:
                from repro.cache.partition import PartitionedPolicy

                policy = PartitionedPolicy(policy, partition)
        self.policy = policy
        self.stats = CacheStats(name=config.name)
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._offset_bits = config.block_offset_bits
        self._set_mask = self._num_sets - 1
        if partition is not None:
            policy.bind(self._num_sets, self._ways, partition)
        else:
            policy.bind(self._num_sets, self._ways)
        # -1 marks an invalid way.
        self._tags = [[-1] * self._ways for _ in range(self._num_sets)]

    # -- queries ---------------------------------------------------------------

    @property
    def partition(self):
        """The bound :class:`~repro.cache.partition.WayPartition`, if any."""
        return self._partition

    def contains(self, address: int) -> bool:
        """Whether the block holding ``address`` is currently resident."""
        block = address >> self._offset_bits
        return block in self._tags[block & self._set_mask]

    def resident_blocks(self) -> list[int]:
        """All resident block addresses (order unspecified); used by tests."""
        return [tag for ways in self._tags for tag in ways if tag != -1]

    def resident_blocks_by_way(self) -> list[tuple[int, int, int]]:
        """``(set_index, way, block)`` for every resident block; used by tests."""
        return [
            (set_index, way, tag)
            for set_index, ways in enumerate(self._tags)
            for way, tag in enumerate(ways)
            if tag != -1
        ]

    # -- the access path ---------------------------------------------------------

    def access(
        self,
        address: int,
        pc: int = 0,
        hint: int = 0,
        region: Optional[int] = None,
        stream: int = 0,
    ) -> bool:
        """Perform one access; return ``True`` on a hit.

        ``pc`` is the (synthetic) program counter of the instruction making
        the access, ``hint`` the 2-bit GRASP reuse hint, ``region`` an
        optional label used only for statistics breakdowns (Fig. 2) and
        ``stream`` the requesting co-run stream (ignored unless the cache
        tracks streams).
        """
        block = address >> self._offset_bits
        return self.access_block(block, pc, hint, region, stream)

    def access_block(
        self,
        block: int,
        pc: int = 0,
        hint: int = 0,
        region: Optional[int] = None,
        stream: int = 0,
    ) -> bool:
        """Same as :meth:`access` but takes an already block-aligned address."""
        set_index = block & self._set_mask
        tags = self._tags[set_index]
        policy = self.policy

        if not self._track_streams:
            # Single-programmed fast path: byte-identical to the pre-co-run
            # cache, including the five-argument policy hook calls (external
            # policy subclasses may not accept a stream argument).
            try:
                way = tags.index(block)
            except ValueError:
                way = -1
            if way >= 0:
                self.stats.record(True, region)
                policy.on_hit(set_index, way, block, pc, hint)
                return True
            self.stats.record(False, region)
            try:
                way = tags.index(-1)
            except ValueError:
                way = policy.choose_victim(set_index, block, pc, hint)
                if way == BYPASS:
                    self.stats.record_bypass()
                    return False
                policy.on_evict(set_index, way, tags[way])
                self.stats.evictions += 1
            tags[way] = block
            policy.on_insert(set_index, way, block, pc, hint)
            return False

        try:
            way = tags.index(block)
        except ValueError:
            way = -1
        if way >= 0:
            self.stats.record(True, region, stream)
            policy.on_hit(set_index, way, block, pc, hint, stream)
            return True

        self.stats.record(False, region, stream)
        way = self._free_way(tags, stream)
        if way < 0:
            way = policy.choose_victim(set_index, block, pc, hint, stream)
            if way == BYPASS:
                self.stats.record_bypass(stream)
                return False
            policy.on_evict(set_index, way, tags[way])
            self.stats.evictions += 1
        tags[way] = block
        policy.on_insert(set_index, way, block, pc, hint, stream)
        return False

    def _free_way(self, tags: list, stream: int) -> int:
        """First invalid way the requesting stream may allocate into, or -1."""
        if self._partition is None:
            try:
                return tags.index(-1)
            except ValueError:
                return -1
        for way in self._partition.allowed(stream):
            if tags[way] == -1:
                return way
        return -1

    def reset(self) -> None:
        """Invalidate all blocks and clear statistics and policy state."""
        self._tags = [[-1] * self._ways for _ in range(self._num_sets)]
        self.stats = CacheStats(name=self.config.name)
        self.policy.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self.config.name}: {self.config.size_bytes} B, "
            f"{self._ways}-way, policy={self.policy.name})"
        )
