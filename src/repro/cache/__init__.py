"""Trace-driven cache simulator.

This subpackage models the on-chip cache hierarchy the paper simulates with
Sniper (Table VI): private L1-D and L2 filters in front of a shared
last-level cache whose replacement policy is the subject of the study.

* :class:`~repro.cache.config.CacheConfig` / :class:`~repro.cache.config.HierarchyConfig`
  — geometry of each level (scaled down per DESIGN.md Sec. 5).
* :class:`~repro.cache.cache.SetAssociativeCache` — a single set-associative
  cache driven by a pluggable :class:`~repro.cache.policies.base.ReplacementPolicy`.
* :class:`~repro.cache.hierarchy.CacheHierarchy` — L1 → L2 → LLC lookup path
  with per-level statistics.
* :mod:`~repro.cache.policies` — every replacement scheme the paper
  evaluates: LRU, SRRIP/BRRIP/DRRIP, SHiP-MEM, Hawkeye, Leeway, XMem-style
  pinning and Belady's OPT.
"""

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.partition import PartitionedPolicy, WayPartition
from repro.cache.stats import CacheStats

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyConfig",
    "PartitionedPolicy",
    "SetAssociativeCache",
    "WayPartition",
]
