"""Three-level cache hierarchy (L1-D → L2 → LLC).

The filter levels always use LRU, as in the simulated system of the paper
(Table VI); the LLC takes the replacement policy under study.  The hierarchy
is non-inclusive and only models reads — graph-analytics property updates are
read-modify-write on the same block, so modelling the read stream captures
the residency behaviour that drives the paper's results.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import HierarchyConfig
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.lru import LRUPolicy


#: Symbolic names for the level where an access was satisfied.
LEVEL_L1 = "l1"
LEVEL_L2 = "l2"
LEVEL_LLC = "llc"
LEVEL_MEMORY = "memory"


class CacheHierarchy:
    """L1-D, L2 and LLC connected in a look-through configuration."""

    def __init__(self, config: HierarchyConfig, llc_policy: ReplacementPolicy) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1, LRUPolicy())
        self.l2 = SetAssociativeCache(config.l2, LRUPolicy())
        self.llc = SetAssociativeCache(config.llc, llc_policy)

    def access(self, address: int, pc: int = 0, hint: int = 0, region: Optional[int] = None) -> str:
        """Look up ``address``; return the level that provided the data."""
        if self.l1.access(address, pc, hint, region):
            return LEVEL_L1
        if self.l2.access(address, pc, hint, region):
            return LEVEL_L2
        if self.llc.access(address, pc, hint, region):
            return LEVEL_LLC
        return LEVEL_MEMORY

    def filters_only(self, address: int, pc: int = 0) -> bool:
        """Run only the L1/L2 filters; return ``True`` when the access would
        reach the LLC.  Used by the experiment runner to build an LLC access
        trace once and replay it under many LLC policies."""
        if self.l1.access(address, pc):
            return False
        if self.l2.access(address, pc):
            return False
        return True

    @property
    def llc_stats(self):
        """Statistics of the LLC level."""
        return self.llc.stats

    def reset(self) -> None:
        """Reset all three levels."""
        self.l1.reset()
        self.l2.reset()
        self.llc.reset()
