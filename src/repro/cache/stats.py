"""Cache statistics counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level.

    ``region_accesses`` / ``region_misses`` break the totals down by the
    memory-region label carried with each access (Property Array, Edge Array,
    ...), which is what Fig. 2 of the paper reports.

    BYPASS semantics: a bypassed insertion (a policy returning
    :data:`~repro.cache.policies.base.BYPASS`, e.g. PIN-100 with every way of
    a full set pinned) is counted **inside** ``misses`` and additionally in
    ``bypasses``.  ``hits + misses`` therefore always equals ``accesses``,
    and ``evictions`` excludes bypassed insertions (nothing was displaced).
    Both simulation backends follow this accounting and the ``verify``
    backend asserts it.
    """

    name: str = "cache"
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    region_accesses: Dict[int, int] = field(default_factory=dict)
    region_misses: Dict[int, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when there were no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits per access (0 when there were no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @classmethod
    def from_counts(
        cls,
        name: str,
        hits: int,
        misses: int,
        evictions: int = 0,
        bypasses: int = 0,
        region_accesses: Optional[Mapping[int, int]] = None,
        region_misses: Optional[Mapping[int, int]] = None,
    ) -> "CacheStats":
        """Build statistics from aggregate counters.

        This is the vectorized stats path: the fast simulator derives whole
        counters (and per-region breakdowns, via ``np.bincount``) from array
        reductions instead of calling :meth:`record` once per access.
        """
        stats = cls(
            name=name,
            accesses=int(hits) + int(misses),
            hits=int(hits),
            misses=int(misses),
            evictions=int(evictions),
            bypasses=int(bypasses),
        )
        if region_accesses:
            stats.region_accesses.update({int(k): int(v) for k, v in region_accesses.items()})
        if region_misses:
            stats.region_misses.update({int(k): int(v) for k, v in region_misses.items()})
        return stats

    def record(self, hit: bool, region: int | None = None) -> None:
        """Record one access outcome."""
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if region is not None:
            self.region_accesses[region] = self.region_accesses.get(region, 0) + 1
            if not hit:
                self.region_misses[region] = self.region_misses.get(region, 0) + 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new :class:`CacheStats` combining two counters."""
        merged = CacheStats(name=self.name)
        merged.accesses = self.accesses + other.accesses
        merged.hits = self.hits + other.hits
        merged.misses = self.misses + other.misses
        merged.evictions = self.evictions + other.evictions
        merged.bypasses = self.bypasses + other.bypasses
        for source in (self.region_accesses, other.region_accesses):
            for region, count in source.items():
                merged.region_accesses[region] = merged.region_accesses.get(region, 0) + count
        for source in (self.region_misses, other.region_misses):
            for region, count in source.items():
                merged.region_misses[region] = merged.region_misses.get(region, 0) + count
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view used by reports."""
        return {
            "name": self.name,
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": round(self.miss_rate, 6),
            "evictions": self.evictions,
            "bypasses": self.bypasses,
        }
