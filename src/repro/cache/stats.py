"""Cache statistics counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

#: The dict-valued per-stream counter fields, in one place so pickle
#: compatibility (:meth:`CacheStats.__setstate__`), merging and validation
#: never drift apart.
_STREAM_FIELDS = ("stream_accesses", "stream_hits", "stream_misses", "stream_bypasses")


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level.

    ``region_accesses`` / ``region_misses`` break the totals down by the
    memory-region label carried with each access (Property Array, Edge Array,
    ...), which is what Fig. 2 of the paper reports.

    BYPASS semantics: a bypassed insertion (a policy returning
    :data:`~repro.cache.policies.base.BYPASS`, e.g. PIN-100 with every way of
    a full set pinned) is counted **inside** ``misses`` and additionally in
    ``bypasses``.  ``hits + misses`` therefore always equals ``accesses``,
    and ``evictions`` excludes bypassed insertions (nothing was displaced).
    Both simulation backends follow this accounting and the ``verify``
    backend asserts it.

    Stream attribution: multi-programmed (co-run) replays additionally key
    accesses/hits/misses/bypasses by the requesting *stream* (one stream per
    co-running application).  The ``stream_*`` dictionaries stay empty unless
    an access is recorded with an explicit stream, so single-stream runs keep
    byte-identical summaries (:meth:`as_dict` omits the ``streams`` entry)
    and previously persisted memo entries remain readable.  When present, the
    per-stream counters must satisfy the same ``hits + misses == accesses``
    invariant per stream and sum exactly to the aggregates —
    :meth:`validate` enforces both.
    """

    name: str = "cache"
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    region_accesses: Dict[int, int] = field(default_factory=dict)
    region_misses: Dict[int, int] = field(default_factory=dict)
    stream_accesses: Dict[int, int] = field(default_factory=dict)
    stream_hits: Dict[int, int] = field(default_factory=dict)
    stream_misses: Dict[int, int] = field(default_factory=dict)
    stream_bypasses: Dict[int, int] = field(default_factory=dict)

    def __setstate__(self, state: dict) -> None:
        # Entries pickled before the co-run counters existed lack the
        # ``stream_*`` dictionaries; default them so old on-disk memo entries
        # stay readable without a MEMO_VERSION bump.
        self.__dict__.update(state)
        for name in _STREAM_FIELDS:
            self.__dict__.setdefault(name, {})

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when there were no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits per access (0 when there were no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @classmethod
    def from_counts(
        cls,
        name: str,
        hits: int,
        misses: int,
        evictions: int = 0,
        bypasses: int = 0,
        region_accesses: Optional[Mapping[int, int]] = None,
        region_misses: Optional[Mapping[int, int]] = None,
        stream_hits: Optional[Mapping[int, int]] = None,
        stream_misses: Optional[Mapping[int, int]] = None,
        stream_bypasses: Optional[Mapping[int, int]] = None,
    ) -> "CacheStats":
        """Build statistics from aggregate counters.

        This is the vectorized stats path: the fast simulator derives whole
        counters (and per-region breakdowns, via ``np.bincount``) from array
        reductions instead of calling :meth:`record` once per access.  The
        per-stream access counts are derived (``hits + misses`` per stream)
        rather than passed, so they can never disagree with the split.
        """
        stats = cls(
            name=name,
            accesses=int(hits) + int(misses),
            hits=int(hits),
            misses=int(misses),
            evictions=int(evictions),
            bypasses=int(bypasses),
        )
        if region_accesses:
            stats.region_accesses.update({int(k): int(v) for k, v in region_accesses.items()})
        if region_misses:
            stats.region_misses.update({int(k): int(v) for k, v in region_misses.items()})
        if stream_hits or stream_misses:
            hits_map = {int(k): int(v) for k, v in (stream_hits or {}).items() if v}
            misses_map = {int(k): int(v) for k, v in (stream_misses or {}).items() if v}
            stats.stream_hits.update(hits_map)
            stats.stream_misses.update(misses_map)
            for stream in sorted(set(hits_map) | set(misses_map)):
                stats.stream_accesses[stream] = hits_map.get(stream, 0) + misses_map.get(stream, 0)
        if stream_bypasses:
            stats.stream_bypasses.update(
                {int(k): int(v) for k, v in stream_bypasses.items() if v}
            )
        return stats

    def record(self, hit: bool, region: int | None = None, stream: int | None = None) -> None:
        """Record one access outcome.

        ``stream`` attributes the access to a co-running application's
        stream; ``None`` (the single-programmed default) leaves the
        per-stream dictionaries untouched.
        """
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if region is not None:
            self.region_accesses[region] = self.region_accesses.get(region, 0) + 1
            if not hit:
                self.region_misses[region] = self.region_misses.get(region, 0) + 1
        if stream is not None:
            self.stream_accesses[stream] = self.stream_accesses.get(stream, 0) + 1
            if hit:
                self.stream_hits[stream] = self.stream_hits.get(stream, 0) + 1
            else:
                self.stream_misses[stream] = self.stream_misses.get(stream, 0) + 1

    def record_bypass(self, stream: int | None = None) -> None:
        """Count one bypassed insertion (the access itself was already recorded)."""
        self.bypasses += 1
        if stream is not None:
            self.stream_bypasses[stream] = self.stream_bypasses.get(stream, 0) + 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new :class:`CacheStats` combining two counters."""
        merged = CacheStats(name=self.name)
        merged.accesses = self.accesses + other.accesses
        merged.hits = self.hits + other.hits
        merged.misses = self.misses + other.misses
        merged.evictions = self.evictions + other.evictions
        merged.bypasses = self.bypasses + other.bypasses
        for source in (self.region_accesses, other.region_accesses):
            for region, count in source.items():
                merged.region_accesses[region] = merged.region_accesses.get(region, 0) + count
        for source in (self.region_misses, other.region_misses):
            for region, count in source.items():
                merged.region_misses[region] = merged.region_misses.get(region, 0) + count
        for field_name in _STREAM_FIELDS:
            target = getattr(merged, field_name)
            for source in (getattr(self, field_name), getattr(other, field_name)):
                for stream, count in source.items():
                    target[stream] = target.get(stream, 0) + count
        return merged

    def stream_view(self, stream: int) -> "CacheStats":
        """Aggregate-shaped view of one stream's counters.

        Evictions are not attributed per stream (a victim's way may be
        refilled by any later access of the same partition), so the view
        reports 0 there; everything else carries the stream's exact counts.
        """
        hits = self.stream_hits.get(stream, 0)
        misses = self.stream_misses.get(stream, 0)
        return CacheStats(
            name=f"{self.name}[s{stream}]",
            accesses=self.stream_accesses.get(stream, 0),
            hits=hits,
            misses=misses,
            bypasses=self.stream_bypasses.get(stream, 0),
        )

    def validate(self) -> "CacheStats":
        """Enforce the counter invariants; raise :class:`ValueError` on breakage.

        Aggregate: ``hits + misses == accesses`` and ``bypasses <= misses``.
        Per stream (when any stream counters exist): the same two invariants
        per stream, plus every per-stream column summing exactly to its
        aggregate — a co-run replay may not lose or double-count accesses.
        Returns ``self`` so call sites can validate inline.
        """
        if self.hits + self.misses != self.accesses:
            raise ValueError(
                f"{self.name}: hits ({self.hits}) + misses ({self.misses}) "
                f"!= accesses ({self.accesses})"
            )
        if self.bypasses > self.misses:
            raise ValueError(
                f"{self.name}: bypasses ({self.bypasses}) exceed misses ({self.misses})"
            )
        streams = set()
        for field_name in _STREAM_FIELDS:
            streams.update(getattr(self, field_name))
        if not streams:
            return self
        for stream in streams:
            s_hits = self.stream_hits.get(stream, 0)
            s_misses = self.stream_misses.get(stream, 0)
            s_accesses = self.stream_accesses.get(stream, 0)
            if s_hits + s_misses != s_accesses:
                raise ValueError(
                    f"{self.name} stream {stream}: hits ({s_hits}) + misses "
                    f"({s_misses}) != accesses ({s_accesses})"
                )
            if self.stream_bypasses.get(stream, 0) > s_misses:
                raise ValueError(
                    f"{self.name} stream {stream}: bypasses exceed misses"
                )
        for field_name, aggregate in (
            ("stream_accesses", self.accesses),
            ("stream_hits", self.hits),
            ("stream_misses", self.misses),
            ("stream_bypasses", self.bypasses),
        ):
            total = sum(getattr(self, field_name).values())
            if total != aggregate:
                raise ValueError(
                    f"{self.name}: {field_name} sum ({total}) != aggregate ({aggregate})"
                )
        return self

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view used by reports."""
        out = {
            "name": self.name,
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": round(self.miss_rate, 6),
            "evictions": self.evictions,
            "bypasses": self.bypasses,
        }
        # Only co-run results carry stream counters; single-stream summaries
        # must stay byte-identical to the pre-co-run format.
        if self.stream_accesses:
            out["streams"] = {
                stream: {
                    "accesses": self.stream_accesses.get(stream, 0),
                    "hits": self.stream_hits.get(stream, 0),
                    "misses": self.stream_misses.get(stream, 0),
                    "bypasses": self.stream_bypasses.get(stream, 0),
                }
                for stream in sorted(self.stream_accesses)
            }
        return out
