"""Software-provided reuse hints carried with each LLC request.

GRASP's classification logic (Sec. III-B of the paper) tags every LLC access
with a 2-bit hint derived from the Address Bound Registers.  The hint values
are defined here, in the cache substrate, so that hint-aware policies (GRASP,
the XMem-style pinning adaptation) and the hint-agnostic baselines share one
vocabulary; :mod:`repro.core` re-exports them as part of the public GRASP API.
"""

from __future__ import annotations

from enum import IntEnum


class ReuseHint(IntEnum):
    """The four classification outcomes encoded in GRASP's 2-bit hint."""

    #: ABRs not configured (non-graph application) — policies behave as their
    #: unmodified baselines.
    DEFAULT = 0
    #: Address falls in the LLC-sized *High Reuse Region* at the start of a
    #: Property Array (the hottest vertices).
    HIGH_REUSE = 1
    #: Address falls in the next LLC-sized *Moderate Reuse Region*.
    MODERATE_REUSE = 2
    #: Any other graph-application access (cold vertices, Vertex/Edge arrays).
    LOW_REUSE = 3


#: Convenience integer aliases used in hot loops (IntEnum comparisons are slow).
HINT_DEFAULT = int(ReuseHint.DEFAULT)
HINT_HIGH = int(ReuseHint.HIGH_REUSE)
HINT_MODERATE = int(ReuseHint.MODERATE_REUSE)
HINT_LOW = int(ReuseHint.LOW_REUSE)
