"""Replacement policies evaluated by the paper.

Every policy implements :class:`~repro.cache.policies.base.ReplacementPolicy`
and is registered in a name → factory registry so experiments can be
configured with plain strings (``"rrip"``, ``"hawkeye"``, ``"grasp"`` ...).

GRASP itself and its ablation variants live in :mod:`repro.core` (they are
the paper's contribution, not a baseline) but register themselves in the
same registry on import.
"""

from repro.cache.policies.base import (
    BYPASS,
    ReplacementPolicy,
    create_policy,
    list_policies,
    register_policy,
)
from repro.cache.policies.hawkeye import HawkeyePolicy
from repro.cache.policies.leeway import LeewayPolicy
from repro.cache.policies.lru import LRUPolicy
from repro.cache.policies.opt import BeladyOptimal, simulate_opt_misses
from repro.cache.policies.pin import PinningPolicy
from repro.cache.policies.random_policy import RandomPolicy
from repro.cache.policies.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.cache.policies.ship import ShipMemPolicy

__all__ = [
    "BYPASS",
    "BeladyOptimal",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "HawkeyePolicy",
    "LeewayPolicy",
    "LRUPolicy",
    "PinningPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "ShipMemPolicy",
    "create_policy",
    "list_policies",
    "register_policy",
    "simulate_opt_misses",
]
