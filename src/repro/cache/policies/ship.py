"""SHiP-MEM: Signature-based Hit Predictor with memory-region signatures.

SHiP [Wu et al., MICRO'11] learns, per signature, whether blocks inserted
under that signature tend to be re-referenced, and inserts predicted-dead
blocks with a distant re-reference interval.  The original proposal supports
PC-, instruction-sequence- and memory-region-based signatures; because
PC-based correlation is meaningless for graph analytics (the same loads touch
hot and cold vertices alike — Sec. II-F of the GRASP paper), the paper
evaluates the memory-region variant with 16 KB regions and an unbounded
predictor table, which is what this class implements.
"""

from __future__ import annotations

from typing import Dict

from repro.cache.policies.base import register_policy
from repro.cache.policies.rrip import _RRIPBase


@register_policy("ship-mem")
@register_policy("ship")
class ShipMemPolicy(_RRIPBase):
    """SHiP with memory-region signatures on top of SRRIP.

    Parameters
    ----------
    region_bytes:
        Size of the memory region that forms the signature (16 KB in the
        paper's evaluation).
    counter_bits:
        Width of each Signature History Counter Table (SHCT) entry.
    block_bytes:
        Cache-block size used to convert block addresses back to byte
        granularity for the region computation.
    """

    name = "ship-mem"

    def __init__(
        self,
        rrpv_bits: int = 3,
        region_bytes: int = 16 * 1024,
        counter_bits: int = 3,
        block_bytes: int = 64,
    ) -> None:
        super().__init__(rrpv_bits)
        if region_bytes < block_bytes:
            raise ValueError("region_bytes must be at least one cache block")
        blocks_per_region = region_bytes // block_bytes
        # The signature is formed by shifting the block address, so the
        # region/block ratio must be an exact power of two; anything else
        # would silently truncate to the next smaller region size.
        if region_bytes % block_bytes or blocks_per_region & (blocks_per_region - 1):
            raise ValueError(
                f"region_bytes ({region_bytes}) must be a power-of-two multiple "
                f"of block_bytes ({block_bytes})"
            )
        self.region_shift = blocks_per_region.bit_length() - 1
        self.counter_max = (1 << counter_bits) - 1
        # The paper provisions the table with unlimited entries to assess the
        # scheme's maximum potential; a dict gives exactly that.
        self._shct: Dict[int, int] = {}

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        super().bind(num_sets, ways, partition)
        self._shct = {}
        self._signature = [[0] * ways for _ in range(num_sets)]
        self._reused = [[False] * ways for _ in range(num_sets)]

    def _signature_of(self, block_address: int) -> int:
        return block_address >> self.region_shift

    def shct_value(self, signature: int) -> int:
        """Current SHCT counter for a signature (weakly reused when unseen)."""
        return self._shct.get(signature, 1)

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        super().on_hit(set_index, way, block_address, pc, hint)
        if not self._reused[set_index][way]:
            self._reused[set_index][way] = True
            signature = self._signature[set_index][way]
            self._shct[signature] = min(self.counter_max, self.shct_value(signature) + 1)

    def on_evict(self, set_index: int, way: int, block_address: int) -> None:
        if not self._reused[set_index][way]:
            signature = self._signature[set_index][way]
            self._shct[signature] = max(0, self.shct_value(signature) - 1)

    def insertion_rrpv(self, set_index: int, block_address: int, pc: int, hint: int) -> int:
        if self.shct_value(self._signature_of(block_address)) == 0:
            # Predicted dead on arrival: distant re-reference interval.
            return self.max_rrpv
        return self.max_rrpv - 1

    def on_insert(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        super().on_insert(set_index, way, block_address, pc, hint)
        self._signature[set_index][way] = self._signature_of(block_address)
        self._reused[set_index][way] = False
