"""XMem-style pinning adapted for graph analytics (the paper's PIN-X).

XMem [Vijaykumar et al., ISCA'18] lets software pin a data structure's cache
blocks so they cannot be evicted.  The GRASP paper adapts it to graph
analytics by pinning blocks from the High Reuse Region (identified through
the same Address Bound Register interface GRASP uses) and reserving
``X`` percent of the LLC capacity for pinned blocks; the remaining capacity
is managed by the base RRIP scheme.  Four configurations are evaluated:
PIN-25, PIN-50, PIN-75 and PIN-100.

Pinning is rigid by design: once the reserved capacity is full of pinned
blocks they stay resident for the rest of the region of interest, even if
they stop exhibiting reuse — which is exactly the weakness Figs. 8 and 9
expose on moderate- and low-skew inputs.
"""

from __future__ import annotations

from repro.cache.hints import HINT_HIGH
from repro.cache.policies.base import BYPASS, register_policy
from repro.cache.policies.rrip import DRRIPPolicy


@register_policy("pin")
class PinningPolicy(DRRIPPolicy):
    """Pin High-Reuse blocks into a reserved fraction of each set.

    Parameters
    ----------
    reserved_fraction:
        Fraction of the ways in every set that pinned blocks may occupy
        (0.25, 0.50, 0.75 or 1.0 for the paper's PIN-25/50/75/100).
    """

    name = "pin"

    def __init__(self, reserved_fraction: float = 0.75, rrpv_bits: int = 3) -> None:
        super().__init__(rrpv_bits=rrpv_bits)
        if not 0.0 < reserved_fraction <= 1.0:
            raise ValueError("reserved_fraction must be in (0, 1]")
        self.reserved_fraction = reserved_fraction

    @classmethod
    def pin_25(cls) -> "PinningPolicy":
        """The paper's PIN-25 configuration."""
        return cls(reserved_fraction=0.25)

    @classmethod
    def pin_50(cls) -> "PinningPolicy":
        """The paper's PIN-50 configuration."""
        return cls(reserved_fraction=0.50)

    @classmethod
    def pin_75(cls) -> "PinningPolicy":
        """The paper's PIN-75 configuration (XMem's original reservation)."""
        return cls(reserved_fraction=0.75)

    @classmethod
    def pin_100(cls) -> "PinningPolicy":
        """The paper's PIN-100 configuration (whole LLC may be pinned)."""
        return cls(reserved_fraction=1.0)

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        super().bind(num_sets, ways, partition)
        self.reserved_ways = max(1, int(round(ways * self.reserved_fraction)))
        self._pinned = [[False] * ways for _ in range(num_sets)]
        self._pinned_count = [0] * num_sets

    def is_pinned(self, set_index: int, way: int) -> bool:
        """Whether the block in ``way`` is currently pinned."""
        return self._pinned[set_index][way]

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        if self._pinned[set_index][way]:
            return
        # Unpinned blocks are managed by the base RRIP policy.  A block that
        # arrives with a High-Reuse hint while unpinned may still be pinned on
        # a hit if reserved capacity remains.  Pinning must also refresh the
        # RRPV: a newly pinned block keeps hit priority, it does not linger at
        # whatever stale re-reference interval it happened to carry.
        if hint == HINT_HIGH and self._pinned_count[set_index] < self.reserved_ways:
            self._pinned[set_index][way] = True
            self._pinned_count[set_index] += 1
            self.set_rrpv(set_index, way, 0)
            return
        super().on_hit(set_index, way, block_address, pc, hint)

    def choose_victim(
        self, set_index: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> int:
        if self._pinned_count[set_index] >= self.ways:
            # Every way is pinned (only possible under PIN-100): nothing may
            # be evicted, so the incoming block bypasses the LLC.
            return BYPASS
        rrpvs = self._rrpv[set_index]
        pinned = self._pinned[set_index]
        maximum = self.max_rrpv
        while True:
            for way in range(self.ways):
                if not pinned[way] and rrpvs[way] >= maximum:
                    return way
            for way in range(self.ways):
                if not pinned[way]:
                    rrpvs[way] += 1

    def on_evict(self, set_index: int, way: int, block_address: int) -> None:
        # Victims are never pinned; nothing to clean up beyond the base class.
        super().on_evict(set_index, way, block_address)

    def on_insert(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        # Every insertion — pinned or not — is a miss that must feed the DRRIP
        # set duel: leader-set misses steer PSEL and bimodal insertions tick
        # the shared counter regardless of whether the block ends up pinned.
        # The superclass runs that machinery and assigns the duel RRPV; the
        # pinning path then overrides the RRPV with hit priority.
        super().on_insert(set_index, way, block_address, pc, hint)
        if hint == HINT_HIGH and self._pinned_count[set_index] < self.reserved_ways:
            self._pinned[set_index][way] = True
            self._pinned_count[set_index] += 1
            self.set_rrpv(set_index, way, 0)
        else:
            self._pinned[set_index][way] = False
