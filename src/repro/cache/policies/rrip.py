"""Re-Reference Interval Prediction (RRIP) replacement [Jaleel et al., ISCA'10].

The paper uses DRRIP with 3-bit RRPV counters as its high-performance
baseline (Sec. IV-C) and builds GRASP on top of it.  Three variants are
provided:

* :class:`SRRIPPolicy` — static RRIP: insert at ``max-1`` ("long re-reference
  interval"), promote to 0 on hit.
* :class:`BRRIPPolicy` — bimodal RRIP: insert at ``max`` most of the time and
  at ``max-1`` with low probability, which resists thrashing.
* :class:`DRRIPPolicy` — dynamic RRIP: set-dueling between SRRIP and BRRIP
  with a PSEL counter; follower sets adopt the winning insertion policy.
"""

from __future__ import annotations

from typing import List

from repro.cache.policies.base import ReplacementPolicy, register_policy

#: Sentinel in :meth:`_RRIPBase.hint_insertion_table` marking hints whose
#: insertion RRPV is not a fixed value but the policy's dynamic machinery
#: (BRRIP's bimodal counter, DRRIP's set duel).
DYNAMIC_INSERTION = -1

#: Sentinel in :meth:`_RRIPBase.hint_promotion_table` meaning "age the block
#: one step towards MRU" (GRASP's gradual promotion) instead of a fixed RRPV.
DECREMENT_PROMOTION = -1


class _RRIPBase(ReplacementPolicy):
    """Shared RRPV bookkeeping for all RRIP-family policies (including GRASP)."""

    def __init__(self, rrpv_bits: int = 3) -> None:
        super().__init__()
        if rrpv_bits < 1:
            raise ValueError("rrpv_bits must be at least 1")
        self.rrpv_bits = rrpv_bits
        self.max_rrpv = (1 << rrpv_bits) - 1

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        super().bind(num_sets, ways, partition)
        self._rrpv = [[self.max_rrpv] * ways for _ in range(num_sets)]

    # -- RRIP mechanics --------------------------------------------------------

    def rrpv_of(self, set_index: int, way: int) -> int:
        """Current RRPV of a block (used by tests and derived policies)."""
        return self._rrpv[set_index][way]

    def set_rrpv(self, set_index: int, way: int, value: int) -> None:
        """Set a block's RRPV, clamped to the representable range."""
        self._rrpv[set_index][way] = min(self.max_rrpv, max(0, value))

    def choose_victim(
        self, set_index: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> int:
        """Standard RRIP victim search: leftmost block with RRPV == max.

        If no block is at the maximum, all RRPVs are aged until one is.  This
        is also GRASP's eviction policy — the paper leaves it unmodified.
        """
        rrpvs = self._rrpv[set_index]
        maximum = self.max_rrpv
        while True:
            for way, value in enumerate(rrpvs):
                if value >= maximum:
                    return way
            for way in range(self.ways):
                rrpvs[way] += 1

    # -- default RRIP policies (overridden by SHiP / Hawkeye / GRASP) ----------

    def insertion_rrpv(self, set_index: int, block_address: int, pc: int, hint: int) -> int:
        """RRPV assigned to a newly inserted block."""
        return self.max_rrpv - 1

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        # Hit priority: promote to re-reference interval 0.
        self._rrpv[set_index][way] = 0

    def on_insert(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        self._rrpv[set_index][way] = self.insertion_rrpv(set_index, block_address, pc, hint)

    # -- array-form policy description (consumed by repro.fastsim.rrip) --------

    def hint_insertion_table(self) -> List[int]:
        """Insertion RRPV for each 2-bit reuse hint, in hint-value order.

        Entries are either a fixed RRPV or :data:`DYNAMIC_INSERTION` for hints
        whose insertion position is decided per access by the policy's dynamic
        machinery (bimodal counter / set duel).  The vectorized replay engine
        derives its insertion rule from this table, so any policy whose
        behaviour deviates from its table must not advertise one.
        """
        return [self.max_rrpv - 1] * 4

    def hint_promotion_table(self) -> List[int]:
        """Hit-promotion RRPV for each 2-bit reuse hint, in hint-value order.

        Entries are either the RRPV assigned on a hit or
        :data:`DECREMENT_PROMOTION` for GRASP's "one step towards MRU".
        """
        return [0] * 4


@register_policy("srrip")
class SRRIPPolicy(_RRIPBase):
    """Static RRIP: every insertion uses a long re-reference interval (max-1)."""

    name = "srrip"


@register_policy("brrip")
class BRRIPPolicy(_RRIPBase):
    """Bimodal RRIP: insert at ``max`` except for 1-in-``epsilon`` insertions."""

    name = "brrip"

    def __init__(self, rrpv_bits: int = 3, epsilon: int = 32) -> None:
        super().__init__(rrpv_bits)
        if epsilon < 1:
            raise ValueError("epsilon must be at least 1")
        self.epsilon = epsilon
        self._insert_count = 0

    def insertion_rrpv(self, set_index: int, block_address: int, pc: int, hint: int) -> int:
        self._insert_count += 1
        if self._insert_count % self.epsilon == 0:
            return self.max_rrpv - 1
        return self.max_rrpv

    def hint_insertion_table(self) -> List[int]:
        # Every insertion consults the bimodal counter, regardless of hint.
        return [DYNAMIC_INSERTION] * 4


@register_policy("rrip")
@register_policy("drrip")
class DRRIPPolicy(_RRIPBase):
    """Dynamic RRIP with set dueling (the paper's "RRIP" baseline).

    A handful of leader sets are statically dedicated to the SRRIP insertion
    policy and an equal number to BRRIP; misses in leader sets steer a
    saturating PSEL counter and follower sets adopt whichever leader is
    currently winning.
    """

    name = "rrip"

    #: One SRRIP leader and one BRRIP leader out of every ``LEADER_PERIOD`` sets.
    LEADER_PERIOD = 16

    def __init__(self, rrpv_bits: int = 3, epsilon: int = 32, psel_bits: int = 10) -> None:
        super().__init__(rrpv_bits)
        if epsilon < 1:
            raise ValueError("epsilon must be at least 1")
        self.epsilon = epsilon
        self.psel_max = (1 << psel_bits) - 1
        self._psel = self.psel_max // 2
        self._insert_count = 0

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        super().bind(num_sets, ways, partition)
        self._psel = self.psel_max // 2
        self._insert_count = 0

    def _set_role(self, set_index: int) -> str:
        """Return 'srrip', 'brrip' or 'follower' for a set."""
        slot = set_index % self.LEADER_PERIOD
        if slot == 0:
            return "srrip"
        if slot == 1:
            return "brrip"
        return "follower"

    def _bimodal_rrpv(self) -> int:
        self._insert_count += 1
        if self._insert_count % self.epsilon == 0:
            return self.max_rrpv - 1
        return self.max_rrpv

    def insertion_rrpv(self, set_index: int, block_address: int, pc: int, hint: int) -> int:
        role = self._set_role(set_index)
        if role == "srrip":
            # A miss in an SRRIP leader argues for BRRIP: move PSEL up.
            self._psel = min(self.psel_max, self._psel + 1)
            return self.max_rrpv - 1
        if role == "brrip":
            self._psel = max(0, self._psel - 1)
            return self._bimodal_rrpv()
        # Followers: PSEL below midpoint means SRRIP leaders miss less.
        if self._psel < (self.psel_max + 1) // 2:
            return self.max_rrpv - 1
        return self._bimodal_rrpv()

    def hint_insertion_table(self) -> List[int]:
        # Every insertion goes through the set duel, regardless of hint.
        return [DYNAMIC_INSERTION] * 4
