"""Least Recently Used replacement.

LRU is the baseline the paper measures OPT, RRIP and GRASP against in
Fig. 11 and Table VII.  It is also the policy used for the L1-D and L2
filter caches in the simulated hierarchy.
"""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, register_policy


@register_policy("lru")
class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used replacement using per-block timestamps."""

    name = "lru"

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        super().bind(num_sets, ways, partition)
        self._clock = 0
        self._last_use = [[0] * ways for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._last_use[set_index][way] = self._clock

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        self._touch(set_index, way)

    def choose_victim(
        self, set_index: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> int:
        stamps = self._last_use[set_index]
        return stamps.index(min(stamps))

    def on_insert(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        self._touch(set_index, way)
