"""Leeway: dead-block prediction via Live Distance [Faldu & Grot, PACT'17].

Leeway tracks, per block, the deepest LRU-stack position at which the block
received a hit — its *live distance* — and learns a per-signature (PC)
predicted live distance.  A block whose current stack depth exceeds the
prediction is considered dead and becomes the preferred victim.  The
signature-level prediction is updated with *reuse-oriented* bias (grow fast,
shrink slowly), which is the variability-tolerant behaviour that lets Leeway
avoid the large slowdowns Hawkeye and SHiP suffer on graph workloads
(Sec. V-A of the GRASP paper) while still providing little upside.
"""

from __future__ import annotations

from typing import Dict

from repro.cache.policies.base import ReplacementPolicy, register_policy


@register_policy("leeway")
class LeewayPolicy(ReplacementPolicy):
    """Dead-block-predicting replacement driven by per-PC live distances.

    Parameters
    ----------
    decay_period:
        A signature's predicted live distance shrinks by one only after this
        many consecutive observations below the prediction (the slow-shrink,
        reuse-oriented update).
    """

    name = "leeway"

    def __init__(self, decay_period: int = 8) -> None:
        super().__init__()
        if decay_period < 1:
            raise ValueError("decay_period must be at least 1")
        self.decay_period = decay_period
        self._predicted_ld: Dict[int, int] = {}
        self._shrink_votes: Dict[int, int] = {}

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        super().bind(num_sets, ways, partition)
        self._predicted_ld = {}
        self._shrink_votes = {}
        # Recency stack per set: list of ways ordered MRU → LRU.
        self._stack = [list(range(ways)) for _ in range(num_sets)]
        self._signature = [[0] * ways for _ in range(num_sets)]
        self._observed_ld = [[0] * ways for _ in range(num_sets)]

    # -- live-distance bookkeeping ----------------------------------------------

    def predicted_live_distance(self, signature: int) -> int:
        """Predicted live distance for a signature (0 when unseen)."""
        return self._predicted_ld.get(signature, 0)

    def _stack_position(self, set_index: int, way: int) -> int:
        return self._stack[set_index].index(way)

    def _move_to_mru(self, set_index: int, way: int) -> None:
        stack = self._stack[set_index]
        stack.remove(way)
        stack.insert(0, way)

    def _update_prediction(self, signature: int, observed: int) -> None:
        predicted = self.predicted_live_distance(signature)
        if observed > predicted:
            # Grow immediately: under-prediction causes premature dead marks.
            self._predicted_ld[signature] = observed
            self._shrink_votes[signature] = 0
        elif observed < predicted:
            votes = self._shrink_votes.get(signature, 0) + 1
            if votes >= self.decay_period:
                self._predicted_ld[signature] = predicted - 1
                self._shrink_votes[signature] = 0
            else:
                self._shrink_votes[signature] = votes

    # -- policy hooks -------------------------------------------------------------

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        position = self._stack_position(set_index, way)
        if position > self._observed_ld[set_index][way]:
            self._observed_ld[set_index][way] = position
        self._move_to_mru(set_index, way)

    def choose_victim(
        self, set_index: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> int:
        stack = self._stack[set_index]
        signatures = self._signature[set_index]
        # Walk from LRU towards MRU and take the first predicted-dead block.
        # The stack position of ``stack[position]`` is ``position`` itself, so
        # one reversed-enumerate pass replaces the per-way ``list.index`` scan
        # (which made the victim search O(ways^2)).
        for position in range(len(stack) - 1, -1, -1):
            way = stack[position]
            if position > self.predicted_live_distance(signatures[way]):
                return way
        # No dead block: fall back to plain LRU.
        return stack[-1]

    def on_evict(self, set_index: int, way: int, block_address: int) -> None:
        signature = self._signature[set_index][way]
        self._update_prediction(signature, self._observed_ld[set_index][way])

    def on_insert(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        self._signature[set_index][way] = pc
        self._observed_ld[set_index][way] = 0
        self._move_to_mru(set_index, way)
