"""Replacement-policy interface and registry.

A policy owns whatever per-block metadata it needs (RRPV counters, signatures,
recency timestamps, predictor tables); the cache owns only the tag array.
All addresses handed to a policy are **block addresses** (byte address with
the block-offset bits removed).

Stream identity: multi-programmed (co-run) simulation tags every access with
the requesting application's ``stream`` id.  Every hook accepts a trailing
``stream`` argument (default 0, the single-programmed case); plain policies
ignore it — their state is shared across all streams, which is the
free-for-all contention regime of an unpartitioned shared LLC.  Isolation is
opted into via :meth:`bind`'s ``partition`` argument (a
:class:`~repro.cache.partition.WayPartition`): way-partitioned operation is
provided by :class:`~repro.cache.partition.PartitionedPolicy`, which clones
the policy per stream and confines each clone — victim selection, RRPV
ageing, pinning, predictor tables — to that stream's ways.  Policies that do
not implement partitioning natively reject a non-``None`` partition, so the
semantics cannot silently fork.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List

#: Sentinel returned by :meth:`ReplacementPolicy.choose_victim` to indicate
#: that the incoming block should bypass the cache instead of evicting.
BYPASS = -1


class ReplacementPolicy(abc.ABC):
    """Base class for cache replacement policies.

    Lifecycle: the owning cache calls :meth:`bind` once with its geometry,
    then :meth:`on_hit` / :meth:`choose_victim` / :meth:`on_evict` /
    :meth:`on_insert` per access.  ``hint`` is the 2-bit GRASP reuse hint
    (0 = Default for every non-graph access and for all baseline policies
    that ignore it); ``stream`` is the requesting co-run stream (always 0 in
    single-programmed simulation).
    """

    #: Registry name; subclasses must override.
    name: str = "base"

    #: Whether :meth:`bind` accepts a way partition.  Only
    #: :class:`~repro.cache.partition.PartitionedPolicy` does — everything
    #: else must be wrapped, so partitioned behaviour has a single
    #: definition instead of eight slightly different ones.
    supports_partition: bool = False

    def __init__(self) -> None:
        self.num_sets = 0
        self.ways = 0
        self.partition = None

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        """Allocate per-set metadata for a cache with the given geometry.

        ``partition`` is an optional per-stream allowed-ways mask
        (:class:`~repro.cache.partition.WayPartition`); policies that cannot
        honour one reject it loudly rather than ignoring it.
        """
        if partition is not None and not self.supports_partition:
            raise ValueError(
                f"policy {self.name!r} cannot bind a way partition directly; "
                "wrap it in repro.cache.partition.PartitionedPolicy"
            )
        self.num_sets = num_sets
        self.ways = ways
        self.partition = partition

    @abc.abstractmethod
    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        """Update state on a cache hit (the "hit promotion" policy)."""

    @abc.abstractmethod
    def choose_victim(
        self, set_index: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> int:
        """Return the way to evict for an insertion into a full set.

        May return :data:`BYPASS` to decline caching the incoming block.
        """

    @abc.abstractmethod
    def on_insert(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        """Update state after the incoming block has been placed (insertion policy)."""

    def on_evict(self, set_index: int, way: int, block_address: int) -> None:
        """Notification that ``block_address`` is being evicted from ``way``."""

    def reset(self) -> None:
        """Re-initialise all metadata (equivalent to re-binding)."""
        if self.num_sets:
            # Only pass the partition through when one is bound, so subclasses
            # predating the partition parameter keep working unmodified.
            if self.partition is not None:
                self.bind(self.num_sets, self.ways, self.partition)
            else:
                self.bind(self.num_sets, self.ways)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


PolicyFactory = Callable[..., ReplacementPolicy]

_POLICIES: Dict[str, PolicyFactory] = {}


def register_policy(name: str) -> Callable[[PolicyFactory], PolicyFactory]:
    """Decorator registering a policy class (or factory) under ``name``."""

    def decorator(factory: PolicyFactory) -> PolicyFactory:
        _POLICIES[name] = factory
        return factory

    return decorator


def list_policies() -> List[str]:
    """Names of all registered replacement policies."""
    return sorted(_POLICIES)


def create_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a registered policy by name.

    GRASP and its ablations register themselves when :mod:`repro.core` is
    imported; importing it here keeps string-based configuration working
    regardless of import order.
    """
    if name not in _POLICIES:
        # Deferred import: repro.core registers the GRASP family of policies.
        import repro.core  # noqa: F401  (import for registration side effect)
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown replacement policy {name!r}; available: {', '.join(list_policies())}"
        ) from None
    return factory(**kwargs)
