"""Belady's optimal replacement (OPT / MIN) — offline upper bound.

Sec. V-D of the paper compares GRASP against OPT on LLC access traces.  OPT
requires perfect knowledge of the future, so it is implemented as an offline
trace simulator rather than a :class:`ReplacementPolicy`: for every miss in a
full set it evicts the resident block whose next use lies farthest in the
future (or never occurs).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats


def simulate_opt_misses(block_addresses: Sequence[int] | np.ndarray, config: CacheConfig) -> CacheStats:
    """Run Belady's MIN on a sequence of **block addresses**.

    The input must already be at block granularity (byte addresses divided by
    the block size) — exactly what :class:`repro.experiments.runner` collects
    as the LLC access trace.  Returns a :class:`CacheStats` with the minimum
    possible number of misses for the given cache geometry.
    """
    blocks = np.asarray(block_addresses, dtype=np.int64)
    stats = CacheStats(name=f"{config.name}-OPT")
    if blocks.size == 0:
        return stats

    num_sets = config.num_sets
    ways = config.ways
    set_indices = blocks & (num_sets - 1)

    infinity = np.iinfo(np.int64).max

    # next_use[i] = index of the next access to the same block, or "infinity".
    next_use = np.full(blocks.size, infinity, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for index in range(blocks.size - 1, -1, -1):
        block = int(blocks[index])
        next_use[index] = last_seen.get(block, infinity)
        last_seen[block] = index

    # Per-set resident map: block -> next use index.
    resident: list[dict[int, int]] = [dict() for _ in range(num_sets)]
    blocks_list = blocks.tolist()
    sets_list = set_indices.tolist()
    next_list = next_use.tolist()

    for index in range(blocks.size):
        block = blocks_list[index]
        set_id = sets_list[index]
        occupants = resident[set_id]
        if block in occupants:
            stats.record(True)
            occupants[block] = next_list[index]
            continue
        stats.record(False)
        if len(occupants) >= ways:
            victim = max(occupants, key=occupants.get)
            # Never-referenced-again blocks are always preferred victims; the
            # max() above already selects them because their key is infinity.
            del occupants[victim]
            stats.evictions += 1
        occupants[block] = next_list[index]
    return stats


class BeladyOptimal:
    """Convenience wrapper around :func:`simulate_opt_misses`.

    This is *not* a :class:`ReplacementPolicy` — it cannot run online — but it
    offers the same "simulate a trace, read the stats" surface the experiment
    runner uses for every other scheme.
    """

    name = "opt"

    def __init__(self, config: CacheConfig) -> None:
        self.config = config

    def simulate(self, block_addresses: Sequence[int] | np.ndarray) -> CacheStats:
        """Simulate a block-address trace and return hit/miss statistics."""
        return simulate_opt_misses(block_addresses, self.config)
