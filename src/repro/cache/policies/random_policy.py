"""Random replacement — a sanity-check baseline (not in the paper)."""

from __future__ import annotations

import random

from repro.cache.policies.base import ReplacementPolicy, register_policy


@register_policy("random")
class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way.

    Useful in tests and ablations as a floor that any learned or
    domain-specialized policy should comfortably beat on thrashing workloads.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = seed
        self._rng = random.Random(seed)

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        super().bind(num_sets, ways, partition)
        self._rng = random.Random(self._seed)

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        return None

    def choose_victim(
        self, set_index: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> int:
        return self._rng.randrange(self.ways)

    def on_insert(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        return None
