"""Hawkeye cache replacement [Jain & Lin, ISCA'16].

Hawkeye reconstructs what Belady's OPT would have done on the recent access
history of a few sampled sets (the "OPTgen" structure) and trains a PC-indexed
predictor with those decisions: PCs whose loads OPT would have kept are
*cache-friendly*, the rest are *cache-averse*.  Friendly lines are inserted
with RRPV 0, averse lines with the maximum RRPV.

The GRASP paper (Sec. V-A) shows why this backfires for graph analytics: a
single PC streams over the Property Array touching hot and cold vertices
alike, so the PC-based prediction cannot separate them — and a hit on a line
whose PC is currently predicted averse re-inserts it at distant RRPV, evicting
it even sooner than the RRIP baseline would.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.policies.base import register_policy
from repro.cache.policies.rrip import _RRIPBase


class _OptGen:
    """Belady-reconstruction structure for one sampled set.

    Keeps a sliding usage-interval history (``history_length`` accesses) and
    an occupancy vector; an access whose reuse interval never saturates the
    cache capacity is a line OPT would have kept.
    """

    def __init__(self, capacity: int, history_length: int) -> None:
        self.capacity = capacity
        self.history_length = history_length
        self.timestamp = 0
        self.occupancy: List[int] = []
        self.last_access: Dict[int, int] = {}
        self.last_pc: Dict[int, int] = {}

    def access(self, block_address: int, pc: int) -> tuple[int | None, bool]:
        """Record an access; return ``(training_pc, opt_would_hit)``.

        ``training_pc`` is the PC that previously touched this block (the one
        to train), or ``None`` when the block has no usable history.
        """
        training_pc = None
        opt_hit = False
        base = self.timestamp - len(self.occupancy)
        if block_address in self.last_access:
            last = self.last_access[block_address]
            start = last - base
            if start >= 0:
                window = self.occupancy[start:]
                training_pc = self.last_pc.get(block_address)
                if window and max(window) < self.capacity:
                    opt_hit = True
                    for i in range(start, len(self.occupancy)):
                        self.occupancy[i] += 1
                elif not window:
                    # Same-timestamp re-access; treat as a hit with no interval.
                    opt_hit = True

        self.last_access[block_address] = self.timestamp
        self.last_pc[block_address] = pc
        self.occupancy.append(0)
        self.timestamp += 1

        if len(self.occupancy) > self.history_length:
            overflow = len(self.occupancy) - self.history_length
            del self.occupancy[:overflow]
            cutoff = self.timestamp - self.history_length
            stale = [block for block, t in self.last_access.items() if t < cutoff]
            for block in stale:
                del self.last_access[block]
                self.last_pc.pop(block, None)
        return training_pc, opt_hit


@register_policy("hawkeye")
class HawkeyePolicy(_RRIPBase):
    """Hawkeye: OPTgen-trained, PC-correlated insertion on top of RRIP.

    Parameters
    ----------
    sample_period:
        One out of every ``sample_period`` sets feeds OPTgen (64 sampled sets
        per 2048 in the original; the scaled cache keeps the same ratio).
    predictor_bits:
        Width of the per-PC saturating counters.
    history_factor:
        OPTgen history length as a multiple of the cache associativity
        (8× in the original design).
    """

    name = "hawkeye"

    def __init__(
        self,
        rrpv_bits: int = 3,
        sample_period: int = 8,
        predictor_bits: int = 3,
        history_factor: int = 8,
    ) -> None:
        super().__init__(rrpv_bits)
        self.sample_period = max(1, sample_period)
        self.predictor_max = (1 << predictor_bits) - 1
        self.history_factor = history_factor
        self._predictor: Dict[int, int] = {}

    def bind(self, num_sets: int, ways: int, partition=None) -> None:
        super().bind(num_sets, ways, partition)
        self._predictor = {}
        self._samplers: Dict[int, _OptGen] = {}
        self._block_pc = [[0] * ways for _ in range(num_sets)]
        self._friendly = [[False] * ways for _ in range(num_sets)]

    # -- prediction ------------------------------------------------------------

    def _is_sampled(self, set_index: int) -> bool:
        return set_index % self.sample_period == 0

    def predictor_value(self, pc: int) -> int:
        """Current counter for a PC (initialised to weakly friendly)."""
        return self._predictor.get(pc, (self.predictor_max + 1) // 2)

    def is_cache_friendly(self, pc: int) -> bool:
        """Whether Hawkeye currently predicts loads from ``pc`` as cache-friendly."""
        return self.predictor_value(pc) >= (self.predictor_max + 1) // 2

    def _train(self, pc: int, positive: bool) -> None:
        value = self.predictor_value(pc)
        if positive:
            self._predictor[pc] = min(self.predictor_max, value + 1)
        else:
            self._predictor[pc] = max(0, value - 1)

    def _observe(self, set_index: int, block_address: int, pc: int) -> None:
        if not self._is_sampled(set_index):
            return
        sampler = self._samplers.get(set_index)
        if sampler is None:
            sampler = _OptGen(self.ways, self.history_factor * self.ways)
            self._samplers[set_index] = sampler
        training_pc, opt_hit = sampler.access(block_address, pc)
        if training_pc is not None:
            self._train(training_pc, opt_hit)

    # -- policy hooks ----------------------------------------------------------

    def on_hit(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        self._observe(set_index, block_address, pc)
        friendly = self.is_cache_friendly(pc)
        self._friendly[set_index][way] = friendly
        self._block_pc[set_index][way] = pc
        # Friendly lines are kept close; averse lines are pushed out even on a
        # hit — the behaviour the GRASP paper identifies as harmful for graphs.
        self.set_rrpv(set_index, way, 0 if friendly else self.max_rrpv)

    def insertion_rrpv(self, set_index: int, block_address: int, pc: int, hint: int) -> int:
        return 0 if self.is_cache_friendly(pc) else self.max_rrpv

    def on_insert(
        self, set_index: int, way: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> None:
        self._observe(set_index, block_address, pc)
        friendly = self.is_cache_friendly(pc)
        if friendly:
            # Age everyone else so older friendly lines eventually become victims.
            rrpvs = self._rrpv[set_index]
            for other in range(self.ways):
                if other != way and rrpvs[other] < self.max_rrpv - 1:
                    rrpvs[other] += 1
        self._friendly[set_index][way] = friendly
        self._block_pc[set_index][way] = pc
        self.set_rrpv(set_index, way, 0 if friendly else self.max_rrpv)

    def choose_victim(
        self, set_index: int, block_address: int, pc: int, hint: int,
        stream: int = 0,
    ) -> int:
        rrpvs = self._rrpv[set_index]
        # Prefer a cache-averse line (RRPV == max); otherwise evict the oldest
        # friendly line and detrain the PC that inserted it.
        for way, value in enumerate(rrpvs):
            if value >= self.max_rrpv:
                return way
        victim = max(range(self.ways), key=rrpvs.__getitem__)
        if self._friendly[set_index][victim]:
            self._train(self._block_pc[set_index][victim], positive=False)
        return victim
